# Empty compiler generated dependencies file for meteo_core_tests.
# This may be replaced when dependencies are built.
