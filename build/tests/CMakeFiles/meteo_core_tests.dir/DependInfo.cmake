
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/meteorograph/depart_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/depart_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/depart_test.cpp.o.d"
  "/root/repo/tests/meteorograph/edge_cases_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/edge_cases_test.cpp.o.d"
  "/root/repo/tests/meteorograph/first_hop_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/first_hop_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/first_hop_test.cpp.o.d"
  "/root/repo/tests/meteorograph/hot_regions_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/hot_regions_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/hot_regions_test.cpp.o.d"
  "/root/repo/tests/meteorograph/lsi_backend_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/lsi_backend_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/lsi_backend_test.cpp.o.d"
  "/root/repo/tests/meteorograph/maintenance_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/maintenance_test.cpp.o.d"
  "/root/repo/tests/meteorograph/meteorograph_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/meteorograph_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/meteorograph_test.cpp.o.d"
  "/root/repo/tests/meteorograph/naming_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/naming_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/naming_test.cpp.o.d"
  "/root/repo/tests/meteorograph/notify_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/notify_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/notify_test.cpp.o.d"
  "/root/repo/tests/meteorograph/range_search_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/range_search_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/range_search_test.cpp.o.d"
  "/root/repo/tests/meteorograph/replica_retrieve_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/replica_retrieve_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/replica_retrieve_test.cpp.o.d"
  "/root/repo/tests/meteorograph/storage_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/storage_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/storage_test.cpp.o.d"
  "/root/repo/tests/meteorograph/walk_test.cpp" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/walk_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_core_tests.dir/meteorograph/walk_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/meteorograph/CMakeFiles/meteo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meteo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/meteo_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/meteo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vsm/CMakeFiles/meteo_vsm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
