file(REMOVE_RECURSE
  "CMakeFiles/meteo_core_tests.dir/meteorograph/depart_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/depart_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/edge_cases_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/edge_cases_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/first_hop_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/first_hop_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/hot_regions_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/hot_regions_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/lsi_backend_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/lsi_backend_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/maintenance_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/maintenance_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/meteorograph_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/meteorograph_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/naming_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/naming_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/notify_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/notify_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/range_search_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/range_search_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/replica_retrieve_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/replica_retrieve_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/storage_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/storage_test.cpp.o.d"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/walk_test.cpp.o"
  "CMakeFiles/meteo_core_tests.dir/meteorograph/walk_test.cpp.o.d"
  "meteo_core_tests"
  "meteo_core_tests.pdb"
  "meteo_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
