file(REMOVE_RECURSE
  "CMakeFiles/meteo_workload_tests.dir/workload/knee_test.cpp.o"
  "CMakeFiles/meteo_workload_tests.dir/workload/knee_test.cpp.o.d"
  "CMakeFiles/meteo_workload_tests.dir/workload/trace_test.cpp.o"
  "CMakeFiles/meteo_workload_tests.dir/workload/trace_test.cpp.o.d"
  "CMakeFiles/meteo_workload_tests.dir/workload/worldcup_test.cpp.o"
  "CMakeFiles/meteo_workload_tests.dir/workload/worldcup_test.cpp.o.d"
  "meteo_workload_tests"
  "meteo_workload_tests.pdb"
  "meteo_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
