# Empty dependencies file for meteo_workload_tests.
# This may be replaced when dependencies are built.
