# Empty compiler generated dependencies file for meteo_common_tests.
# This may be replaced when dependencies are built.
