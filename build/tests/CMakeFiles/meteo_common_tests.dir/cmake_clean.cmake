file(REMOVE_RECURSE
  "CMakeFiles/meteo_common_tests.dir/common/cdf_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/cdf_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/cli_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/cli_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/result_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/result_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/stats_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/table_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/table_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/thread_pool_test.cpp.o.d"
  "CMakeFiles/meteo_common_tests.dir/common/zipf_test.cpp.o"
  "CMakeFiles/meteo_common_tests.dir/common/zipf_test.cpp.o.d"
  "meteo_common_tests"
  "meteo_common_tests.pdb"
  "meteo_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
