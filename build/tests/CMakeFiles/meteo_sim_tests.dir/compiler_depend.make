# Empty compiler generated dependencies file for meteo_sim_tests.
# This may be replaced when dependencies are built.
