file(REMOVE_RECURSE
  "CMakeFiles/meteo_sim_tests.dir/sim/churn_test.cpp.o"
  "CMakeFiles/meteo_sim_tests.dir/sim/churn_test.cpp.o.d"
  "CMakeFiles/meteo_sim_tests.dir/sim/event_queue_fuzz_test.cpp.o"
  "CMakeFiles/meteo_sim_tests.dir/sim/event_queue_fuzz_test.cpp.o.d"
  "CMakeFiles/meteo_sim_tests.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/meteo_sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/meteo_sim_tests.dir/sim/metrics_test.cpp.o"
  "CMakeFiles/meteo_sim_tests.dir/sim/metrics_test.cpp.o.d"
  "meteo_sim_tests"
  "meteo_sim_tests.pdb"
  "meteo_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
