file(REMOVE_RECURSE
  "CMakeFiles/meteo_overlay_tests.dir/overlay/key_space_test.cpp.o"
  "CMakeFiles/meteo_overlay_tests.dir/overlay/key_space_test.cpp.o.d"
  "CMakeFiles/meteo_overlay_tests.dir/overlay/overlay_property_test.cpp.o"
  "CMakeFiles/meteo_overlay_tests.dir/overlay/overlay_property_test.cpp.o.d"
  "CMakeFiles/meteo_overlay_tests.dir/overlay/overlay_test.cpp.o"
  "CMakeFiles/meteo_overlay_tests.dir/overlay/overlay_test.cpp.o.d"
  "meteo_overlay_tests"
  "meteo_overlay_tests.pdb"
  "meteo_overlay_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_overlay_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
