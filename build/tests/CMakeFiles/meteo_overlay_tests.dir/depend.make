# Empty dependencies file for meteo_overlay_tests.
# This may be replaced when dependencies are built.
