file(REMOVE_RECURSE
  "CMakeFiles/meteo_baseline_tests.dir/baseline/can_test.cpp.o"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/can_test.cpp.o.d"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/flooding_test.cpp.o"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/flooding_test.cpp.o.d"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/keyword_dht_test.cpp.o"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/keyword_dht_test.cpp.o.d"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/psearch_test.cpp.o"
  "CMakeFiles/meteo_baseline_tests.dir/baseline/psearch_test.cpp.o.d"
  "meteo_baseline_tests"
  "meteo_baseline_tests.pdb"
  "meteo_baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
