# Empty compiler generated dependencies file for meteo_baseline_tests.
# This may be replaced when dependencies are built.
