file(REMOVE_RECURSE
  "CMakeFiles/meteo_vsm_tests.dir/vsm/absolute_angle_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/absolute_angle_test.cpp.o.d"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/dictionary_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/dictionary_test.cpp.o.d"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/linalg_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/linalg_test.cpp.o.d"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/local_index_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/local_index_test.cpp.o.d"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_sweep_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_sweep_test.cpp.o.d"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_test.cpp.o.d"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/sparse_vector_test.cpp.o"
  "CMakeFiles/meteo_vsm_tests.dir/vsm/sparse_vector_test.cpp.o.d"
  "meteo_vsm_tests"
  "meteo_vsm_tests.pdb"
  "meteo_vsm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_vsm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
