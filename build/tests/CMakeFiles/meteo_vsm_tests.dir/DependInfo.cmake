
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vsm/absolute_angle_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/absolute_angle_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/absolute_angle_test.cpp.o.d"
  "/root/repo/tests/vsm/dictionary_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/dictionary_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/dictionary_test.cpp.o.d"
  "/root/repo/tests/vsm/linalg_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/linalg_test.cpp.o.d"
  "/root/repo/tests/vsm/local_index_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/local_index_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/local_index_test.cpp.o.d"
  "/root/repo/tests/vsm/lsi_sweep_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_sweep_test.cpp.o.d"
  "/root/repo/tests/vsm/lsi_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/lsi_test.cpp.o.d"
  "/root/repo/tests/vsm/sparse_vector_test.cpp" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/sparse_vector_test.cpp.o" "gcc" "tests/CMakeFiles/meteo_vsm_tests.dir/vsm/sparse_vector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vsm/CMakeFiles/meteo_vsm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
