# Empty dependencies file for meteo_vsm_tests.
# This may be replaced when dependencies are built.
