# Empty dependencies file for meteo_integration_tests.
# This may be replaced when dependencies are built.
