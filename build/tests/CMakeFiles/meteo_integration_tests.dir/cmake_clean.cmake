file(REMOVE_RECURSE
  "CMakeFiles/meteo_integration_tests.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/meteo_integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/meteo_integration_tests.dir/integration/system_property_test.cpp.o"
  "CMakeFiles/meteo_integration_tests.dir/integration/system_property_test.cpp.o.d"
  "CMakeFiles/meteo_integration_tests.dir/integration/worldcup_pipeline_test.cpp.o"
  "CMakeFiles/meteo_integration_tests.dir/integration/worldcup_pipeline_test.cpp.o.d"
  "meteo_integration_tests"
  "meteo_integration_tests.pdb"
  "meteo_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
