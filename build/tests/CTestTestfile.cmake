# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/meteo_common_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_vsm_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_overlay_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_core_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/meteo_baseline_tests[1]_include.cmake")
