# Empty compiler generated dependencies file for fig10_similarity.
# This may be replaced when dependencies are built.
