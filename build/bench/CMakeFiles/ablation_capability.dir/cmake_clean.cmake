file(REMOVE_RECURSE
  "CMakeFiles/ablation_capability.dir/ablation_capability.cpp.o"
  "CMakeFiles/ablation_capability.dir/ablation_capability.cpp.o.d"
  "ablation_capability"
  "ablation_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
