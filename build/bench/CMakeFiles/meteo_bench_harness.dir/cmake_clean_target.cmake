file(REMOVE_RECURSE
  "../lib/libmeteo_bench_harness.a"
)
