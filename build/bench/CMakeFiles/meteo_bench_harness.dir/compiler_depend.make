# Empty compiler generated dependencies file for meteo_bench_harness.
# This may be replaced when dependencies are built.
