file(REMOVE_RECURSE
  "../lib/libmeteo_bench_harness.a"
  "../lib/libmeteo_bench_harness.pdb"
  "CMakeFiles/meteo_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/meteo_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
