file(REMOVE_RECURSE
  "CMakeFiles/ablation_routing_base.dir/ablation_routing_base.cpp.o"
  "CMakeFiles/ablation_routing_base.dir/ablation_routing_base.cpp.o.d"
  "ablation_routing_base"
  "ablation_routing_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
