# Empty compiler generated dependencies file for ablation_routing_base.
# This may be replaced when dependencies are built.
