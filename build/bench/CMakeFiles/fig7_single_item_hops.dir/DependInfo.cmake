
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_single_item_hops.cpp" "bench/CMakeFiles/fig7_single_item_hops.dir/fig7_single_item_hops.cpp.o" "gcc" "bench/CMakeFiles/fig7_single_item_hops.dir/fig7_single_item_hops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/meteo_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/meteorograph/CMakeFiles/meteo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meteo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/meteo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/meteo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vsm/CMakeFiles/meteo_vsm.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/meteo_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
