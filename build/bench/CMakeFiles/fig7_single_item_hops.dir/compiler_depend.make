# Empty compiler generated dependencies file for fig7_single_item_hops.
# This may be replaced when dependencies are built.
