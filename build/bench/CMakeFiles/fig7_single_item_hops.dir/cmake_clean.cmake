file(REMOVE_RECURSE
  "CMakeFiles/fig7_single_item_hops.dir/fig7_single_item_hops.cpp.o"
  "CMakeFiles/fig7_single_item_hops.dir/fig7_single_item_hops.cpp.o.d"
  "fig7_single_item_hops"
  "fig7_single_item_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_single_item_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
