# Empty dependencies file for baseline_psearch.
# This may be replaced when dependencies are built.
