file(REMOVE_RECURSE
  "CMakeFiles/baseline_psearch.dir/baseline_psearch.cpp.o"
  "CMakeFiles/baseline_psearch.dir/baseline_psearch.cpp.o.d"
  "baseline_psearch"
  "baseline_psearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_psearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
