# Empty dependencies file for fig8_node_load.
# This may be replaced when dependencies are built.
