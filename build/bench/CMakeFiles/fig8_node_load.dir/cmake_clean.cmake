file(REMOVE_RECURSE
  "CMakeFiles/fig8_node_load.dir/fig8_node_load.cpp.o"
  "CMakeFiles/fig8_node_load.dir/fig8_node_load.cpp.o.d"
  "fig8_node_load"
  "fig8_node_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_node_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
