# Empty compiler generated dependencies file for fig3_cdf_raw.
# This may be replaced when dependencies are built.
