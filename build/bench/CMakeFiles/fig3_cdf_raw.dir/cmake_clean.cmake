file(REMOVE_RECURSE
  "CMakeFiles/fig3_cdf_raw.dir/fig3_cdf_raw.cpp.o"
  "CMakeFiles/fig3_cdf_raw.dir/fig3_cdf_raw.cpp.o.d"
  "fig3_cdf_raw"
  "fig3_cdf_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cdf_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
