file(REMOVE_RECURSE
  "CMakeFiles/ext_range_search.dir/ext_range_search.cpp.o"
  "CMakeFiles/ext_range_search.dir/ext_range_search.cpp.o.d"
  "ext_range_search"
  "ext_range_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_range_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
