# Empty dependencies file for ext_range_search.
# This may be replaced when dependencies are built.
