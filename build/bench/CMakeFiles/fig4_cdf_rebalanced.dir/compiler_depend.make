# Empty compiler generated dependencies file for fig4_cdf_rebalanced.
# This may be replaced when dependencies are built.
