file(REMOVE_RECURSE
  "CMakeFiles/fig4_cdf_rebalanced.dir/fig4_cdf_rebalanced.cpp.o"
  "CMakeFiles/fig4_cdf_rebalanced.dir/fig4_cdf_rebalanced.cpp.o.d"
  "fig4_cdf_rebalanced"
  "fig4_cdf_rebalanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cdf_rebalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
