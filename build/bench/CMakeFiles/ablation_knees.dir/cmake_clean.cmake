file(REMOVE_RECURSE
  "CMakeFiles/ablation_knees.dir/ablation_knees.cpp.o"
  "CMakeFiles/ablation_knees.dir/ablation_knees.cpp.o.d"
  "ablation_knees"
  "ablation_knees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_knees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
