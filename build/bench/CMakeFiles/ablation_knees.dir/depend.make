# Empty dependencies file for ablation_knees.
# This may be replaced when dependencies are built.
