file(REMOVE_RECURSE
  "CMakeFiles/fig9_capacity_effect.dir/fig9_capacity_effect.cpp.o"
  "CMakeFiles/fig9_capacity_effect.dir/fig9_capacity_effect.cpp.o.d"
  "fig9_capacity_effect"
  "fig9_capacity_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_capacity_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
