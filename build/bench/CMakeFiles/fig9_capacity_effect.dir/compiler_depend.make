# Empty compiler generated dependencies file for fig9_capacity_effect.
# This may be replaced when dependencies are built.
