# Empty compiler generated dependencies file for failure_availability.
# This may be replaced when dependencies are built.
