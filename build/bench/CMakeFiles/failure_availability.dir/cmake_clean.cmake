file(REMOVE_RECURSE
  "CMakeFiles/failure_availability.dir/failure_availability.cpp.o"
  "CMakeFiles/failure_availability.dir/failure_availability.cpp.o.d"
  "failure_availability"
  "failure_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
