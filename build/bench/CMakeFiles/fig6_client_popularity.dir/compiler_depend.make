# Empty compiler generated dependencies file for fig6_client_popularity.
# This may be replaced when dependencies are built.
