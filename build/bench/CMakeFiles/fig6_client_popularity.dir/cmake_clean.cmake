file(REMOVE_RECURSE
  "CMakeFiles/fig6_client_popularity.dir/fig6_client_popularity.cpp.o"
  "CMakeFiles/fig6_client_popularity.dir/fig6_client_popularity.cpp.o.d"
  "fig6_client_popularity"
  "fig6_client_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_client_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
