file(REMOVE_RECURSE
  "CMakeFiles/service_discovery.dir/service_discovery.cpp.o"
  "CMakeFiles/service_discovery.dir/service_discovery.cpp.o.d"
  "service_discovery"
  "service_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
