file(REMOVE_RECURSE
  "CMakeFiles/file_sharing.dir/file_sharing.cpp.o"
  "CMakeFiles/file_sharing.dir/file_sharing.cpp.o.d"
  "file_sharing"
  "file_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
