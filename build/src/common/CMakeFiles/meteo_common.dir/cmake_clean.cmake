file(REMOVE_RECURSE
  "CMakeFiles/meteo_common.dir/cdf.cpp.o"
  "CMakeFiles/meteo_common.dir/cdf.cpp.o.d"
  "CMakeFiles/meteo_common.dir/cli.cpp.o"
  "CMakeFiles/meteo_common.dir/cli.cpp.o.d"
  "CMakeFiles/meteo_common.dir/rng.cpp.o"
  "CMakeFiles/meteo_common.dir/rng.cpp.o.d"
  "CMakeFiles/meteo_common.dir/stats.cpp.o"
  "CMakeFiles/meteo_common.dir/stats.cpp.o.d"
  "CMakeFiles/meteo_common.dir/table.cpp.o"
  "CMakeFiles/meteo_common.dir/table.cpp.o.d"
  "CMakeFiles/meteo_common.dir/thread_pool.cpp.o"
  "CMakeFiles/meteo_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/meteo_common.dir/zipf.cpp.o"
  "CMakeFiles/meteo_common.dir/zipf.cpp.o.d"
  "libmeteo_common.a"
  "libmeteo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
