file(REMOVE_RECURSE
  "libmeteo_common.a"
)
