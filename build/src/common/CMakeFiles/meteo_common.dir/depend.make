# Empty dependencies file for meteo_common.
# This may be replaced when dependencies are built.
