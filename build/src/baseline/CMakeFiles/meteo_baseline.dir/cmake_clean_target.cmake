file(REMOVE_RECURSE
  "libmeteo_baseline.a"
)
