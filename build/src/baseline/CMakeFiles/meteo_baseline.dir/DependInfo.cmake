
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/can.cpp" "src/baseline/CMakeFiles/meteo_baseline.dir/can.cpp.o" "gcc" "src/baseline/CMakeFiles/meteo_baseline.dir/can.cpp.o.d"
  "/root/repo/src/baseline/flooding.cpp" "src/baseline/CMakeFiles/meteo_baseline.dir/flooding.cpp.o" "gcc" "src/baseline/CMakeFiles/meteo_baseline.dir/flooding.cpp.o.d"
  "/root/repo/src/baseline/keyword_dht.cpp" "src/baseline/CMakeFiles/meteo_baseline.dir/keyword_dht.cpp.o" "gcc" "src/baseline/CMakeFiles/meteo_baseline.dir/keyword_dht.cpp.o.d"
  "/root/repo/src/baseline/psearch.cpp" "src/baseline/CMakeFiles/meteo_baseline.dir/psearch.cpp.o" "gcc" "src/baseline/CMakeFiles/meteo_baseline.dir/psearch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vsm/CMakeFiles/meteo_vsm.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/meteo_overlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
