# Empty compiler generated dependencies file for meteo_baseline.
# This may be replaced when dependencies are built.
