file(REMOVE_RECURSE
  "CMakeFiles/meteo_baseline.dir/can.cpp.o"
  "CMakeFiles/meteo_baseline.dir/can.cpp.o.d"
  "CMakeFiles/meteo_baseline.dir/flooding.cpp.o"
  "CMakeFiles/meteo_baseline.dir/flooding.cpp.o.d"
  "CMakeFiles/meteo_baseline.dir/keyword_dht.cpp.o"
  "CMakeFiles/meteo_baseline.dir/keyword_dht.cpp.o.d"
  "CMakeFiles/meteo_baseline.dir/psearch.cpp.o"
  "CMakeFiles/meteo_baseline.dir/psearch.cpp.o.d"
  "libmeteo_baseline.a"
  "libmeteo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
