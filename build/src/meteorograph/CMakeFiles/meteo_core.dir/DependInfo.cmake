
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meteorograph/depart.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/depart.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/depart.cpp.o.d"
  "/root/repo/src/meteorograph/first_hop.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/first_hop.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/first_hop.cpp.o.d"
  "/root/repo/src/meteorograph/hot_regions.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/hot_regions.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/hot_regions.cpp.o.d"
  "/root/repo/src/meteorograph/maintenance.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/maintenance.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/maintenance.cpp.o.d"
  "/root/repo/src/meteorograph/meteorograph.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/meteorograph.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/meteorograph.cpp.o.d"
  "/root/repo/src/meteorograph/naming.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/naming.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/naming.cpp.o.d"
  "/root/repo/src/meteorograph/notify.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/notify.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/notify.cpp.o.d"
  "/root/repo/src/meteorograph/publish.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/publish.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/publish.cpp.o.d"
  "/root/repo/src/meteorograph/range_ops.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/range_ops.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/range_ops.cpp.o.d"
  "/root/repo/src/meteorograph/range_search.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/range_search.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/range_search.cpp.o.d"
  "/root/repo/src/meteorograph/retrieve.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/retrieve.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/retrieve.cpp.o.d"
  "/root/repo/src/meteorograph/search.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/search.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/search.cpp.o.d"
  "/root/repo/src/meteorograph/storage.cpp" "src/meteorograph/CMakeFiles/meteo_core.dir/storage.cpp.o" "gcc" "src/meteorograph/CMakeFiles/meteo_core.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vsm/CMakeFiles/meteo_vsm.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/meteo_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meteo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/meteo_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
