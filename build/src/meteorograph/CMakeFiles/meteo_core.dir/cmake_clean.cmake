file(REMOVE_RECURSE
  "CMakeFiles/meteo_core.dir/depart.cpp.o"
  "CMakeFiles/meteo_core.dir/depart.cpp.o.d"
  "CMakeFiles/meteo_core.dir/first_hop.cpp.o"
  "CMakeFiles/meteo_core.dir/first_hop.cpp.o.d"
  "CMakeFiles/meteo_core.dir/hot_regions.cpp.o"
  "CMakeFiles/meteo_core.dir/hot_regions.cpp.o.d"
  "CMakeFiles/meteo_core.dir/maintenance.cpp.o"
  "CMakeFiles/meteo_core.dir/maintenance.cpp.o.d"
  "CMakeFiles/meteo_core.dir/meteorograph.cpp.o"
  "CMakeFiles/meteo_core.dir/meteorograph.cpp.o.d"
  "CMakeFiles/meteo_core.dir/naming.cpp.o"
  "CMakeFiles/meteo_core.dir/naming.cpp.o.d"
  "CMakeFiles/meteo_core.dir/notify.cpp.o"
  "CMakeFiles/meteo_core.dir/notify.cpp.o.d"
  "CMakeFiles/meteo_core.dir/publish.cpp.o"
  "CMakeFiles/meteo_core.dir/publish.cpp.o.d"
  "CMakeFiles/meteo_core.dir/range_ops.cpp.o"
  "CMakeFiles/meteo_core.dir/range_ops.cpp.o.d"
  "CMakeFiles/meteo_core.dir/range_search.cpp.o"
  "CMakeFiles/meteo_core.dir/range_search.cpp.o.d"
  "CMakeFiles/meteo_core.dir/retrieve.cpp.o"
  "CMakeFiles/meteo_core.dir/retrieve.cpp.o.d"
  "CMakeFiles/meteo_core.dir/search.cpp.o"
  "CMakeFiles/meteo_core.dir/search.cpp.o.d"
  "CMakeFiles/meteo_core.dir/storage.cpp.o"
  "CMakeFiles/meteo_core.dir/storage.cpp.o.d"
  "libmeteo_core.a"
  "libmeteo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
