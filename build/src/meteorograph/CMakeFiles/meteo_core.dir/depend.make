# Empty dependencies file for meteo_core.
# This may be replaced when dependencies are built.
