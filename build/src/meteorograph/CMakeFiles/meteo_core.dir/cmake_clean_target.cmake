file(REMOVE_RECURSE
  "libmeteo_core.a"
)
