file(REMOVE_RECURSE
  "libmeteo_vsm.a"
)
