# Empty dependencies file for meteo_vsm.
# This may be replaced when dependencies are built.
