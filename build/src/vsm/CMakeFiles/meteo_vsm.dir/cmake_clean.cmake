file(REMOVE_RECURSE
  "CMakeFiles/meteo_vsm.dir/absolute_angle.cpp.o"
  "CMakeFiles/meteo_vsm.dir/absolute_angle.cpp.o.d"
  "CMakeFiles/meteo_vsm.dir/dictionary.cpp.o"
  "CMakeFiles/meteo_vsm.dir/dictionary.cpp.o.d"
  "CMakeFiles/meteo_vsm.dir/linalg.cpp.o"
  "CMakeFiles/meteo_vsm.dir/linalg.cpp.o.d"
  "CMakeFiles/meteo_vsm.dir/local_index.cpp.o"
  "CMakeFiles/meteo_vsm.dir/local_index.cpp.o.d"
  "CMakeFiles/meteo_vsm.dir/lsi.cpp.o"
  "CMakeFiles/meteo_vsm.dir/lsi.cpp.o.d"
  "CMakeFiles/meteo_vsm.dir/sparse_vector.cpp.o"
  "CMakeFiles/meteo_vsm.dir/sparse_vector.cpp.o.d"
  "libmeteo_vsm.a"
  "libmeteo_vsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_vsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
