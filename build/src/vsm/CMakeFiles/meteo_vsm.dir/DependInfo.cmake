
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsm/absolute_angle.cpp" "src/vsm/CMakeFiles/meteo_vsm.dir/absolute_angle.cpp.o" "gcc" "src/vsm/CMakeFiles/meteo_vsm.dir/absolute_angle.cpp.o.d"
  "/root/repo/src/vsm/dictionary.cpp" "src/vsm/CMakeFiles/meteo_vsm.dir/dictionary.cpp.o" "gcc" "src/vsm/CMakeFiles/meteo_vsm.dir/dictionary.cpp.o.d"
  "/root/repo/src/vsm/linalg.cpp" "src/vsm/CMakeFiles/meteo_vsm.dir/linalg.cpp.o" "gcc" "src/vsm/CMakeFiles/meteo_vsm.dir/linalg.cpp.o.d"
  "/root/repo/src/vsm/local_index.cpp" "src/vsm/CMakeFiles/meteo_vsm.dir/local_index.cpp.o" "gcc" "src/vsm/CMakeFiles/meteo_vsm.dir/local_index.cpp.o.d"
  "/root/repo/src/vsm/lsi.cpp" "src/vsm/CMakeFiles/meteo_vsm.dir/lsi.cpp.o" "gcc" "src/vsm/CMakeFiles/meteo_vsm.dir/lsi.cpp.o.d"
  "/root/repo/src/vsm/sparse_vector.cpp" "src/vsm/CMakeFiles/meteo_vsm.dir/sparse_vector.cpp.o" "gcc" "src/vsm/CMakeFiles/meteo_vsm.dir/sparse_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
