file(REMOVE_RECURSE
  "CMakeFiles/meteo_overlay.dir/overlay.cpp.o"
  "CMakeFiles/meteo_overlay.dir/overlay.cpp.o.d"
  "libmeteo_overlay.a"
  "libmeteo_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
