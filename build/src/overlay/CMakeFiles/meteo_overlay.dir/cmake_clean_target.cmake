file(REMOVE_RECURSE
  "libmeteo_overlay.a"
)
