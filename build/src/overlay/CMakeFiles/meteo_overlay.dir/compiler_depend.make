# Empty compiler generated dependencies file for meteo_overlay.
# This may be replaced when dependencies are built.
