file(REMOVE_RECURSE
  "libmeteo_workload.a"
)
