file(REMOVE_RECURSE
  "CMakeFiles/meteo_workload.dir/knee.cpp.o"
  "CMakeFiles/meteo_workload.dir/knee.cpp.o.d"
  "CMakeFiles/meteo_workload.dir/trace.cpp.o"
  "CMakeFiles/meteo_workload.dir/trace.cpp.o.d"
  "CMakeFiles/meteo_workload.dir/worldcup.cpp.o"
  "CMakeFiles/meteo_workload.dir/worldcup.cpp.o.d"
  "libmeteo_workload.a"
  "libmeteo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
