
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/knee.cpp" "src/workload/CMakeFiles/meteo_workload.dir/knee.cpp.o" "gcc" "src/workload/CMakeFiles/meteo_workload.dir/knee.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/meteo_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/meteo_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/worldcup.cpp" "src/workload/CMakeFiles/meteo_workload.dir/worldcup.cpp.o" "gcc" "src/workload/CMakeFiles/meteo_workload.dir/worldcup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meteo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vsm/CMakeFiles/meteo_vsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
