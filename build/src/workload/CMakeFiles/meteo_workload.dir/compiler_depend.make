# Empty compiler generated dependencies file for meteo_workload.
# This may be replaced when dependencies are built.
