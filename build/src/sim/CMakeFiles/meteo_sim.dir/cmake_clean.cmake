file(REMOVE_RECURSE
  "CMakeFiles/meteo_sim.dir/churn.cpp.o"
  "CMakeFiles/meteo_sim.dir/churn.cpp.o.d"
  "CMakeFiles/meteo_sim.dir/event_queue.cpp.o"
  "CMakeFiles/meteo_sim.dir/event_queue.cpp.o.d"
  "libmeteo_sim.a"
  "libmeteo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meteo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
