file(REMOVE_RECURSE
  "libmeteo_sim.a"
)
