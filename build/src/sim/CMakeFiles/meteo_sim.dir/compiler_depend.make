# Empty compiler generated dependencies file for meteo_sim.
# This may be replaced when dependencies are built.
