/// Reproduces Figure 4: the CDF of items vs hash keys *after* the Eq. 6
/// remap — ideally linear with slope one — plus the residual hot regions
/// (the paper's B and C) that §3.4.2 relieves with node placement.

#include <vector>

#include "bench/harness.hpp"
#include "common/cdf.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Figure 4: CDF of items vs hash keys after Eq. 6", flags.csv);

  const bench::Workload wl = bench::build_workload(flags);

  core::SystemConfig cfg;
  cfg.dimension = flags.keywords;
  cfg.load_balance = core::LoadBalanceMode::kUnusedHashSpace;

  std::vector<overlay::Key> raw;
  raw.reserve(wl.sample.size());
  {
    core::SystemConfig raw_cfg = cfg;
    raw_cfg.load_balance = core::LoadBalanceMode::kNone;
    const core::NamingScheme plain = core::NamingScheme::fit({}, raw_cfg);
    for (const auto& v : wl.sample) raw.push_back(plain.raw_key(v));
  }
  const core::NamingScheme naming = core::NamingScheme::fit(raw, cfg);

  std::vector<double> remapped;
  std::vector<overlay::Key> remapped_keys;
  remapped.reserve(raw.size());
  for (const overlay::Key k : raw) {
    const overlay::Key m = naming.remap(k);
    remapped.push_back(static_cast<double>(m));
    remapped_keys.push_back(m);
  }
  const EmpiricalCdf cdf(remapped);

  // Ideal: CDF(x) == x / R (slope one across the space).
  const double space = static_cast<double>(cfg.overlay.key_space);
  TextTable table({"hash key (after Eq. 6)", "CDF", "ideal (key/R)"});
  double worst_gap = 0.0;
  for (const Knot& k : cdf.resample(21)) {
    const double ideal = k.x / space;
    worst_gap = std::max(worst_gap, std::abs(k.y - ideal));
    table.add_row({TextTable::num(k.x, 8), TextTable::num(k.y, 4),
                   TextTable::num(ideal, 4)});
  }
  bench::emit(table, flags.csv);

  TextTable summary({"metric", "value"});
  summary.add_row({"max |CDF - ideal| after remap", TextTable::num(worst_gap, 4)});
  bench::emit(summary, flags.csv);

  // Residual hot regions over the remapped keys (the paper's B and C).
  const core::HotRegionSet hot = core::HotRegionSet::detect(remapped_keys, cfg);
  TextTable regions({"hot region", "lo key", "hi key", "item share", "knees"});
  char label = 'B';  // paper letters its regions starting at B
  for (const core::HotRegion& r : hot.regions()) {
    regions.add_row({std::string(1, label++),
                     TextTable::num(static_cast<double>(r.lo), 8),
                     TextTable::num(static_cast<double>(r.hi), 8),
                     TextTable::num(r.item_share, 3),
                     TextTable::integer(static_cast<long long>(r.knees.size()))});
  }
  if (hot.regions().empty()) {
    regions.add_row({"(none detected)", "", "", "", ""});
  }
  bench::emit(regions, flags.csv);
  return 0;
}
