/// Ablation for §3.7 (changes of vector space): with a *universal
/// dictionary* the vector-space dimension is fixed, so interning a new
/// keyword changes no existing key and nothing republishes. With the
/// support-only angle convention (m = nnz, an alternative that spreads raw
/// keys wider), any change to an item's own keyword set moves its key —
/// and in pSearch-style systems a basis change moves *every* key. This
/// bench measures how many of the corpus' keys survive each kind of
/// change.

#include <vector>

#include "bench/harness.hpp"
#include "vsm/absolute_angle.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  flags.items = std::min<std::size_t>(flags.items, 30'000);

  bench::banner("Ablation: universal dictionary vs support-only angles "
                "(§3.7 republish cost)",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const overlay::Key space = overlay::kDefaultKeySpace;

  // Keys under each convention, before and after the dictionary grows by
  // 1% (m -> m + m/100). Under kUniversal only m changes; under
  // kSupportOnly m is per-item so dictionary growth changes nothing, but
  // any *item* keyword change moves its key — measure that too.
  const std::size_t m = flags.keywords;
  const std::size_t m_grown = m + m / 100;

  std::size_t universal_moved = 0;
  std::size_t support_moved_on_growth = 0;
  std::size_t support_moved_on_item_edit = 0;
  std::size_t universal_moved_on_item_edit = 0;
  for (const auto& v : wl.vectors) {
    const auto key_u_before =
        vsm::absolute_angle_key(v, m, space, vsm::AngleMode::kUniversal);
    const auto key_u_after =
        vsm::absolute_angle_key(v, m_grown, space, vsm::AngleMode::kUniversal);
    if (key_u_before != key_u_after) ++universal_moved;

    const auto key_s_before =
        vsm::absolute_angle_key(v, m, space, vsm::AngleMode::kSupportOnly);
    const auto key_s_after = vsm::absolute_angle_key(
        v, m_grown, space, vsm::AngleMode::kSupportOnly);
    if (key_s_before != key_s_after) ++support_moved_on_growth;

    // Item edit: add one fresh keyword to the item.
    std::vector<vsm::Entry> edited(v.entries().begin(), v.entries().end());
    edited.push_back(vsm::Entry{static_cast<vsm::KeywordId>(m - 1), 1.0});
    const auto ev = vsm::SparseVector::from_entries(std::move(edited));
    if (vsm::absolute_angle_key(ev, m, space, vsm::AngleMode::kSupportOnly) !=
        key_s_before) {
      ++support_moved_on_item_edit;
    }
    if (vsm::absolute_angle_key(ev, m, space, vsm::AngleMode::kUniversal) !=
        key_u_before) {
      ++universal_moved_on_item_edit;
    }
  }

  const auto n = static_cast<double>(wl.vectors.size());
  TextTable table({"event", "universal dictionary: keys moved %",
                   "support-only: keys moved %"});
  table.add_row({"dictionary grows by 1% (new keywords interned)",
                 TextTable::num(100.0 * static_cast<double>(universal_moved) / n, 4),
                 TextTable::num(
                     100.0 * static_cast<double>(support_moved_on_growth) / n, 4)});
  table.add_row({"an item gains one keyword (its own key only)",
                 TextTable::num(
                     100.0 * static_cast<double>(universal_moved_on_item_edit) / n,
                     4),
                 TextTable::num(
                     100.0 * static_cast<double>(support_moved_on_item_edit) / n,
                     4)});
  bench::emit(table, flags.csv);

  TextTable note({"interpretation"});
  note.add_row({"universal mode: dictionary growth republishes ~everything "
                "IF m tracks the interned count; fixing m to a comprehensive "
                "dictionary (the paper's fix) republishes nothing."});
  note.add_row({"editing an item always moves that one item's key (both "
                "modes) - that is re-publication of one item, not the corpus."});
  bench::emit(note, flags.csv);
  return 0;
}
