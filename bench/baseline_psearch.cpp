/// §5 comparison vs pSearch-on-CAN, the "most relevant work":
///  (1) messages and recall per top-k search as the expanding-ring radius
///      grows (pSearch trades recall against a localized flood);
///  (2) the cost of a semantic-basis change: pSearch republishes the whole
///      corpus, Meteorograph's universal dictionary (§3.7) republishes
///      nothing.

#include <algorithm>
#include <set>
#include <vector>

#include "baseline/psearch.hpp"
#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("k", "20", "items requested per search");
  cli.add_flag("can-dims", "4", "CAN dimensionality");
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  flags.items = std::min<std::size_t>(flags.items, 20'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k"));
  const std::size_t queries = std::min<std::size_t>(flags.queries, 100);

  bench::banner("Section 5: Meteorograph vs pSearch-on-CAN", flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const auto keywords = bench::popular_keywords(wl.trace, 8, flags.nodes);

  // --- Meteorograph ---------------------------------------------------------
  core::Meteorograph sys = bench::build_system(
      flags, wl, core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
      flags.nodes, 8);
  (void)bench::publish_all(sys, wl);

  // --- pSearch ---------------------------------------------------------------
  baseline::PSearchConfig pcfg;
  pcfg.nodes = flags.nodes;
  pcfg.dimensions = static_cast<std::size_t>(cli.get_int("can-dims"));
  pcfg.seed = flags.seed;
  baseline::PSearch psearch(pcfg);
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    (void)psearch.publish(id, wl.vectors[id]);
  }

  // (1) search cost/recall. Ground truth per query keyword: the k best
  // cosine matches exist somewhere; recall@k = found-that-match / k'.
  TextTable table({"system", "ring radius", "mean messages", "recall@k %"});
  {
    Rng qrng(flags.seed ^ 0x5ea);
    OnlineStats msgs;
    OnlineStats recall;
    for (std::size_t q = 0; q < queries; ++q) {
      const vsm::KeywordId keyword = keywords[qrng.below(keywords.size())];
      const std::vector<vsm::KeywordId> query = {keyword};
      const core::SearchResult r = sys.similarity_search(query, k);
      msgs.add(static_cast<double>(r.total_messages()));
      std::size_t matching = 0;
      for (const vsm::ItemId id : r.items) {
        if (wl.vectors[id].contains(keyword)) ++matching;
      }
      recall.add(100.0 * static_cast<double>(std::min(matching, k)) /
                 static_cast<double>(k));
    }
    table.add_row({"Meteorograph", "-", TextTable::num(msgs.mean(), 4),
                   TextTable::num(recall.mean(), 4)});
  }
  for (const std::size_t radius : {1u, 2u, 4u, 8u}) {
    Rng qrng(flags.seed ^ 0x5ea);  // same query sequence
    OnlineStats msgs;
    OnlineStats recall;
    for (std::size_t q = 0; q < queries; ++q) {
      const vsm::KeywordId keyword = keywords[qrng.below(keywords.size())];
      const auto query =
          vsm::SparseVector::binary(std::vector<vsm::KeywordId>{keyword});
      const baseline::PSearchQueryResult r = psearch.query(query, k, radius);
      msgs.add(static_cast<double>(r.route_hops + r.flood_messages));
      std::size_t matching = 0;
      for (const auto& hit : r.items) {
        if (wl.vectors[hit.id].contains(keyword)) ++matching;
      }
      recall.add(100.0 * static_cast<double>(std::min(matching, k)) /
                 static_cast<double>(k));
    }
    table.add_row({"pSearch/CAN", TextTable::integer(static_cast<long long>(radius)),
                   TextTable::num(msgs.mean(), 4),
                   TextTable::num(recall.mean(), 4)});
  }
  bench::emit(table, flags.csv);

  // (2) semantic-basis change: §5's republish argument, measured.
  TextTable rebuild({"system", "event", "republish messages"});
  const std::size_t psearch_cost = psearch.rebuild_basis(flags.seed + 1);
  rebuild.add_row({"pSearch/CAN", "semantic basis changed",
                   TextTable::integer(static_cast<long long>(psearch_cost))});
  rebuild.add_row({"Meteorograph", "dictionary keyword added (universal "
                   "dictionary, §3.7)",
                   "0"});
  bench::emit(rebuild, flags.csv);
  return 0;
}
