/// Ablation: routing base b vs hop count and routing-table size. The
/// paper's measured 6.91 hops at N = 10^4 implies base ~4; this sweep
/// shows the hop/state trade-off that pins that choice.

#include <cmath>

#include "bench/harness.hpp"
#include "common/stats.hpp"
#include "overlay/overlay.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Ablation: routing base vs hops and table size", flags.csv);

  TextTable table({"base", "mean hops", "max hops", "mean table size",
                   "log_b(N)"});
  for (const unsigned base : {2u, 4u, 8u, 16u}) {
    overlay::OverlayConfig cfg;
    cfg.routing_base = base;
    overlay::Overlay net(cfg);
    Rng rng(flags.seed ^ base);
    while (net.alive_count() < flags.nodes) {
      (void)net.join(rng.below(cfg.key_space));
    }
    net.repair();

    OnlineStats hops;
    for (std::size_t q = 0; q < flags.queries; ++q) {
      const auto r = net.route(net.random_alive(rng), rng.below(cfg.key_space));
      hops.add(static_cast<double>(r.hops));
    }
    OnlineStats table_size;
    for (const auto id : net.alive_nodes()) {
      table_size.add(static_cast<double>(net.table_of(id).size()));
    }
    table.add_row(
        {TextTable::integer(base), TextTable::num(hops.mean(), 4),
         TextTable::num(hops.max(), 4), TextTable::num(table_size.mean(), 4),
         TextTable::num(std::log(static_cast<double>(flags.nodes)) /
                            std::log(static_cast<double>(base)),
                        4)});
  }
  bench::emit(table, flags.csv);
  return 0;
}
