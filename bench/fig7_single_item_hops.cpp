/// Reproduces Figure 7: hops to discover a single item vs overlay size
/// (paper: N = 1,000..10,000, infinite node storage, 100K queries), for
/// the three variants None / Unused Hash Space / + Hot Regions. All three
/// must track O(log N).
///
/// The query sweep runs as locate batches through the BatchEngine; a final
/// section times the same batch at 1/2/4/8 workers and merges the
/// throughput into BENCH_batch.json.

#include <cmath>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"
#include "obs/names.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("node-counts", "1000,2500,5000,7500,10000",
               "comma-separated overlay sizes");
  cli.add_flag("batch-json", "BENCH_batch.json",
               "throughput report path (empty = skip the timing sweep)");
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner(
      "Figure 7: hops per single-item search vs overlay size (infinite "
      "capacity)",
      flags.csv);

  std::vector<std::size_t> node_counts;
  {
    const std::string spec = cli.get("node-counts");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      node_counts.push_back(static_cast<std::size_t>(
          std::stoll(spec.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const bench::Workload wl = bench::build_workload(flags);
  const core::LoadBalanceMode modes[] = {
      core::LoadBalanceMode::kNone,
      core::LoadBalanceMode::kUnusedHashSpace,
      core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
  };

  // The query set is drawn once per overlay size and shared by all three
  // modes (and, below, by every worker count of the timing sweep).
  auto make_ops = [&](std::size_t n) {
    Rng query_rng(flags.seed ^ n);
    std::vector<core::LocateOp> ops;
    ops.reserve(flags.queries);
    for (std::size_t q = 0; q < flags.queries; ++q) {
      const vsm::ItemId id = query_rng.below(wl.vectors.size());
      ops.push_back(core::LocateOp{id, &wl.vectors[id], {}});
    }
    return ops;
  };

  // Mode slug for --trace-out / --metrics-out file tags.
  auto mode_slug = [](core::LoadBalanceMode mode) {
    switch (mode) {
      case core::LoadBalanceMode::kNone:
        return "none";
      case core::LoadBalanceMode::kUnusedHashSpace:
        return "uhs";
      case core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions:
        return "uhs_hot";
    }
    return "?";
  };

  TextTable table({"N", "None", "Unused Hash Space",
                   "Unused Hash Space + Hot Regions", "log4(N)"});
  for (const std::size_t n : node_counts) {
    const std::vector<core::LocateOp> ops = make_ops(n);
    std::vector<std::string> row = {
        TextTable::integer(static_cast<long long>(n))};
    for (const core::LoadBalanceMode mode : modes) {
      core::Meteorograph sys = bench::build_system(flags, wl, mode, n);
      (void)bench::publish_all(sys, wl);
      // Tracing covers the measured locate batch, not the corpus load.
      obs::TraceLog trace_log;
      bench::maybe_attach_tracer(sys, trace_log, flags);
      core::BatchEngine engine(sys, {.seed = flags.seed ^ n});
      (void)engine.locate(ops);
      // The printed mean comes from the exported metrics themselves: the
      // op.route_hops/op.walk_hops histograms for op=locate. Hop counts
      // are small integers, so the sums are exact and a reader re-deriving
      // the figure from a --metrics-out dump reproduces it bit-for-bit.
      namespace names = obs::names;
      const obs::Labels locate_labels{{names::kLabelOp, "locate"}};
      const obs::HistogramData* route =
          sys.metrics().find_histogram(names::kOpRouteHops, locate_labels);
      const obs::HistogramData* walk =
          sys.metrics().find_histogram(names::kOpWalkHops, locate_labels);
      const double mean =
          (route->sum + walk->sum) / static_cast<double>(route->count);
      row.push_back(TextTable::num(mean, 4));
      bench::export_observability(
          sys, trace_log, flags,
          "fig7-n" + std::to_string(n) + "-" + mode_slug(mode));
    }
    row.push_back(
        TextTable::num(std::log(static_cast<double>(n)) / std::log(4.0), 4));
    table.add_row(std::move(row));
  }
  bench::emit(table, flags.csv);

  // ---- batch throughput sweep --------------------------------------------
  if (!cli.get("batch-json").empty()) {
    bench::banner("Locate batch throughput vs worker count", flags.csv);
    const std::size_t n = node_counts.back();
    core::Meteorograph sys = bench::build_system(
        flags, wl, core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions, n);
    (void)bench::publish_all(sys, wl);
    const std::vector<core::LocateOp> ops = make_ops(n);
    const std::size_t workers[] = {1, 2, 4, 8};
    const std::vector<bench::BatchTiming> timings = bench::time_batches(
        sys, workers, ops.size(), flags.seed,
        [&](core::BatchEngine& engine) { (void)engine.locate(ops); });
    bench::emit(bench::batch_table(timings), flags.csv);
    bench::append_batch_json(cli.get("batch-json"), "fig7_locate_batch",
                             timings);
  }
  return 0;
}
