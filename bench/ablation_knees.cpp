/// Ablation: how many Eq. 6 knees are enough? Sweeps the knee budget and
/// reports the remap fit error (max CDF deviation) plus the resulting node
/// load balance (Gini). The paper hard-codes 5 knees; this shows where the
/// returns diminish.

#include <vector>

#include "bench/harness.hpp"
#include "common/cdf.hpp"
#include "common/stats.hpp"
#include "workload/knee.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Ablation: Eq. 6 knee budget vs load balance", flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const double c =
      static_cast<double>(flags.items) / static_cast<double>(flags.nodes);

  TextTable table({"knees", "max CDF deviation", "load Gini", "max load/c"});
  for (const std::size_t knees : {2u, 3u, 5u, 9u, 17u, 33u}) {
    core::SystemConfig cfg;
    cfg.node_count = flags.nodes;
    cfg.dimension = flags.keywords;
    cfg.load_balance = core::LoadBalanceMode::kUnusedHashSpace;
    cfg.eq6_knees = knees;
    core::Meteorograph sys(cfg, wl.sample, flags.seed ^ 0x1234);
    for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
      (void)sys.publish(id, wl.vectors[id]);
    }
    std::vector<double> ratios;
    for (const std::size_t load : sys.node_loads()) {
      ratios.push_back(static_cast<double>(load) / c);
    }

    // Fit error: compare the fitted knees against a fine CDF of the
    // sample's raw keys.
    std::vector<double> raw;
    for (const auto& v : wl.sample) {
      raw.push_back(static_cast<double>(sys.raw_key(v)));
    }
    const EmpiricalCdf cdf(raw);
    const auto curve = cdf.resample(512);
    std::vector<Knot> normalized;
    const double top = static_cast<double>(cfg.overlay.key_space - 1);
    for (const Knot& k : sys.naming().knees()) {
      normalized.push_back(Knot{k.x, k.y / top});
    }
    const double deviation = workload::max_deviation(curve, normalized);

    table.add_row({TextTable::integer(static_cast<long long>(knees)),
                   TextTable::num(deviation, 4),
                   TextTable::num(gini(ratios), 4),
                   TextTable::num(*std::max_element(ratios.begin(), ratios.end()),
                                  4)});
  }
  bench::emit(table, flags.csv);
  return 0;
}
