/// Reproduces the §4.3 failure study: items are published with 1, 2, 4 or
/// 8 replicas; a growing fraction of nodes crashes (no repair); queries to
/// random items succeed when routing still reaches a node holding any
/// replica. Paper reference points: at 50% failures, availability ~80%/
/// 95%/99% for 2/4/8 replicas; at 90% failures, ~20%/30%/45%.
///
/// Beyond crash failures, --drop-rate injects deterministic message loss
/// into the query phase through a sim::FaultPlan: every lookup message may
/// be dropped, forcing per-hop timeouts, retries (budget set by
/// --fault-retries; 0 disables retransmission) and alternate-finger
/// reroutes, whose totals are reported per replica configuration.

#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "obs/names.hpp"
#include "sim/churn.hpp"
#include "sim/fault_plan.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("walk-limit", "8",
               "neighbor hops a failover lookup may take");
  cli.add_flag("drop-rate", "0",
               "probability a query-phase message is dropped (FaultPlan)");
  cli.add_flag("fault-retries", "3",
               "per-hop retry budget under message loss (0 = no retries)");
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);
  const auto walk_limit = static_cast<std::size_t>(cli.get_int("walk-limit"));
  const double drop_rate = cli.get_double("drop-rate");
  const auto fault_retries =
      static_cast<std::size_t>(cli.get_int("fault-retries"));

  bench::banner("Section 4.3: item availability vs node failures", flags.csv);

  const bench::Workload wl = bench::build_workload(flags);

  TextTable table({"failed %", "1 replica", "2 replicas", "4 replicas",
                   "8 replicas"});
  TextTable faults({"replicas", "retries", "timeouts", "reroutes"});
  const std::size_t replica_counts[] = {1, 2, 4, 8};
  const double fractions[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  // One system per replica count; failures accumulate across fractions so
  // each configuration is built and published exactly once.
  std::vector<std::vector<double>> availability(
      std::size(fractions), std::vector<double>(std::size(replica_counts)));
  for (std::size_t rc = 0; rc < std::size(replica_counts); ++rc) {
    core::Meteorograph sys = bench::build_system(
        flags, wl, core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
        flags.nodes, 0, replica_counts[rc], fault_retries);
    (void)bench::publish_all(sys, wl);
    // Tracing covers the faulted query phase: retries, timeouts, and
    // reroutes show up as events inside each locate span.
    obs::TraceLog trace_log;
    bench::maybe_attach_tracer(sys, trace_log, flags);

    // Message loss applies to the query phase only: the corpus goes in over
    // clean links so every configuration starts from the same stored state,
    // and the same plan seed makes runs replayable flag-for-flag.
    sim::FaultPlan plan({drop_rate, 0.0, 0.0},
                        flags.seed ^ (0xfa0017u + replica_counts[rc]));
    if (drop_rate > 0.0) sys.set_fault_hook(&plan);

    Rng fail_rng(flags.seed ^ 0xdead);
    Rng query_rng(flags.seed ^ 0xbeef);
    const std::size_t initial = sys.network().alive_count();
    for (std::size_t f = 0; f < std::size(fractions); ++f) {
      // Top up the failed population to fractions[f] of the initial size.
      const auto target_failed =
          static_cast<std::size_t>(fractions[f] * static_cast<double>(initial));
      while (initial - sys.network().alive_count() < target_failed &&
             sys.network().alive_count() > 1) {
        sys.network().fail(sys.network().random_alive(fail_rng));
      }
      // Stabilize routing state before measuring (the paper's Tornado
      // keeps forwarding "to one of the replicas by utilizing Tornado's
      // routing", i.e. routing reaches the now-closest live node; its
      // quoted availabilities equal the 1 - f^k independence model, which
      // presumes working routing).
      sys.network().repair();
      std::size_t successes = 0;
      for (std::size_t q = 0; q < flags.queries; ++q) {
        const vsm::ItemId id = query_rng.below(wl.vectors.size());
        if (sys.locate(id, wl.vectors[id], {.walk_limit = walk_limit}).found) {
          ++successes;
        }
      }
      availability[f][rc] = 100.0 * static_cast<double>(successes) /
                            static_cast<double>(flags.queries);
    }
    sys.set_fault_hook(nullptr);
    namespace names = obs::names;
    faults.add_row(
        {std::to_string(replica_counts[rc]),
         std::to_string(sys.metrics().counter_total(names::kFaultRetries)),
         std::to_string(sys.metrics().counter_total(names::kFaultTimeouts)),
         std::to_string(sys.metrics().counter_total(names::kFaultReroutes))});
    bench::export_observability(
        sys, trace_log, flags,
        "avail-r" + std::to_string(replica_counts[rc]));
  }

  for (std::size_t f = 0; f < std::size(fractions); ++f) {
    std::vector<std::string> row = {TextTable::num(fractions[f] * 100.0, 3)};
    for (std::size_t rc = 0; rc < std::size(replica_counts); ++rc) {
      row.push_back(TextTable::num(availability[f][rc], 4));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, flags.csv);

  if (drop_rate > 0.0) {
    bench::banner("message-fault recovery cost (query phase)", flags.csv);
    bench::emit(faults, flags.csv);
  }

  TextTable reference({"paper reference", "2 replicas", "4 replicas",
                       "8 replicas"});
  reference.add_row({"50% failed", "~80%", "~95%", "~99%"});
  reference.add_row({"90% failed", "~20%", "~30%", "~45%"});
  bench::emit(reference, flags.csv);
  return 0;
}
