/// Reproduces Figure 6: the number of web objects accessed per client,
/// clients sorted in decreasing order — the heavy-tailed rank curve that
/// motivates the skewed absolute-angle distribution.

#include <algorithm>
#include <vector>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Figure 6: objects accessed per client, decreasing rank",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  std::vector<std::size_t> basket_sizes;
  basket_sizes.reserve(flags.items);
  for (std::size_t i = 0; i < wl.trace.item_count(); ++i) {
    basket_sizes.push_back(wl.trace.keywords_of(i).size());
  }
  std::sort(basket_sizes.begin(), basket_sizes.end(), std::greater<>());

  // Log-spaced ranks, as the paper's log-log plot implies.
  TextTable table({"client rank", "objects accessed"});
  for (std::size_t rank = 1; rank <= basket_sizes.size(); rank *= 2) {
    table.add_row({TextTable::integer(static_cast<long long>(rank)),
                   TextTable::integer(
                       static_cast<long long>(basket_sizes[rank - 1]))});
  }
  table.add_row({TextTable::integer(static_cast<long long>(basket_sizes.size())),
                 TextTable::integer(static_cast<long long>(basket_sizes.back()))});
  bench::emit(table, flags.csv);
  return 0;
}
