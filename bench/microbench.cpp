/// Kernel microbenchmarks (google-benchmark): the hot paths every
/// experiment leans on — absolute-angle computation, Eq. 6 remapping,
/// overlay routing, the workload samplers, and whole-batch execution at
/// increasing worker counts.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "meteorograph/batch.hpp"
#include "meteorograph/naming.hpp"
#include "overlay/overlay.hpp"
#include "vsm/absolute_angle.hpp"
#include "vsm/local_index.hpp"
#include "vsm/naive_scan.hpp"
#include "vsm/sparse_vector.hpp"
#include "workload/trace.hpp"

namespace {

using namespace meteo;

vsm::SparseVector make_vector(Rng& rng, std::size_t nnz, std::size_t dims) {
  std::vector<vsm::Entry> entries;
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.push_back({static_cast<vsm::KeywordId>(rng.below(dims)),
                       rng.uniform() + 0.1});
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

void BM_AbsoluteAngle(benchmark::State& state) {
  Rng rng(1);
  const auto nnz = static_cast<std::size_t>(state.range(0));
  const auto v = make_vector(rng, nnz, 89'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsm::absolute_angle(v, 89'000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbsoluteAngle)->Arg(8)->Arg(43)->Arg(512);

void BM_CosineSimilarity(benchmark::State& state) {
  Rng rng(2);
  const auto nnz = static_cast<std::size_t>(state.range(0));
  const auto a = make_vector(rng, nnz, 89'000);
  const auto b = make_vector(rng, nnz, 89'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsm::cosine_similarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(43)->Arg(512);

void BM_Eq6Remap(benchmark::State& state) {
  Rng rng(3);
  core::SystemConfig cfg;
  cfg.load_balance = core::LoadBalanceMode::kUnusedHashSpace;
  std::vector<overlay::Key> sample;
  for (int i = 0; i < 10'000; ++i) {
    sample.push_back(cfg.overlay.key_space / 2 + rng.below(100'000));
  }
  const core::NamingScheme naming = core::NamingScheme::fit(sample, cfg);
  overlay::Key key = 0;
  for (auto _ : state) {
    key += 7919;
    benchmark::DoNotOptimize(naming.remap(key % cfg.overlay.key_space));
  }
}
BENCHMARK(BM_Eq6Remap);

void BM_OverlayRoute(benchmark::State& state) {
  Rng rng(4);
  overlay::Overlay net{{}};
  const auto nodes = static_cast<std::size_t>(state.range(0));
  while (net.alive_count() < nodes) {
    (void)net.join(rng.below(net.config().key_space));
  }
  net.repair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.route(net.random_alive(rng), rng.below(net.config().key_space)));
  }
}
BENCHMARK(BM_OverlayRoute)->Arg(1000)->Arg(10'000);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  const ZipfSampler zipf(89'000, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> weights(4096);
  for (auto& w : weights) w = rng.uniform() + 0.01;
  const AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table(rng));
  }
}
BENCHMARK(BM_AliasSample);

// --- node-local query engine (DESIGN.md §9) --------------------------------
//
// BM_LocalIndex* (inverted postings) vs BM_LocalIndexNaive* (the retained
// naive scan from vsm/naive_scan.hpp) at store sizes {16,128,1024} and
// query nnz {2,8,32}. tools/bench_compare.py diffs the resulting
// BENCH_local_index.json against the committed baseline.

constexpr std::size_t kIndexDims = 1024;
constexpr std::size_t kItemNnz = 8;

template <typename Index>
Index make_index(std::size_t size) {
  Rng rng(11);
  Index idx;
  for (vsm::ItemId id = 0; id < size; ++id) {
    idx.insert(id, make_vector(rng, kItemNnz, kIndexDims));
  }
  return idx;
}

template <typename Index>
void bench_index_top_k(benchmark::State& state) {
  Rng rng(12);
  const auto idx = make_index<Index>(static_cast<std::size_t>(state.range(0)));
  const auto query =
      make_vector(rng, static_cast<std::size_t>(state.range(1)), kIndexDims);
  std::vector<vsm::ScoredItem> out;
  for (auto _ : state) {
    out = idx.top_k(query, 10);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Index>
void bench_index_match_all(benchmark::State& state) {
  Rng rng(13);
  const auto idx = make_index<Index>(static_cast<std::size_t>(state.range(0)));
  const auto probe =
      make_vector(rng, static_cast<std::size_t>(state.range(1)), kIndexDims);
  std::vector<vsm::KeywordId> keywords;
  for (const vsm::Entry& e : probe.entries()) keywords.push_back(e.keyword);
  std::vector<vsm::ItemId> out;
  for (auto _ : state) {
    out = idx.match_all(keywords);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Index>
void bench_index_within_angle(benchmark::State& state) {
  Rng rng(14);
  const auto idx = make_index<Index>(static_cast<std::size_t>(state.range(0)));
  const auto query =
      make_vector(rng, static_cast<std::size_t>(state.range(1)), kIndexDims);
  std::vector<vsm::ScoredItem> out;
  for (auto _ : state) {
    out = idx.within_angle(query, 1.2);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Index>
void bench_index_evict(benchmark::State& state) {
  Rng rng(15);
  auto idx = make_index<Index>(static_cast<std::size_t>(state.range(0)));
  const auto reference =
      make_vector(rng, static_cast<std::size_t>(state.range(1)), kIndexDims);
  for (auto _ : state) {
    auto evicted = idx.evict_least_similar(reference);
    benchmark::DoNotOptimize(evicted);
    idx.insert(evicted->id, std::move(evicted->vector));  // keep size fixed
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LocalIndexTopK(benchmark::State& state) {
  bench_index_top_k<vsm::LocalIndex>(state);
}
void BM_LocalIndexNaiveTopK(benchmark::State& state) {
  bench_index_top_k<vsm::NaiveScanIndex>(state);
}
void BM_LocalIndexMatchAll(benchmark::State& state) {
  bench_index_match_all<vsm::LocalIndex>(state);
}
void BM_LocalIndexNaiveMatchAll(benchmark::State& state) {
  bench_index_match_all<vsm::NaiveScanIndex>(state);
}
void BM_LocalIndexWithinAngle(benchmark::State& state) {
  bench_index_within_angle<vsm::LocalIndex>(state);
}
void BM_LocalIndexNaiveWithinAngle(benchmark::State& state) {
  bench_index_within_angle<vsm::NaiveScanIndex>(state);
}
void BM_LocalIndexEvict(benchmark::State& state) {
  bench_index_evict<vsm::LocalIndex>(state);
}
void BM_LocalIndexNaiveEvict(benchmark::State& state) {
  bench_index_evict<vsm::NaiveScanIndex>(state);
}

void index_sizes(benchmark::internal::Benchmark* b) {
  for (const std::int64_t size : {16, 128, 1024}) {
    for (const std::int64_t nnz : {2, 8, 32}) {
      b->Args({size, nnz});
    }
  }
}

BENCHMARK(BM_LocalIndexTopK)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexNaiveTopK)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexMatchAll)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexNaiveMatchAll)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexWithinAngle)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexNaiveWithinAngle)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexEvict)->Apply(index_sizes);
BENCHMARK(BM_LocalIndexNaiveEvict)->Apply(index_sizes);

// --- batch engine ----------------------------------------------------------

/// A published system plus prebuilt op vectors, built once and shared by
/// every BM_Batch* invocation (read-only batches leave it untouched).
struct BatchFixture {
  std::vector<vsm::SparseVector> vectors;
  core::Meteorograph sys;
  std::vector<core::LocateOp> locate_ops;
  std::vector<core::RetrieveOp> retrieve_ops;
};

BatchFixture& batch_fixture() {
  static BatchFixture* fx = [] {
    workload::TraceConfig tc;
    tc.num_items = 2000;
    tc.num_keywords = 5000;
    tc.mean_basket = 10.0;
    tc.max_basket = 100;
    const workload::Trace trace = workload::synthesize_trace(tc, 42);
    const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
    std::vector<vsm::SparseVector> vectors;
    vectors.reserve(tc.num_items);
    for (std::size_t i = 0; i < tc.num_items; ++i) {
      vectors.push_back(trace.vector_of(i, weights));
    }
    std::vector<vsm::SparseVector> sample;
    for (std::size_t i = 0; i < vectors.size(); i += 17) {
      sample.push_back(vectors[i]);
    }
    core::SystemConfig cfg;
    cfg.node_count = 500;
    cfg.dimension = 5000;
    auto* f = new BatchFixture{std::move(vectors),
                               core::Meteorograph(cfg, sample, 42),
                               {},
                               {}};
    for (vsm::ItemId id = 0; id < f->vectors.size(); ++id) {
      (void)f->sys.publish(id, f->vectors[id]);
    }
    // Ops borrow from f->vectors, whose buffer is already at rest.
    for (vsm::ItemId id = 0; id < f->vectors.size(); ++id) {
      f->locate_ops.push_back(core::LocateOp{id, &f->vectors[id], {}});
      f->retrieve_ops.push_back(core::RetrieveOp{&f->vectors[id], 5, {}});
    }
    return f;
  }();
  return *fx;
}

void BM_BatchLocate(benchmark::State& state) {
  BatchFixture& fx = batch_fixture();
  core::BatchEngine engine(
      fx.sys, {.workers = static_cast<std::size_t>(state.range(0)), .seed = 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.locate(fx.locate_ops));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.locate_ops.size()));
}
BENCHMARK(BM_BatchLocate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BatchRetrieve(benchmark::State& state) {
  BatchFixture& fx = batch_fixture();
  core::BatchEngine engine(
      fx.sys, {.workers = static_cast<std::size_t>(state.range(0)), .seed = 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.retrieve(fx.retrieve_ops));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.retrieve_ops.size()));
}
BENCHMARK(BM_BatchRetrieve)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
