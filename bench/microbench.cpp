/// Kernel microbenchmarks (google-benchmark): the hot paths every
/// experiment leans on — absolute-angle computation, Eq. 6 remapping,
/// overlay routing, and the workload samplers.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "meteorograph/naming.hpp"
#include "overlay/overlay.hpp"
#include "vsm/absolute_angle.hpp"
#include "vsm/sparse_vector.hpp"

namespace {

using namespace meteo;

vsm::SparseVector make_vector(Rng& rng, std::size_t nnz, std::size_t dims) {
  std::vector<vsm::Entry> entries;
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.push_back({static_cast<vsm::KeywordId>(rng.below(dims)),
                       rng.uniform() + 0.1});
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

void BM_AbsoluteAngle(benchmark::State& state) {
  Rng rng(1);
  const auto nnz = static_cast<std::size_t>(state.range(0));
  const auto v = make_vector(rng, nnz, 89'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsm::absolute_angle(v, 89'000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbsoluteAngle)->Arg(8)->Arg(43)->Arg(512);

void BM_CosineSimilarity(benchmark::State& state) {
  Rng rng(2);
  const auto nnz = static_cast<std::size_t>(state.range(0));
  const auto a = make_vector(rng, nnz, 89'000);
  const auto b = make_vector(rng, nnz, 89'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsm::cosine_similarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(43)->Arg(512);

void BM_Eq6Remap(benchmark::State& state) {
  Rng rng(3);
  core::SystemConfig cfg;
  cfg.load_balance = core::LoadBalanceMode::kUnusedHashSpace;
  std::vector<overlay::Key> sample;
  for (int i = 0; i < 10'000; ++i) {
    sample.push_back(cfg.overlay.key_space / 2 + rng.below(100'000));
  }
  const core::NamingScheme naming = core::NamingScheme::fit(sample, cfg);
  overlay::Key key = 0;
  for (auto _ : state) {
    key += 7919;
    benchmark::DoNotOptimize(naming.remap(key % cfg.overlay.key_space));
  }
}
BENCHMARK(BM_Eq6Remap);

void BM_OverlayRoute(benchmark::State& state) {
  Rng rng(4);
  overlay::Overlay net{{}};
  const auto nodes = static_cast<std::size_t>(state.range(0));
  while (net.alive_count() < nodes) {
    (void)net.join(rng.below(net.config().key_space));
  }
  net.repair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.route(net.random_alive(rng), rng.below(net.config().key_space)));
  }
}
BENCHMARK(BM_OverlayRoute)->Arg(1000)->Arg(10'000);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  const ZipfSampler zipf(89'000, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> weights(4096);
  for (auto& w : weights) w = rng.uniform() + 0.01;
  const AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table(rng));
  }
}
BENCHMARK(BM_AliasSample);

}  // namespace

BENCHMARK_MAIN();
