/// Reproduces Figure 3: the CDF of items versus their *raw* (Eq. 5) hash
/// keys, computed over a 0.5% sample — the skew that motivates §3.4.
/// Also prints the knee points the load balancer fits (the paper's
/// (a_i, b_i) list) and the occupied fraction of the address space.

#include <vector>

#include "bench/harness.hpp"
#include "common/cdf.hpp"
#include "workload/knee.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("knees", "5", "Eq. 6 knee budget (paper: 5)");
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Figure 3: CDF of items vs raw hash keys (0.5% sample)",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);

  core::SystemConfig cfg;
  cfg.dimension = flags.keywords;
  cfg.load_balance = core::LoadBalanceMode::kNone;
  const core::NamingScheme naming = core::NamingScheme::fit({}, cfg);

  std::vector<double> keys;
  keys.reserve(wl.sample.size());
  for (const auto& v : wl.sample) {
    keys.push_back(static_cast<double>(naming.raw_key(v)));
  }
  const EmpiricalCdf cdf(keys);

  TextTable table({"raw hash key", "CDF"});
  for (const Knot& k : cdf.resample(21)) {
    table.add_row({TextTable::num(k.x, 8), TextTable::num(k.y, 4)});
  }
  bench::emit(table, flags.csv);

  const auto curve = cdf.resample(512);
  const auto knees = workload::find_knees(
      curve, {static_cast<std::size_t>(cli.get_int("knees")), 0.0});
  TextTable knee_table({"knee (b_i = key)", "knee (a_i = CDF)"});
  for (const Knot& k : knees) {
    knee_table.add_row({TextTable::num(k.x, 8), TextTable::num(k.y, 4)});
  }
  bench::emit(knee_table, flags.csv);

  // The paper's headline: most items occupy a sliver of the key space.
  const double space = static_cast<double>(cfg.overlay.key_space);
  const double band_lo = cdf.quantile(0.05);
  const double band_hi = cdf.quantile(0.95);
  TextTable summary({"metric", "value"});
  summary.add_row({"key space size (R)", TextTable::num(space, 8)});
  summary.add_row({"keys spanning middle 90% of items",
                   TextTable::num(band_hi - band_lo, 6)});
  summary.add_row({"fraction of address space they occupy",
                   TextTable::num((band_hi - band_lo) / space, 4)});
  bench::emit(summary, flags.csv);
  return 0;
}
