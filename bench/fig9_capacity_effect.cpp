/// Reproduces Figure 9: the effect of limited storage (8c per node).
/// Items overflow to neighbors, so a query routes to the closest node
/// ("Closest") and may walk neighbor pointers ("Neighbors") to find the
/// item. With load balancing the walk stays short (O(log N) total); with
/// "None" the overflow chains sprawl and access cost degrades badly.

#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("capacity-factor", "8", "node capacity as multiple of c");
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);
  const auto cap = static_cast<std::size_t>(cli.get_int("capacity-factor"));

  bench::banner("Figure 9: effect of limited storage capacity (8c per node)",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const core::LoadBalanceMode modes[] = {
      core::LoadBalanceMode::kNone,
      core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
  };

  TextTable table({"variant", "Closest (mean hops)", "Neighbors (mean hops)",
                   "total (mean)", "total (p99)", "publish failures"});
  for (const core::LoadBalanceMode mode : modes) {
    core::Meteorograph sys =
        bench::build_system(flags, wl, mode, flags.nodes, cap);
    const bench::PublishStats pub = bench::publish_all(sys, wl);
    Rng query_rng(flags.seed ^ 0xf19);
    OnlineStats closest;
    OnlineStats neighbors;
    std::vector<double> totals;
    for (std::size_t q = 0; q < flags.queries; ++q) {
      const vsm::ItemId id = query_rng.below(wl.vectors.size());
      const core::LocateResult r = sys.locate(id, wl.vectors[id]);
      if (!r.found) continue;  // dropped by hop-limited publish (rare)
      closest.add(static_cast<double>(r.route_hops));
      neighbors.add(static_cast<double>(r.walk_hops));
      totals.push_back(static_cast<double>(r.total_hops()));
    }
    table.add_row({bench::mode_name(mode), TextTable::num(closest.mean(), 4),
                   TextTable::num(neighbors.mean(), 4),
                   TextTable::num(closest.mean() + neighbors.mean(), 4),
                   TextTable::num(percentile(totals, 99.0), 4),
                   TextTable::integer(static_cast<long long>(pub.failures))});
  }
  bench::emit(table, flags.csv);
  return 0;
}
