#pragma once

/// \file harness.hpp
/// Shared experiment harness for the figure/table benches.
///
/// Every bench binary accepts the same scale flags. Defaults run the whole
/// suite in well under a minute at 1/10-ish of the paper's scale;
/// --paper-scale switches to the full 2,760K-item / 89K-keyword workload
/// (needs ~6 GB RAM and minutes per bench). --csv emits machine-readable
/// series for plotting.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "meteorograph/batch.hpp"
#include "meteorograph/meteorograph.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "workload/trace.hpp"

namespace meteo::bench {

struct ExperimentFlags {
  std::size_t items = 60'000;
  std::size_t keywords = 89'000;
  std::size_t nodes = 1'000;
  std::size_t queries = 5'000;
  std::uint64_t seed = 1;
  bool csv = false;
  workload::WeightScheme weights = workload::WeightScheme::kIdf;
  std::string trace_out;    ///< chrome-trace JSON path; empty = tracing off
  std::string metrics_out;  ///< metric dump path (.csv -> CSV, else JSON)
};

/// Declares the shared flags on `cli`. Call before cli.parse().
void add_common_flags(CliParser& cli);

/// Extracts the shared flags after a successful parse (applies
/// --paper-scale overrides last).
[[nodiscard]] ExperimentFlags read_common_flags(const CliParser& cli);

/// The synthesized workload plus everything derived from it that the
/// benches need: per-item vectors and the 0.5% bootstrap sample.
struct Workload {
  workload::Trace trace;
  std::vector<double> weights;
  std::vector<vsm::SparseVector> vectors;  // index == ItemId
  std::vector<vsm::SparseVector> sample;   // ~0.5% of vectors
};

[[nodiscard]] Workload build_workload(const ExperimentFlags& flags);

/// Builds a Meteorograph system over `wl` with `nodes` peers.
/// capacity_factor: node capacity = factor * (items / nodes); 0 = infinite.
/// max_retries: per-hop retry budget under message faults (0 disables
/// retransmission; only alternate-finger rerouting remains).
[[nodiscard]] core::Meteorograph build_system(
    const ExperimentFlags& flags, const Workload& wl,
    core::LoadBalanceMode mode, std::size_t nodes,
    std::size_t capacity_factor = 0, std::size_t replicas = 1,
    std::size_t max_retries = 3);

struct PublishStats {
  std::size_t published = 0;
  std::size_t failures = 0;
  double mean_route_hops = 0.0;
  double mean_chain_hops = 0.0;
};

/// Publishes every workload item into `sys`.
PublishStats publish_all(core::Meteorograph& sys, const Workload& wl);

/// Human-readable name of a load-balance mode (paper's legend labels).
[[nodiscard]] std::string mode_name(core::LoadBalanceMode mode);

/// Prints the table as text or CSV per the flag.
void emit(const TextTable& table, bool csv);

/// Section header printed before each experiment's output (text mode).
void banner(const std::string& title, bool csv);

/// Keywords ranked by popularity among those with document frequency at
/// most `max_df` (0 = unbounded). Returns keyword ids, most popular first.
[[nodiscard]] std::vector<vsm::KeywordId> popular_keywords(
    const workload::Trace& trace, std::size_t count, std::uint64_t max_df);

// --- observability export (--trace-out / --metrics-out) ---------------------

/// Attaches `log` as `sys`'s tracer iff --trace-out was given. Call before
/// the measured operations; `log` must outlive them.
void maybe_attach_tracer(core::Meteorograph& sys, obs::TraceLog& log,
                         const ExperimentFlags& flags);

/// Writes the system's metric registry (and, when tracing was attached,
/// the span log as chrome://tracing JSON) to the paths in `flags`. `tag`
/// is inserted before the extension ("m.json" + "fig7" -> "m-fig7.json")
/// so one bench binary can dump several experiments without clobbering.
/// Empty paths are skipped; does nothing when neither flag was given.
void export_observability(const core::Meteorograph& sys,
                          const obs::TraceLog& log,
                          const ExperimentFlags& flags,
                          const std::string& tag = "");

// --- batch throughput (BENCH_batch.json) -----------------------------------

/// One wall-clock measurement of a batch at a fixed worker count.
struct BatchTiming {
  std::size_t workers = 0;
  double seconds = 0.0;
  double ops_per_second = 0.0;
  double speedup = 1.0;  ///< vs the first (1-worker) measurement
};

/// Times `run` once per entry of `worker_counts`, each with a fresh
/// BatchEngine over `sys` seeded identically — so every measurement
/// executes the exact same deterministic batch. `run` must be read-only
/// (locate/retrieve/search batches): the system is shared across rounds.
/// `ops` is the batch size, used for the ops/s column.
[[nodiscard]] std::vector<BatchTiming> time_batches(
    core::Meteorograph& sys, std::span<const std::size_t> worker_counts,
    std::size_t ops, std::uint64_t seed,
    const std::function<void(core::BatchEngine&)>& run);

/// Renders timings as a table (workers / seconds / ops/s / speedup).
[[nodiscard]] TextTable batch_table(const std::vector<BatchTiming>& timings);

/// Merges `timings` into the JSON report at `path` under `bench` (replacing
/// any previous records with the same bench name, keeping the rest). The
/// report also records hardware_concurrency: on a single-core host the
/// speedup column is expected to hover around 1.0.
void append_batch_json(const std::string& path, const std::string& bench,
                       const std::vector<BatchTiming>& timings);

}  // namespace meteo::bench
