/// Extension bench (§6 future work, implemented): range-search cost as a
/// function of range span. One O(log N) route plus a walk across the
/// nodes covering the range — messages ~ log N + span_fraction * N_slice.

#include <cmath>
#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  flags.items = std::min<std::size_t>(flags.items, 50'000);

  bench::banner("Extension (§6): range search cost vs range span", flags.csv);

  core::SystemConfig cfg;
  cfg.node_count = flags.nodes;
  cfg.dimension = flags.keywords;
  cfg.load_balance = core::LoadBalanceMode::kNone;
  core::Meteorograph sys(cfg, {}, flags.seed);

  // One numeric attribute ("memory size"), log-scaled over 1..1024.
  const core::AttributeId attr =
      sys.register_attribute(1.0, 1024.0, core::AttributeScale::kLog);
  Rng rng(flags.seed ^ 0xa77);
  std::vector<double> values;
  values.reserve(flags.items);
  for (vsm::ItemId id = 0; id < flags.items; ++id) {
    const double v = std::exp2(rng.uniform(0.0, 10.0));
    (void)sys.publish_attribute(id, attr, v);
    values.push_back(v);
  }

  TextTable table({"range", "expected matches", "found", "route hops",
                   "walk hops", "total messages"});
  const std::pair<double, double> ranges[] = {
      {4.0, 4.5},   {2.0, 4.0},   {1.0, 8.0},
      {1.0, 32.0},  {1.0, 256.0}, {1.0, 1024.0},
  };
  for (const auto& [lo, hi] : ranges) {
    std::size_t expected = 0;
    for (const double v : values) {
      if (v >= lo && v <= hi) ++expected;
    }
    const core::RangeSearchResult r = sys.range_search(attr, lo, hi);
    table.add_row({"[" + TextTable::num(lo, 4) + ", " + TextTable::num(hi, 4) + "]",
                   TextTable::integer(static_cast<long long>(expected)),
                   TextTable::integer(static_cast<long long>(r.matches.size())),
                   TextTable::integer(static_cast<long long>(r.route_hops)),
                   TextTable::integer(static_cast<long long>(r.walk_hops)),
                   TextTable::integer(
                       static_cast<long long>(r.total_messages()))});
  }
  bench::emit(table, flags.csv);
  return 0;
}
