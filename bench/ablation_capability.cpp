/// Ablation: capability-aware storage (Tornado's hallmark feature).
/// Homogeneous nodes (everyone holds C items) vs a heterogeneous mix of
/// 1x/2x/4x/8x-capacity classes with the same *total* capacity. Big nodes
/// absorb the hot band, shortening overflow chains and locate walks.

#include <numeric>
#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  flags.items = std::min<std::size_t>(flags.items, 40'000);

  bench::banner("Ablation: homogeneous vs capability-aware node capacities",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const std::size_t c = std::max<std::size_t>(1, flags.items / flags.nodes);

  struct Scenario {
    const char* name;
    std::size_t base_capacity;
    std::vector<double> weights;
  };
  // Mean class factor of {1,2,4,8} with weights {.6,.25,.1,.05} is 1.9;
  // base 4c*2 keeps total capacity comparable to the homogeneous 8c.
  const Scenario scenarios[] = {
      {"homogeneous 8c", 8 * c, {}},
      {"capability-aware ~8c mean", 4 * c, {0.6, 0.25, 0.1, 0.05}},
  };

  TextTable table({"scenario", "total capacity / items",
                   "mean chain hops/publish", "mean locate walk hops",
                   "p99 locate walk hops"});
  for (const Scenario& s : scenarios) {
    core::SystemConfig cfg;
    cfg.node_count = flags.nodes;
    cfg.dimension = flags.keywords;
    cfg.load_balance = core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions;
    cfg.node_capacity = s.base_capacity;
    cfg.capability_weights = s.weights;
    core::Meteorograph sys(cfg, wl.sample, flags.seed ^ 0xcab);

    OnlineStats chain;
    for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
      chain.add(static_cast<double>(sys.publish(id, wl.vectors[id]).chain_hops));
    }
    std::size_t total_capacity = 0;
    for (const auto node : sys.network().alive_nodes()) {
      total_capacity += sys.capacity_of(node);
    }

    Rng qrng(flags.seed ^ 0x10ca7e);
    OnlineStats walk;
    std::vector<double> walks;
    const std::size_t queries = std::min<std::size_t>(flags.queries, 3000);
    for (std::size_t q = 0; q < queries; ++q) {
      const vsm::ItemId id = qrng.below(wl.vectors.size());
      const core::LocateResult r = sys.locate(id, wl.vectors[id]);
      if (!r.found) continue;
      walk.add(static_cast<double>(r.walk_hops));
      walks.push_back(static_cast<double>(r.walk_hops));
    }
    table.add_row(
        {s.name,
         TextTable::num(static_cast<double>(total_capacity) /
                            static_cast<double>(wl.vectors.size()),
                        4),
         TextTable::num(chain.mean(), 4), TextTable::num(walk.mean(), 4),
         TextTable::num(walks.empty() ? 0.0 : percentile(walks, 99.0), 4)});
  }
  bench::emit(table, flags.csv);
  return 0;
}
