/// Reproduces Figure 8: the per-node load distribution (ratio of stored
/// items to the ideal c = items/N) for a 1,000-node overlay with infinite
/// capacity, under the three load-balance variants. The paper's claims:
/// "None" piles most items onto a few nodes; the two balanced variants put
/// ~75% of nodes at <= 2c and ~98.7% at <= 8c.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Figure 8: per-node load distribution (N = nodes, infinite "
                "capacity)",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const double c = static_cast<double>(flags.items) /
                   static_cast<double>(flags.nodes);

  const core::LoadBalanceMode modes[] = {
      core::LoadBalanceMode::kNone,
      core::LoadBalanceMode::kUnusedHashSpace,
      core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
  };
  const double thresholds[] = {0.5, 1.0, 2.0, 4.0, 8.0};

  TextTable table({"variant", "<=0.5c", "<=1c", "<=2c", "<=4c", "<=8c",
                   "max load/c", "Gini"});
  for (const core::LoadBalanceMode mode : modes) {
    core::Meteorograph sys =
        bench::build_system(flags, wl, mode, flags.nodes);
    // Tracing the publish phase shows route + overflow-chain legs per item.
    obs::TraceLog trace_log;
    bench::maybe_attach_tracer(sys, trace_log, flags);
    (void)bench::publish_all(sys, wl);
    std::string slug = bench::mode_name(mode);
    for (char& ch : slug) {
      if (ch == ' ' || ch == '+') ch = '_';
    }
    bench::export_observability(sys, trace_log, flags, "fig8-" + slug);
    std::vector<double> ratios;
    for (const std::size_t load : sys.node_loads()) {
      ratios.push_back(static_cast<double>(load) / c);
    }
    std::vector<std::string> row = {bench::mode_name(mode)};
    for (const double t : thresholds) {
      const auto below = std::count_if(ratios.begin(), ratios.end(),
                                       [&](double r) { return r <= t; });
      row.push_back(TextTable::num(
          100.0 * static_cast<double>(below) / static_cast<double>(ratios.size()),
          4) + "%");
    }
    row.push_back(TextTable::num(
        *std::max_element(ratios.begin(), ratios.end()), 4));
    row.push_back(TextTable::num(gini(ratios), 3));
    table.add_row(std::move(row));
  }
  bench::emit(table, flags.csv);

  // Diagnostic: items sharing an identical balanced key are indivisible —
  // they land on one node regardless of node placement, which bounds how
  // flat any naming scheme can make the distribution.
  {
    core::Meteorograph sys = bench::build_system(
        flags, wl, core::LoadBalanceMode::kUnusedHashSpace, flags.nodes);
    std::unordered_map<overlay::Key, std::size_t> multiplicity;
    for (const auto& v : wl.vectors) ++multiplicity[sys.balanced_key(v)];
    std::size_t max_mult = 0;
    for (const auto& [key, count] : multiplicity) {
      max_mult = std::max(max_mult, count);
    }
    TextTable diag({"diagnostic", "value"});
    diag.add_row({"distinct balanced keys",
                  TextTable::integer(static_cast<long long>(multiplicity.size()))});
    diag.add_row({"largest single-key item mass (bounds max load)",
                  TextTable::num(static_cast<double>(max_mult) / c, 4)});
    bench::emit(diag, flags.csv);
  }
  return 0;
}
