/// Ablation: binary vs IDF keyword weights (DESIGN.md note 2). With
/// binary weights the absolute angle depends only on the keyword *count*,
/// so unrelated items collide onto identical keys; IDF weights make the
/// key content-dependent. Measures distinct-key rates and retrieval
/// precision (fraction of retrieve() results sharing a keyword with the
/// query).

#include <unordered_set>
#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

namespace {

meteo::bench::Workload make_workload(meteo::bench::ExperimentFlags flags,
                                     meteo::workload::WeightScheme scheme) {
  flags.weights = scheme;
  return meteo::bench::build_workload(flags);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  flags.items = std::min<std::size_t>(flags.items, 30'000);

  bench::banner("Ablation: binary vs IDF keyword weights", flags.csv);

  TextTable table({"weights", "distinct raw keys / items",
                   "mean retrieve precision %", "mean top-1 score"});
  for (const auto scheme :
       {workload::WeightScheme::kBinary, workload::WeightScheme::kIdf}) {
    const bench::Workload wl = make_workload(flags, scheme);
    core::Meteorograph sys = bench::build_system(
        flags, wl, core::LoadBalanceMode::kUnusedHashSpace, flags.nodes);
    (void)bench::publish_all(sys, wl);

    std::unordered_set<overlay::Key> distinct;
    for (const auto& v : wl.vectors) distinct.insert(sys.raw_key(v));

    Rng query_rng(flags.seed ^ 0x77);
    OnlineStats precision;
    OnlineStats top_score;
    const std::size_t queries = std::min<std::size_t>(flags.queries, 500);
    for (std::size_t q = 0; q < queries; ++q) {
      const vsm::ItemId probe = query_rng.below(wl.vectors.size());
      const core::RetrieveResult r = sys.retrieve(wl.vectors[probe], 10);
      if (r.items.empty()) continue;
      std::size_t relevant = 0;
      for (const auto& hit : r.items) {
        // A hit is relevant when it shares at least one keyword (its
        // cosine against the query is positive by construction, but
        // recompute against ground truth to be independent of scoring).
        if (vsm::cosine_similarity(wl.vectors[probe], wl.vectors[hit.id]) >
            0.0) {
          ++relevant;
        }
      }
      precision.add(100.0 * static_cast<double>(relevant) /
                    static_cast<double>(r.items.size()));
      top_score.add(r.items.front().score);
    }
    table.add_row(
        {scheme == workload::WeightScheme::kBinary ? "binary" : "IDF",
         TextTable::num(static_cast<double>(distinct.size()) /
                            static_cast<double>(wl.vectors.size()),
                        4),
         TextTable::num(precision.mean(), 4),
         TextTable::num(top_score.mean(), 4)});
  }
  bench::emit(table, flags.csv);
  return 0;
}
