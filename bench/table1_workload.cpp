/// Reproduces Table 1: statistics of the World Cup workload (clients,
/// objects, mean/max/min objects per client). The synthetic trace is
/// calibrated to these targets; the bench prints paper vs measured.
/// Note the client count scales with --items (paper: 2,760,000).

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);

  bench::banner("Table 1: statistics of the World Cup web logs (July 24, 1998)",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const workload::TraceStats s = wl.trace.stats();

  TextTable table({"statistic", "paper (full scale)", "measured"});
  table.add_row({"Number of clients (items)", "2,760K",
                 TextTable::integer(static_cast<long long>(s.items))});
  table.add_row({"Number of Web objects accessed (keywords)", "89K",
                 TextTable::integer(static_cast<long long>(s.keywords_used))});
  table.add_row({"Average objects accessed by a client", "43",
                 TextTable::num(s.mean_basket, 4)});
  table.add_row({"Maximum objects accessed by a client", "11,868",
                 TextTable::integer(static_cast<long long>(s.max_basket))});
  table.add_row({"Minimum objects accessed by a client", "1",
                 TextTable::integer(static_cast<long long>(s.min_basket))});
  table.add_row({"Total incidences (matrix nonzeros)", "~118.7M",
                 TextTable::integer(static_cast<long long>(s.total_incidences))});
  bench::emit(table, flags.csv);
  return 0;
}
