/// Sustained epoch-snapshot serving (DESIGN.md §11): an 80/20 read/write
/// request mix with churn (streamed publishes, withdrawals, and node
/// departures) is pushed through the admission-controlled Server at
/// 1/2/4/8 read workers and the sustained throughput, per-request epoch
/// latency (p50/p99), and epoch advance rate are reported. A small
/// message-drop plan keeps the timeout/deadline accounting on a live
/// path. The schedule is derived once from the seed, so every worker
/// count serves the identical request stream over an identically built
/// system; merged into BENCH_serve.json for the regression gate.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "meteorograph/server.hpp"
#include "sim/fault_plan.hpp"

namespace {

/// One measured serving round at a fixed worker count.
struct ServeTiming {
  std::size_t workers = 0;
  double seconds = 0.0;
  double ops_per_second = 0.0;
  double speedup = 1.0;
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double epochs_per_second = 0.0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t rejected = 0;
};

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = std::min(
      xs.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1)));
  return xs[idx];
}

/// BENCH_serve.json merge, line-for-line compatible with the harness
/// report format (tools/bench_compare.py keys rows on bench/workers and
/// ignores the extra latency/epoch columns).
void append_serve_json(const std::string& path, const std::string& bench,
                       const std::vector<ServeTiming>& timings) {
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    const std::string mine = "\"bench\": \"" + bench + "\"";
    for (std::string line; std::getline(in, line);) {
      if (line.find("\"bench\"") == std::string::npos) continue;
      if (line.find(mine) != std::string::npos) continue;
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      records.push_back(line);
    }
  }
  for (const ServeTiming& t : timings) {
    std::ostringstream rec;
    rec << "    {\"bench\": \"" << bench << "\", \"workers\": " << t.workers
        << ", \"seconds\": " << t.seconds
        << ", \"ops_per_second\": " << t.ops_per_second
        << ", \"speedup\": " << t.speedup
        << ", \"p50_latency_seconds\": " << t.p50_latency_seconds
        << ", \"p99_latency_seconds\": " << t.p99_latency_seconds
        << ", \"epochs_per_second\": " << t.epochs_per_second
        << ", \"deadline_misses\": " << t.deadline_misses
        << ", \"rejected\": " << t.rejected << "}";
    records.push_back(rec.str());
  }
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("worker-counts", "1,2,4,8", "comma-separated worker counts");
  cli.add_flag("ops-per-epoch", "64", "epoch window size (Server pump)");
  cli.add_flag("deadline", "2.0",
               "per-op simulated timeout-wait budget in seconds");
  cli.add_flag("drop-rate", "0.02", "message drop rate during serving");
  cli.add_flag("serve-json", "BENCH_serve.json",
               "throughput report path (empty = skip the report)");
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);
  const std::size_t ops_per_epoch =
      static_cast<std::size_t>(std::stoll(cli.get("ops-per-epoch")));
  const double deadline = std::stod(cli.get("deadline"));
  const double drop_rate = std::stod(cli.get("drop-rate"));

  std::vector<std::size_t> worker_counts;
  {
    const std::string spec = cli.get("worker-counts");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      worker_counts.push_back(static_cast<std::size_t>(
          std::stoll(spec.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  bench::banner(
      "Sustained epoch-snapshot serving: 80/20 read/write mix with churn",
      flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  // The corpus splits into a preloaded base and a tail the serve stream
  // publishes live; withdrawals draw from whatever is live at that point
  // in the stream.
  const std::size_t base_items = wl.vectors.size() * 9 / 10;

  // Pre-generate the request schedule once: every worker count serves the
  // exact same stream. Keyword storage backs the SearchOp spans.
  std::vector<vsm::KeywordId> kw_storage;
  kw_storage.reserve(flags.queries);
  std::vector<core::Server::Request> schedule;
  schedule.reserve(flags.queries);
  {
    Rng rng(flags.seed);
    std::vector<vsm::ItemId> live;
    live.reserve(wl.vectors.size());
    for (vsm::ItemId id = 0; id < base_items; ++id) live.push_back(id);
    vsm::ItemId next_new = base_items;
    std::size_t departs = 0;
    for (std::size_t q = 0; q < flags.queries; ++q) {
      const std::uint64_t roll = rng.below(100);
      if (roll < 36) {  // 36% locate
        const vsm::ItemId id = live[rng.below(live.size())];
        schedule.push_back(core::LocateOp{id, &wl.vectors[id], {}});
      } else if (roll < 56) {  // 20% retrieve
        const vsm::ItemId id = rng.below(wl.vectors.size());
        schedule.push_back(core::RetrieveOp{&wl.vectors[id], 5, {}});
      } else if (roll < 72) {  // 16% similarity search
        const vsm::ItemId id = rng.below(wl.vectors.size());
        kw_storage.push_back(wl.vectors[id].entries()[0].keyword);
        schedule.push_back(core::SearchOp{{&kw_storage.back(), 1}, 4, {}});
      } else if (roll < 80) {  // 8% range scan (attribute 0, see below)
        const double lo = rng.uniform(0.0, 0.8);
        schedule.push_back(core::RangeSearchOp{0, lo, lo + 0.1, {}});
      } else if (roll < 92 && next_new < wl.vectors.size()) {  // 12% publish
        schedule.push_back(
            core::PublishOp{next_new, &wl.vectors[next_new], {}});
        live.push_back(next_new);
        ++next_new;
      } else if (roll < 99 || departs >= 8) {  // 7% withdraw
        const std::size_t wi = rng.below(live.size());
        const vsm::ItemId id = live[wi];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(wi));
        schedule.push_back(core::WithdrawOp{id, &wl.vectors[id], {}});
      } else {  // ~1% node departure, capped
        schedule.push_back(core::DepartOp{
            static_cast<overlay::NodeId>(1 + rng.below(flags.nodes - 1))});
        ++departs;
      }
    }
  }

  std::vector<ServeTiming> timings;
  for (const std::size_t workers : worker_counts) {
    core::Meteorograph sys = bench::build_system(
        flags, wl, core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
        flags.nodes);
    const core::AttributeId attr = sys.register_attribute(0.0, 1.0);
    for (vsm::ItemId id = 0; id < base_items; ++id) {
      (void)sys.publish(id, wl.vectors[id]);
      if (id % 16 == 0) {
        sys.publish_attribute(
            id, attr,
            static_cast<double>(id) / static_cast<double>(base_items));
      }
    }
    sim::FaultPlan plan(sim::FaultPlanConfig{.drop_rate = drop_rate},
                        flags.seed ^ 0xfa);
    if (drop_rate > 0.0 && !sys.set_fault_hook(&plan)) return 1;

    core::Server server(sys, {.queue_capacity = 4 * ops_per_epoch,
                              .ops_per_epoch = ops_per_epoch,
                              .workers = workers,
                              .seed = flags.seed,
                              .deadline_seconds = deadline});
    std::vector<double> latencies;
    latencies.reserve(schedule.size());
    std::size_t pumps = 0;
    std::size_t next = 0;
    const auto start = std::chrono::steady_clock::now();
    while (next < schedule.size() || server.queued() > 0) {
      while (next < schedule.size() && server.submit(schedule[next])) {
        ++next;
      }
      const auto pump_start = std::chrono::steady_clock::now();
      const std::size_t served = server.pump([](const auto&) {});
      const std::chrono::duration<double> pump_elapsed =
          std::chrono::steady_clock::now() - pump_start;
      if (served > 0) {
        ++pumps;
        // Every request served by this window shares its seal latency.
        latencies.insert(latencies.end(), served, pump_elapsed.count());
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    ServeTiming t;
    t.workers = workers;
    t.seconds = elapsed.count();
    t.ops_per_second =
        t.seconds > 0.0
            ? static_cast<double>(server.served()) / t.seconds
            : 0.0;
    t.speedup = timings.empty() ? 1.0 : timings.front().seconds / t.seconds;
    t.p50_latency_seconds = percentile(latencies, 0.50);
    t.p99_latency_seconds = percentile(latencies, 0.99);
    t.epochs_per_second =
        t.seconds > 0.0 ? static_cast<double>(pumps) / t.seconds : 0.0;
    t.deadline_misses = server.deadline_misses();
    t.rejected = server.rejected();
    timings.push_back(t);
  }

  TextTable table({"workers", "seconds", "ops/s", "speedup", "p50 (s)",
                   "p99 (s)", "epochs/s", "deadline misses", "rejected"});
  for (const ServeTiming& t : timings) {
    table.add_row({TextTable::integer(static_cast<long long>(t.workers)),
                   TextTable::num(t.seconds, 4),
                   TextTable::num(t.ops_per_second, 1),
                   TextTable::num(t.speedup, 3),
                   TextTable::num(t.p50_latency_seconds, 6),
                   TextTable::num(t.p99_latency_seconds, 6),
                   TextTable::num(t.epochs_per_second, 1),
                   TextTable::integer(static_cast<long long>(
                       t.deadline_misses)),
                   TextTable::integer(static_cast<long long>(t.rejected))});
  }
  bench::emit(table, flags.csv);

  if (!cli.get("serve-json").empty()) {
    append_serve_json(cli.get("serve-json"), "serve_mixed", timings);
  }
  return 0;
}
