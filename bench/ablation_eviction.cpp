/// Ablation: the overflow eviction policy (Fig. 2's "replace the least
/// similar item"). Compares farthest-angle (default), literal
/// least-similar-cosine, and FIFO under tight capacity, measuring item
/// locate cost (the walk length overflow creates) and publish throughput.

#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("capacity-factor", "4", "node capacity as multiple of c");
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  // The cosine policy is O(c) per eviction; keep the default affordable.
  flags.items = std::min<std::size_t>(flags.items, 30'000);
  const auto cap = static_cast<std::size_t>(cli.get_int("capacity-factor"));

  bench::banner("Ablation: eviction policy under overflow", flags.csv);

  const bench::Workload wl_full = bench::build_workload(flags);

  struct Policy {
    core::EvictionPolicy policy;
    const char* name;
  };
  const Policy policies[] = {
      {core::EvictionPolicy::kFarthestAngle, "farthest-angle (default)"},
      {core::EvictionPolicy::kLeastSimilarCosine, "least-similar cosine"},
      {core::EvictionPolicy::kFifo, "FIFO"},
  };

  TextTable table({"policy", "mean chain hops/publish",
                   "mean locate walk hops", "p99 locate walk hops",
                   "locate found %"});
  for (const Policy& p : policies) {
    core::SystemConfig cfg;
    cfg.node_count = flags.nodes;
    cfg.dimension = flags.keywords;
    cfg.load_balance = core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions;
    cfg.eviction = p.policy;
    const std::size_t c = std::max<std::size_t>(1, flags.items / flags.nodes);
    cfg.node_capacity = cap * c;
    core::Meteorograph sys(cfg, wl_full.sample, flags.seed ^ 0xe71c);

    OnlineStats chain;
    for (vsm::ItemId id = 0; id < wl_full.vectors.size(); ++id) {
      chain.add(static_cast<double>(
          sys.publish(id, wl_full.vectors[id]).chain_hops));
    }

    Rng query_rng(flags.seed ^ 0x10c);
    OnlineStats walk;
    std::vector<double> walks;
    std::size_t found = 0;
    const std::size_t queries = std::min<std::size_t>(flags.queries, 2000);
    for (std::size_t q = 0; q < queries; ++q) {
      const vsm::ItemId id = query_rng.below(wl_full.vectors.size());
      const core::LocateResult r = sys.locate(id, wl_full.vectors[id]);
      if (!r.found) continue;
      ++found;
      walk.add(static_cast<double>(r.walk_hops));
      walks.push_back(static_cast<double>(r.walk_hops));
    }
    table.add_row({p.name, TextTable::num(chain.mean(), 4),
                   TextTable::num(walk.mean(), 4),
                   TextTable::num(walks.empty() ? 0.0 : percentile(walks, 99.0), 4),
                   TextTable::num(100.0 * static_cast<double>(found) /
                                      static_cast<double>(queries),
                                  4)});
  }
  bench::emit(table, flags.csv);
  return 0;
}
