/// Reproduces Figure 10: discovery of similar items in a 10,000-node
/// overlay with 8c capacity per node.
///
/// (a) For queries using the n-th popular keyword (n = 1, 2, 4, 8) the
///     bench runs a discover-all similarity search and prints the CDF of
///     hops-per-discovered-item. Paper: all matching items are found, and
///     >=97% of them within O(log N) = 6.91 hops each.
/// (b) Total messages to discover k similar items: linear in k with slope
///     (1/c) * O(log N).
///
/// Both parts run as similarity-search batches through the BatchEngine; a
/// final section times a search batch at 1/2/4/8 workers and merges the
/// throughput into BENCH_batch.json.
///
/// Keyword choice: following the paper's setup (matching-item counts are
/// "smaller than the system size"), the n-th popular keyword is taken
/// among keywords whose document frequency is at most N.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("nodes10", "10000", "overlay size for this figure");
  cli.add_flag("capacity-factor", "8", "node capacity as multiple of c");
  cli.add_flag("batch-json", "BENCH_batch.json",
               "throughput report path (empty = skip the timing sweep)");
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes10"));
  const auto cap = static_cast<std::size_t>(cli.get_int("capacity-factor"));

  bench::banner("Figure 10: discovery of similar items (N = 10,000, 8c)",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  core::Meteorograph sys = bench::build_system(
      flags, wl, core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions, nodes,
      cap);
  (void)bench::publish_all(sys, wl);
  // Tracing covers the measured search batches (a) and (b), not the
  // corpus load and not the timing sweep below.
  obs::TraceLog trace_log;
  bench::maybe_attach_tracer(sys, trace_log, flags);
  core::BatchEngine engine(sys, {.seed = flags.seed});

  // The n-th popular keyword among those matching fewer items than nodes.
  const auto candidates = bench::popular_keywords(wl.trace, 8, nodes);
  const std::size_t ranks[] = {1, 2, 4, 8};

  // ---- (a) hops per discovered item --------------------------------------
  std::vector<std::vector<vsm::KeywordId>> rank_queries;
  rank_queries.reserve(std::size(ranks));
  std::vector<core::SearchOp> rank_ops;
  std::vector<std::size_t> rank_of_op;
  for (const std::size_t n : ranks) {
    if (n > candidates.size()) break;
    rank_queries.push_back({candidates[n - 1]});
    rank_ops.push_back(core::SearchOp{rank_queries.back(), 0, {}});
    rank_of_op.push_back(n);
  }
  const std::vector<core::SearchResult> rank_results =
      engine.similarity_search(rank_ops);

  TextTable part_a({"keyword rank", "matching items", "discovered", "found %",
                    "mean hops/item", "p97 hops/item", "max hops/item"});
  for (std::size_t i = 0; i < rank_results.size(); ++i) {
    const std::size_t n = rank_of_op[i];
    const vsm::KeywordId keyword = candidates[n - 1];
    std::size_t ground_truth = 0;
    for (const auto& v : wl.vectors) {
      if (v.contains(keyword)) ++ground_truth;
    }
    const core::SearchResult& r = rank_results[i];

    std::vector<double> hops;
    hops.reserve(r.discovery_hops.size());
    for (const std::size_t h : r.discovery_hops) {
      hops.push_back(static_cast<double>(h));
    }
    OnlineStats stats;
    for (const double h : hops) stats.add(h);
    part_a.add_row(
        {TextTable::integer(static_cast<long long>(n)),
         TextTable::integer(static_cast<long long>(ground_truth)),
         TextTable::integer(static_cast<long long>(r.items.size())),
         TextTable::num(100.0 * static_cast<double>(r.items.size()) /
                            static_cast<double>(std::max<std::size_t>(
                                ground_truth, 1)),
                        4),
         TextTable::num(stats.mean(), 4),
         TextTable::num(hops.empty() ? 0.0 : percentile(hops, 97.0), 4),
         TextTable::num(stats.max(), 4)});
  }
  bench::emit(part_a, flags.csv);

  // CDF of hops per discovered item for the rank-1 keyword (the plotted
  // curves of Fig. 10(a)).
  {
    const core::SearchResult& r = rank_results.front();
    std::vector<double> hops;
    for (const std::size_t h : r.discovery_hops) {
      hops.push_back(static_cast<double>(h));
    }
    std::sort(hops.begin(), hops.end());
    TextTable cdf({"hops", "% of items discovered within"});
    for (const double h : {0.0, 2.0, 4.0, 6.0, 6.91, 8.0, 12.0, 16.0, 24.0}) {
      const auto below = std::upper_bound(hops.begin(), hops.end(), h);
      cdf.add_row({TextTable::num(h, 3),
                   TextTable::num(100.0 *
                                      static_cast<double>(below - hops.begin()) /
                                      static_cast<double>(hops.size()),
                                  4)});
    }
    bench::emit(cdf, flags.csv);
  }

  // ---- (b) total messages vs k -------------------------------------------
  const double c = static_cast<double>(flags.items) / static_cast<double>(nodes);
  // k sweeps up to the keyword's full match count; replies are batched per
  // node (the paper's k' semantics), so the curve is linear with slope
  // ~ (1/c_effective) * O(log N) once k spans multiple nodes.
  std::size_t rank1_matches = 0;
  for (const auto& v : wl.vectors) {
    if (v.contains(candidates[0])) ++rank1_matches;
  }
  const std::vector<vsm::KeywordId> rank1_query = {candidates[0]};
  std::vector<std::size_t> ks;
  std::vector<core::SearchOp> k_ops;
  for (const double fraction : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    ks.push_back(std::max<std::size_t>(
        1,
        static_cast<std::size_t>(fraction *
                                 static_cast<double>(rank1_matches))));
    k_ops.push_back(core::SearchOp{rank1_query, ks.back(), {}});
  }
  const std::vector<core::SearchResult> k_results =
      engine.similarity_search(k_ops);

  TextTable part_b({"k (items requested)", "total messages", "route", "walk",
                    "lookups", "items returned", "(1+k/c)*log4(N) reference"});
  const double logn = std::log(static_cast<double>(nodes)) / std::log(4.0);
  for (std::size_t i = 0; i < k_results.size(); ++i) {
    const core::SearchResult& r = k_results[i];
    part_b.add_row(
        {TextTable::integer(static_cast<long long>(ks[i])),
         TextTable::integer(static_cast<long long>(r.total_messages())),
         TextTable::integer(static_cast<long long>(r.route_hops)),
         TextTable::integer(static_cast<long long>(r.walk_hops)),
         TextTable::integer(static_cast<long long>(r.lookup_messages)),
         TextTable::integer(static_cast<long long>(r.items.size())),
         TextTable::num((1.0 + static_cast<double>(ks[i]) / c) * logn, 4)});
  }
  bench::emit(part_b, flags.csv);

  bench::export_observability(sys, trace_log, flags, "fig10");
  sys.set_tracer(nullptr);  // keep the timing sweep trace-free

  // ---- batch throughput sweep --------------------------------------------
  if (!cli.get("batch-json").empty()) {
    bench::banner("Similarity-search batch throughput vs worker count",
                  flags.csv);
    // A mixed batch: every candidate keyword, discover-all plus top-k.
    std::vector<std::vector<vsm::KeywordId>> queries;
    queries.reserve(candidates.size());
    std::vector<core::SearchOp> sweep_ops;
    for (const vsm::KeywordId keyword : candidates) {
      queries.push_back({keyword});
      sweep_ops.push_back(core::SearchOp{queries.back(), 0, {}});
      sweep_ops.push_back(core::SearchOp{queries.back(), 16, {}});
    }
    const std::size_t workers[] = {1, 2, 4, 8};
    const std::vector<bench::BatchTiming> timings = bench::time_batches(
        sys, workers, sweep_ops.size(), flags.seed,
        [&](core::BatchEngine& e) { (void)e.similarity_search(sweep_ops); });
    bench::emit(bench::batch_table(timings), flags.csv);
    bench::append_batch_json(cli.get("batch-json"), "fig10_search_batch",
                             timings);
  }
  return 0;
}
