#include "bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace meteo::bench {

void add_common_flags(CliParser& cli) {
  cli.add_flag("items", "60000", "number of items (clients)");
  cli.add_flag("keywords", "89000", "number of keywords (web objects)");
  cli.add_flag("nodes", "1000", "number of overlay nodes");
  cli.add_flag("queries", "5000", "queries per measurement");
  cli.add_flag("seed", "1", "master RNG seed");
  cli.add_flag("weights", "idf", "keyword weight scheme: idf|binary");
  cli.add_bool("paper-scale", false,
               "full paper workload (2760K items, 100K queries)");
  cli.add_bool("csv", false, "emit CSV instead of aligned tables");
}

ExperimentFlags read_common_flags(const CliParser& cli) {
  ExperimentFlags flags;
  flags.items = static_cast<std::size_t>(cli.get_int("items"));
  flags.keywords = static_cast<std::size_t>(cli.get_int("keywords"));
  flags.nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  flags.queries = static_cast<std::size_t>(cli.get_int("queries"));
  flags.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  flags.csv = cli.get_bool("csv");
  flags.weights = cli.get("weights") == "binary"
                      ? workload::WeightScheme::kBinary
                      : workload::WeightScheme::kIdf;
  if (cli.get_bool("paper-scale")) {
    flags.items = 2'760'000;
    flags.keywords = 89'000;
    flags.queries = 100'000;
  }
  return flags;
}

Workload build_workload(const ExperimentFlags& flags) {
  workload::TraceConfig cfg;
  cfg.num_items = flags.items;
  cfg.num_keywords = flags.keywords;
  cfg.mean_basket = 43.0;    // Table 1
  cfg.min_basket = 1;
  cfg.max_basket = 11'868;
  workload::Trace trace = workload::synthesize_trace(cfg, flags.seed);

  Workload wl{std::move(trace), {}, {}, {}};
  wl.weights = wl.trace.keyword_weights(flags.weights);
  wl.vectors.reserve(flags.items);
  for (std::size_t i = 0; i < flags.items; ++i) {
    wl.vectors.push_back(wl.trace.vector_of(i, wl.weights));
  }
  // 0.5% bootstrap sample (§3.4), deterministic stride.
  const std::size_t stride = std::max<std::size_t>(1, flags.items / 200);
  for (std::size_t i = 0; i < flags.items; i += stride) {
    wl.sample.push_back(wl.vectors[i]);
  }
  return wl;
}

core::Meteorograph build_system(const ExperimentFlags& flags,
                                const Workload& wl,
                                core::LoadBalanceMode mode, std::size_t nodes,
                                std::size_t capacity_factor,
                                std::size_t replicas, std::size_t max_retries) {
  core::SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = flags.keywords;
  cfg.load_balance = mode;
  cfg.replicas = replicas;
  cfg.overlay.retry.max_retries = max_retries;
  if (capacity_factor > 0) {
    const std::size_t c = std::max<std::size_t>(1, flags.items / nodes);
    cfg.node_capacity = capacity_factor * c;
  }
  return core::Meteorograph(cfg, wl.sample, flags.seed ^ 0x9e37u);
}

PublishStats publish_all(core::Meteorograph& sys, const Workload& wl) {
  PublishStats stats;
  double route = 0.0;
  double chain = 0.0;
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    const core::PublishResult r = sys.publish(id, wl.vectors[id]);
    if (r.success) {
      ++stats.published;
    } else {
      ++stats.failures;
    }
    route += static_cast<double>(r.route_hops);
    chain += static_cast<double>(r.chain_hops);
  }
  const auto n = static_cast<double>(wl.vectors.size());
  stats.mean_route_hops = route / n;
  stats.mean_chain_hops = chain / n;
  return stats;
}

std::string mode_name(core::LoadBalanceMode mode) {
  switch (mode) {
    case core::LoadBalanceMode::kNone:
      return "None";
    case core::LoadBalanceMode::kUnusedHashSpace:
      return "Unused Hash Space";
    case core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions:
      return "Unused Hash Space + Hot Regions";
  }
  return "?";
}

void emit(const TextTable& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

void banner(const std::string& title, bool csv) {
  if (csv) return;
  std::printf("=== %s ===\n\n", title.c_str());
}

std::vector<vsm::KeywordId> popular_keywords(const workload::Trace& trace,
                                             std::size_t count,
                                             std::uint64_t max_df) {
  const auto& df = trace.document_frequency();
  std::vector<vsm::KeywordId> ids;
  for (vsm::KeywordId k = 0; k < df.size(); ++k) {
    if (df[k] > 0 && (max_df == 0 || df[k] <= max_df)) ids.push_back(k);
  }
  std::sort(ids.begin(), ids.end(), [&](vsm::KeywordId a, vsm::KeywordId b) {
    if (df[a] != df[b]) return df[a] > df[b];
    return a < b;
  });
  if (ids.size() > count) ids.resize(count);
  return ids;
}

}  // namespace meteo::bench
