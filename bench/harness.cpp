#include "bench/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

namespace meteo::bench {

void add_common_flags(CliParser& cli) {
  cli.add_flag("items", "60000", "number of items (clients)");
  cli.add_flag("keywords", "89000", "number of keywords (web objects)");
  cli.add_flag("nodes", "1000", "number of overlay nodes");
  cli.add_flag("queries", "5000", "queries per measurement");
  cli.add_flag("seed", "1", "master RNG seed");
  cli.add_flag("weights", "idf", "keyword weight scheme: idf|binary");
  cli.add_bool("paper-scale", false,
               "full paper workload (2760K items, 100K queries)");
  cli.add_bool("csv", false, "emit CSV instead of aligned tables");
  cli.add_flag("trace-out", "",
               "write per-op span traces as chrome://tracing JSON");
  cli.add_flag("metrics-out", "",
               "write the metric registry (.csv suffix = CSV, else JSON)");
}

ExperimentFlags read_common_flags(const CliParser& cli) {
  ExperimentFlags flags;
  flags.items = static_cast<std::size_t>(cli.get_int("items"));
  flags.keywords = static_cast<std::size_t>(cli.get_int("keywords"));
  flags.nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  flags.queries = static_cast<std::size_t>(cli.get_int("queries"));
  flags.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  flags.csv = cli.get_bool("csv");
  flags.weights = cli.get("weights") == "binary"
                      ? workload::WeightScheme::kBinary
                      : workload::WeightScheme::kIdf;
  flags.trace_out = cli.get("trace-out");
  flags.metrics_out = cli.get("metrics-out");
  if (cli.get_bool("paper-scale")) {
    flags.items = 2'760'000;
    flags.keywords = 89'000;
    flags.queries = 100'000;
  }
  return flags;
}

Workload build_workload(const ExperimentFlags& flags) {
  workload::TraceConfig cfg;
  cfg.num_items = flags.items;
  cfg.num_keywords = flags.keywords;
  cfg.mean_basket = 43.0;    // Table 1
  cfg.min_basket = 1;
  cfg.max_basket = 11'868;
  workload::Trace trace = workload::synthesize_trace(cfg, flags.seed);

  Workload wl{std::move(trace), {}, {}, {}};
  wl.weights = wl.trace.keyword_weights(flags.weights);
  wl.vectors.reserve(flags.items);
  for (std::size_t i = 0; i < flags.items; ++i) {
    wl.vectors.push_back(wl.trace.vector_of(i, wl.weights));
  }
  // 0.5% bootstrap sample (§3.4), deterministic stride.
  const std::size_t stride = std::max<std::size_t>(1, flags.items / 200);
  for (std::size_t i = 0; i < flags.items; i += stride) {
    wl.sample.push_back(wl.vectors[i]);
  }
  return wl;
}

core::Meteorograph build_system(const ExperimentFlags& flags,
                                const Workload& wl,
                                core::LoadBalanceMode mode, std::size_t nodes,
                                std::size_t capacity_factor,
                                std::size_t replicas, std::size_t max_retries) {
  core::SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = flags.keywords;
  cfg.load_balance = mode;
  cfg.replicas = replicas;
  cfg.overlay.retry.max_retries = max_retries;
  if (capacity_factor > 0) {
    const std::size_t c = std::max<std::size_t>(1, flags.items / nodes);
    cfg.node_capacity = capacity_factor * c;
  }
  return core::Meteorograph(cfg, wl.sample, flags.seed ^ 0x9e37u);
}

PublishStats publish_all(core::Meteorograph& sys, const Workload& wl) {
  PublishStats stats;
  double route = 0.0;
  double chain = 0.0;
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    const core::PublishResult r = sys.publish(id, wl.vectors[id]);
    if (r.success) {
      ++stats.published;
    } else {
      ++stats.failures;
    }
    route += static_cast<double>(r.route_hops);
    chain += static_cast<double>(r.chain_hops);
  }
  const auto n = static_cast<double>(wl.vectors.size());
  stats.mean_route_hops = route / n;
  stats.mean_chain_hops = chain / n;
  return stats;
}

std::string mode_name(core::LoadBalanceMode mode) {
  switch (mode) {
    case core::LoadBalanceMode::kNone:
      return "None";
    case core::LoadBalanceMode::kUnusedHashSpace:
      return "Unused Hash Space";
    case core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions:
      return "Unused Hash Space + Hot Regions";
  }
  return "?";
}

void emit(const TextTable& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

void banner(const std::string& title, bool csv) {
  if (csv) return;
  std::printf("=== %s ===\n\n", title.c_str());
}

void maybe_attach_tracer(core::Meteorograph& sys, obs::TraceLog& log,
                         const ExperimentFlags& flags) {
  if (!flags.trace_out.empty()) sys.set_tracer(&log);
}

namespace {

/// "dir/metrics.json" + "fig7" -> "dir/metrics-fig7.json".
std::string with_tag(const std::string& path, const std::string& tag) {
  if (tag.empty()) return path;
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "-" + tag;
  }
  return path.substr(0, dot) + "-" + tag + path.substr(dot);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void export_observability(const core::Meteorograph& sys,
                          const obs::TraceLog& log,
                          const ExperimentFlags& flags,
                          const std::string& tag) {
  if (!flags.metrics_out.empty()) {
    const std::string path = with_tag(flags.metrics_out, tag);
    const std::string body = ends_with(path, ".csv")
                                 ? obs::metrics_to_csv(sys.metrics())
                                 : obs::metrics_to_json(sys.metrics());
    if (obs::write_file(path, body)) {
      std::fprintf(stderr, "metrics written to %s\n", path.c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    const std::string path = with_tag(flags.trace_out, tag);
    if (obs::write_file(path, obs::trace_to_chrome_json(log))) {
      std::fprintf(stderr, "trace written to %s (%zu spans)\n", path.c_str(),
                   log.spans().size());
    }
  }
}

std::vector<vsm::KeywordId> popular_keywords(const workload::Trace& trace,
                                             std::size_t count,
                                             std::uint64_t max_df) {
  const auto& df = trace.document_frequency();
  std::vector<vsm::KeywordId> ids;
  for (vsm::KeywordId k = 0; k < df.size(); ++k) {
    if (df[k] > 0 && (max_df == 0 || df[k] <= max_df)) ids.push_back(k);
  }
  std::sort(ids.begin(), ids.end(), [&](vsm::KeywordId a, vsm::KeywordId b) {
    if (df[a] != df[b]) return df[a] > df[b];
    return a < b;
  });
  if (ids.size() > count) ids.resize(count);
  return ids;
}

std::vector<BatchTiming> time_batches(
    core::Meteorograph& sys, std::span<const std::size_t> worker_counts,
    std::size_t ops, std::uint64_t seed,
    const std::function<void(core::BatchEngine&)>& run) {
  std::vector<BatchTiming> timings;
  for (const std::size_t workers : worker_counts) {
    core::BatchEngine engine(sys, {.workers = workers, .seed = seed});
    const auto start = std::chrono::steady_clock::now();
    run(engine);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    BatchTiming t;
    t.workers = workers;
    t.seconds = elapsed.count();
    t.ops_per_second =
        t.seconds > 0.0 ? static_cast<double>(ops) / t.seconds : 0.0;
    t.speedup = timings.empty() ? 1.0 : timings.front().seconds / t.seconds;
    timings.push_back(t);
  }
  return timings;
}

TextTable batch_table(const std::vector<BatchTiming>& timings) {
  TextTable table({"workers", "seconds", "ops/s", "speedup vs 1 worker"});
  for (const BatchTiming& t : timings) {
    table.add_row({TextTable::integer(static_cast<long long>(t.workers)),
                   TextTable::num(t.seconds, 4),
                   TextTable::num(t.ops_per_second, 1),
                   TextTable::num(t.speedup, 3)});
  }
  return table;
}

void append_batch_json(const std::string& path, const std::string& bench,
                       const std::vector<BatchTiming>& timings) {
  // One record per line inside "results"; merging is a line-level rewrite
  // that drops this bench's stale records and keeps everyone else's.
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    const std::string mine = "\"bench\": \"" + bench + "\"";
    for (std::string line; std::getline(in, line);) {
      if (line.find("\"bench\"") == std::string::npos) continue;
      if (line.find(mine) != std::string::npos) continue;
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      records.push_back(line);
    }
  }
  for (const BatchTiming& t : timings) {
    std::ostringstream rec;
    rec << "    {\"bench\": \"" << bench << "\", \"workers\": " << t.workers
        << ", \"seconds\": " << t.seconds
        << ", \"ops_per_second\": " << t.ops_per_second
        << ", \"speedup\": " << t.speedup << "}";
    records.push_back(rec.str());
  }
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace meteo::bench
