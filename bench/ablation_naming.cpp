/// Ablation: the naming strategy (DESIGN.md §12) — the paper's fitted
/// absolute-angle scheme vs an order-preserving range key vs
/// random-hyperplane multi-probe LSH. Measures recall@10 against
/// brute-force cosine ground truth and messages per query on two
/// workloads: the market-basket trace the paper's scheme was fitted for,
/// and a clustered high-dimensional embedding workload where a single
/// 1-D angle projection collapses. Merged into BENCH_ablation_naming.json
/// for the regression gate.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace meteo;

/// One published corpus plus held-out queries with brute-force truth.
struct AblationWorkload {
  const char* name = "";
  std::size_t dimension = 0;
  std::vector<vsm::SparseVector> corpus;
  std::vector<vsm::SparseVector> sample;
  std::vector<vsm::SparseVector> queries;
  std::vector<std::vector<vsm::ItemId>> truth;  ///< top-k ids per query
};

constexpr std::size_t kTopK = 10;

/// Exact top-k ids by cosine against the corpus (score desc, id asc).
std::vector<vsm::ItemId> brute_force_top_k(
    const vsm::SparseVector& query,
    const std::vector<vsm::SparseVector>& corpus) {
  std::vector<vsm::ScoredItem> scored;
  scored.reserve(corpus.size());
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    const double score = vsm::cosine_similarity(query, corpus[id]);
    if (score > 0.0) scored.push_back({id, score});
  }
  std::sort(scored.begin(), scored.end(),
            [](const vsm::ScoredItem& a, const vsm::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (scored.size() > kTopK) scored.resize(kTopK);
  std::vector<vsm::ItemId> ids;
  for (const vsm::ScoredItem& s : scored) ids.push_back(s.id);
  return ids;
}

void finish_workload(AblationWorkload& wl) {
  for (std::size_t i = 0; i < wl.corpus.size(); i += 97) {
    wl.sample.push_back(wl.corpus[i]);
  }
  for (const vsm::SparseVector& q : wl.queries) {
    wl.truth.push_back(brute_force_top_k(q, wl.corpus));
  }
}

/// The market-basket trace the paper's Eq. 5/6 fit targets; queries are
/// held-out baskets from the same generator.
AblationWorkload basket_workload(const bench::ExperimentFlags& flags,
                                 std::size_t items, std::size_t queries) {
  workload::TraceConfig tc;
  tc.num_items = items + queries;
  tc.num_keywords = flags.keywords;
  tc.mean_basket = 12.0;
  tc.max_basket = 200;
  const workload::Trace trace = workload::synthesize_trace(tc, flags.seed);
  const auto weights = trace.keyword_weights(flags.weights);

  AblationWorkload wl;
  wl.name = "basket";
  wl.dimension = flags.keywords;
  for (std::size_t i = 0; i < items; ++i) {
    wl.corpus.push_back(trace.vector_of(i, weights));
  }
  for (std::size_t i = items; i < items + queries; ++i) {
    wl.queries.push_back(trace.vector_of(i, weights));
  }
  finish_workload(wl);
  return wl;
}

/// Clustered high-dimensional embeddings: items are noisy copies of
/// cluster prototypes, queries are fresh perturbations of published
/// items. Every cluster spans the keyword space uniformly, so the
/// absolute angle concentrates and carries little cluster identity —
/// the regime the LSH strategy exists for.
AblationWorkload synthetic_workload(const bench::ExperimentFlags& flags,
                                    std::size_t items, std::size_t queries) {
  constexpr std::size_t kDimension = 8192;
  constexpr std::size_t kClusters = 40;
  constexpr std::size_t kCenterTerms = 48;
  constexpr std::size_t kNoiseTerms = 12;

  Rng rng(flags.seed ^ 0x5b4e7a11ULL);
  std::vector<std::vector<vsm::Entry>> centers(kClusters);
  for (auto& center : centers) {
    for (std::size_t t = 0; t < kCenterTerms; ++t) {
      center.push_back({static_cast<vsm::KeywordId>(rng.below(kDimension)),
                        rng.uniform(0.5, 1.5)});
    }
  }
  auto perturb = [&](const std::vector<vsm::Entry>& center) {
    std::vector<vsm::Entry> entries;
    for (const vsm::Entry& e : center) {
      if (rng.chance(0.25)) continue;  // keyword dropout
      entries.push_back({e.keyword, e.weight * rng.uniform(0.7, 1.3)});
    }
    for (std::size_t t = 0; t < kNoiseTerms; ++t) {
      entries.push_back({static_cast<vsm::KeywordId>(rng.below(kDimension)),
                         rng.uniform(0.1, 0.6)});
    }
    return vsm::SparseVector::from_entries(std::move(entries));
  };

  AblationWorkload wl;
  wl.name = "synthetic";
  wl.dimension = kDimension;
  for (std::size_t i = 0; i < items; ++i) {
    wl.corpus.push_back(perturb(centers[i % kClusters]));
  }
  for (std::size_t q = 0; q < queries; ++q) {
    wl.queries.push_back(perturb(centers[rng.below(kClusters)]));
  }
  finish_workload(wl);
  return wl;
}

struct StrategyResult {
  const char* strategy = "";
  double recall = 0.0;
  double messages_per_query = 0.0;
  double publish_messages_per_item = 0.0;
};

StrategyResult run_strategy(const bench::ExperimentFlags& flags,
                            const AblationWorkload& wl,
                            core::NamingStrategyKind kind, const char* name,
                            std::size_t nodes) {
  core::SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = wl.dimension;
  cfg.naming.strategy = kind;
  // Same harvest budget for every strategy: the primary probe may walk 24
  // nodes; each extra LSH probe gets the config's short probe_walk. The
  // recall difference is then purely where the naming put the items.
  cfg.max_walk_nodes = 24;
  core::Meteorograph sys(cfg, wl.sample, flags.seed ^ 0x6e61);

  StrategyResult out;
  out.strategy = name;
  std::size_t publish_messages = 0;
  for (vsm::ItemId id = 0; id < wl.corpus.size(); ++id) {
    publish_messages += sys.publish(id, wl.corpus[id]).total_messages();
  }
  out.publish_messages_per_item = static_cast<double>(publish_messages) /
                                  static_cast<double>(wl.corpus.size());

  OnlineStats recall;
  OnlineStats messages;
  for (std::size_t q = 0; q < wl.queries.size(); ++q) {
    const core::RetrieveResult r = sys.retrieve(wl.queries[q], kTopK);
    std::size_t hits = 0;
    for (const vsm::ItemId id : wl.truth[q]) {
      for (const vsm::ScoredItem& item : r.items) {
        if (item.id == id) {
          ++hits;
          break;
        }
      }
    }
    const std::size_t denom = std::max<std::size_t>(wl.truth[q].size(), 1);
    recall.add(static_cast<double>(hits) / static_cast<double>(denom));
    messages.add(static_cast<double>(r.total_messages()));
  }
  out.recall = recall.mean();
  out.messages_per_query = messages.mean();
  return out;
}

/// BENCH_ablation_naming.json: harness-format rows the bench_compare gate
/// can ratio-test. Recall rows carry recall as ops_per_second directly;
/// message rows carry queries-per-kilomessage, so more traffic for the
/// same work shows up as a comparator-visible drop.
void write_json(const std::string& path,
                const std::vector<std::pair<const char*, StrategyResult>>&
                    rows) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [workload, r] = rows[i];
    std::ostringstream base;
    base << "ablation_naming/" << workload << "/" << r.strategy;
    out << "    {\"bench\": \"" << base.str()
        << "/recall\", \"workers\": 1, \"ops_per_second\": " << r.recall
        << ", \"recall_at_10\": " << r.recall << "},\n";
    out << "    {\"bench\": \"" << base.str()
        << "/messages\", \"workers\": 1, \"ops_per_second\": "
        << 1000.0 / r.messages_per_query
        << ", \"messages_per_query\": " << r.messages_per_query << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("json-out", "BENCH_ablation_naming.json",
               "recall/messages report for the regression gate");
  if (!cli.parse(argc, argv)) return 1;
  const bench::ExperimentFlags flags = bench::read_common_flags(cli);
  // Brute-force ground truth is O(queries * items); keep the default runs
  // well under the suite's time budget.
  const std::size_t items = std::min<std::size_t>(flags.items, 9'000);
  const std::size_t queries = std::min<std::size_t>(flags.queries, 300);
  const std::size_t nodes = std::min<std::size_t>(flags.nodes, 500);

  bench::banner("Ablation: naming strategy (recall vs messages)", flags.csv);

  const AblationWorkload workloads[] = {
      basket_workload(flags, items, queries),
      synthetic_workload(flags, std::min<std::size_t>(items, 6'000), queries),
  };
  const std::pair<core::NamingStrategyKind, const char*> strategies[] = {
      {core::NamingStrategyKind::kAngle, "angle"},
      {core::NamingStrategyKind::kRangeKey, "range"},
      {core::NamingStrategyKind::kLsh, "lsh"},
  };

  TextTable table({"workload", "strategy", "recall@10", "msgs/query",
                   "publish msgs/item"});
  std::vector<std::pair<const char*, StrategyResult>> rows;
  for (const AblationWorkload& wl : workloads) {
    for (const auto& [kind, name] : strategies) {
      const StrategyResult r = run_strategy(flags, wl, kind, name, nodes);
      table.add_row({wl.name, r.strategy, TextTable::num(r.recall, 4),
                     TextTable::num(r.messages_per_query, 2),
                     TextTable::num(r.publish_messages_per_item, 2)});
      rows.emplace_back(wl.name, r);
    }
  }
  bench::emit(table, flags.csv);
  write_json(cli.get("json-out"), rows);
  std::cout << "wrote " << cli.get("json-out") << "\n";
  return 0;
}
