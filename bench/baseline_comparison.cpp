/// Footnote 1 / §1 comparison: messages per k-item similarity search for
/// Meteorograph vs a Gnutella-like flood (with and without a TTL) vs the
/// naive one-inverted-list-per-keyword DHT. Also reports the flood's
/// recall (TTL-limited scope) and the keyword DHT's posting traffic.

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/flooding.hpp"
#include "baseline/keyword_dht.hpp"
#include "bench/harness.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  bench::add_common_flags(cli);
  cli.add_flag("k", "20", "items requested per search");
  cli.add_flag("ttl", "4", "flood TTL (Gnutella default horizon)");
  if (!cli.parse(argc, argv)) return 1;
  bench::ExperimentFlags flags = bench::read_common_flags(cli);
  const auto k = static_cast<std::size_t>(cli.get_int("k"));
  const auto ttl = static_cast<std::size_t>(cli.get_int("ttl"));
  // Keep the comparison affordable: the flood baseline is O(N) per query.
  const std::size_t queries = std::min<std::size_t>(flags.queries, 200);

  bench::banner("Footnote 1: messages per similarity search vs baselines",
                flags.csv);

  const bench::Workload wl = bench::build_workload(flags);
  const auto keywords = bench::popular_keywords(wl.trace, 16, flags.nodes);

  // --- Meteorograph ---------------------------------------------------------
  core::Meteorograph sys = bench::build_system(
      flags, wl, core::LoadBalanceMode::kUnusedHashSpacePlusHotRegions,
      flags.nodes, 8);
  (void)bench::publish_all(sys, wl);

  // --- Gnutella-like flood --------------------------------------------------
  Rng flood_rng(flags.seed ^ 0xf100d);
  baseline::FloodingNetwork flood({flags.nodes, 4}, flood_rng);
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    std::vector<vsm::KeywordId> kws;
    for (const auto& e : wl.vectors[id].entries()) kws.push_back(e.keyword);
    flood.publish_random(id, std::move(kws), flood_rng);
  }

  // --- Naive keyword DHT -----------------------------------------------------
  baseline::KeywordDhtConfig dht_cfg;
  dht_cfg.node_count = flags.nodes;
  baseline::KeywordDht dht(dht_cfg, flags.seed ^ 0xd47);
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    std::vector<vsm::KeywordId> kws;
    for (const auto& e : wl.vectors[id].entries()) kws.push_back(e.keyword);
    (void)dht.publish(id, kws);
  }

  OnlineStats meteo_msgs;
  OnlineStats flood_msgs;
  OnlineStats flood_recall;
  OnlineStats dht_msgs;
  Rng query_rng(flags.seed ^ 0x9);
  for (std::size_t q = 0; q < queries; ++q) {
    const vsm::KeywordId keyword = keywords[query_rng.below(keywords.size())];
    const std::vector<vsm::KeywordId> query = {keyword};

    const core::SearchResult mr = sys.similarity_search(query, k);
    meteo_msgs.add(static_cast<double>(mr.total_messages()));

    const baseline::FloodResult fr =
        flood.search(query, ttl, query_rng.below(flood.node_count()));
    flood_msgs.add(static_cast<double>(fr.messages));
    const std::size_t total = flood.total_matches(query);
    flood_recall.add(total == 0 ? 100.0
                                : 100.0 *
                                      static_cast<double>(std::min(
                                          fr.items.size(),
                                          static_cast<std::size_t>(total))) /
                                      static_cast<double>(total));

    const baseline::DhtQueryResult dr = dht.search(query);
    dht_msgs.add(static_cast<double>(dr.total_messages()));
  }

  const double c =
      static_cast<double>(flags.items) / static_cast<double>(flags.nodes);
  const double logn =
      std::log(static_cast<double>(flags.nodes)) / std::log(4.0);
  TextTable table({"system", "mean messages / search", "recall %", "notes"});
  table.add_row({"Meteorograph (k=" + std::to_string(k) + ")",
                 TextTable::num(meteo_msgs.mean(), 4), "100",
                 "(1+k/c)*log4(N) = " +
                     TextTable::num((1.0 + static_cast<double>(k) / c) * logn, 4)});
  table.add_row({"Gnutella flood (TTL=" + std::to_string(ttl) + ")",
                 TextTable::num(flood_msgs.mean(), 4),
                 TextTable::num(flood_recall.mean(), 4),
                 "TTL-limited scope misses items"});
  table.add_row({"Gnutella flood (no TTL)",
                 ">= " + TextTable::integer(static_cast<long long>(flags.nodes - 1)),
                 "100", "N-1 message lower bound"});
  table.add_row({"Naive keyword DHT",
                 TextTable::num(dht_msgs.mean(), 4), "100",
                 "ships full posting lists"});
  bench::emit(table, flags.csv);
  return 0;
}
