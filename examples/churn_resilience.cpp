/// Churn resilience (§3.6/§4.3): publish a corpus with 4 replicas per
/// item, then let a Poisson churn process kill and add nodes while a
/// client keeps querying. Periodic stabilization (repair) keeps routing
/// healthy; replication absorbs individual failures; the owners' periodic
/// republish (soft-state maintenance) restores anything that slipped
/// through.
///
///   ./build/examples/churn_resilience

#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "meteorograph/maintenance.hpp"
#include "meteorograph/meteorograph.hpp"
#include "sim/churn.hpp"
#include "sim/event_queue.hpp"

int main() {
  using namespace meteo;
  constexpr std::size_t kNodes = 400;
  constexpr std::size_t kItems = 3000;
  constexpr std::size_t kTags = 500;

  Rng rng(123);
  const ZipfSampler tags(kTags, 0.9);
  std::vector<vsm::SparseVector> vectors;
  for (std::size_t i = 0; i < kItems; ++i) {
    std::vector<vsm::Entry> entries;
    for (int t = 0; t < 6; ++t) {
      entries.push_back({static_cast<vsm::KeywordId>(tags(rng)), 1.0});
    }
    vectors.push_back(vsm::SparseVector::from_entries(std::move(entries)));
  }

  std::vector<vsm::SparseVector> sample(vectors.begin(), vectors.begin() + 60);
  core::SystemConfig cfg;
  cfg.node_count = kNodes;
  cfg.dimension = kTags;
  cfg.replicas = 4;
  core::Meteorograph sys(cfg, sample, 321);
  sim::EventQueue queue;
  // Owners republish their items every 25 time units (§3.6 soft state).
  core::MaintenanceProcess maintenance(sys, &queue, 25.0);
  for (vsm::ItemId id = 0; id < kItems; ++id) {
    (void)sys.publish(id, vectors[id]);
    maintenance.track(id, vectors[id]);
  }

  // Churn: ~2 arrivals and ~2 failures per unit time at this size, with a
  // stabilization pass every 5 units.
  Rng churn_rng(55);
  sim::ChurnConfig churn_cfg;
  churn_cfg.join_rate = 2.0;
  churn_cfg.fail_rate_per_node = 0.005;
  churn_cfg.repair_interval = 5.0;
  sim::ChurnProcess churn(sys.network(), queue, churn_rng, churn_cfg);

  std::printf("%6s %8s %8s %10s %12s\n", "time", "alive", "failed",
              "avail %", "mean hops");
  Rng query_rng(77);
  for (int epoch = 1; epoch <= 10; ++epoch) {
    queue.run_until(epoch * 10.0);
    std::size_t found = 0;
    double hops = 0.0;
    constexpr std::size_t kQueries = 300;
    for (std::size_t q = 0; q < kQueries; ++q) {
      const vsm::ItemId id = query_rng.below(kItems);
      const core::LocateResult r =
          sys.locate(id, vectors[id], {.walk_limit = 12});
      if (r.found) {
        ++found;
        hops += static_cast<double>(r.total_hops());
      }
    }
    std::printf("%6.0f %8zu %8zu %10.1f %12.2f\n", queue.now(),
                sys.network().alive_count(), churn.failures(),
                100.0 * static_cast<double>(found) / kQueries,
                found ? hops / static_cast<double>(found) : 0.0);
  }
  std::printf("\n%zu joins, %zu failures, %zu repairs, %zu republish cycles "
              "over the run\n",
              churn.joins(), churn.failures(), churn.repairs(),
              maintenance.stats().cycles);
  return 0;
}
