/// Publish/subscribe news feed — the §6 notification extension in action.
/// Readers register standing interests (conjunctive tag queries); as
/// publishers keep injecting articles, matching ones are pushed to the
/// subscribers' inboxes without any polling or flooding: the notification
/// fires on the directory node where the article's pointer lands.
///
///   ./build/examples/news_feed

#include <cstdio>
#include <string>
#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "vsm/dictionary.hpp"

int main() {
  using namespace meteo;
  vsm::Dictionary dict(256);
  auto kw = [&](const std::string& s) { return dict.intern(s); };

  // A small sampled data set seeds the first-hop index so subscriptions
  // land where matching pointers will be published.
  const std::vector<std::vector<vsm::KeywordId>> sample_articles = {
      {kw("politics"), kw("europe")},
      {kw("politics"), kw("asia"), kw("economy")},
      {kw("sports"), kw("football"), kw("europe")},
      {kw("science"), kw("space")},
      {kw("economy"), kw("markets")},
  };
  std::vector<vsm::SparseVector> sample;
  for (const auto& a : sample_articles) {
    sample.push_back(vsm::SparseVector::binary(a));
  }

  core::SystemConfig cfg;
  cfg.node_count = 48;
  cfg.dimension = dict.dimension();
  core::Meteorograph sys(cfg, sample, 1234);

  // Two readers on two different nodes.
  const auto nodes = sys.network().alive_nodes();
  const overlay::NodeId alice = nodes[0];
  const overlay::NodeId bob = nodes[1];
  const auto sub_alice = sys.subscribe(
      std::vector<vsm::KeywordId>{kw("politics"), kw("europe")}, alice,
      {.horizon = 64});
  const auto sub_bob = sys.subscribe(
      std::vector<vsm::KeywordId>{kw("sports")}, bob, {.horizon = 64});
  std::printf("alice subscribed to <politics, europe> (%zu nodes, %zu msgs)\n",
              sub_alice.planted_nodes, sub_alice.total_messages());
  std::printf("bob   subscribed to <sports>          (%zu nodes, %zu msgs)\n\n",
              sub_bob.planted_nodes, sub_bob.total_messages());

  // The day's news.
  struct Article {
    const char* headline;
    std::vector<vsm::KeywordId> tags;
  };
  const std::vector<Article> articles = {
      {"EU summit reaches budget deal",
       {kw("politics"), kw("europe"), kw("economy")}},
      {"Champions League final preview",
       {kw("sports"), kw("football"), kw("europe")}},
      {"New exoplanet discovered", {kw("science"), kw("space")}},
      {"Election results in France", {kw("politics"), kw("europe")}},
      {"Markets rally on rate cut", {kw("economy"), kw("markets")}},
      {"Marathon world record falls", {kw("sports"), kw("athletics")}},
  };
  for (std::size_t i = 0; i < articles.size(); ++i) {
    const auto v = vsm::SparseVector::binary(articles[i].tags);
    const core::PublishResult r = sys.publish(i, v);
    std::printf("published: %-34s (%zu msgs, %zu notification msgs)\n",
                articles[i].headline, r.total_messages(), r.notify_messages);
  }

  auto drain = [&](const char* who, overlay::NodeId reader) {
    std::printf("\n%s's feed:\n", who);
    for (const core::Notification& n : sys.take_notifications(reader)) {
      std::printf("  -> %s\n", articles[n.item].headline);
    }
  };
  drain("alice", alice);
  drain("bob", bob);
  return 0;
}
