/// File sharing: the paper's motivating scenario. A music-sharing
/// community tags files with genre/artist/era keywords; users search with
/// multiple tags. The example runs the same catalogue and queries through
/// Meteorograph and through a Gnutella-like flooding network and compares
/// message cost, recall, and determinism.
///
///   ./build/examples/file_sharing

#include <cstdio>
#include <set>
#include <vector>

#include "baseline/flooding.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "meteorograph/meteorograph.hpp"

int main() {
  using namespace meteo;
  constexpr std::size_t kNodes = 500;
  constexpr std::size_t kFiles = 5000;
  constexpr std::size_t kTags = 400;  // genres, artists, eras, moods...
  Rng rng(77);

  // Tag popularity is Zipf (a few genres dominate), 4-8 tags per file.
  const ZipfSampler tag_sampler(kTags, 0.9);
  std::vector<std::vector<vsm::KeywordId>> files(kFiles);
  std::vector<vsm::SparseVector> vectors;
  vectors.reserve(kFiles);
  for (auto& tags : files) {
    std::set<vsm::KeywordId> distinct;
    const std::size_t want = 4 + rng.below(5);
    while (distinct.size() < want) {
      distinct.insert(static_cast<vsm::KeywordId>(tag_sampler(rng)));
    }
    tags.assign(distinct.begin(), distinct.end());
    vectors.push_back(vsm::SparseVector::binary(tags));
  }

  // --- Meteorograph ---------------------------------------------------------
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < kFiles; i += 50) sample.push_back(vectors[i]);
  core::SystemConfig cfg;
  cfg.node_count = kNodes;
  cfg.dimension = kTags;
  core::Meteorograph sys(cfg, sample, 42);
  for (vsm::ItemId id = 0; id < kFiles; ++id) {
    (void)sys.publish(id, vectors[id]);
  }

  // --- Gnutella-like flood ---------------------------------------------------
  Rng net_rng(43);
  baseline::FloodingNetwork flood({kNodes, 4}, net_rng);
  for (vsm::ItemId id = 0; id < kFiles; ++id) {
    flood.publish_random(id, files[id], net_rng);
  }

  // A two-tag query: "everything tagged with both tag 3 and tag 7".
  const std::vector<vsm::KeywordId> query = {3, 7};
  std::size_t ground_truth = 0;
  for (const auto& v : vectors) {
    if (v.contains(3) && v.contains(7)) ++ground_truth;
  }

  const core::SearchResult m = sys.similarity_search(query, 0);

  constexpr std::size_t kTtl = 3;
  const baseline::FloodResult f1 = flood.search(query, kTtl, 0);
  const baseline::FloodResult f2 = flood.search(query, kTtl, kNodes / 2);

  std::printf("query <tag3 & tag7>: %zu matching files exist\n\n", ground_truth);
  std::printf("%-28s %10s %10s %14s\n", "system", "found", "recall%", "messages");
  std::printf("%-28s %10zu %10.1f %14zu\n", "Meteorograph (discover all)",
              m.items.size(),
              100.0 * static_cast<double>(m.items.size()) /
                  static_cast<double>(ground_truth),
              m.total_messages());
  std::printf("%-28s %10zu %10.1f %14zu\n", "flood TTL=3 (from node 0)",
              f1.items.size(),
              100.0 * static_cast<double>(f1.items.size()) /
                  static_cast<double>(ground_truth),
              f1.messages);
  std::printf("%-28s %10zu %10.1f %14zu\n", "flood TTL=3 (from node 250)",
              f2.items.size(),
              100.0 * static_cast<double>(f2.items.size()) /
                  static_cast<double>(ground_truth),
              f2.messages);

  // The §1 complaints, demonstrated:
  std::printf("\nflood results depend on the issuing node: %s\n",
              std::set<vsm::ItemId>(f1.items.begin(), f1.items.end()) ==
                      std::set<vsm::ItemId>(f2.items.begin(), f2.items.end())
                  ? "no (lucky topology)"
                  : "yes — different nodes saw different files");
  std::printf("Meteorograph found every match deterministically with %zu "
              "messages; an exhaustive flood needs >= %zu.\n",
              m.total_messages(), kNodes - 1);
  return 0;
}
