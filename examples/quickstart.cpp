/// Quickstart: publish a handful of documents into a small Meteorograph
/// deployment and run multi-keyword similarity searches — the use case a
/// naive DHT cannot serve (paper §1).
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "vsm/dictionary.hpp"

int main() {
  using namespace meteo;

  // 1. A keyword dictionary. The universal dimension (§3.7) is fixed up
  //    front so adding keywords later never forces republication.
  vsm::Dictionary dict(/*universal_dimension=*/1024);
  auto kw = [&](const char* word) { return dict.intern(word); };

  struct Doc {
    const char* title;
    std::vector<vsm::KeywordId> keywords;
  };
  const std::vector<Doc> docs = {
      {"Chord: scalable P2P lookup",
       {kw("p2p"), kw("dht"), kw("routing"), kw("hashing")}},
      {"Pastry: decentralized object location",
       {kw("p2p"), kw("dht"), kw("routing"), kw("locality")}},
      {"Gnutella measurement study",
       {kw("p2p"), kw("flooding"), kw("measurement")}},
      {"Vector space retrieval models",
       {kw("information-retrieval"), kw("vsm"), kw("ranking")}},
      {"LSI for text search",
       {kw("information-retrieval"), kw("lsi"), kw("svd"), kw("ranking")}},
      {"Web caching architectures",
       {kw("caching"), kw("web"), kw("measurement")}},
  };

  // 2. Bring up the system. The sample (normally 0.5% of a big corpus)
  //    seeds the load balancer and the first-hop index; with a tiny corpus
  //    just pass everything.
  std::vector<vsm::SparseVector> sample;
  for (const Doc& d : docs) sample.push_back(vsm::SparseVector::binary(d.keywords));

  core::SystemConfig cfg;
  cfg.node_count = 32;
  cfg.dimension = dict.dimension();
  core::Meteorograph sys(cfg, sample, /*seed=*/2003);

  // 3. Publish. Each publish reports its exact overlay cost.
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const auto v = vsm::SparseVector::binary(docs[i].keywords);
    const core::PublishResult r = sys.publish(i, v);
    std::printf("published %-38s -> node %u (%zu route hops)\n",
                docs[i].title, r.stored_at, r.route_hops);
  }

  // 4. Multi-keyword similarity search: all docs about both "p2p" AND
  //    "routing", in one deterministic O(log N)-per-item query.
  const std::vector<vsm::KeywordId> query = {kw("p2p"), kw("routing")};
  const core::SearchResult search = sys.similarity_search(query, 0);
  std::printf("\nsearch <p2p, routing>: %zu matches, %zu total messages\n",
              search.items.size(), search.total_messages());
  for (const vsm::ItemId id : search.items) {
    std::printf("  - %s\n", docs[id].title);
  }

  // 5. Ranked retrieval: the top-3 documents most similar to a query
  //    vector (paper §2's threshold/top-k searches).
  const auto qv = vsm::SparseVector::binary(
      std::vector<vsm::KeywordId>{kw("information-retrieval"), kw("ranking")});
  const core::RetrieveResult ranked = sys.retrieve(qv, 3);
  std::printf("\ntop-3 for <information-retrieval, ranking>:\n");
  for (const auto& hit : ranked.items) {
    std::printf("  %.3f  %s\n", hit.score, docs[hit.id].title);
  }
  return 0;
}
