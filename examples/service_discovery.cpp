/// Service discovery without a central registry (the paper's answer to
/// Jini/SLP, §5): machines publish capability descriptors as keyword
/// vectors; consumers run ranked searches like "the 5 machines most
/// similar to <linux, gpu, 64g, fast-net>". Ranked/top-k search is exactly
/// what §2 defines and what single-keyword DHTs cannot do.
///
///   ./build/examples/service_discovery

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "meteorograph/meteorograph.hpp"
#include "vsm/dictionary.hpp"

int main() {
  using namespace meteo;
  vsm::Dictionary dict(512);
  auto kw = [&](const std::string& s) { return dict.intern(s); };

  // Attribute vocabulary.
  const std::vector<std::string> oses = {"linux", "freebsd", "windows"};
  const std::vector<std::string> cpus = {"x86", "arm", "riscv"};
  const std::vector<std::string> mems = {"8g", "16g", "64g", "256g"};
  const std::vector<std::string> extras = {"gpu", "fpga", "ssd", "fast-net",
                                           "low-latency", "cheap"};

  // 400 machines with random capability mixes and a numeric memory size.
  Rng rng(7);
  std::vector<std::vector<vsm::KeywordId>> machines;
  std::vector<vsm::SparseVector> vectors;
  std::vector<double> memory_gb;
  for (int m = 0; m < 400; ++m) {
    std::vector<vsm::KeywordId> caps = {
        kw(oses[rng.below(oses.size())]),
        kw(cpus[rng.below(cpus.size())]),
        kw(mems[rng.below(mems.size())]),
    };
    for (const auto& extra : extras) {
      if (rng.chance(0.3)) caps.push_back(kw(extra));
    }
    machines.push_back(caps);
    vectors.push_back(vsm::SparseVector::binary(caps));
    memory_gb.push_back(std::exp2(static_cast<double>(rng.below(11))));  // 1..1024 GB
  }

  std::vector<vsm::SparseVector> sample(vectors.begin(), vectors.begin() + 40);
  core::SystemConfig cfg;
  cfg.node_count = 64;
  cfg.dimension = dict.dimension();
  core::Meteorograph sys(cfg, sample, 99);
  for (vsm::ItemId id = 0; id < vectors.size(); ++id) {
    (void)sys.publish(id, vectors[id]);
  }

  auto describe = [&](vsm::ItemId id) {
    std::string out;
    for (const vsm::KeywordId k : machines[id]) {
      out += dict.spelling(k);
      out += ' ';
    }
    return out;
  };

  // Exact conjunctive discovery: every linux machine with a gpu.
  const std::vector<vsm::KeywordId> must = {kw("linux"), kw("gpu")};
  const core::SearchResult exact = sys.similarity_search(must, 0);
  std::printf("machines matching <linux AND gpu>: %zu (found with %zu "
              "messages)\n",
              exact.items.size(), exact.total_messages());

  // Ranked discovery: the 5 machines *most similar* to an ideal spec,
  // even if nothing matches it exactly.
  const auto ideal = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{
      kw("linux"), kw("gpu"), kw("256g"), kw("fast-net"), kw("low-latency")});
  const core::RetrieveResult ranked = sys.retrieve(ideal, 5);
  std::printf("\nbest 5 matches for <linux gpu 256g fast-net low-latency>:\n");
  for (const auto& hit : ranked.items) {
    std::printf("  score %.3f  machine %-4llu  %s\n", hit.score,
                static_cast<unsigned long long>(hit.id),
                describe(hit.id).c_str());
  }
  std::printf("(%zu route hops + %zu walk hops)\n", ranked.route_hops,
              ranked.walk_hops);

  // Range discovery (the paper's §6 future-work example, implemented):
  // "machines that have memory in size between 1G and 8G bytes".
  const core::AttributeId memory_attr =
      sys.register_attribute(1.0, 1024.0, core::AttributeScale::kLog);
  for (vsm::ItemId id = 0; id < vectors.size(); ++id) {
    (void)sys.publish_attribute(id, memory_attr, memory_gb[id]);
  }
  const core::RangeSearchResult range = sys.range_search(memory_attr, 1.0, 8.0);
  std::printf("\nmachines with memory in [1G, 8G]: %zu of 400 "
              "(%zu route + %zu walk hops)\n",
              range.matches.size(), range.route_hops, range.walk_hops);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, range.matches.size());
       ++i) {
    std::printf("  machine %-4llu  %4.0f GB  %s\n",
                static_cast<unsigned long long>(range.matches[i].item),
                range.matches[i].value,
                describe(range.matches[i].item).c_str());
  }
  return 0;
}
