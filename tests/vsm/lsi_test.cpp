#include "vsm/lsi.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace meteo::vsm {
namespace {

std::vector<StoredItem> corpus() {
  // Two latent topics: "networking" (keywords 0-3) and "graphics"
  // (keywords 10-13), with documents drawn from one topic each.
  std::vector<StoredItem> docs;
  auto add = [&](ItemId id, std::initializer_list<KeywordId> kws) {
    docs.push_back({id, SparseVector::binary(std::vector<KeywordId>(kws))});
  };
  add(1, {0, 1, 2});
  add(2, {1, 2, 3});
  add(3, {0, 2, 3});
  add(4, {10, 11, 12});
  add(5, {11, 12, 13});
  add(6, {10, 12, 13});
  return docs;
}

TEST(Lsi, BuildProducesRequestedRank) {
  const auto docs = corpus();
  Rng rng(1);
  const LsiModel m = LsiModel::build(docs, 2, rng);
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_EQ(m.doc_count(), 6u);
  ASSERT_EQ(m.singular_values().size(), 2u);
  EXPECT_GE(m.singular_values()[0], m.singular_values()[1]);
  EXPECT_GT(m.singular_values()[1], 0.0);
}

TEST(Lsi, RankClampedToMatrixSize) {
  const auto docs = corpus();
  Rng rng(2);
  const LsiModel m = LsiModel::build(docs, 50, rng);
  EXPECT_LE(m.rank(), 6u);
}

TEST(Lsi, TopKPrefersSameTopic) {
  const auto docs = corpus();
  Rng rng(3);
  const LsiModel m = LsiModel::build(docs, 2, rng);
  // Query overlaps doc 1's topic only partially but should still rank all
  // networking docs above all graphics docs.
  const auto q = SparseVector::binary(std::vector<KeywordId>{0, 1});
  const auto top = m.top_k(q, 6);
  ASSERT_EQ(top.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(top[static_cast<std::size_t>(i)].id, 3u)
        << "networking docs should occupy the top 3";
  }
}

TEST(Lsi, LatentRetrievalSurfacesCorrelatedTerms) {
  // The classic LSI property: a query using keyword 3 should retrieve doc 1
  // ({0,1,2}) with a positive score because 3 co-occurs with {1,2} in the
  // corpus, even though literal overlap is zero.
  const auto docs = corpus();
  Rng rng(4);
  const LsiModel m = LsiModel::build(docs, 2, rng);
  const auto q = SparseVector::binary(std::vector<KeywordId>{3});
  const auto top = m.top_k(q, 6);
  double doc1_score = -1.0;
  double doc4_score = -1.0;
  for (const auto& s : top) {
    if (s.id == 1) doc1_score = s.score;
    if (s.id == 4) doc4_score = s.score;
  }
  EXPECT_GT(doc1_score, 0.5);
  EXPECT_GT(doc1_score, doc4_score + 0.3);
}

TEST(Lsi, FoldInUnknownKeywordIsZeroVector) {
  const auto docs = corpus();
  Rng rng(5);
  const LsiModel m = LsiModel::build(docs, 2, rng);
  const auto q = SparseVector::binary(std::vector<KeywordId>{999});
  for (const double x : m.fold_in(q)) {
    EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

TEST(Lsi, SingularValuesMatchFrobeniusMass) {
  // For rank = matrix rank, sum of squared singular values equals ||A||_F^2.
  const auto docs = corpus();
  Rng rng(6);
  const LsiModel m = LsiModel::build(docs, 6, rng, /*power_iterations=*/4);
  double frob = 0.0;
  for (const auto& d : docs) frob += d.vector.norm() * d.vector.norm();
  double sum_sq = 0.0;
  for (const double s : m.singular_values()) sum_sq += s * s;
  EXPECT_NEAR(sum_sq, frob, 0.05 * frob);
}

TEST(Lsi, SingleDocumentCorpus) {
  std::vector<StoredItem> docs;
  docs.push_back({7, SparseVector::binary(std::vector<KeywordId>{1, 2, 3})});
  Rng rng(7);
  const LsiModel m = LsiModel::build(docs, 3, rng);
  EXPECT_EQ(m.rank(), 1u);
  const auto top = m.top_k(docs[0].vector, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 7u);
  EXPECT_NEAR(top[0].score, 1.0, 1e-6);
}

TEST(Lsi, DeterministicGivenSeed) {
  const auto docs = corpus();
  Rng rng1(42);
  Rng rng2(42);
  const LsiModel a = LsiModel::build(docs, 2, rng1);
  const LsiModel b = LsiModel::build(docs, 2, rng2);
  const auto q = SparseVector::binary(std::vector<KeywordId>{0});
  const auto ta = a.top_k(q, 6);
  const auto tb = b.top_k(q, 6);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].id, tb[i].id);
    EXPECT_DOUBLE_EQ(ta[i].score, tb[i].score);
  }
}

}  // namespace
}  // namespace meteo::vsm
