/// Parameterized sweeps over the LSI rank: reconstruction quality must
/// improve monotonically-ish with rank, and retrieval must stay sane at
/// every rank.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "vsm/lsi.hpp"

namespace meteo::vsm {
namespace {

std::vector<StoredItem> clustered_corpus(Rng& rng, std::size_t clusters,
                                         std::size_t docs_per_cluster) {
  std::vector<StoredItem> docs;
  ItemId id = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto base = static_cast<KeywordId>(100 * c);
    for (std::size_t d = 0; d < docs_per_cluster; ++d) {
      std::vector<Entry> entries;
      for (int k = 0; k < 6; ++k) {
        entries.push_back(
            {static_cast<KeywordId>(base + rng.below(20)), 1.0});
      }
      docs.push_back({id++, SparseVector::from_entries(std::move(entries))});
    }
  }
  return docs;
}

class LsiRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LsiRankSweep, SingularValuesDescendAndPositive) {
  Rng rng(1);
  const auto docs = clustered_corpus(rng, 4, 10);
  Rng build_rng(2);
  const LsiModel model = LsiModel::build(docs, GetParam(), build_rng);
  const auto sv = model.singular_values();
  for (std::size_t i = 0; i < sv.size(); ++i) {
    EXPECT_GE(sv[i], 0.0);
    if (i > 0) {
      EXPECT_LE(sv[i], sv[i - 1] + 1e-9);
    }
  }
}

TEST_P(LsiRankSweep, SelfRetrievalTopRanked) {
  Rng rng(3);
  const auto docs = clustered_corpus(rng, 4, 10);
  Rng build_rng(4);
  const LsiModel model = LsiModel::build(docs, GetParam(), build_rng);
  // Querying a doc's own vector ranks a same-cluster doc first; with
  // rank >= clusters the doc itself scores near 1.
  for (std::size_t probe = 0; probe < docs.size(); probe += 7) {
    const auto top = model.top_k(docs[probe].vector, 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_GT(top[0].score, 0.5);
  }
}

TEST_P(LsiRankSweep, ClusterMatesBeatStrangers) {
  Rng rng(5);
  const auto docs = clustered_corpus(rng, 4, 10);
  Rng build_rng(6);
  const LsiModel model = LsiModel::build(docs, GetParam(), build_rng);
  // Probe with a fresh vector from cluster 0's vocabulary.
  const auto probe = SparseVector::binary(
      std::vector<KeywordId>{0, 3, 7, 11});
  const auto top = model.top_k(probe, 10);
  ASSERT_EQ(top.size(), 10u);
  std::size_t cluster0_hits = 0;
  for (const auto& hit : top) {
    if (hit.id < 10) ++cluster0_hits;  // first 10 ids = cluster 0
  }
  // High ranks converge to exact cosine, where same-cluster docs with no
  // literal overlap score ~0 and tie with strangers; 7/10 is the robust
  // bound across ranks.
  EXPECT_GE(cluster0_hits, 7u) << "rank " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Ranks, LsiRankSweep,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(LsiRankQuality, HigherRankNeverHurtsFrobeniusCapture) {
  Rng rng(7);
  const auto docs = clustered_corpus(rng, 5, 8);
  double prev_mass = -1.0;
  for (const std::size_t rank : {1u, 2u, 4u, 8u, 16u}) {
    Rng build_rng(8);
    const LsiModel model =
        LsiModel::build(docs, rank, build_rng, /*power_iterations=*/4);
    double mass = 0.0;
    for (const double s : model.singular_values()) mass += s * s;
    EXPECT_GE(mass, prev_mass - 1e-6) << "rank " << rank;
    prev_mass = mass;
  }
}

}  // namespace
}  // namespace meteo::vsm
