#include "vsm/absolute_angle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.hpp"

namespace meteo::vsm {
namespace {

constexpr double kHalfPi = std::numbers::pi / 2.0;

SparseVector random_vector(Rng& rng, std::size_t nnz, KeywordId universe) {
  std::vector<Entry> entries;
  while (entries.size() < nnz) {
    entries.push_back(
        {static_cast<KeywordId>(rng.below(universe)), rng.uniform() + 0.05});
  }
  return SparseVector::from_entries(std::move(entries));
}

TEST(AbsoluteAngle, SingleAxisVectorSupportOnly) {
  // In support-only mode a one-keyword vector is exactly its own axis:
  // theta_1 = acos(1) = 0, so theta = 0.
  const auto v = SparseVector::from_entries({{3, 5.0}});
  EXPECT_NEAR(absolute_angle(v, 1, AngleMode::kSupportOnly), 0.0, 1e-12);
}

TEST(AbsoluteAngle, SingleAxisVectorUniversal) {
  // Universal mode with dimension m: theta = sqrt((m-1)/m) * pi/2.
  const auto v = SparseVector::from_entries({{3, 5.0}});
  const std::size_t m = 100;
  const double expected =
      kHalfPi * std::sqrt(static_cast<double>(m - 1) / static_cast<double>(m));
  EXPECT_NEAR(absolute_angle(v, m, AngleMode::kUniversal), expected, 1e-12);
}

TEST(AbsoluteAngle, UniformBinaryVectorClosedForm) {
  // Binary vector over n of m dims: per-support angle acos(1/sqrt(n)).
  const std::size_t n = 4;
  const std::size_t m = 50;
  std::vector<KeywordId> kws;
  for (std::size_t i = 0; i < n; ++i) kws.push_back(static_cast<KeywordId>(i));
  const auto v = SparseVector::binary(kws);
  const double per = std::acos(1.0 / std::sqrt(static_cast<double>(n)));
  const double expected = std::sqrt(
      (static_cast<double>(n) * per * per +
       static_cast<double>(m - n) * kHalfPi * kHalfPi) /
      static_cast<double>(m));
  EXPECT_NEAR(absolute_angle(v, m), expected, 1e-12);
}

TEST(AbsoluteAngle, AlwaysWithinZeroHalfPi) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto v = random_vector(rng, 1 + rng.below(40), 1000);
    const double theta_u = absolute_angle(v, 1000);
    const double theta_s = absolute_angle(v, 1000, AngleMode::kSupportOnly);
    EXPECT_GE(theta_u, 0.0);
    EXPECT_LE(theta_u, kHalfPi);
    EXPECT_GE(theta_s, 0.0);
    EXPECT_LE(theta_s, kHalfPi);
  }
}

TEST(AbsoluteAngle, ScaleInvariant) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto v = random_vector(rng, 10, 200);
    std::vector<Entry> scaled;
    for (const Entry& e : v.entries()) scaled.push_back({e.keyword, e.weight * 7.5});
    const auto w = SparseVector::from_entries(std::move(scaled));
    EXPECT_NEAR(absolute_angle(v, 200), absolute_angle(w, 200), 1e-12);
  }
}

TEST(AbsoluteAngle, IdenticalVectorsIdenticalAngles) {
  Rng rng(3);
  const auto v = random_vector(rng, 15, 500);
  const auto w = v;
  EXPECT_DOUBLE_EQ(absolute_angle(v, 500), absolute_angle(w, 500));
}

TEST(AbsoluteAngle, PermutedSupportSameAngleForUniformWeights) {
  // With binary weights the absolute angle depends only on nnz — the known
  // content-blindness of the scheme (DESIGN.md note 2).
  const auto a = SparseVector::binary(std::vector<KeywordId>{1, 2, 3});
  const auto b = SparseVector::binary(std::vector<KeywordId>{97, 98, 99});
  EXPECT_DOUBLE_EQ(absolute_angle(a, 1000), absolute_angle(b, 1000));
}

TEST(AbsoluteAngle, MoreKeywordsSmallerUniversalAngle) {
  // Each in-support coordinate replaces a (pi/2)^2 term with something
  // smaller, so adding keywords (binary weights) decreases theta.
  std::vector<KeywordId> kws;
  double prev = kHalfPi + 1.0;
  for (KeywordId k = 0; k < 64; ++k) {
    kws.push_back(k);
    const auto v = SparseVector::binary(kws);
    const double theta = absolute_angle(v, 1 << 16);
    EXPECT_LT(theta, prev);
    prev = theta;
  }
}

TEST(AbsoluteAngle, SimilarVectorsHaveCloseAngles) {
  // The clustering property the whole system relies on (§3.1): perturbing
  // one weight slightly moves the angle slightly.
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto v = random_vector(rng, 20, 300);
    std::vector<Entry> perturbed(v.entries().begin(), v.entries().end());
    perturbed[0].weight *= 1.01;
    const auto w = SparseVector::from_entries(std::move(perturbed));
    EXPECT_NEAR(absolute_angle(v, 300), absolute_angle(w, 300), 5e-3);
  }
}

TEST(AngleToKey, BoundsAndMonotonicity) {
  const std::uint64_t space = 100000000;  // paper's R = 1e8
  EXPECT_EQ(angle_to_key(0.0, space), 0u);
  EXPECT_EQ(angle_to_key(std::numbers::pi, space), space - 1);
  std::uint64_t prev = 0;
  for (double theta = 0.0; theta <= kHalfPi; theta += 0.01) {
    const std::uint64_t key = angle_to_key(theta, space);
    EXPECT_GE(key, prev);
    EXPECT_LT(key, space);
    prev = key;
  }
}

TEST(AngleToKey, HalfPiMapsToMidSpace) {
  const std::uint64_t space = 1000;
  EXPECT_EQ(angle_to_key(kHalfPi, space), 500u);
}

TEST(AbsoluteAngleKey, EndToEndDeterministic) {
  Rng rng(5);
  const auto v = random_vector(rng, 43, 89000);
  const auto k1 = absolute_angle_key(v, 89000, 100000000);
  const auto k2 = absolute_angle_key(v, 89000, 100000000);
  EXPECT_EQ(k1, k2);
  // Universal-dictionary keys concentrate just below R/2 (DESIGN.md note 1).
  EXPECT_GT(k1, 45000000u);
  EXPECT_LT(k1, 50000000u);
}

class AngleKeyOrdering : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AngleKeyOrdering, SupportOnlyKeyGrowsWithNnz) {
  // Support-only mode: binary vector of n keywords has theta=acos(1/sqrt n),
  // strictly increasing in n.
  const std::size_t n = GetParam();
  std::vector<KeywordId> kws;
  for (std::size_t i = 0; i < n; ++i) kws.push_back(static_cast<KeywordId>(i));
  const auto small = SparseVector::binary(std::span(kws).first(n - 1));
  const auto large = SparseVector::binary(kws);
  EXPECT_LT(absolute_angle(small, n, AngleMode::kSupportOnly),
            absolute_angle(large, n, AngleMode::kSupportOnly));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AngleKeyOrdering,
                         ::testing::Values(2u, 3u, 5u, 10u, 50u, 200u));

}  // namespace
}  // namespace meteo::vsm
