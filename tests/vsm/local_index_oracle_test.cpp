/// Oracle equivalence for the inverted-postings LocalIndex (DESIGN.md §9).
///
/// The inverted index must return *byte-identical* results to the retained
/// naive-scan reference (vsm/naive_scan.hpp): same scores down to the last
/// bit (same floating-point summation order), same tie-breaks, same
/// ordering — under arbitrary interleavings of insert / replace / erase /
/// evict with the four query kernels. Scores are compared through their
/// bit patterns, not an epsilon.
///
/// The ConcurrentQueries test drives the const kernels from several
/// threads at once against one index — the pattern BatchEngine's parallel
/// read batches produce — and is run under TSan by tools/run_tier1.sh to
/// prove the thread_local score scratch keeps const queries race-free.

#include "vsm/local_index.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numbers>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "vsm/naive_scan.hpp"

namespace meteo::vsm {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

void expect_same_scored(const std::vector<ScoredItem>& got,
                        const std::vector<ScoredItem>& want,
                        const char* kernel) {
  ASSERT_EQ(got.size(), want.size()) << kernel;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << kernel << " rank " << i;
    EXPECT_EQ(bits(got[i].score), bits(want[i].score))
        << kernel << " rank " << i << ": " << got[i].score
        << " != " << want[i].score;
  }
}

/// A random sparse vector over a small dictionary so stores overlap
/// heavily; binary weights half the time to make exact score ties common.
SparseVector random_vector(Rng& rng, std::size_t dims) {
  const std::size_t nnz = 1 + rng.below(6);
  const bool binary = rng.chance(0.5);
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.push_back(Entry{static_cast<KeywordId>(rng.below(dims)),
                            binary ? 1.0 : rng.uniform() + 0.05});
  }
  return SparseVector::from_entries(std::move(entries));
}

std::vector<KeywordId> random_keywords(Rng& rng, std::size_t dims) {
  std::vector<KeywordId> kws;
  const std::size_t n = 1 + rng.below(4);
  for (std::size_t i = 0; i < n; ++i) {
    kws.push_back(static_cast<KeywordId>(rng.below(dims)));
  }
  return kws;
}

void compare_queries(const LocalIndex& idx, const NaiveScanIndex& oracle,
                     Rng& rng, std::size_t dims) {
  const SparseVector q = random_vector(rng, dims);
  const std::size_t k = rng.below(idx.size() + 3);
  expect_same_scored(idx.top_k(q, k), oracle.top_k(q, k), "top_k");

  // Sweep tau across the whole range, hitting the pi/2 boundary (where
  // zero-overlap items enter the result set) explicitly now and then.
  const double tau = rng.chance(0.2) ? std::numbers::pi / 2.0
                                     : rng.uniform() * std::numbers::pi / 2.0;
  expect_same_scored(idx.within_angle(q, tau), oracle.within_angle(q, tau),
                     "within_angle");

  const std::vector<KeywordId> kws = random_keywords(rng, dims);
  EXPECT_EQ(idx.match_all(kws), oracle.match_all(kws));
  EXPECT_EQ(idx.match_any(kws), oracle.match_any(kws));
}

TEST(LocalIndexOracle, RandomizedChurnMatchesNaiveScan) {
  constexpr std::size_t kDims = 48;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    LocalIndex idx;
    NaiveScanIndex oracle;
    for (std::size_t step = 0; step < 3000; ++step) {
      const std::uint64_t op = rng.below(100);
      if (op < 30) {  // insert a fresh id
        const ItemId id = 1000 * seed + step;
        SparseVector v = random_vector(rng, kDims);
        idx.insert(id, v);
        oracle.insert(id, std::move(v));
      } else if (op < 45 && idx.size() > 0) {  // replace an existing id
        const std::size_t at = rng.below(idx.size());
        const ItemId id = idx.items()[at].id;
        SparseVector v = random_vector(rng, kDims);
        idx.insert(id, v);
        oracle.insert(id, std::move(v));
      } else if (op < 55 && idx.size() > 0) {  // erase (sometimes missing)
        const ItemId id = rng.chance(0.8)
                              ? idx.items()[rng.below(idx.size())].id
                              : ItemId{999'999'999};
        EXPECT_EQ(idx.erase(id), oracle.erase(id));
      } else if (op < 65) {  // evict least-similar
        const SparseVector ref = random_vector(rng, kDims);
        const auto got = idx.evict_least_similar(ref);
        const auto want = oracle.evict_least_similar(ref);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got.has_value()) {
          EXPECT_EQ(got->id, want->id);
          EXPECT_EQ(got->vector, want->vector);
        }
      } else {
        compare_queries(idx, oracle, rng, kDims);
      }
      ASSERT_EQ(idx.size(), oracle.size());
    }
    // Drain both stores through eviction: the full eviction order (ids
    // and vectors) must match item by item.
    const SparseVector ref = random_vector(rng, kDims);
    while (idx.size() > 0) {
      const auto got = idx.evict_least_similar(ref);
      const auto want = oracle.evict_least_similar(ref);
      ASSERT_TRUE(got.has_value() && want.has_value());
      EXPECT_EQ(got->id, want->id);
    }
    EXPECT_FALSE(oracle.evict_least_similar(ref).has_value() ||
                 idx.evict_least_similar(ref).has_value());
  }
}

TEST(LocalIndexOracle, ConcurrentQueriesMatchOracle) {
  constexpr std::size_t kDims = 48;
  Rng rng(7);
  LocalIndex idx;
  NaiveScanIndex oracle;
  for (ItemId id = 0; id < 256; ++id) {
    SparseVector v = random_vector(rng, kDims);
    idx.insert(id, v);
    oracle.insert(id, std::move(v));
  }
  // Precompute oracle answers, then hammer the const kernels from four
  // threads at once. The shared score scratch is thread_local, so
  // concurrent queries must neither race nor perturb each other's
  // results.
  struct Case {
    SparseVector query;
    std::size_t k;
    double tau;
    std::vector<KeywordId> kws;
    std::vector<ScoredItem> top;
    std::vector<ScoredItem> within;
    std::vector<ItemId> all;
    std::vector<ItemId> any;
  };
  std::vector<Case> cases;
  for (std::size_t i = 0; i < 16; ++i) {
    Case c;
    c.query = random_vector(rng, kDims);
    c.k = 1 + rng.below(300);
    c.tau = rng.uniform() * std::numbers::pi / 2.0;
    c.kws = random_keywords(rng, kDims);
    c.top = oracle.top_k(c.query, c.k);
    c.within = oracle.within_angle(c.query, c.tau);
    c.all = oracle.match_all(c.kws);
    c.any = oracle.match_any(c.kws);
    cases.push_back(std::move(c));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&idx, &cases] {
      std::vector<ScoredItem> scored;
      std::vector<ItemId> ids;
      for (std::size_t round = 0; round < 32; ++round) {
        for (const Case& c : cases) {
          idx.top_k(c.query, c.k, scored);
          expect_same_scored(scored, c.top, "top_k");
          idx.within_angle(c.query, c.tau, scored);
          expect_same_scored(scored, c.within, "within_angle");
          idx.match_all(c.kws, ids);
          EXPECT_EQ(ids, c.all);
          idx.match_any(c.kws, ids);
          EXPECT_EQ(ids, c.any);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace meteo::vsm
