#include "vsm/local_index.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "common/rng.hpp"

namespace meteo::vsm {
namespace {

SparseVector vec(std::initializer_list<KeywordId> kws) {
  return SparseVector::binary(std::vector<KeywordId>(kws));
}

TEST(LocalIndex, InsertAndContains) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));
  idx.insert(2, vec({2}));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.contains(1));
  EXPECT_TRUE(idx.contains(2));
  EXPECT_FALSE(idx.contains(3));
}

TEST(LocalIndex, InsertReplacesExisting) {
  LocalIndex idx;
  idx.insert(1, vec({0}));
  idx.insert(1, vec({5, 6}));
  EXPECT_EQ(idx.size(), 1u);
  ASSERT_NE(idx.vector_of(1), nullptr);
  EXPECT_TRUE(idx.vector_of(1)->contains(5));
}

TEST(LocalIndex, ReplaceUpdatesPostingLists) {
  // A replace must rewrite the inverted postings: the old terms drop out
  // (no stale matches) and the new terms match, with scores computed from
  // the new weights.
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));
  idx.insert(2, vec({0, 7}));
  idx.insert(1, vec({5, 6}));

  // Old terms of item 1 must be gone from every keyword kernel.
  const std::vector<KeywordId> old_q = {0};
  const auto old_hits = idx.match_all(old_q);
  ASSERT_EQ(old_hits.size(), 1u);
  EXPECT_EQ(old_hits[0], 2u);
  EXPECT_TRUE(idx.match_all(std::vector<KeywordId>{1}).empty());
  EXPECT_EQ(idx.match_any(std::vector<KeywordId>{1, 5}),
            (std::vector<ItemId>{1}));

  // New terms must match, and scoring must see the new vector.
  const auto new_hits = idx.match_all(std::vector<KeywordId>{5, 6});
  ASSERT_EQ(new_hits.size(), 1u);
  EXPECT_EQ(new_hits[0], 1u);
  const auto top = idx.top_k(vec({5, 6}), 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_NEAR(top[0].score, 1.0, 1e-12);
}

TEST(LocalIndex, ReplaceNeverReturnsStaleMatchesUnderChurn) {
  // Repeatedly re-point a fixed set of ids at rotating keyword pairs;
  // after every replace, a query for a keyword the item no longer has
  // must not return it.
  LocalIndex idx;
  constexpr KeywordId kRound = 16;
  for (std::uint32_t round = 0; round < 8; ++round) {
    for (ItemId id = 0; id < 4; ++id) {
      const auto base = static_cast<KeywordId>(
          (round + static_cast<std::uint32_t>(id)) % kRound);
      idx.insert(id, vec({base, static_cast<KeywordId>((base + 1) % kRound)}));
    }
    for (KeywordId kw = 0; kw < kRound; ++kw) {
      for (const ItemId id : idx.match_all(std::span<const KeywordId>(&kw, 1))) {
        EXPECT_TRUE(idx.vector_of(id)->contains(kw))
            << "stale posting: item " << id << " keyword " << kw;
      }
    }
  }
}

TEST(LocalIndex, TakeReturnsVectorAndRemoves) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));
  idx.insert(2, vec({2}));
  const auto taken = idx.take(1);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->id, 1u);
  EXPECT_TRUE(taken->vector.contains(0));
  EXPECT_FALSE(idx.contains(1));
  EXPECT_FALSE(idx.take(1).has_value());
  EXPECT_EQ(idx.size(), 1u);
}

TEST(LocalIndex, LeastSimilarReportsWithoutRemoving) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));
  idx.insert(2, vec({7, 8}));
  const auto victim = idx.least_similar(vec({0, 1}));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(LocalIndex, CallerBufferOverloadsReuseCapacity) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));
  idx.insert(2, vec({0, 9}));
  std::vector<ScoredItem> scored;
  idx.top_k(vec({0, 1}), 2, scored);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].id, 1u);
  idx.top_k(vec({9}), 1, scored);  // refill in place
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].id, 2u);
  std::vector<ItemId> ids;
  const std::vector<KeywordId> q = {0};
  idx.match_all(q, ids);
  EXPECT_EQ(ids, (std::vector<ItemId>{1, 2}));
  idx.within_angle(vec({0}), std::numbers::pi / 2.0, scored);
  EXPECT_EQ(scored.size(), 2u);
}

TEST(LocalIndex, EraseExistingAndMissing) {
  LocalIndex idx;
  idx.insert(1, vec({0}));
  idx.insert(2, vec({1}));
  idx.insert(3, vec({2}));
  EXPECT_TRUE(idx.erase(2));
  EXPECT_FALSE(idx.erase(2));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.contains(1));
  EXPECT_TRUE(idx.contains(3));
}

TEST(LocalIndex, VectorOfMissingIsNull) {
  const LocalIndex idx;
  EXPECT_EQ(idx.vector_of(7), nullptr);
}

TEST(LocalIndex, EvictLeastSimilarPicksOrthogonal) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));    // shares both keywords with reference
  idx.insert(2, vec({0, 9}));    // shares one
  idx.insert(3, vec({7, 8}));    // disjoint -> least similar
  const auto evicted = idx.evict_least_similar(vec({0, 1}));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->id, 3u);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_FALSE(idx.contains(3));
}

TEST(LocalIndex, EvictTieBreaksOnSmallestId) {
  LocalIndex idx;
  idx.insert(42, vec({7}));
  idx.insert(10, vec({8}));   // both orthogonal to the reference
  const auto evicted = idx.evict_least_similar(vec({0}));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->id, 10u);
}

TEST(LocalIndex, EvictFromEmptyIsNullopt) {
  LocalIndex idx;
  EXPECT_FALSE(idx.evict_least_similar(vec({0})).has_value());
}

TEST(LocalIndex, TopKRanksByCosine) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1, 2, 3}));  // cos with {0,1} = 2/sqrt(8)
  idx.insert(2, vec({0, 1}));        // cos = 1
  idx.insert(3, vec({0, 9}));        // cos = 1/2
  idx.insert(4, vec({8, 9}));        // cos = 0
  const auto top = idx.top_k(vec({0, 1}), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 2u);
  EXPECT_NEAR(top[0].score, 1.0, 1e-12);
  EXPECT_EQ(top[1].id, 1u);
  EXPECT_EQ(top[2].id, 3u);
}

TEST(LocalIndex, TopKClampsToSize) {
  LocalIndex idx;
  idx.insert(1, vec({0}));
  const auto top = idx.top_k(vec({0}), 10);
  EXPECT_EQ(top.size(), 1u);
}

TEST(LocalIndex, TopKZeroIsEmpty) {
  LocalIndex idx;
  idx.insert(1, vec({0}));
  EXPECT_TRUE(idx.top_k(vec({0}), 0).empty());
}

TEST(LocalIndex, MatchAllConjunctive) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1, 2}));
  idx.insert(2, vec({0, 2}));
  idx.insert(3, vec({1, 2}));
  const std::vector<KeywordId> q = {0, 2};
  const auto hits = idx.match_all(q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(LocalIndex, MatchAllEmptyQueryMatchesEverything) {
  LocalIndex idx;
  idx.insert(1, vec({0}));
  idx.insert(2, vec({1}));
  const auto hits = idx.match_all({});
  EXPECT_EQ(hits.size(), 2u);
}

TEST(LocalIndex, MatchAnyDisjunctive) {
  LocalIndex idx;
  idx.insert(1, vec({0}));
  idx.insert(2, vec({1}));
  idx.insert(3, vec({5}));
  const std::vector<KeywordId> q = {0, 1};
  const auto hits = idx.match_any(q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(LocalIndex, WithinAngleThreshold) {
  LocalIndex idx;
  idx.insert(1, vec({0, 1}));  // angle 0 to query
  idx.insert(2, vec({0, 9}));  // angle 60 deg (cos = 0.5)
  idx.insert(3, vec({8, 9}));  // angle 90 deg
  const auto query = vec({0, 1});
  const auto within_45 = idx.within_angle(query, std::numbers::pi / 4.0);
  ASSERT_EQ(within_45.size(), 1u);
  EXPECT_EQ(within_45[0].id, 1u);
  const auto within_75 =
      idx.within_angle(query, 75.0 * std::numbers::pi / 180.0);
  EXPECT_EQ(within_75.size(), 2u);
  const auto within_90 = idx.within_angle(query, std::numbers::pi / 2.0);
  EXPECT_EQ(within_90.size(), 3u);
}

TEST(LocalIndex, EvictionSequencePreservesMostSimilar) {
  // Repeatedly evicting against the same reference must drain items in
  // ascending-similarity order — the property that keeps similar items
  // clustered under the publish overflow policy (Fig. 2).
  LocalIndex idx;
  Rng rng(1);
  const auto reference = vec({0, 1, 2, 3, 4});
  for (ItemId id = 0; id < 50; ++id) {
    std::vector<Entry> entries;
    for (KeywordId k = 0; k < 5; ++k) {
      if (rng.chance(0.5)) entries.push_back({k, 1.0});
    }
    entries.push_back({static_cast<KeywordId>(10 + id), 1.0});
    idx.insert(id, SparseVector::from_entries(std::move(entries)));
  }
  double last_score = -1.0;
  while (idx.size() > 0) {
    const auto evicted = idx.evict_least_similar(reference);
    ASSERT_TRUE(evicted.has_value());
    const double score = cosine_similarity(reference, evicted->vector);
    EXPECT_GE(score, last_score - 1e-12);
    last_score = score;
  }
}

}  // namespace
}  // namespace meteo::vsm
