#include "vsm/sparse_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.hpp"

namespace meteo::vsm {
namespace {

TEST(SparseVector, EmptyByDefault) {
  const SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.nnz(), 0u);
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

TEST(SparseVector, FromEntriesSortsByKeyword) {
  const auto v = SparseVector::from_entries({{5, 1.0}, {1, 2.0}, {3, 0.5}});
  ASSERT_EQ(v.nnz(), 3u);
  EXPECT_EQ(v.entries()[0].keyword, 1u);
  EXPECT_EQ(v.entries()[1].keyword, 3u);
  EXPECT_EQ(v.entries()[2].keyword, 5u);
}

TEST(SparseVector, DuplicatesAreSummed) {
  const auto v = SparseVector::from_entries({{2, 1.0}, {2, 3.0}});
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].weight, 4.0);
}

TEST(SparseVector, ZeroWeightsDropped) {
  const auto v = SparseVector::from_entries({{1, 0.0}, {2, 1.0}});
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.entries()[0].keyword, 2u);
}

TEST(SparseVector, NormIsEuclidean) {
  const auto v = SparseVector::from_entries({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(SparseVector, BinaryConstruction) {
  const std::vector<KeywordId> kws = {7, 2, 9};
  const auto v = SparseVector::binary(kws);
  EXPECT_EQ(v.nnz(), 3u);
  EXPECT_DOUBLE_EQ(v.weight_of(2), 1.0);
  EXPECT_DOUBLE_EQ(v.weight_of(7), 1.0);
  EXPECT_DOUBLE_EQ(v.norm(), std::sqrt(3.0));
}

TEST(SparseVector, WeightOfAbsentKeywordIsZero) {
  const auto v = SparseVector::from_entries({{10, 2.0}});
  EXPECT_DOUBLE_EQ(v.weight_of(9), 0.0);
  EXPECT_DOUBLE_EQ(v.weight_of(11), 0.0);
  EXPECT_FALSE(v.contains(9));
  EXPECT_TRUE(v.contains(10));
}

TEST(SparseVector, MaxKeyword) {
  const auto v = SparseVector::from_entries({{3, 1.0}, {42, 1.0}, {7, 1.0}});
  EXPECT_EQ(v.max_keyword(), 42u);
}

TEST(Dot, DisjointSupportsIsZero) {
  const auto a = SparseVector::from_entries({{0, 1.0}, {2, 1.0}});
  const auto b = SparseVector::from_entries({{1, 1.0}, {3, 1.0}});
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
}

TEST(Dot, OverlappingSupports) {
  const auto a = SparseVector::from_entries({{0, 2.0}, {1, 3.0}});
  const auto b = SparseVector::from_entries({{1, 4.0}, {2, 5.0}});
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
}

TEST(Dot, Commutative) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Entry> ea;
    std::vector<Entry> eb;
    for (int i = 0; i < 20; ++i) {
      ea.push_back({static_cast<KeywordId>(rng.below(30)), rng.uniform() + 0.1});
      eb.push_back({static_cast<KeywordId>(rng.below(30)), rng.uniform() + 0.1});
    }
    const auto a = SparseVector::from_entries(ea);
    const auto b = SparseVector::from_entries(eb);
    EXPECT_NEAR(dot(a, b), dot(b, a), 1e-12);
  }
}

TEST(Cosine, IdenticalVectorsIsOne) {
  const auto v = SparseVector::from_entries({{1, 2.0}, {4, 1.0}});
  EXPECT_NEAR(cosine_similarity(v, v), 1.0, 1e-12);
}

TEST(Cosine, ScaleInvariant) {
  const auto a = SparseVector::from_entries({{1, 2.0}, {4, 1.0}});
  const auto b = SparseVector::from_entries({{1, 20.0}, {4, 10.0}});
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(Cosine, OrthogonalIsZero) {
  const auto a = SparseVector::from_entries({{0, 1.0}});
  const auto b = SparseVector::from_entries({{1, 1.0}});
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(Cosine, EmptyVectorYieldsZero) {
  const SparseVector empty;
  const auto v = SparseVector::from_entries({{0, 1.0}});
  EXPECT_DOUBLE_EQ(cosine_similarity(empty, v), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(v, empty), 0.0);
}

TEST(AngleBetween, RightAngleForDisjoint) {
  const auto a = SparseVector::from_entries({{0, 1.0}});
  const auto b = SparseVector::from_entries({{1, 1.0}});
  EXPECT_NEAR(angle_between(a, b), std::numbers::pi / 2.0, 1e-12);
}

TEST(AngleBetween, ZeroForParallel) {
  const auto a = SparseVector::from_entries({{0, 1.0}, {1, 1.0}});
  const auto b = SparseVector::from_entries({{0, 5.0}, {1, 5.0}});
  EXPECT_NEAR(angle_between(a, b), 0.0, 1e-7);
}

TEST(AngleBetween, KnownFortyFive) {
  const auto a = SparseVector::from_entries({{0, 1.0}});
  const auto b = SparseVector::from_entries({{0, 1.0}, {1, 1.0}});
  EXPECT_NEAR(angle_between(a, b), std::numbers::pi / 4.0, 1e-12);
}

// Property: for random non-negative vectors the angle is within [0, pi/2]
// and sharing more keywords can only reduce it relative to disjoint.
class AngleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AngleProperty, RangeAndSharingMonotonicity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Entry> base;
    for (int i = 0; i < 10; ++i) {
      base.push_back({static_cast<KeywordId>(i), rng.uniform() + 0.1});
    }
    const auto a = SparseVector::from_entries(base);
    // b shares exactly `shared` leading keywords of a.
    double prev_angle = std::numbers::pi;  // sentinel above pi/2
    for (int shared = 0; shared <= 10; ++shared) {
      std::vector<Entry> eb;
      for (int i = 0; i < shared; ++i) eb.push_back(base[static_cast<std::size_t>(i)]);
      for (int i = 0; i < 10 - shared; ++i) {
        eb.push_back({static_cast<KeywordId>(100 + i), base[static_cast<std::size_t>(i)].weight});
      }
      const auto b = SparseVector::from_entries(eb);
      const double angle = angle_between(a, b);
      EXPECT_GE(angle, 0.0);
      EXPECT_LE(angle, std::numbers::pi / 2.0 + 1e-12);
      // Replacing a disjoint keyword with a shared one (same weight) never
      // increases the angle.
      EXPECT_LE(angle, prev_angle + 1e-9);
      prev_angle = angle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AngleProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace meteo::vsm
