#include "vsm/dictionary.hpp"

#include <gtest/gtest.h>

namespace meteo::vsm {
namespace {

TEST(Dictionary, InternAssignsSequentialIds) {
  Dictionary d;
  EXPECT_EQ(d.intern("alpha"), 0u);
  EXPECT_EQ(d.intern("beta"), 1u);
  EXPECT_EQ(d.intern("gamma"), 2u);
  EXPECT_EQ(d.interned_count(), 3u);
}

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  const KeywordId a = d.intern("x");
  const KeywordId b = d.intern("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.interned_count(), 1u);
}

TEST(Dictionary, FindExistingAndMissing) {
  Dictionary d;
  d.intern("p2p");
  ASSERT_TRUE(d.find("p2p").has_value());
  EXPECT_EQ(*d.find("p2p"), 0u);
  EXPECT_FALSE(d.find("overlay").has_value());
}

TEST(Dictionary, SpellingRoundTrip) {
  Dictionary d;
  const KeywordId id = d.intern("distributed processing");
  EXPECT_EQ(d.spelling(id), "distributed processing");
}

TEST(Dictionary, UniversalDimensionDominates) {
  Dictionary d(89000);
  d.intern("a");
  d.intern("b");
  EXPECT_EQ(d.dimension(), 89000u);
  EXPECT_FALSE(d.dimension_grew());
}

TEST(Dictionary, DimensionGrowsWhenUniversalExceeded) {
  Dictionary d(2);
  d.intern("a");
  d.intern("b");
  EXPECT_FALSE(d.dimension_grew());
  d.intern("c");
  EXPECT_TRUE(d.dimension_grew());
  EXPECT_EQ(d.dimension(), 3u);
}

TEST(Dictionary, ZeroUniversalTracksInterned) {
  Dictionary d(0);
  EXPECT_EQ(d.dimension(), 0u);
  d.intern("a");
  EXPECT_EQ(d.dimension(), 1u);
  EXPECT_FALSE(d.dimension_grew());
}

}  // namespace
}  // namespace meteo::vsm
