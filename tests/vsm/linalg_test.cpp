#include "vsm/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace meteo::vsm {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), 0.0);
    }
  }
}

TEST(Matmul, KnownProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matmul, AtBEqualsTransposeThenMultiply) {
  Rng rng(1);
  Matrix a(4, 3);
  Matrix b(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a.at(i, j) = rng.normal();
    for (std::size_t j = 0; j < 2; ++j) b.at(i, j) = rng.normal();
  }
  const Matrix direct = matmul_at_b(a, b);
  const Matrix via_transpose = matmul(transpose(a), b);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(direct.at(i, j), via_transpose.at(i, j), 1e-12);
    }
  }
}

TEST(Transpose, RoundTrip) {
  Rng rng(2);
  Matrix a(3, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) a.at(i, j) = rng.normal();
  }
  const Matrix t = transpose(transpose(a));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(t.at(i, j), a.at(i, j));
    }
  }
}

TEST(Orthonormalize, ColumnsBecomeOrthonormal) {
  Rng rng(3);
  Matrix a(10, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a.at(i, j) = rng.normal();
  }
  const std::size_t rank = orthonormalize_columns(a);
  EXPECT_EQ(rank, 4u);
  for (std::size_t c1 = 0; c1 < 4; ++c1) {
    for (std::size_t c2 = 0; c2 < 4; ++c2) {
      double d = 0.0;
      for (std::size_t i = 0; i < 10; ++i) d += a.at(i, c1) * a.at(i, c2);
      EXPECT_NEAR(d, c1 == c2 ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Orthonormalize, DetectsRankDeficiency) {
  Matrix a(3, 3);
  // Column 2 = column 0 + column 1.
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;
  a.at(0, 2) = 1;
  a.at(1, 2) = 1;
  const std::size_t rank = orthonormalize_columns(a);
  EXPECT_EQ(rank, 2u);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 5.0;
  a.at(2, 2) = 3.0;
  const EigenResult r = symmetric_eigen(a);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 5.0, 1e-10);
  EXPECT_NEAR(r.values[1], 3.0, 1e-10);
  EXPECT_NEAR(r.values[2], 1.0, 1e-10);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 2;
  const EigenResult r = symmetric_eigen(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors.at(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(r.vectors.at(1, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  Rng rng(4);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double x = rng.normal();
      a.at(i, j) = x;
      a.at(j, i) = x;
    }
  }
  const EigenResult r = symmetric_eigen(a);
  // A = V diag(values) V^T
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += r.vectors.at(i, k) * r.values[k] * r.vectors.at(j, k);
      }
      EXPECT_NEAR(sum, a.at(i, j), 1e-8);
    }
  }
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  Rng rng(5);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double x = rng.uniform();
      a.at(i, j) = x;
      a.at(j, i) = x;
    }
  }
  const EigenResult r = symmetric_eigen(a);
  for (std::size_t c1 = 0; c1 < n; ++c1) {
    for (std::size_t c2 = 0; c2 < n; ++c2) {
      double d = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        d += r.vectors.at(i, c1) * r.vectors.at(i, c2);
      }
      EXPECT_NEAR(d, c1 == c2 ? 1.0 : 0.0, 1e-8);
    }
  }
}

}  // namespace
}  // namespace meteo::vsm
