#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace meteo::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  const EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInUsesRelativeTime) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run_all();
  double fired_at = -1.0;
  q.schedule_in(5.0, [&] { fired_at = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId id = q.schedule_at(1.0, [] {});
  q.run_all();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> times;
  for (double t = 1.0; t <= 5.0; t += 1.0) {
    q.schedule_at(t, [&times, &q] { times.push_back(q.now()); });
  }
  EXPECT_EQ(q.run_until(3.0), 3u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.run_until(10.0), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);  // clock advances to the bound
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_until(42.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(1.0, recurse);
  };
  q.schedule_in(1.0, recurse);
  EXPECT_EQ(q.run_all(), 5u);
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, MaxEventsLimitsExecution) {
  EventQueue q;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    q.schedule_in(1.0, forever);
  };
  q.schedule_in(1.0, forever);
  EXPECT_EQ(q.run_all(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, NowIsEventTimeDuringCallback) {
  EventQueue q;
  double observed = -1.0;
  q.schedule_at(7.5, [&] { observed = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(observed, 7.5);
}

}  // namespace
}  // namespace meteo::sim
