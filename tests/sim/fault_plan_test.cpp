/// FaultPlan unit tests: deterministic fate sequences, rate accuracy,
/// scheduled crash/stall/resume semantics, and interaction with the
/// overlay's retry/timeout/reroute machinery.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "overlay/overlay.hpp"
#include "sim/fault_plan.hpp"

namespace meteo::sim {
namespace {

using overlay::MessageContext;
using overlay::MessageFate;

std::vector<MessageFate> fate_sequence(FaultPlan& plan, std::size_t count) {
  std::vector<MessageFate> fates;
  fates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fates.push_back(plan.on_message(MessageContext{1, 2, 0}));
  }
  return fates;
}

TEST(FaultPlanTest, ZeroRatesAlwaysDeliver) {
  FaultPlan plan({}, 42);
  for (const MessageFate fate : fate_sequence(plan, 1000)) {
    EXPECT_EQ(fate, MessageFate::kDeliver);
  }
  EXPECT_EQ(plan.dropped(), 0u);
  EXPECT_EQ(plan.delayed(), 0u);
  EXPECT_EQ(plan.duplicated(), 0u);
  EXPECT_EQ(plan.messages_seen(), 1000u);
}

TEST(FaultPlanTest, SameSeedSameFateSequence) {
  const FaultPlanConfig cfg{0.2, 0.1, 0.05};
  FaultPlan a(cfg, 7);
  FaultPlan b(cfg, 7);
  EXPECT_EQ(fate_sequence(a, 5000), fate_sequence(b, 5000));
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.delayed(), b.delayed());
  EXPECT_EQ(a.duplicated(), b.duplicated());
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  const FaultPlanConfig cfg{0.3, 0.0, 0.0};
  FaultPlan a(cfg, 1);
  FaultPlan b(cfg, 2);
  EXPECT_NE(fate_sequence(a, 2000), fate_sequence(b, 2000));
}

TEST(FaultPlanTest, FateIndependentOfContext) {
  // The fate of transmission #i depends only on (seed, i), never on the
  // endpoints — this is what makes replay insensitive to routing detail.
  const FaultPlanConfig cfg{0.25, 0.1, 0.1};
  FaultPlan a(cfg, 99);
  FaultPlan b(cfg, 99);
  std::vector<MessageFate> fa;
  std::vector<MessageFate> fb;
  for (std::size_t i = 0; i < 3000; ++i) {
    fa.push_back(a.on_message(MessageContext{1, 2, 0}));
    fb.push_back(b.on_message(
        MessageContext{static_cast<overlay::NodeId>(i % 17),
                       static_cast<overlay::NodeId>(i % 5), i % 3}));
  }
  EXPECT_EQ(fa, fb);
}

TEST(FaultPlanTest, RatesApproximatelyRespected) {
  FaultPlan plan({0.2, 0.1, 0.05}, 1234);
  const std::size_t n = 50'000;
  (void)fate_sequence(plan, n);
  const auto frac = [n](std::size_t c) {
    return static_cast<double>(c) / static_cast<double>(n);
  };
  EXPECT_NEAR(frac(plan.dropped()), 0.2, 0.01);
  EXPECT_NEAR(frac(plan.delayed()), 0.1, 0.01);
  EXPECT_NEAR(frac(plan.duplicated()), 0.05, 0.01);
}

TEST(FaultPlanTest, StallAndResumeAtMessageCounts) {
  FaultPlan plan({}, 5);
  plan.stall_at(3, 77);
  plan.resume_at(6, 77);
  for (std::size_t i = 0; i < 10; ++i) {
    (void)plan.on_message(MessageContext{0, 1, 0});
    // An event scheduled at N fires while the transmission with index N is
    // decided, i.e. once messages_seen() has advanced past N.
    if (plan.messages_seen() >= 4 && plan.messages_seen() <= 6) {
      EXPECT_TRUE(plan.is_stalled(77)) << "after " << plan.messages_seen();
    } else if (plan.messages_seen() >= 7) {
      EXPECT_FALSE(plan.is_stalled(77)) << "after " << plan.messages_seen();
    }
  }
}

TEST(FaultPlanTest, CrashFiresExactlyOnce) {
  FaultPlan plan({}, 5);
  plan.crash_at(0, 4);
  plan.crash_at(5, 9);

  // Due immediately (zero messages needed).
  std::vector<overlay::NodeId> due = plan.take_due_crashes();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 4u);
  EXPECT_TRUE(plan.is_stalled(4));  // crashed nodes stop answering

  // Not due yet: only fires once the counter reaches 5.
  EXPECT_TRUE(plan.take_due_crashes().empty());
  (void)fate_sequence(plan, 5);
  due = plan.take_due_crashes();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 9u);

  // Never again: each crash event is surfaced exactly once.
  (void)fate_sequence(plan, 100);
  EXPECT_TRUE(plan.take_due_crashes().empty());
}

// --- integration with the overlay's retry machinery -------------------------

overlay::Overlay make_ring(std::size_t nodes) {
  overlay::OverlayConfig cfg;
  cfg.key_space = 1u << 16;
  overlay::Overlay net(cfg);
  for (std::size_t i = 0; i < nodes; ++i) {
    (void)net.join(static_cast<overlay::Key>((i * cfg.key_space) / nodes));
  }
  net.repair();
  return net;
}

TEST(FaultPlanOverlayTest, ZeroRatePlanMatchesNoHookExactly) {
  overlay::Overlay net = make_ring(64);
  const overlay::Key target = 40'000;
  const overlay::RouteResult bare = net.route(0, target);

  FaultPlan plan({}, 3);
  net.set_fault_hook(&plan);
  const overlay::RouteResult hooked = net.route(0, target);
  net.set_fault_hook(nullptr);

  EXPECT_EQ(hooked.destination, bare.destination);
  EXPECT_EQ(hooked.hops, bare.hops);
  EXPECT_EQ(hooked.reached_closest, bare.reached_closest);
  EXPECT_FALSE(hooked.blocked);
  EXPECT_EQ(hooked.stats.messages, bare.stats.messages);
  EXPECT_FALSE(hooked.stats.any_faults());
}

TEST(FaultPlanOverlayTest, DropsCauseRetriesAndStillSucceed) {
  overlay::Overlay net = make_ring(64);
  FaultPlan plan({0.3, 0.0, 0.0}, 11);
  net.set_fault_hook(&plan);

  std::size_t reached = 0;
  overlay::HopStats total;
  for (overlay::Key k = 100; k < 60'000; k += 1000) {
    const overlay::RouteResult r = net.route(0, k);
    if (r.reached_closest) ++reached;
    total += r.stats;
  }
  net.set_fault_hook(nullptr);

  // 30% drop with 3 retries: per-hop loss ~0.8%, so nearly every route
  // completes, and the retries that saved them are visible in the stats.
  EXPECT_GE(reached, 55u);
  EXPECT_GT(total.retries, 0u);
  EXPECT_GE(total.timeouts, total.retries);  // every retry follows a timeout
  EXPECT_GT(total.messages, 0u);
}

TEST(FaultPlanOverlayTest, StalledNodeForcesReroute) {
  overlay::Overlay net = make_ring(32);
  // Stall the node closest to the target: routes toward it must give up on
  // it after retries and end blocked (no closer live pointer answers).
  const overlay::Key target = 33'000;
  const overlay::NodeId home = net.closest_alive(target);
  FaultPlan plan({}, 0);
  plan.stall_at(0, home);
  net.set_fault_hook(&plan);
  const overlay::RouteResult r = net.route(0, target);
  net.set_fault_hook(nullptr);

  EXPECT_NE(r.destination, home);
  EXPECT_FALSE(r.reached_closest);
  EXPECT_TRUE(r.blocked);
  EXPECT_GT(r.stats.timeouts, 0u);
}

TEST(FaultPlanOverlayTest, BackoffCostGrowsExponentially) {
  overlay::OverlayConfig cfg;
  cfg.key_space = 1u << 16;
  cfg.retry.max_retries = 3;
  cfg.retry.timeout = 1.0;
  cfg.retry.backoff = 2.0;
  overlay::Overlay net(cfg);
  (void)net.join(100);
  (void)net.join(50'000);
  net.repair();

  FaultPlan plan({}, 0);
  plan.stall_at(0, 1);  // the only other node never answers
  net.set_fault_hook(&plan);
  const overlay::RouteResult r = net.route(0, 60'000);
  net.set_fault_hook(nullptr);

  // 4 attempts waited out: 1 + 2 + 4 + 8 backoff units.
  EXPECT_TRUE(r.blocked);
  EXPECT_EQ(r.stats.timeouts, 4u);
  EXPECT_EQ(r.stats.retries, 3u);
  EXPECT_DOUBLE_EQ(r.stats.timeout_cost, 15.0);
}

TEST(FaultPlanOverlayTest, RetriesDisabledLosesRoutesAtHighDrop) {
  overlay::OverlayConfig cfg;
  cfg.key_space = 1u << 16;
  cfg.retry.max_retries = 0;
  overlay::OverlayConfig cfg_on;
  cfg_on.key_space = cfg.key_space;
  overlay::Overlay with_retries_off(cfg);
  overlay::Overlay with_retries_on(cfg_on);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto key = static_cast<overlay::Key>((i * cfg.key_space) / 64);
    (void)with_retries_off.join(key);
    (void)with_retries_on.join(key);
  }
  with_retries_off.repair();
  with_retries_on.repair();

  auto run = [](overlay::Overlay& net, std::uint64_t seed) {
    FaultPlan plan({0.4, 0.0, 0.0}, seed);
    net.set_fault_hook(&plan);
    std::size_t reached = 0;
    for (overlay::Key k = 100; k < 60'000; k += 500) {
      if (net.route(0, k).reached_closest) ++reached;
    }
    net.set_fault_hook(nullptr);
    return reached;
  };

  // Same fault sequence seed: the only difference is the retry budget.
  EXPECT_GT(run(with_retries_on, 21), run(with_retries_off, 21));
}

}  // namespace
}  // namespace meteo::sim
