/// Randomized schedule/cancel/run interleavings for the event queue,
/// checked against a reference model.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace meteo::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  EventQueue q;

  struct ModelEvent {
    double when;
    EventId id;
    bool cancelled = false;
  };
  std::map<EventId, ModelEvent> model;
  std::vector<EventId> fired;

  for (int step = 0; step < 500; ++step) {
    const double op = rng.uniform();
    if (op < 0.6) {
      const double when = q.now() + rng.uniform(0.0, 10.0);
      const EventId id =
          q.schedule_at(when, [&fired, &q, &model] {
            // Identify ourselves by scanning the model for the event that
            // matches the current time and is next in id order — instead,
            // the action captures nothing; the model replay below derives
            // the expected order independently.
            (void)q;
            (void)model;
            fired.push_back(0);  // placeholder count marker
          });
      model.emplace(id, ModelEvent{when, id});
    } else if (op < 0.75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(model.size())));
      const bool ours = q.cancel(it->first);
      // Model: cancellable iff not yet fired and not yet cancelled.
      const bool expected = !it->second.cancelled;
      EXPECT_EQ(ours, expected);
      it->second.cancelled = true;
    } else {
      const double until = q.now() + rng.uniform(0.0, 5.0);
      const std::size_t fired_before = fired.size();
      q.run_until(until);
      // Model: count events with when <= until, not cancelled, not fired.
      std::size_t expected = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (!it->second.cancelled && it->second.when <= until) {
          ++expected;
          it = model.erase(it);  // fired
        } else {
          ++it;
        }
      }
      EXPECT_EQ(fired.size() - fired_before, expected);
      EXPECT_DOUBLE_EQ(q.now(), until);
    }
  }

  // Drain: everything not cancelled eventually fires.
  std::size_t remaining = 0;
  for (const auto& [id, ev] : model) {
    if (!ev.cancelled) ++remaining;
  }
  const std::size_t fired_before = fired.size();
  q.run_all();
  EXPECT_EQ(fired.size() - fired_before, remaining);
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace meteo::sim
