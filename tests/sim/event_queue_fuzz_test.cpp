/// Randomized schedule/cancel/run interleavings for the event queue,
/// checked against a reference model, plus a fuzzed lossy-transport model
/// (FaultPlan fates driving delayed/duplicated deliveries) that checks
/// exactly-once effects and one-shot crash events.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plan.hpp"

namespace meteo::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  EventQueue q;

  struct ModelEvent {
    double when;
    EventId id;
    bool cancelled = false;
  };
  std::map<EventId, ModelEvent> model;
  std::vector<EventId> fired;

  for (int step = 0; step < 500; ++step) {
    const double op = rng.uniform();
    if (op < 0.6) {
      const double when = q.now() + rng.uniform(0.0, 10.0);
      const EventId id =
          q.schedule_at(when, [&fired, &q, &model] {
            // Identify ourselves by scanning the model for the event that
            // matches the current time and is next in id order — instead,
            // the action captures nothing; the model replay below derives
            // the expected order independently.
            (void)q;
            (void)model;
            fired.push_back(0);  // placeholder count marker
          });
      model.emplace(id, ModelEvent{when, id});
    } else if (op < 0.75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(model.size())));
      const bool ours = q.cancel(it->first);
      // Model: cancellable iff not yet fired and not yet cancelled.
      const bool expected = !it->second.cancelled;
      EXPECT_EQ(ours, expected);
      it->second.cancelled = true;
    } else {
      const double until = q.now() + rng.uniform(0.0, 5.0);
      const std::size_t fired_before = fired.size();
      q.run_until(until);
      // Model: count events with when <= until, not cancelled, not fired.
      std::size_t expected = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (!it->second.cancelled && it->second.when <= until) {
          ++expected;
          it = model.erase(it);  // fired
        } else {
          ++it;
        }
      }
      EXPECT_EQ(fired.size() - fired_before, expected);
      EXPECT_DOUBLE_EQ(q.now(), until);
    }
  }

  // Drain: everything not cancelled eventually fires.
  std::size_t remaining = 0;
  for (const auto& [id, ev] : model) {
    if (!ev.cancelled) ++remaining;
  }
  const std::size_t fired_before = fired.size();
  q.run_all();
  EXPECT_EQ(fired.size() - fired_before, remaining);
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

// A lossy transport simulated on the queue: each message's fate comes from
// a FaultPlan, deliveries are scheduled with random latencies (delays past
// the timeout horizon, duplicates as extra in-flight copies), and the run
// loop is interleaved with the sends. Invariants: no scheduled delivery is
// ever lost by the queue, duplicated deliveries have their effect exactly
// once, delivery times are non-decreasing, and delayed copies arrive after
// the timeout horizon.
TEST_P(EventQueueFuzz, FaultyTransportDeliversExactlyOnce) {
  Rng rng(GetParam());
  EventQueue q;
  FaultPlan plan({0.15, 0.2, 0.2}, GetParam() ^ 0xfa417u);

  constexpr double kTimeout = 2.0;
  constexpr std::size_t kMessages = 400;
  std::vector<int> arrivals(kMessages, 0);  // raw copies, incl. duplicates
  std::vector<int> effects(kMessages, 0);   // receiver-side dedup
  std::vector<bool> was_dropped(kMessages, false);
  std::vector<bool> was_delayed(kMessages, false);
  std::vector<double> sent_at(kMessages, 0.0);
  std::vector<double> first_arrival(kMessages, -1.0);
  std::vector<double> delivery_times;
  std::size_t scheduled_copies = 0;

  for (std::size_t i = 0; i < kMessages; ++i) {
    const auto fate =
        plan.on_message(overlay::MessageContext{1, 2, 0});
    sent_at[i] = q.now();
    const auto deliver = [&, i] {
      delivery_times.push_back(q.now());
      ++arrivals[i];
      if (arrivals[i] == 1) {
        ++effects[i];  // effect-once dedup by id
        first_arrival[i] = q.now();
      }
    };
    switch (fate) {
      case overlay::MessageFate::kDrop:
        was_dropped[i] = true;
        break;
      case overlay::MessageFate::kDelay:
        // Arrives, but only after the sender's timeout horizon.
        was_delayed[i] = true;
        q.schedule_in(kTimeout + rng.uniform(0.1, 1.0), deliver);
        ++scheduled_copies;
        break;
      case overlay::MessageFate::kDuplicate:
        q.schedule_in(rng.uniform(0.1, 1.0), deliver);
        q.schedule_in(rng.uniform(0.1, 1.0), deliver);
        scheduled_copies += 2;
        break;
      case overlay::MessageFate::kDeliver:
        q.schedule_in(rng.uniform(0.1, 1.0), deliver);
        ++scheduled_copies;
        break;
    }
    // Interleave draining with sending so deliveries and sends mix.
    if (rng.uniform() < 0.3) q.run_until(q.now() + rng.uniform(0.0, 1.5));
  }

  // A crash event armed redundantly (e.g. by a duplicated control message)
  // must still fire exactly once: the first firing disarms the other copy.
  int crash_fires = 0;
  EventId crash_a = 0;
  EventId crash_b = 0;
  crash_a = q.schedule_in(0.5, [&] {
    ++crash_fires;
    (void)q.cancel(crash_b);
  });
  crash_b = q.schedule_in(1.5, [&] {
    ++crash_fires;
    (void)q.cancel(crash_a);
  });

  q.run_all();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(crash_fires, 1);

  // Every scheduled copy arrived; nothing was lost inside the queue.
  EXPECT_EQ(delivery_times.size(), scheduled_copies);
  EXPECT_TRUE(std::is_sorted(delivery_times.begin(), delivery_times.end()));

  for (std::size_t i = 0; i < kMessages; ++i) {
    if (was_dropped[i]) {
      EXPECT_EQ(arrivals[i], 0) << "dropped message " << i << " arrived";
    } else {
      EXPECT_GE(arrivals[i], 1) << "message " << i << " lost";
      EXPECT_EQ(effects[i], 1) << "message " << i << " effect not once";
      if (was_delayed[i]) {
        // Delayed copies really did outlive the timeout horizon (the
        // property the overlay charges a timeout for before the arrival).
        EXPECT_GE(first_arrival[i], sent_at[i] + kTimeout) << "message " << i;
      }
    }
  }
  EXPECT_EQ(plan.delayed(),
            static_cast<std::size_t>(
                std::count(was_delayed.begin(), was_delayed.end(), true)));
}

}  // namespace
}  // namespace meteo::sim
