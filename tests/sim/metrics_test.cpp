#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace meteo::sim {
namespace {

TEST(MetricRegistry, CounterStartsAtZero) {
  MetricRegistry m;
  EXPECT_EQ(m.counter_value("publish.messages"), 0u);
  EXPECT_EQ(m.counter("publish.messages"), 0u);
}

TEST(MetricRegistry, CounterAccumulates) {
  MetricRegistry m;
  m.counter("hops") += 5;
  m.counter("hops") += 2;
  EXPECT_EQ(m.counter_value("hops"), 7u);
}

TEST(MetricRegistry, CounterHandleStaysValid) {
  MetricRegistry m;
  auto& h = m.counter("a");
  m.counter("b") = 1;
  m.counter("c") = 2;
  h += 10;
  EXPECT_EQ(m.counter_value("a"), 10u);
}

TEST(MetricRegistry, DistributionObserves) {
  MetricRegistry m;
  m.distribution("latency").add(1.0);
  m.distribution("latency").add(3.0);
  const OnlineStats* d = m.find_distribution("latency");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
}

TEST(MetricRegistry, FindMissingDistributionIsNull) {
  const MetricRegistry m;
  EXPECT_EQ(m.find_distribution("nope"), nullptr);
}

TEST(MetricRegistry, ResetClearsEverything) {
  MetricRegistry m;
  m.counter("x") = 5;
  m.distribution("y").add(1.0);
  m.reset();
  EXPECT_EQ(m.counter_value("x"), 0u);
  EXPECT_EQ(m.find_distribution("y"), nullptr);
  EXPECT_TRUE(m.counters().empty());
}

TEST(MetricRegistry, IterationIsSortedByName) {
  MetricRegistry m;
  m.counter("zeta") = 1;
  m.counter("alpha") = 2;
  auto it = m.counters().begin();
  EXPECT_EQ(it->first, "alpha");
}

}  // namespace
}  // namespace meteo::sim
