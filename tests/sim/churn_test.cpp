#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace meteo::sim {
namespace {

overlay::Overlay make_overlay(std::size_t n, Rng& rng) {
  overlay::Overlay o;
  while (o.alive_count() < n) {
    (void)o.join(rng.below(o.config().key_space));
  }
  o.repair();
  return o;
}

TEST(FailFraction, FailsRequestedShare) {
  Rng rng(1);
  overlay::Overlay o = make_overlay(1000, rng);
  const std::size_t failed = fail_fraction(o, 0.3, rng);
  EXPECT_EQ(failed, 300u);
  EXPECT_EQ(o.alive_count(), 700u);
}

TEST(FailFraction, ZeroAndFullBounds) {
  Rng rng(2);
  overlay::Overlay o = make_overlay(100, rng);
  EXPECT_EQ(fail_fraction(o, 0.0, rng), 0u);
  EXPECT_EQ(o.alive_count(), 100u);
  EXPECT_EQ(fail_fraction(o, 1.0, rng), 100u);
  EXPECT_EQ(o.alive_count(), 0u);
}

TEST(FailFraction, VictimsAreRandomized) {
  // Two different seeds should produce (almost surely) different victim
  // sets; verify via surviving-key fingerprints.
  Rng build1(3);
  Rng build2(3);
  overlay::Overlay o1 = make_overlay(500, build1);
  overlay::Overlay o2 = make_overlay(500, build2);
  Rng f1(100);
  Rng f2(200);
  fail_fraction(o1, 0.5, f1);
  fail_fraction(o2, 0.5, f2);
  overlay::Key sum1 = 0;
  overlay::Key sum2 = 0;
  for (const auto id : o1.alive_nodes()) sum1 += o1.key_of(id);
  for (const auto id : o2.alive_nodes()) sum2 += o2.key_of(id);
  EXPECT_NE(sum1, sum2);
}

TEST(ChurnProcess, JoinsGrowTheOverlay) {
  Rng rng(4);
  overlay::Overlay o = make_overlay(50, rng);
  EventQueue q;
  ChurnConfig cfg;
  cfg.join_rate = 10.0;          // ~10 joins per unit time
  cfg.fail_rate_per_node = 0.0;  // no failures
  cfg.repair_interval = 0.0;
  ChurnProcess churn(o, q, rng, cfg);
  q.run_until(20.0);
  EXPECT_GT(churn.joins(), 100u);
  EXPECT_EQ(o.alive_count(), 50u + churn.joins());
}

TEST(ChurnProcess, FailuresShrinkTheOverlay) {
  Rng rng(5);
  overlay::Overlay o = make_overlay(500, rng);
  EventQueue q;
  ChurnConfig cfg;
  cfg.join_rate = 0.0;
  cfg.fail_rate_per_node = 0.01;
  cfg.repair_interval = 0.0;
  ChurnProcess churn(o, q, rng, cfg);
  q.run_until(20.0);
  EXPECT_GT(churn.failures(), 20u);
  EXPECT_EQ(o.alive_count(), 500u - churn.failures());
}

TEST(ChurnProcess, OnJoinCallbackFires) {
  Rng rng(6);
  overlay::Overlay o = make_overlay(10, rng);
  EventQueue q;
  ChurnConfig cfg;
  cfg.join_rate = 5.0;
  cfg.fail_rate_per_node = 0.0;
  cfg.repair_interval = 0.0;
  std::size_t callbacks = 0;
  ChurnProcess churn(o, q, rng, cfg, [&](overlay::NodeId id) {
    EXPECT_TRUE(o.is_alive(id));
    ++callbacks;
  });
  q.run_until(10.0);
  EXPECT_EQ(callbacks, churn.joins());
  EXPECT_GT(callbacks, 0u);
}

TEST(ChurnProcess, RepairKeepsRoutingHealthyUnderChurn) {
  Rng rng(7);
  overlay::Overlay o = make_overlay(300, rng);
  EventQueue q;
  ChurnConfig cfg;
  cfg.join_rate = 2.0;
  cfg.fail_rate_per_node = 0.005;
  cfg.repair_interval = 5.0;
  ChurnProcess churn(o, q, rng, cfg);
  int successes = 0;
  int queries = 0;
  for (int round = 0; round < 20; ++round) {
    q.run_until(q.now() + 5.0);
    for (int i = 0; i < 50; ++i) {
      const auto r = o.route(o.random_alive(rng), rng.below(o.config().key_space));
      successes += r.reached_closest ? 1 : 0;
      ++queries;
    }
  }
  EXPECT_GT(churn.repairs(), 10u);
  EXPECT_GT(successes, queries * 95 / 100);
}

TEST(ChurnProcess, StopHaltsScheduling) {
  Rng rng(8);
  overlay::Overlay o = make_overlay(50, rng);
  EventQueue q;
  ChurnConfig cfg;
  cfg.join_rate = 10.0;
  cfg.fail_rate_per_node = 0.0;
  cfg.repair_interval = 0.0;
  ChurnProcess churn(o, q, rng, cfg);
  q.run_until(5.0);
  const std::size_t joins_before = churn.joins();
  churn.stop();
  q.run_until(50.0);
  EXPECT_LE(churn.joins(), joins_before + 1);  // at most one in-flight event
}

}  // namespace
}  // namespace meteo::sim
