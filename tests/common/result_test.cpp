#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace meteo {
namespace {

enum class ErrorCode { kNotFound, kFull };

TEST(Result, HoldsValue) {
  const Result<int, ErrorCode> r(42);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  const Result<int, ErrorCode> r(Err{ErrorCode::kFull});
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ErrorCode::kFull);
}

TEST(Result, ValueOr) {
  const Result<int, ErrorCode> ok(7);
  const Result<int, ErrorCode> bad(Err{ErrorCode::kNotFound});
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MapTransformsValue) {
  const Result<int, ErrorCode> r(10);
  const auto doubled = r.map([](int x) { return x * 2; });
  ASSERT_TRUE(doubled.has_value());
  EXPECT_EQ(doubled.value(), 20);
}

TEST(Result, MapPropagatesError) {
  const Result<int, ErrorCode> r(Err{ErrorCode::kNotFound});
  const auto mapped = r.map([](int x) { return std::to_string(x); });
  ASSERT_FALSE(mapped.has_value());
  EXPECT_EQ(mapped.error(), ErrorCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string, ErrorCode> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, MutableValueAccess) {
  Result<int, ErrorCode> r(1);
  r.value() = 99;
  EXPECT_EQ(r.value(), 99);
}

}  // namespace
}  // namespace meteo
