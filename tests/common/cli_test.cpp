#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace meteo {
namespace {

CliParser make_parser() {
  CliParser p;
  p.add_flag("nodes", "1000", "node count");
  p.add_flag("rate", "0.5", "rate");
  p.add_bool("csv", false, "emit csv");
  p.add_bool("verbose", true, "verbose output");
  return p;
}

TEST(CliParser, DefaultsApply) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("nodes"), 1000);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_FALSE(p.get_bool("csv"));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(CliParser, EqualsSyntax) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--nodes=5000", "--rate=1.25"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("nodes"), 5000);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.25);
}

TEST(CliParser, SpaceSyntax) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--nodes", "42"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("nodes"), 42);
}

TEST(CliParser, BoolFlagAndNegation) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--csv", "--no-verbose"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_TRUE(p.get_bool("csv"));
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(CliParser, UnknownFlagFails) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliParser, MissingValueFails) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--nodes"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliParser, PositionalArgumentsCollected) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "input.log", "--csv", "other"};
  ASSERT_TRUE(p.parse(4, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.log");
  EXPECT_EQ(p.positional()[1], "other");
}

}  // namespace
}  // namespace meteo
