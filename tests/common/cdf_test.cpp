#include "common/cdf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace meteo {
namespace {

TEST(PiecewiseLinearMap, IdentityThroughTwoKnots) {
  const PiecewiseLinearMap f({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(0.25), 0.25);
  EXPECT_DOUBLE_EQ(f(1.0), 1.0);
}

TEST(PiecewiseLinearMap, ClampsOutsideDomain) {
  const PiecewiseLinearMap f({{0.0, 10.0}, {1.0, 20.0}});
  EXPECT_DOUBLE_EQ(f(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(f(5.0), 20.0);
}

TEST(PiecewiseLinearMap, MultiSegmentInterpolation) {
  const PiecewiseLinearMap f({{0.0, 0.0}, {1.0, 10.0}, {3.0, 10.0}, {4.0, 30.0}});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(2.0), 10.0);   // flat segment
  EXPECT_DOUBLE_EQ(f(3.5), 20.0);
}

TEST(PiecewiseLinearMap, MonotoneProperty) {
  const PiecewiseLinearMap f(
      {{0.0, 0.0}, {10.0, 3.0}, {20.0, 3.0}, {50.0, 100.0}});
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.uniform(-10.0, 60.0);
    const double b = rng.uniform(-10.0, 60.0);
    if (a <= b) {
      EXPECT_LE(f(a), f(b));
    } else {
      EXPECT_GE(f(a), f(b));
    }
  }
}

TEST(PiecewiseLinearMap, InverseRoundTrip) {
  const PiecewiseLinearMap f({{0.0, 5.0}, {2.0, 9.0}, {4.0, 17.0}});
  const PiecewiseLinearMap g = f.inverse();
  for (const double x : {0.0, 0.5, 1.0, 2.0, 3.0, 4.0}) {
    EXPECT_NEAR(g(f(x)), x, 1e-12);
  }
}

TEST(PiecewiseLinearMap, InverseSkipsFlatSegments) {
  const PiecewiseLinearMap f({{0.0, 0.0}, {1.0, 5.0}, {2.0, 5.0}, {3.0, 10.0}});
  const PiecewiseLinearMap g = f.inverse();
  // y = 5 maps back to the left edge of the flat region.
  EXPECT_DOUBLE_EQ(g(5.0), 1.0);
  EXPECT_DOUBLE_EQ(g(10.0), 3.0);
}

TEST(EmpiricalCdf, FractionAtBounds) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileIsLeftInverse) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, MinMax) {
  const std::vector<double> xs = {5.0, -1.0, 3.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.min(), -1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_EQ(cdf.sample_count(), 3u);
}

TEST(EmpiricalCdf, ResampleSpansDomain) {
  std::vector<double> xs;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  const EmpiricalCdf cdf(xs);
  const auto knots = cdf.resample(11);
  ASSERT_EQ(knots.size(), 11u);
  EXPECT_DOUBLE_EQ(knots.front().x, cdf.min());
  EXPECT_DOUBLE_EQ(knots.back().x, cdf.max());
  EXPECT_DOUBLE_EQ(knots.back().y, 1.0);
  for (std::size_t i = 1; i < knots.size(); ++i) {
    EXPECT_GT(knots[i].x, knots[i - 1].x);
    EXPECT_GE(knots[i].y, knots[i - 1].y);
  }
}

TEST(EmpiricalCdf, ResampleOfUniformIsNearlyLinear) {
  std::vector<double> xs;
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.uniform());
  const EmpiricalCdf cdf(xs);
  for (const auto& k : cdf.resample(21)) {
    EXPECT_NEAR(k.y, k.x, 0.02);
  }
}

TEST(EmpiricalCdf, DegenerateSingleValue) {
  const std::vector<double> xs(10, 7.0);
  const EmpiricalCdf cdf(xs);
  const auto knots = cdf.resample(5);
  ASSERT_GE(knots.size(), 2u);
  EXPECT_DOUBLE_EQ(knots.back().y, 1.0);
}

}  // namespace
}  // namespace meteo
