#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace meteo {
namespace {

TEST(TextTable, AlignedOutputContainsCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, CsvBasic) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesSpecialCharacters) {
  TextTable t({"a"});
  t.add_row({"hello, world"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"hello, world\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.5), "1.5");
  EXPECT_EQ(TextTable::num(0.125, 3), "0.125");
  EXPECT_EQ(TextTable::integer(-42), "-42");
  EXPECT_EQ(TextTable::integer(1234567890123LL), "1234567890123");
}

}  // namespace
}  // namespace meteo
