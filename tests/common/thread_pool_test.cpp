#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace meteo {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    n.fetch_add(1);
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ChunkedCoversDisjointRanges) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunked(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::atomic<long long> sum{0};
  pool.parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t) { throw std::logic_error("x"); });
  } catch (const std::logic_error&) {
  }
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> n{0};
  pool.parallel_for(0, 256, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 256);
}

}  // namespace
}  // namespace meteo
