#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace meteo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsAlwaysInRange) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng r(13);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(23);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng r(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(r.lognormal(1.0, 1.5), 0.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Splitmix64, KnownFixedPointFree) {
  // splitmix64 must act as a bijection-ish mixer: distinct inputs map to
  // distinct outputs for a sample of consecutive integers.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 4096; ++i) outs.insert(splitmix64(i));
  EXPECT_EQ(outs.size(), 4096u);
}

}  // namespace
}  // namespace meteo
