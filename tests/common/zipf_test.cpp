#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace meteo {
namespace {

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler z(100, 1.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < 100; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfIsDecreasing) {
  const ZipfSampler z(50, 0.8);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_LT(z.pmf(k), z.pmf(k - 1));
  }
}

TEST(ZipfSampler, SamplesInRange) {
  const ZipfSampler z(37, 1.2);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(z(rng), 37u);
  }
}

TEST(ZipfSampler, SingleElement) {
  const ZipfSampler z(1, 1.0);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  const std::size_t n = 200;
  const ZipfSampler z(n, 1.0);
  Rng rng(3);
  std::vector<int> counts(n, 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[z(rng)];
  // Check the head ranks where mass is concentrated.
  for (std::size_t k = 0; k < 10; ++k) {
    const double expected = z.pmf(k);
    const double observed = static_cast<double>(counts[k]) / draws;
    EXPECT_NEAR(observed, expected, 0.15 * expected + 0.001)
        << "rank " << k;
  }
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, RankOneIsMostPopular) {
  const double s = GetParam();
  const ZipfSampler z(1000, s);
  Rng rng(4);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z(rng)];
  const auto max_it = std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(max_it - counts.begin(), 0);
}

TEST_P(ZipfExponentSweep, PmfNormalized) {
  const ZipfSampler z(500, GetParam());
  double sum = 0.0;
  for (std::size_t k = 0; k < 500; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(AliasTable, UniformWeights) {
  const std::vector<double> w(8, 1.0);
  const AliasTable t(w);
  Rng rng(5);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[t(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

TEST(AliasTable, SkewedWeights) {
  const std::vector<double> w = {8.0, 1.0, 1.0};
  const AliasTable t(w);
  Rng rng(6);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[t(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.1, 0.01);
}

TEST(AliasTable, ZeroWeightNeverDrawn) {
  const std::vector<double> w = {1.0, 0.0, 1.0};
  const AliasTable t(w);
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_NE(t(rng), 1u);
  }
}

TEST(AliasTable, SingleEntry) {
  const std::vector<double> w = {3.5};
  const AliasTable t(w);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t(rng), 0u);
}

TEST(AliasTable, ProbabilityAccessor) {
  const std::vector<double> w = {1.0, 3.0};
  const AliasTable t(w);
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
}

TEST(AliasTable, LargeTableAllReachable) {
  std::vector<double> w(4096);
  Rng seed_rng(9);
  for (auto& x : w) x = seed_rng.uniform() + 0.01;
  const AliasTable t(w);
  Rng rng(10);
  std::vector<bool> seen(w.size(), false);
  for (int i = 0; i < 2000000; ++i) seen[t(rng)] = true;
  const auto reached = std::count(seen.begin(), seen.end(), true);
  EXPECT_GT(reached, static_cast<long>(w.size() * 99 / 100));
}

}  // namespace
}  // namespace meteo
