#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace meteo {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i * i % 37);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinEdges) {
  const Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, AddAndCount) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 10);
  h.add(0.9, 30);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.count(1), 30u);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 1.0);
}

TEST(Histogram, CumulativeOfEmptyIsZero) {
  const Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(3), 0.0);
}

TEST(Percentile, MedianOfOdd) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
}

TEST(Percentile, Interpolated) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 7.0);
}

TEST(Gini, PerfectlyEvenIsZero) {
  const std::vector<double> xs(10, 4.0);
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, MaximallyUneven) {
  std::vector<double> xs(100, 0.0);
  xs.back() = 1.0;
  EXPECT_NEAR(gini(xs), 0.99, 1e-12);
}

TEST(Gini, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  const std::vector<double> zeros(5, 0.0);
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

TEST(Gini, KnownValue) {
  // {1, 3}: Gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  const std::vector<double> xs = {1.0, 3.0};
  EXPECT_NEAR(gini(xs), 0.25, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 10.0};
  std::vector<double> b;
  for (const double x : a) b.push_back(x * 1000.0);
  EXPECT_NEAR(gini(a), gini(b), 1e-12);
}

}  // namespace
}  // namespace meteo
