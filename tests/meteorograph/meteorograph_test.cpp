#include "meteorograph/meteorograph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/stats.hpp"
#include "obs/names.hpp"
#include "sim/churn.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

namespace names = obs::names;

/// Total op.count across outcomes for one op, e.g. op_count(sys, "publish").
std::uint64_t op_count(const Meteorograph& sys, const char* op) {
  return sys.metrics().counter_total(names::kOpCount, {{names::kLabelOp, op}});
}

struct TestWorkload {
  workload::Trace trace;
  std::vector<double> weights;
  std::vector<vsm::SparseVector> vectors;  // all items, index = ItemId
  std::vector<vsm::SparseVector> sample;
};

TestWorkload make_workload(std::size_t items, std::uint64_t seed) {
  workload::TraceConfig cfg;
  cfg.num_items = items;
  cfg.num_keywords = 2000;
  cfg.mean_basket = 10.0;
  cfg.max_basket = 100;
  workload::Trace trace = workload::synthesize_trace(cfg, seed);
  std::vector<double> weights =
      trace.keyword_weights(workload::WeightScheme::kIdf);
  std::vector<vsm::SparseVector> vectors;
  vectors.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < items; i += 37) sample.push_back(vectors[i]);
  return TestWorkload{std::move(trace), std::move(weights),
                      std::move(vectors), std::move(sample)};
}

SystemConfig small_config(LoadBalanceMode mode, std::size_t nodes = 100) {
  SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = 2000;
  cfg.load_balance = mode;
  return cfg;
}

TEST(Meteorograph, ConstructionJoinsRequestedNodes) {
  const TestWorkload wl = make_workload(500, 1);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 1);
  EXPECT_EQ(sys.network().alive_count(), 100u);
  EXPECT_GT(sys.first_hop().size(), 0u);
}

TEST(Meteorograph, PublishStoresAtClosestNodeWithInfiniteCapacity) {
  const TestWorkload wl = make_workload(200, 2);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 2);
  for (vsm::ItemId id = 0; id < 200; ++id) {
    const PublishResult r = sys.publish(id, wl.vectors[id]);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.stored_at, r.home);  // no overflow with infinite capacity
    EXPECT_EQ(r.chain_hops, 0u);
    EXPECT_EQ(r.home,
              sys.network().closest_alive(sys.balanced_key(wl.vectors[id])));
  }
  EXPECT_EQ(sys.stored_item_count(), 200u);
}

TEST(Meteorograph, PublishRouteHopsAreLogarithmic) {
  const TestWorkload wl = make_workload(500, 3);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace, 1000),
                   wl.sample, 3);
  OnlineStats hops;
  for (vsm::ItemId id = 0; id < 500; ++id) {
    hops.add(static_cast<double>(sys.publish(id, wl.vectors[id]).route_hops));
  }
  EXPECT_LT(hops.mean(), 8.0);  // ~log_4(1000) = 5
}

TEST(Meteorograph, RetrieveFindsExactItem) {
  const TestWorkload wl = make_workload(300, 4);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 4);
  for (vsm::ItemId id = 0; id < 300; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  // Querying with an item's own vector must return that item with score 1.
  for (vsm::ItemId id = 0; id < 300; id += 13) {
    const RetrieveResult r = sys.retrieve(wl.vectors[id], 1);
    ASSERT_FALSE(r.items.empty());
    EXPECT_NEAR(r.items[0].score, 1.0, 1e-9);
  }
}

TEST(Meteorograph, RetrieveAmountIsRespected) {
  const TestWorkload wl = make_workload(300, 5);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 5);
  for (vsm::ItemId id = 0; id < 300; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  const RetrieveResult r = sys.retrieve(wl.vectors[0], 10);
  EXPECT_LE(r.items.size(), 10u);
  EXPECT_GE(r.items.size(), 1u);
  // Scores are sorted descending.
  for (std::size_t i = 1; i < r.items.size(); ++i) {
    EXPECT_GE(r.items[i - 1].score, r.items[i].score);
  }
}

TEST(Meteorograph, CapacityOverflowChainsToNeighbors) {
  const TestWorkload wl = make_workload(300, 6);
  SystemConfig cfg = small_config(LoadBalanceMode::kUnusedHashSpace, 50);
  cfg.node_capacity = 3;  // force heavy chaining (300 items / 50 nodes = 6c)
  Meteorograph sys(cfg, wl.sample, 6);
  std::size_t chained = 0;
  std::size_t published = 0;
  for (vsm::ItemId id = 0; id < 150; ++id) {  // exactly fills capacity
    const PublishResult r = sys.publish(id, wl.vectors[id]);
    if (!r.success) continue;
    ++published;
    chained += r.chain_hops > 0 ? 1 : 0;
  }
  EXPECT_EQ(published, 150u);
  EXPECT_GT(chained, 0u);
  EXPECT_EQ(sys.stored_item_count(), 150u);  // nothing lost
  // No node exceeds its capacity.
  for (const std::size_t load : sys.node_loads()) {
    EXPECT_LE(load, 3u);
  }
}

TEST(Meteorograph, OverflowPreservesAllItemsLocatable) {
  const TestWorkload wl = make_workload(200, 7);
  SystemConfig cfg = small_config(LoadBalanceMode::kUnusedHashSpace, 40);
  cfg.node_capacity = 8;
  Meteorograph sys(cfg, wl.sample, 7);
  for (vsm::ItemId id = 0; id < 200; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  for (vsm::ItemId id = 0; id < 200; ++id) {
    const LocateResult r = sys.locate(id, wl.vectors[id]);
    EXPECT_TRUE(r.found) << "item " << id;
  }
}

TEST(Meteorograph, PublishHopLimitCanFail) {
  const TestWorkload wl = make_workload(100, 8);
  SystemConfig cfg = small_config(LoadBalanceMode::kNone, 10);
  cfg.node_capacity = 2;   // 10 nodes x 2 = 20 slots for 100 items
  cfg.publish_hop_limit = 3;
  Meteorograph sys(cfg, wl.sample, 8);
  std::size_t failures = 0;
  for (vsm::ItemId id = 0; id < 100; ++id) {
    if (!sys.publish(id, wl.vectors[id]).success) ++failures;
  }
  EXPECT_GT(failures, 0u);
  EXPECT_EQ(sys.metrics().counter_value(names::kOpCount,
                                        {{names::kLabelOp, "publish"},
                                         {names::kLabelOutcome, "failed"}}),
            failures);
}

TEST(Meteorograph, LoadBalanceModesReduceGini) {
  const TestWorkload wl = make_workload(2000, 9);
  auto gini_of = [&](LoadBalanceMode mode) {
    Meteorograph sys(small_config(mode, 100), wl.sample, 9);
    for (vsm::ItemId id = 0; id < 2000; ++id) {
      (void)sys.publish(id, wl.vectors[id]);
    }
    std::vector<double> loads;
    for (const std::size_t l : sys.node_loads()) {
      loads.push_back(static_cast<double>(l));
    }
    return gini(loads);
  };
  const double none = gini_of(LoadBalanceMode::kNone);
  const double uhs = gini_of(LoadBalanceMode::kUnusedHashSpace);
  // Raw keys concentrate (Fig. 3) -> extreme imbalance; Eq. 6 flattens.
  EXPECT_GT(none, 0.9);
  EXPECT_LT(uhs, 0.8);
  EXPECT_LT(uhs, none);
}

TEST(Meteorograph, SimilaritySearchFindsAllMatchingItems) {
  const TestWorkload wl = make_workload(400, 10);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 10);
  for (vsm::ItemId id = 0; id < 400; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  // Query the most popular keyword; ground truth from the trace.
  const vsm::KeywordId popular = 0;
  std::set<vsm::ItemId> expected;
  for (std::size_t i = 0; i < 400; ++i) {
    if (wl.vectors[i].contains(popular)) expected.insert(i);
  }
  ASSERT_GT(expected.size(), 5u);
  const std::vector<vsm::KeywordId> q = {popular};
  const SearchResult r = sys.similarity_search(q, 0);  // k=0: discover all
  const std::set<vsm::ItemId> found(r.items.begin(), r.items.end());
  EXPECT_EQ(found, expected);
}

TEST(Meteorograph, SimilaritySearchStopsAtK) {
  const TestWorkload wl = make_workload(400, 11);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 11);
  for (vsm::ItemId id = 0; id < 400; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  const std::vector<vsm::KeywordId> q = {0};
  const SearchResult r = sys.similarity_search(q, 5);
  EXPECT_GE(r.items.size(), 5u);
  EXPECT_LE(r.items.size(), 5u + 50u);  // batched k' replies may overshoot
  // Every returned item actually matches.
  for (const vsm::ItemId id : r.items) {
    EXPECT_TRUE(wl.vectors[id].contains(0));
  }
  ASSERT_EQ(r.discovery_hops.size(), r.items.size());
}

TEST(Meteorograph, SimilaritySearchMultiKeyword) {
  const TestWorkload wl = make_workload(600, 12);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 12);
  for (vsm::ItemId id = 0; id < 600; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  // Pick a 2-keyword query known to have matches.
  std::vector<vsm::KeywordId> q;
  for (std::size_t i = 0; i < 600; ++i) {
    if (wl.vectors[i].nnz() >= 2) {
      q = {wl.vectors[i].entries()[0].keyword,
           wl.vectors[i].entries()[1].keyword};
      break;
    }
  }
  ASSERT_EQ(q.size(), 2u);
  std::set<vsm::ItemId> expected;
  for (std::size_t i = 0; i < 600; ++i) {
    if (wl.vectors[i].contains(q[0]) && wl.vectors[i].contains(q[1])) {
      expected.insert(i);
    }
  }
  const SearchResult r = sys.similarity_search(q, 0);
  const std::set<vsm::ItemId> found(r.items.begin(), r.items.end());
  EXPECT_EQ(found, expected);
}

TEST(Meteorograph, ReplicationSurvivesPrimaryFailure) {
  const TestWorkload wl = make_workload(200, 13);
  SystemConfig cfg = small_config(LoadBalanceMode::kUnusedHashSpace, 100);
  cfg.replicas = 4;
  Meteorograph sys(cfg, wl.sample, 13);
  std::vector<overlay::NodeId> primary(200);
  for (vsm::ItemId id = 0; id < 200; ++id) {
    const PublishResult r = sys.publish(id, wl.vectors[id]);
    ASSERT_TRUE(r.success);
    primary[id] = r.stored_at;
  }
  // Fail every primary holder; replicas must still answer.
  std::set<overlay::NodeId> victims(primary.begin(), primary.end());
  for (const overlay::NodeId v : victims) {
    if (sys.network().is_alive(v) && sys.network().alive_count() > 1) {
      sys.network().fail(v);
    }
  }
  sys.network().repair();
  std::size_t found = 0;
  for (vsm::ItemId id = 0; id < 200; ++id) {
    const LocateResult r = sys.locate(id, wl.vectors[id], {.walk_limit = 16});
    if (r.found) {
      ++found;
      EXPECT_TRUE(r.via_replica || sys.network().is_alive(r.node));
    }
  }
  EXPECT_GT(found, 180u);  // a few replicas may share failed nodes
}

TEST(Meteorograph, NoReplicasLosesItemsOnFailure) {
  const TestWorkload wl = make_workload(200, 14);
  SystemConfig cfg = small_config(LoadBalanceMode::kUnusedHashSpace, 50);
  cfg.replicas = 1;
  Meteorograph sys(cfg, wl.sample, 14);
  for (vsm::ItemId id = 0; id < 200; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  Rng fail_rng(99);
  sim::fail_fraction(sys.network(), 0.5, fail_rng);
  sys.network().repair();
  std::size_t found = 0;
  for (vsm::ItemId id = 0; id < 200; ++id) {
    if (sys.locate(id, wl.vectors[id], {.walk_limit = 8}).found) ++found;
  }
  // Roughly half the items died with their hosts.
  EXPECT_LT(found, 160u);
  EXPECT_GT(found, 40u);
}

TEST(Meteorograph, DeterministicAcrossRuns) {
  const TestWorkload wl = make_workload(100, 15);
  auto fingerprint = [&] {
    Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpacePlusHotRegions),
                     wl.sample, 42);
    std::uint64_t fp = 0;
    for (vsm::ItemId id = 0; id < 100; ++id) {
      const PublishResult r = sys.publish(id, wl.vectors[id]);
      fp = fp * 1315423911u + r.stored_at + r.route_hops;
    }
    return fp;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(Meteorograph, MetricsAccumulate) {
  const TestWorkload wl = make_workload(50, 16);
  Meteorograph sys(small_config(LoadBalanceMode::kUnusedHashSpace), wl.sample, 16);
  for (vsm::ItemId id = 0; id < 50; ++id) {
    (void)sys.publish(id, wl.vectors[id]);
  }
  (void)sys.retrieve(wl.vectors[0], 3);
  EXPECT_EQ(op_count(sys, "publish"), 50u);
  EXPECT_EQ(op_count(sys, "retrieve"), 1u);
  EXPECT_GT(sys.metrics().counter_value(names::kOpMessages,
                                        {{names::kLabelOp, "publish"}}),
            0u);
}

TEST(Meteorograph, HotRegionModeStillRoutesAndRetrieves) {
  const TestWorkload wl = make_workload(500, 17);
  Meteorograph sys(
      small_config(LoadBalanceMode::kUnusedHashSpacePlusHotRegions, 200),
      wl.sample, 17);
  for (vsm::ItemId id = 0; id < 500; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  for (vsm::ItemId id = 0; id < 500; id += 29) {
    const RetrieveResult r = sys.retrieve(wl.vectors[id], 1);
    ASSERT_FALSE(r.items.empty());
    EXPECT_NEAR(r.items[0].score, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace meteo::core
