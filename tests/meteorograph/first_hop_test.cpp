#include "meteorograph/first_hop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace meteo::core {
namespace {

FirstHopIndex make_index() {
  FirstHopIndex idx;
  idx.add(500, {1, 2, 3});
  idx.add(300, {2, 3, 4});
  idx.add(700, {1, 4});
  idx.add(100, {5});
  return idx;
}

TEST(FirstHopIndex, SingleKeywordSmallestKey) {
  const FirstHopIndex idx = make_index();
  const std::vector<vsm::KeywordId> q = {2};
  const auto key = idx.smallest_matching_key(q);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, 300u);  // items at 500 and 300 contain keyword 2
}

TEST(FirstHopIndex, MultiKeywordIntersection) {
  const FirstHopIndex idx = make_index();
  const std::vector<vsm::KeywordId> q = {1, 4};
  const auto key = idx.smallest_matching_key(q);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, 700u);  // only the 700 item has both
}

TEST(FirstHopIndex, NoMatchReturnsNullopt) {
  const FirstHopIndex idx = make_index();
  const std::vector<vsm::KeywordId> q = {1, 5};
  EXPECT_FALSE(idx.smallest_matching_key(q).has_value());
}

TEST(FirstHopIndex, UnknownKeywordReturnsNullopt) {
  const FirstHopIndex idx = make_index();
  const std::vector<vsm::KeywordId> q = {99};
  EXPECT_FALSE(idx.smallest_matching_key(q).has_value());
}

TEST(FirstHopIndex, EmptyQueryReturnsNullopt) {
  const FirstHopIndex idx = make_index();
  EXPECT_FALSE(idx.smallest_matching_key({}).has_value());
}

TEST(FirstHopIndex, EmptyIndex) {
  const FirstHopIndex idx;
  const std::vector<vsm::KeywordId> q = {1};
  EXPECT_FALSE(idx.smallest_matching_key(q).has_value());
  EXPECT_EQ(idx.size(), 0u);
}

TEST(FirstHopIndex, DuplicateKeywordsInAddAreDeduped) {
  FirstHopIndex idx;
  idx.add(100, {3, 3, 3, 1});
  const std::vector<vsm::KeywordId> q = {1, 3};
  ASSERT_TRUE(idx.smallest_matching_key(q).has_value());
  EXPECT_EQ(*idx.smallest_matching_key(q), 100u);
}

TEST(FirstHopIndex, TieOnKeysPicksThatKey) {
  FirstHopIndex idx;
  idx.add(400, {7});
  idx.add(400, {7, 8});
  const std::vector<vsm::KeywordId> q = {7};
  EXPECT_EQ(*idx.smallest_matching_key(q), 400u);
}

}  // namespace
}  // namespace meteo::core
