/// Sequential-replay oracle suite for the EpochEngine (DESIGN.md §11).
///
/// The oracle is the engine itself at workers = 1: with per-op
/// substreams and the canonical fold order, a single-threaded seal IS
/// the sequential replay in epoch/op-index order. Every test here runs
/// one deterministic mixed read/write/churn schedule at several worker
/// counts and byte-compares the complete observable output — per-op
/// results, the exported Chrome trace, and the full metric dump —
/// fault-free and under a 5% message-drop plan.

#include "meteorograph/epoch.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct TestWorkload {
  workload::Trace trace;
  std::vector<double> weights;
  std::vector<vsm::SparseVector> vectors;  // all items, index = ItemId
  std::vector<vsm::SparseVector> sample;
};

TestWorkload make_workload(std::size_t items, std::uint64_t seed) {
  workload::TraceConfig cfg;
  cfg.num_items = items;
  cfg.num_keywords = 2000;
  cfg.mean_basket = 10.0;
  cfg.max_basket = 100;
  workload::Trace trace = workload::synthesize_trace(cfg, seed);
  std::vector<double> weights =
      trace.keyword_weights(workload::WeightScheme::kIdf);
  std::vector<vsm::SparseVector> vectors;
  vectors.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < items; i += 37) sample.push_back(vectors[i]);
  return TestWorkload{std::move(trace), std::move(weights),
                      std::move(vectors), std::move(sample)};
}

SystemConfig small_config(std::size_t nodes = 60) {
  SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = 2000;
  cfg.load_balance = LoadBalanceMode::kUnusedHashSpace;
  return cfg;
}

// --- byte-exact result serialization ----------------------------------------
// Every result field lands in the transcript with full precision, so any
// divergence between runs — one float, one hop count, one flag — breaks
// byte equality.

void append_flags(std::string& out, const Degradation& d) {
  out += " p=" + std::to_string(d.partial ? 1 : 0);
  out += " d=" + std::to_string(d.degraded ? 1 : 0);
  out += " b=" + std::to_string(d.fault_blocked ? 1 : 0);
}

void append_cost(std::string& out, const OpCost& c) {
  out += " rh=" + std::to_string(c.route_hops);
  out += " wh=" + std::to_string(c.walk_hops);
}

void append(std::string& out, const RetrieveResult& r) {
  out += "retrieve";
  for (const vsm::ScoredItem& s : r.items) {
    out += ' ' + std::to_string(s.id) + ':' + obs::format_double(s.score);
  }
  append_cost(out, r);
  out += " nv=" + std::to_string(r.nodes_visited);
  out += " im=" + std::to_string(r.items_missed);
  append_flags(out, r);
}

void append(std::string& out, const LocateResult& r) {
  out += "locate f=" + std::to_string(r.found ? 1 : 0);
  out += " n=" + std::to_string(r.node);
  out += " vr=" + std::to_string(r.via_replica ? 1 : 0);
  append_cost(out, r);
  append_flags(out, r);
}

void append(std::string& out, const SearchResult& r) {
  out += "search";
  for (std::size_t j = 0; j < r.items.size(); ++j) {
    out += ' ' + std::to_string(r.items[j]) + '@' +
           std::to_string(r.discovery_hops[j]);
  }
  append_cost(out, r);
  out += " lm=" + std::to_string(r.lookup_messages);
  out += " nv=" + std::to_string(r.nodes_visited);
  out += " lf=" + std::to_string(r.lookups_failed);
  append_flags(out, r);
}

void append(std::string& out, const RangeSearchResult& r) {
  out += "range";
  for (const RangeMatch& m : r.matches) {
    out += ' ' + obs::format_double(m.value) + ':' + std::to_string(m.item);
  }
  append_cost(out, r);
  out += " nv=" + std::to_string(r.nodes_visited);
  append_flags(out, r);
}

void append(std::string& out, const PublishResult& r) {
  out += "publish s=" + std::to_string(r.success ? 1 : 0);
  out += " h=" + std::to_string(r.home);
  out += " at=" + std::to_string(r.stored_at);
  out += " ch=" + std::to_string(r.chain_hops);
  out += " rm=" + std::to_string(r.replica_messages);
  out += " pm=" + std::to_string(r.pointer_messages);
  out += " nm=" + std::to_string(r.notify_messages);
  out += " miss=" + std::to_string(r.replicas_missed);
  out += " pmiss=" + std::to_string(r.pointer_missed ? 1 : 0);
  append_cost(out, r);
  append_flags(out, r);
}

void append(std::string& out, const WithdrawResult& r) {
  out += "withdraw rm=" + std::to_string(r.removed ? 1 : 0);
  out += " rr=" + std::to_string(r.replicas_removed);
  out += " pr=" + std::to_string(r.pointer_removed ? 1 : 0);
  out += " m=" + std::to_string(r.messages);
}

void append(std::string& out, const DepartResult& r) {
  out += "depart i=" + std::to_string(r.items_transferred);
  out += " r=" + std::to_string(r.replicas_transferred);
  out += " p=" + std::to_string(r.pointers_transferred);
  out += " s=" + std::to_string(r.subscriptions_transferred);
  out += " a=" + std::to_string(r.attribute_records_transferred);
  out += " m=" + std::to_string(r.messages);
}

void append_sealed(std::string& out, const EpochEngine::SealedEpoch& sealed) {
  out += "== epoch " + std::to_string(sealed.epoch) + " ==\n";
  for (std::size_t i = 0; i < sealed.results.size(); ++i) {
    std::visit([&](const auto& r) { append(out, r); }, sealed.results[i]);
    out += " tc=" + std::string(obs::format_double(sealed.timeout_costs[i]));
    out += '\n';
  }
}

// --- the mixed schedule ------------------------------------------------------

constexpr std::size_t kInitialItems = 100;

struct RunConfig {
  std::size_t workers = 1;
  double drop_rate = 0.0;
  std::function<bool(std::size_t)> defer = {};
};

/// Replays one fixed mixed read/write/churn schedule — three epochs of
/// interleaved retrieves, locates, searches, range scans, publishes,
/// withdrawals, and departures — and returns the full observable
/// transcript: every result field, the Chrome trace dump, and the CSV
/// metric dump.
std::string run_mixed(const TestWorkload& wl, const RunConfig& rc) {
  Meteorograph sys(small_config(), wl.sample, 31);
  for (vsm::ItemId id = 0; id < kInitialItems; ++id) {
    EXPECT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  const AttributeId attr = sys.register_attribute(0.0, 200.0);
  for (vsm::ItemId id = 0; id < kInitialItems; id += 3) {
    sys.publish_attribute(id, attr, static_cast<double>(id));
  }

  obs::TraceLog log;
  EXPECT_TRUE(sys.set_tracer(&log));
  std::optional<sim::FaultPlan> plan;
  if (rc.drop_rate > 0.0) {
    plan.emplace(sim::FaultPlanConfig{.drop_rate = rc.drop_rate}, 99);
    EXPECT_TRUE(sys.set_fault_hook(&*plan));
  }

  EpochOptions opts;
  opts.workers = rc.workers;
  opts.defer_read = rc.defer;
  EpochEngine engine(sys, opts);

  std::string out;
  vsm::ItemId next_new = kInitialItems;
  vsm::ItemId next_withdraw = 0;
  overlay::NodeId next_depart = 5;
  for (int e = 0; e < 3; ++e) {
    // Reads and writes woven together so submission order mixes kinds.
    for (int k = 0; k < 4; ++k) {
      engine.submit(RetrieveOp{
          &wl.vectors[static_cast<std::size_t>(e * 13 + k * 7) % kInitialItems],
          5,
          {}});
      const vsm::ItemId lid =
          static_cast<std::size_t>(e * 29 + k * 3) % kInitialItems;
      engine.submit(LocateOp{lid, &wl.vectors[lid], {}});
      engine.submit(PublishOp{next_new, &wl.vectors[next_new], {}});
      ++next_new;
    }
    for (int k = 0; k < 2; ++k) {
      const vsm::SparseVector& qv =
          wl.vectors[static_cast<std::size_t>(e * 7 + k * 11) % kInitialItems];
      engine.submit(SearchOp{{&qv.entries()[0].keyword, 1}, 4, {}});
      engine.submit(WithdrawOp{next_withdraw,
                               &wl.vectors[next_withdraw], {}});
      ++next_withdraw;
    }
    engine.submit(RangeSearchOp{attr, e * 20.0, e * 20.0 + 30.0, {}});
    if (e >= 1) {
      engine.submit(DepartOp{next_depart});
      next_depart += 11;
    }
    // Reads submitted after the churn still pin the same epoch.
    for (int k = 4; k < 8; ++k) {
      engine.submit(RetrieveOp{
          &wl.vectors[static_cast<std::size_t>(e * 13 + k * 7) % kInitialItems],
          5,
          {}});
      const vsm::ItemId lid =
          static_cast<std::size_t>(e * 29 + k * 3) % kInitialItems;
      engine.submit(LocateOp{lid, &wl.vectors[lid], {}});
    }
    engine.submit(PublishOp{next_new, &wl.vectors[next_new], {}});
    ++next_new;
    engine.submit(WithdrawOp{next_withdraw, &wl.vectors[next_withdraw], {}});
    ++next_withdraw;
    engine.submit(RangeSearchOp{attr, 10.0 + e, 90.0 + e, {}});

    append_sealed(out, engine.seal());
  }

  out += obs::trace_to_chrome_json(log);
  out += obs::metrics_to_csv(sys.metrics());
  return out;
}

// --- oracle: 1 worker (sequential replay) vs N workers -----------------------

TEST(EpochOracle, MixedChurnScheduleMatchesSequentialReplay) {
  const TestWorkload wl = make_workload(160, 41);
  const std::string oracle = run_mixed(wl, {.workers = 1});
  EXPECT_EQ(run_mixed(wl, {.workers = 2}), oracle);
  EXPECT_EQ(run_mixed(wl, {.workers = 8}), oracle);
}

TEST(EpochOracle, MixedChurnScheduleMatchesSequentialReplayUnderDrops) {
  const TestWorkload wl = make_workload(160, 42);
  const std::string oracle = run_mixed(wl, {.workers = 1, .drop_rate = 0.05});
  EXPECT_EQ(run_mixed(wl, {.workers = 2, .drop_rate = 0.05}), oracle);
  EXPECT_EQ(run_mixed(wl, {.workers = 8, .drop_rate = 0.05}), oracle);
}

// --- oracle: deferred reads vs pre-write reads -------------------------------
// Deferring every read past the write phase forces the versioned store
// views; deferring none takes the live fast path. Byte equality between
// the two proves a pinned read observes exactly epoch E regardless of
// when it physically runs.

TEST(EpochOracle, DeferredReadsObserveExactlyThePinnedEpoch) {
  const TestWorkload wl = make_workload(160, 43);
  const auto defer_all = [](std::size_t) { return true; };
  const std::string eager = run_mixed(wl, {.workers = 8});
  EXPECT_EQ(run_mixed(wl, {.workers = 8, .defer = defer_all}), eager);
  EXPECT_EQ(run_mixed(wl, {.workers = 1, .defer = defer_all}), eager);
}

TEST(EpochOracle, DeferredReadsObserveExactlyThePinnedEpochUnderDrops) {
  const TestWorkload wl = make_workload(160, 44);
  const auto defer_all = [](std::size_t) { return true; };
  const std::string eager = run_mixed(wl, {.workers = 8, .drop_rate = 0.05});
  EXPECT_EQ(
      run_mixed(wl, {.workers = 8, .drop_rate = 0.05, .defer = defer_all}),
      eager);
}

// --- epoch visibility semantics ----------------------------------------------

TEST(EpochOracle, WriteVisibilityFlipsAtTheEpochBoundary) {
  const TestWorkload wl = make_workload(120, 45);
  Meteorograph sys(small_config(), wl.sample, 45);
  for (vsm::ItemId id = 0; id < 100; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }

  EpochEngine engine(sys, {.workers = 4, .seed = 9, .defer_read = {}});
  const vsm::ItemId victim = 7;
  const vsm::ItemId fresh = 100;
  const std::size_t before = engine.submit(
      LocateOp{victim, &wl.vectors[victim], {}});
  engine.submit(WithdrawOp{victim, &wl.vectors[victim], {}});
  const std::size_t after = engine.submit(
      LocateOp{victim, &wl.vectors[victim], {}});
  engine.submit(PublishOp{fresh, &wl.vectors[fresh], {}});
  const std::size_t unseen = engine.submit(
      LocateOp{fresh, &wl.vectors[fresh], {}});
  const auto first = engine.seal();
  EXPECT_EQ(first.epoch, 0u);
  // Within the window, every read pins epoch 0: the withdrawal and the
  // publish are invisible no matter where the read sits in the order.
  EXPECT_TRUE(std::get<LocateResult>(first.results[before]).found);
  EXPECT_TRUE(std::get<LocateResult>(first.results[after]).found);
  EXPECT_FALSE(std::get<LocateResult>(first.results[unseen]).found);
  EXPECT_TRUE(std::get<WithdrawResult>(first.results[1]).removed);
  EXPECT_TRUE(std::get<PublishResult>(first.results[3]).success);

  // One epoch later both flips are visible.
  const std::size_t gone = engine.submit(
      LocateOp{victim, &wl.vectors[victim], {}});
  const std::size_t seen = engine.submit(
      LocateOp{fresh, &wl.vectors[fresh], {}});
  const auto second = engine.seal();
  EXPECT_EQ(second.epoch, 1u);
  EXPECT_FALSE(std::get<LocateResult>(second.results[gone]).found);
  EXPECT_TRUE(std::get<LocateResult>(second.results[seen]).found);
}

TEST(EpochOracle, EpochMetricsTrackSeals) {
  const TestWorkload wl = make_workload(60, 46);
  Meteorograph sys(small_config(), wl.sample, 46);
  for (vsm::ItemId id = 0; id < 30; ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  EpochEngine engine(sys, {.workers = 2, .seed = 1, .defer_read = {}});
  engine.submit(LocateOp{3, &wl.vectors[3], {}});
  (void)engine.seal();
  engine.submit(LocateOp{4, &wl.vectors[4], {}});
  (void)engine.seal();
  EXPECT_EQ(engine.epoch(), 2u);
  const std::string csv = obs::metrics_to_csv(sys.metrics());
  EXPECT_NE(csv.find("counter,epoch.advances,,value,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,epoch.current,,value,2"), std::string::npos);
}

}  // namespace
}  // namespace meteo::core
