#include "meteorograph/maintenance.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/churn.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct MaintFixture : ::testing::Test {
  MaintFixture() {
    workload::TraceConfig tc;
    tc.num_items = 400;
    tc.num_keywords = 900;
    tc.mean_basket = 8.0;
    tc.max_basket = 40;
    const workload::Trace trace = workload::synthesize_trace(tc, 3);
    const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
    for (std::size_t i = 0; i < trace.item_count(); ++i) {
      vectors_.push_back(trace.vector_of(i, weights));
    }
    std::vector<vsm::SparseVector> sample;
    for (std::size_t i = 0; i < vectors_.size(); i += 9) {
      sample.push_back(vectors_[i]);
    }
    SystemConfig cfg;
    cfg.node_count = 120;
    cfg.dimension = 900;
    cfg.replicas = 2;
    sys_.emplace(cfg, sample, 17);
  }

  std::vector<vsm::SparseVector> vectors_;
  std::optional<Meteorograph> sys_;
};

TEST_F(MaintFixture, WithdrawRemovesItemCompletely) {
  ASSERT_TRUE(sys_->publish(1, vectors_[1]).success);
  ASSERT_TRUE(sys_->locate(1, vectors_[1]).found);
  const WithdrawResult w = sys_->withdraw(1, vectors_[1]);
  EXPECT_TRUE(w.removed);
  EXPECT_TRUE(w.pointer_removed);
  EXPECT_FALSE(sys_->locate(1, vectors_[1]).found);
}

TEST_F(MaintFixture, WithdrawMissingItemIsNoop) {
  const WithdrawResult w = sys_->withdraw(999, vectors_[0]);
  EXPECT_FALSE(w.removed);
}

TEST_F(MaintFixture, WithdrawnItemLeavesSearchResults) {
  for (vsm::ItemId id = 0; id < 100; ++id) {
    ASSERT_TRUE(sys_->publish(id, vectors_[id]).success);
  }
  // Pick an item and a keyword it contains.
  const vsm::KeywordId kw = vectors_[5].entries()[0].keyword;
  const std::vector<vsm::KeywordId> q = {kw};
  const SearchResult before = sys_->similarity_search(q, 0);
  ASSERT_TRUE(std::find(before.items.begin(), before.items.end(), 5u) !=
              before.items.end());
  (void)sys_->withdraw(5, vectors_[5]);
  const SearchResult after = sys_->similarity_search(q, 0);
  EXPECT_TRUE(std::find(after.items.begin(), after.items.end(), 5u) ==
              after.items.end());
}

TEST_F(MaintFixture, TrackAndUntrack) {
  MaintenanceProcess maint(*sys_);
  maint.track(1, vectors_[1]);
  maint.track(2, vectors_[2]);
  maint.track(1, vectors_[1]);  // idempotent
  EXPECT_EQ(maint.tracked_count(), 2u);
  EXPECT_TRUE(maint.untrack(1));
  EXPECT_FALSE(maint.untrack(1));
  EXPECT_EQ(maint.tracked_count(), 1u);
}

TEST_F(MaintFixture, RunOncePublishesTrackedItems) {
  MaintenanceProcess maint(*sys_);
  for (vsm::ItemId id = 0; id < 50; ++id) {
    maint.track(id, vectors_[id]);
  }
  const std::size_t messages = maint.run_once();
  EXPECT_GT(messages, 0u);
  EXPECT_EQ(maint.stats().items_republished, 50u);
  for (vsm::ItemId id = 0; id < 50; ++id) {
    EXPECT_TRUE(sys_->locate(id, vectors_[id]).found);
  }
}

TEST_F(MaintFixture, RepublishLeavesSingleCopy) {
  MaintenanceProcess maint(*sys_);
  for (vsm::ItemId id = 0; id < 60; ++id) {
    maint.track(id, vectors_[id]);
    ASSERT_TRUE(sys_->publish(id, vectors_[id]).success);
  }
  (void)maint.run_once();
  (void)maint.run_once();
  EXPECT_EQ(sys_->stored_item_count(), 60u);  // no duplicates accumulated
}

TEST_F(MaintFixture, RestoresAvailabilityAfterChurn) {
  MaintenanceProcess maint(*sys_);
  for (vsm::ItemId id = 0; id < 200; ++id) {
    maint.track(id, vectors_[id]);
    ASSERT_TRUE(sys_->publish(id, vectors_[id]).success);
  }
  // Kill 40% of nodes; repair routing; some items are simply gone.
  Rng rng(99);
  sim::fail_fraction(sys_->network(), 0.4, rng);
  sys_->network().repair();
  std::size_t alive_before = 0;
  for (vsm::ItemId id = 0; id < 200; ++id) {
    if (sys_->locate(id, vectors_[id], {.walk_limit = 8}).found) ++alive_before;
  }
  EXPECT_LT(alive_before, 200u);
  // The owners republish: everything is reachable again.
  (void)maint.run_once();
  std::size_t alive_after = 0;
  for (vsm::ItemId id = 0; id < 200; ++id) {
    if (sys_->locate(id, vectors_[id], {.walk_limit = 8}).found) ++alive_after;
  }
  EXPECT_EQ(alive_after, 200u);
}

TEST_F(MaintFixture, ScheduledCyclesRunOnEventQueue) {
  sim::EventQueue queue;
  MaintenanceProcess maint(*sys_, &queue, 5.0);
  for (vsm::ItemId id = 0; id < 20; ++id) {
    maint.track(id, vectors_[id]);
  }
  queue.run_until(26.0);
  EXPECT_EQ(maint.stats().cycles, 5u);
  maint.stop();
  queue.run_until(100.0);
  EXPECT_LE(maint.stats().cycles, 6u);
}

}  // namespace
}  // namespace meteo::core
