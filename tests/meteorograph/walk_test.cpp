#include "meteorograph/walk.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace meteo::core {
namespace {

/// Overlay with nodes at keys 100, 200, ..., 100*n.
overlay::Overlay ladder(std::size_t n) {
  overlay::Overlay o;
  for (std::size_t i = 1; i <= n; ++i) {
    (void)o.join(static_cast<overlay::Key>(100 * i));
  }
  o.repair();
  return o;
}

TEST(NeighborWalk, StartsAtStartWithZeroHops) {
  overlay::Overlay o = ladder(5);
  const overlay::NodeId start = o.closest_alive(300);
  NeighborWalk walk(o, start, 300);
  EXPECT_EQ(walk.current(), start);
  EXPECT_EQ(walk.hops(), 0u);
}

TEST(NeighborWalk, ExpandsTowardCloserSideFirst)
{
  overlay::Overlay o = ladder(5);  // keys 100..500
  // Start at 300, target 310: successor 400 (dist 90) beats
  // predecessor 200 (dist 110).
  NeighborWalk walk(o, o.closest_alive(300), 310);
  ASSERT_TRUE(walk.advance());
  EXPECT_EQ(o.key_of(walk.current()), 400u);
  ASSERT_TRUE(walk.advance());
  EXPECT_EQ(o.key_of(walk.current()), 200u);
  EXPECT_EQ(walk.hops(), 2u);
}

TEST(NeighborWalk, VisitsEveryNodeExactlyOnce) {
  overlay::Overlay o = ladder(9);
  NeighborWalk walk(o, o.closest_alive(500), 500);
  std::set<overlay::NodeId> visited = {walk.current()};
  while (walk.advance()) {
    EXPECT_TRUE(visited.insert(walk.current()).second)
        << "node revisited";
  }
  EXPECT_EQ(visited.size(), 9u);
  EXPECT_EQ(walk.hops(), 8u);
}

TEST(NeighborWalk, StopsAtSpaceEdges) {
  overlay::Overlay o = ladder(3);
  NeighborWalk walk(o, o.closest_alive(100), 100);  // start at the low edge
  EXPECT_TRUE(walk.advance());
  EXPECT_TRUE(walk.advance());
  EXPECT_FALSE(walk.advance());  // both frontiers exhausted
}

TEST(NeighborWalk, SingleNodeCannotAdvance) {
  overlay::Overlay o = ladder(1);
  NeighborWalk walk(o, o.closest_alive(100), 100);
  EXPECT_FALSE(walk.advance());
  EXPECT_EQ(walk.hops(), 0u);
}

TEST(NeighborWalk, DeadNeighborBlocksThatSide) {
  overlay::Overlay o = ladder(5);
  // Kill node 400; from 300 walking toward high keys is blocked after the
  // stale pointer (no repair).
  o.fail(o.closest_alive(400));
  NeighborWalk walk(o, o.closest_alive(300), 300);
  std::set<overlay::Key> keys;
  while (walk.advance()) keys.insert(o.key_of(walk.current()));
  EXPECT_TRUE(keys.contains(200));
  EXPECT_TRUE(keys.contains(100));
  EXPECT_FALSE(keys.contains(400));
  EXPECT_FALSE(keys.contains(500));  // unreachable behind the dead node
}

TEST(NeighborWalk, RepairRestoresFullCoverage) {
  overlay::Overlay o = ladder(5);
  o.fail(o.closest_alive(400));
  o.repair();
  NeighborWalk walk(o, o.closest_alive(300), 300);
  std::set<overlay::Key> keys = {o.key_of(walk.current())};
  while (walk.advance()) keys.insert(o.key_of(walk.current()));
  EXPECT_EQ(keys.size(), 4u);  // all survivors
  EXPECT_TRUE(keys.contains(500));
}

TEST(NeighborWalk, OrderIsByDistanceToTarget) {
  overlay::Overlay o = ladder(7);  // 100..700
  NeighborWalk walk(o, o.closest_alive(400), 400);
  overlay::Key prev_dist = 0;
  while (walk.advance()) {
    const overlay::Key dist = overlay::key_distance(o.key_of(walk.current()), 400);
    EXPECT_GE(dist, prev_dist);
    prev_dist = dist;
  }
}

}  // namespace
}  // namespace meteo::core
