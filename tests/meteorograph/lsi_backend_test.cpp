/// Tests of the per-node LSI ranking backend (§3.3's "VSM or LSI" option)
/// and of the capability-aware capacity assignment.

#include <gtest/gtest.h>

#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "meteorograph/storage.hpp"

namespace meteo::core {
namespace {

StoredEntry entry(vsm::ItemId id, overlay::Key raw,
                  std::initializer_list<vsm::KeywordId> kws) {
  return StoredEntry{id, raw,
                     vsm::SparseVector::binary(std::vector<vsm::KeywordId>(kws))};
}

TEST(AngleStoreLsi, EmptyStoreReturnsNothing) {
  AngleStore s;
  const auto q = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{1});
  EXPECT_TRUE(s.top_k_lsi(q, 5, 4, 1).empty());
}

TEST(AngleStoreLsi, ExactMatchRanksFirst) {
  AngleStore s;
  s.insert(entry(1, 100, {0, 1, 2}));
  s.insert(entry(2, 200, {1, 2, 3}));
  s.insert(entry(3, 300, {10, 11, 12}));
  const auto q = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{0, 1, 2});
  const auto top = s.top_k_lsi(q, 3, 3, 42);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].id, 1u);
}

TEST(AngleStoreLsi, LatentRetrievalCrossesKeywords) {
  // Two topics; a query with a keyword only co-occurring with topic A must
  // rank topic-A docs above topic-B docs even without literal overlap.
  AngleStore s;
  s.insert(entry(1, 100, {0, 1, 2}));
  s.insert(entry(2, 110, {1, 2, 3}));
  s.insert(entry(3, 120, {0, 2, 3}));
  s.insert(entry(4, 500, {10, 11, 12}));
  s.insert(entry(5, 510, {11, 12, 13}));
  const auto q = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{3});
  const auto top = s.top_k_lsi(q, 5, 2, 7);
  ASSERT_EQ(top.size(), 5u);
  // Doc 1 ({0,1,2}) shares no keyword with the query but lives in the
  // query's topic; doc 4/5 are the other topic.
  double doc1 = 0.0;
  double doc4 = 0.0;
  for (const auto& hit : top) {
    if (hit.id == 1) doc1 = hit.score;
    if (hit.id == 4) doc4 = hit.score;
  }
  EXPECT_GT(doc1, doc4 + 0.2);
}

TEST(AngleStoreLsi, CacheInvalidatesOnMutation) {
  AngleStore s;
  s.insert(entry(1, 100, {0, 1}));
  const auto q = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{0, 1});
  auto top = s.top_k_lsi(q, 1, 2, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);
  // Replace the only item; a stale cache would still return id 1.
  s.erase(1);
  s.insert(entry(2, 100, {0, 1}));
  top = s.top_k_lsi(q, 1, 2, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 2u);
}

TEST(LsiBackend, RetrieveWorksEndToEnd) {
  SystemConfig cfg;
  cfg.node_count = 30;
  cfg.dimension = 200;
  cfg.load_balance = LoadBalanceMode::kNone;
  cfg.local_ranking = LocalRanking::kLsi;
  cfg.lsi_rank = 4;
  Meteorograph sys(cfg, {}, 5);
  Rng rng(1);
  std::vector<vsm::SparseVector> vectors;
  for (vsm::ItemId id = 0; id < 120; ++id) {
    std::vector<vsm::KeywordId> kws;
    for (int j = 0; j < 6; ++j) {
      kws.push_back(static_cast<vsm::KeywordId>(rng.below(200)));
    }
    vectors.push_back(vsm::SparseVector::binary(kws));
    ASSERT_TRUE(sys.publish(id, vectors.back()).success);
  }
  for (vsm::ItemId id = 0; id < 120; id += 11) {
    const RetrieveResult r = sys.retrieve(vectors[id], 3);
    ASSERT_FALSE(r.items.empty()) << "item " << id;
    // The exact item scores ~1 in latent space too.
    bool found_self = false;
    for (const auto& hit : r.items) {
      if (hit.id == id) found_self = true;
    }
    EXPECT_TRUE(found_self) << "item " << id;
  }
}

TEST(Capability, HomogeneousByDefault) {
  SystemConfig cfg;
  cfg.node_count = 50;
  cfg.dimension = 100;
  cfg.load_balance = LoadBalanceMode::kNone;
  cfg.node_capacity = 10;
  Meteorograph sys(cfg, {}, 3);
  for (const auto node : sys.network().alive_nodes()) {
    EXPECT_EQ(sys.capacity_of(node), 10u);
  }
}

TEST(Capability, HeterogeneousClassesAssigned) {
  SystemConfig cfg;
  cfg.node_count = 400;
  cfg.dimension = 100;
  cfg.load_balance = LoadBalanceMode::kNone;
  cfg.node_capacity = 10;
  cfg.capability_weights = {0.5, 0.3, 0.2};  // classes 10/20/40
  Meteorograph sys(cfg, {}, 4);
  std::size_t c10 = 0;
  std::size_t c20 = 0;
  std::size_t c40 = 0;
  for (const auto node : sys.network().alive_nodes()) {
    switch (sys.capacity_of(node)) {
      case 10: ++c10; break;
      case 20: ++c20; break;
      case 40: ++c40; break;
      default: FAIL() << "unexpected capacity " << sys.capacity_of(node);
    }
  }
  EXPECT_NEAR(static_cast<double>(c10) / 400.0, 0.5, 0.1);
  EXPECT_NEAR(static_cast<double>(c20) / 400.0, 0.3, 0.1);
  EXPECT_NEAR(static_cast<double>(c40) / 400.0, 0.2, 0.1);
}

TEST(Capability, UnlimitedWhenBaseCapacityZero) {
  SystemConfig cfg;
  cfg.node_count = 20;
  cfg.dimension = 100;
  cfg.load_balance = LoadBalanceMode::kNone;
  cfg.node_capacity = 0;
  cfg.capability_weights = {0.5, 0.5};  // ignored without a base capacity
  Meteorograph sys(cfg, {}, 6);
  for (const auto node : sys.network().alive_nodes()) {
    EXPECT_EQ(sys.capacity_of(node), 0u);
  }
}

}  // namespace
}  // namespace meteo::core
