#include "meteorograph/storage.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace meteo::core {
namespace {

StoredEntry entry(vsm::ItemId id, overlay::Key raw,
                  std::initializer_list<vsm::KeywordId> kws) {
  return StoredEntry{id, raw,
                     vsm::SparseVector::binary(std::vector<vsm::KeywordId>(kws))};
}

TEST(AngleStore, InsertContainsErase) {
  AngleStore s;
  s.insert(entry(1, 100, {0}));
  s.insert(entry(2, 200, {1}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_EQ(s.size(), 1u);
}

TEST(AngleStore, InsertReplacesSameId) {
  AngleStore s;
  s.insert(entry(1, 100, {0}));
  s.insert(entry(1, 500, {5}));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.min_raw_key(), 500u);
  ASSERT_NE(s.vector_of(1), nullptr);
  EXPECT_TRUE(s.vector_of(1)->contains(5));
}

TEST(AngleStore, DuplicateRawKeysCoexist) {
  AngleStore s;
  s.insert(entry(1, 100, {0}));
  s.insert(entry(2, 100, {1}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.min_raw_key(), 100u);
  EXPECT_EQ(s.max_raw_key(), 100u);
}

TEST(AngleStore, MinMaxRawKey) {
  AngleStore s;
  s.insert(entry(1, 300, {0}));
  s.insert(entry(2, 100, {1}));
  s.insert(entry(3, 200, {2}));
  EXPECT_EQ(s.min_raw_key(), 100u);
  EXPECT_EQ(s.max_raw_key(), 300u);
}

TEST(AngleStore, FarthestAngleEvictsCorrectEnd) {
  AngleStore s;
  s.insert(entry(1, 100, {0}));
  s.insert(entry(2, 500, {1}));
  s.insert(entry(3, 900, {2}));
  // Incoming at 850: the farthest end is key 100 (distance 750 vs 50).
  const Eviction ev = s.evict(entry(9, 850, {9}), EvictionPolicy::kFarthestAngle);
  EXPECT_EQ(ev.entry.id, 1u);
  EXPECT_EQ(ev.side, EvictSide::kLow);
  EXPECT_EQ(s.size(), 2u);
}

TEST(AngleStore, FarthestAngleEvictsHighSide) {
  AngleStore s;
  s.insert(entry(1, 100, {0}));
  s.insert(entry(2, 900, {1}));
  const Eviction ev = s.evict(entry(9, 150, {9}), EvictionPolicy::kFarthestAngle);
  EXPECT_EQ(ev.entry.id, 2u);
  EXPECT_EQ(ev.side, EvictSide::kHigh);
}

TEST(AngleStore, LeastSimilarCosineEvictsOrthogonal) {
  AngleStore s;
  s.insert(entry(1, 100, {0, 1}));
  s.insert(entry(2, 200, {0, 9}));
  s.insert(entry(3, 300, {7, 8}));  // disjoint from the incoming item
  const Eviction ev =
      s.evict(entry(9, 150, {0, 1}), EvictionPolicy::kLeastSimilarCosine);
  EXPECT_EQ(ev.entry.id, 3u);
  EXPECT_EQ(ev.side, EvictSide::kHigh);  // 300 > 150
}

TEST(AngleStore, FifoEvictsOldest) {
  AngleStore s;
  s.insert(entry(5, 500, {0}));
  s.insert(entry(1, 100, {1}));
  s.insert(entry(9, 900, {2}));
  const Eviction ev = s.evict(entry(7, 700, {3}), EvictionPolicy::kFifo);
  EXPECT_EQ(ev.entry.id, 5u);
}

TEST(AngleStore, EvictionSideRelativeToIncoming) {
  AngleStore s;
  s.insert(entry(1, 100, {0}));
  const Eviction low =
      s.evict(entry(9, 500, {9}), EvictionPolicy::kLeastSimilarCosine);
  EXPECT_EQ(low.side, EvictSide::kLow);  // 100 <= 500
  s.insert(entry(2, 800, {0}));
  const Eviction high =
      s.evict(entry(9, 500, {9}), EvictionPolicy::kLeastSimilarCosine);
  EXPECT_EQ(high.side, EvictSide::kHigh);  // 800 > 500
}

TEST(AngleStore, TopKRanksByCosine) {
  AngleStore s;
  s.insert(entry(1, 100, {0, 1}));
  s.insert(entry(2, 200, {0, 9}));
  s.insert(entry(3, 300, {7, 8}));
  const auto q = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{0, 1});
  const auto top = s.top_k(q, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_NEAR(top[0].score, 1.0, 1e-12);
  EXPECT_EQ(top[1].id, 2u);
}

TEST(AngleStore, MatchAllConjunctive) {
  AngleStore s;
  s.insert(entry(1, 100, {0, 1, 2}));
  s.insert(entry(2, 200, {0, 2}));
  s.insert(entry(3, 300, {1}));
  const std::vector<vsm::KeywordId> q = {0, 2};
  const auto hits = s.match_all(q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(AngleStore, ForEachVisitsInAngleOrder) {
  AngleStore s;
  s.insert(entry(3, 300, {0}));
  s.insert(entry(1, 100, {1}));
  s.insert(entry(2, 200, {2}));
  std::vector<overlay::Key> keys;
  s.for_each([&](const StoredEntry& e) { keys.push_back(e.raw_key); });
  EXPECT_EQ(keys, (std::vector<overlay::Key>{100, 200, 300}));
}

TEST(AngleStore, RepeatedFarthestEvictionsLeaveCentralBand) {
  // Evicting against a fixed pivot must drain the outermost keys first so
  // the surviving band tightens around the pivot — the clustering
  // invariant of the publish overflow path.
  AngleStore s;
  for (vsm::ItemId id = 0; id < 100; ++id) {
    s.insert(entry(id, id * 10, {static_cast<vsm::KeywordId>(id)}));
  }
  const StoredEntry pivot = entry(999, 500, {999});
  overlay::Key last_distance = ~overlay::Key{0};
  while (s.size() > 1) {
    const Eviction ev = s.evict(pivot, EvictionPolicy::kFarthestAngle);
    const overlay::Key d = overlay::key_distance(ev.entry.raw_key, 500);
    EXPECT_LE(d, last_distance);
    last_distance = d;
  }
}

}  // namespace
}  // namespace meteo::core
