#include "meteorograph/batch.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct TestWorkload {
  workload::Trace trace;
  std::vector<double> weights;
  std::vector<vsm::SparseVector> vectors;  // all items, index = ItemId
  std::vector<vsm::SparseVector> sample;
};

TestWorkload make_workload(std::size_t items, std::uint64_t seed) {
  workload::TraceConfig cfg;
  cfg.num_items = items;
  cfg.num_keywords = 2000;
  cfg.mean_basket = 10.0;
  cfg.max_basket = 100;
  workload::Trace trace = workload::synthesize_trace(cfg, seed);
  std::vector<double> weights =
      trace.keyword_weights(workload::WeightScheme::kIdf);
  std::vector<vsm::SparseVector> vectors;
  vectors.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < items; i += 37) sample.push_back(vectors[i]);
  return TestWorkload{std::move(trace), std::move(weights),
                      std::move(vectors), std::move(sample)};
}

SystemConfig small_config(std::size_t nodes = 60) {
  SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = 2000;
  cfg.load_balance = LoadBalanceMode::kUnusedHashSpace;
  return cfg;
}

Meteorograph make_published_system(const TestWorkload& wl,
                                   std::uint64_t seed) {
  Meteorograph sys(small_config(), wl.sample, seed);
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    EXPECT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  return sys;
}

/// Byte-exact digest of the whole metric registry: the CSV export covers
/// every counter, gauge, and histogram (count/sum/min/max plus buckets)
/// with full-precision values, so any divergence shows up.
std::string metric_fingerprint(const obs::MetricRegistry& metrics) {
  return obs::metrics_to_csv(metrics);
}

/// Fingerprint minus the `system.stored_items` gauge, which by design is
/// snapshotted only at batch barriers (it is O(nodes) to compute) — a
/// facade run never takes a barrier, so facade-vs-engine comparisons must
/// exempt that single series (DESIGN.md §8).
std::string barrier_free_fingerprint(const obs::MetricRegistry& metrics) {
  std::istringstream in(metric_fingerprint(metrics));
  std::string out;
  for (std::string line; std::getline(in, line);) {
    if (line.find("system.stored_items") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<LocateOp> locate_ops(const TestWorkload& wl) {
  std::vector<LocateOp> ops;
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    ops.push_back(LocateOp{id, &wl.vectors[id], {}});
  }
  return ops;
}

void expect_equal(const LocateResult& a, const LocateResult& b,
                  std::size_t i) {
  EXPECT_EQ(a.found, b.found) << "op " << i;
  EXPECT_EQ(a.node, b.node) << "op " << i;
  EXPECT_EQ(a.via_replica, b.via_replica) << "op " << i;
  EXPECT_EQ(a.route_hops, b.route_hops) << "op " << i;
  EXPECT_EQ(a.walk_hops, b.walk_hops) << "op " << i;
  EXPECT_EQ(a.fault_blocked, b.fault_blocked) << "op " << i;
}

void expect_equal(const RetrieveResult& a, const RetrieveResult& b,
                  std::size_t i) {
  ASSERT_EQ(a.items.size(), b.items.size()) << "op " << i;
  for (std::size_t j = 0; j < a.items.size(); ++j) {
    EXPECT_EQ(a.items[j].id, b.items[j].id) << "op " << i;
    EXPECT_EQ(a.items[j].score, b.items[j].score) << "op " << i;
  }
  EXPECT_EQ(a.route_hops, b.route_hops) << "op " << i;
  EXPECT_EQ(a.walk_hops, b.walk_hops) << "op " << i;
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << "op " << i;
  EXPECT_EQ(a.partial, b.partial) << "op " << i;
  EXPECT_EQ(a.items_missed, b.items_missed) << "op " << i;
}

void expect_equal(const PublishResult& a, const PublishResult& b,
                  std::size_t i) {
  EXPECT_EQ(a.success, b.success) << "op " << i;
  EXPECT_EQ(a.home, b.home) << "op " << i;
  EXPECT_EQ(a.stored_at, b.stored_at) << "op " << i;
  EXPECT_EQ(a.route_hops, b.route_hops) << "op " << i;
  EXPECT_EQ(a.chain_hops, b.chain_hops) << "op " << i;
  EXPECT_EQ(a.replica_messages, b.replica_messages) << "op " << i;
  EXPECT_EQ(a.pointer_messages, b.pointer_messages) << "op " << i;
  EXPECT_EQ(a.degraded, b.degraded) << "op " << i;
}

// --- determinism: 1 worker vs N workers ------------------------------------

TEST(BatchDeterminism, LocateBatchIdenticalAcrossWorkerCounts) {
  const TestWorkload wl = make_workload(150, 11);
  Meteorograph sys1 = make_published_system(wl, 11);
  Meteorograph sys4 = make_published_system(wl, 11);

  const std::vector<LocateOp> ops = locate_ops(wl);
  BatchEngine engine1(sys1, {.workers = 1, .seed = 7});
  BatchEngine engine4(sys4, {.workers = 4, .seed = 7});
  const auto r1 = engine1.locate(ops);
  const auto r4 = engine4.locate(ops);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) expect_equal(r1[i], r4[i], i);
  EXPECT_EQ(metric_fingerprint(sys1.metrics()),
            metric_fingerprint(sys4.metrics()));
}

TEST(BatchDeterminism, RetrieveAndSearchBatchesIdenticalAcrossWorkerCounts) {
  const TestWorkload wl = make_workload(120, 12);
  Meteorograph sys1 = make_published_system(wl, 12);
  Meteorograph sys4 = make_published_system(wl, 12);

  std::vector<RetrieveOp> retrieves;
  for (vsm::ItemId id = 0; id < 60; ++id) {
    retrieves.push_back(RetrieveOp{&wl.vectors[id], 5, {}});
  }
  std::vector<std::vector<vsm::KeywordId>> queries;
  queries.reserve(40);  // spans into elements: no reallocation allowed
  std::vector<SearchOp> searches;
  for (vsm::ItemId id = 0; id < 40; ++id) {
    queries.push_back({wl.vectors[id].entries()[0].keyword});
    searches.push_back(SearchOp{queries.back(), 4, {}});
  }

  BatchEngine engine1(sys1, {.workers = 1, .seed = 3});
  BatchEngine engine4(sys4, {.workers = 4, .seed = 3});
  const auto rr1 = engine1.retrieve(retrieves);
  const auto rr4 = engine4.retrieve(retrieves);
  const auto sr1 = engine1.similarity_search(searches);
  const auto sr4 = engine4.similarity_search(searches);

  ASSERT_EQ(rr1.size(), rr4.size());
  for (std::size_t i = 0; i < rr1.size(); ++i) expect_equal(rr1[i], rr4[i], i);
  ASSERT_EQ(sr1.size(), sr4.size());
  for (std::size_t i = 0; i < sr1.size(); ++i) {
    EXPECT_EQ(sr1[i].items, sr4[i].items) << "op " << i;
    EXPECT_EQ(sr1[i].discovery_hops, sr4[i].discovery_hops) << "op " << i;
    EXPECT_EQ(sr1[i].total_messages(), sr4[i].total_messages()) << "op " << i;
    EXPECT_EQ(sr1[i].partial, sr4[i].partial) << "op " << i;
  }
  EXPECT_EQ(metric_fingerprint(sys1.metrics()),
            metric_fingerprint(sys4.metrics()));
}

TEST(BatchDeterminism, FaultedLocateBatchIdenticalAcrossWorkerCounts) {
  const TestWorkload wl = make_workload(150, 13);
  Meteorograph sys1 = make_published_system(wl, 13);
  Meteorograph sys4 = make_published_system(wl, 13);
  sim::FaultPlan plan1({.drop_rate = 0.05}, 99);
  sim::FaultPlan plan4({.drop_rate = 0.05}, 99);
  ASSERT_TRUE(sys1.set_fault_hook(&plan1));
  ASSERT_TRUE(sys4.set_fault_hook(&plan4));

  const std::vector<LocateOp> ops = locate_ops(wl);
  BatchEngine engine1(sys1, {.workers = 1, .seed = 21});
  BatchEngine engine4(sys4, {.workers = 4, .seed = 21});
  const auto r1 = engine1.locate(ops);
  const auto r4 = engine4.locate(ops);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) expect_equal(r1[i], r4[i], i);
  // Faults actually fired, and identically on both sides: totals are
  // order-independent sums of the per-op scope tallies.
  EXPECT_GT(plan1.dropped(), 0u);
  EXPECT_EQ(plan1.messages_seen(), plan4.messages_seen());
  EXPECT_EQ(plan1.dropped(), plan4.dropped());
  EXPECT_EQ(metric_fingerprint(sys1.metrics()),
            metric_fingerprint(sys4.metrics()));
}

TEST(BatchDeterminism, PublishBatchIdenticalAcrossWorkerCounts) {
  const TestWorkload wl = make_workload(150, 14);
  Meteorograph sys1(small_config(), wl.sample, 14);
  Meteorograph sys4(small_config(), wl.sample, 14);

  std::vector<PublishOp> ops;
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    ops.push_back(PublishOp{id, &wl.vectors[id], {}});
  }
  BatchEngine engine1(sys1, {.workers = 1, .seed = 5});
  BatchEngine engine4(sys4, {.workers = 4, .seed = 5});
  const auto r1 = engine1.publish(ops);
  const auto r4 = engine4.publish(ops);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) expect_equal(r1[i], r4[i], i);
  EXPECT_EQ(sys1.stored_item_count(), sys4.stored_item_count());
  EXPECT_EQ(sys1.node_loads(), sys4.node_loads());
  EXPECT_EQ(metric_fingerprint(sys1.metrics()),
            metric_fingerprint(sys4.metrics()));
}

// --- engine vs sequential facade -------------------------------------------

TEST(BatchEngine, MatchesSequentialFacadeWithPinnedSource) {
  const TestWorkload wl = make_workload(100, 15);
  Meteorograph facade_sys = make_published_system(wl, 15);
  Meteorograph engine_sys = make_published_system(wl, 15);

  // Pinning `from` removes the only RNG draw in locate, so the engine's
  // per-op substreams cannot diverge from the facade's shared stream.
  const overlay::NodeId source = 0;
  std::vector<LocateOp> ops;
  std::vector<LocateResult> expected;
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    ops.push_back(LocateOp{id, &wl.vectors[id], {.from = source}});
    expected.push_back(facade_sys.locate(id, wl.vectors[id], {.from = source}));
  }
  BatchEngine engine(engine_sys, {.workers = 4});
  const auto results = engine.locate(ops);

  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_equal(results[i], expected[i], i);
  }
  EXPECT_EQ(barrier_free_fingerprint(facade_sys.metrics()),
            barrier_free_fingerprint(engine_sys.metrics()));
}

TEST(BatchEngine, WithdrawBatchRemovesItems) {
  const TestWorkload wl = make_workload(80, 16);
  Meteorograph sys = make_published_system(wl, 16);

  std::vector<WithdrawOp> ops;
  for (vsm::ItemId id = 0; id < 40; ++id) {
    ops.push_back(WithdrawOp{id, &wl.vectors[id], {}});
  }
  BatchEngine engine(sys, {.workers = 4});
  const auto results = engine.withdraw(ops);
  ASSERT_EQ(results.size(), ops.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].removed) << "op " << i;
  }
  EXPECT_EQ(sys.stored_item_count(), wl.vectors.size() - ops.size());
}

// --- fault-hook guard (regression: attach mid-batch) -----------------------

/// Tries to re-attach a hook from inside the batch's own message path —
/// exactly the call set_fault_hook must reject while a batch runs.
class ReattachingHook final : public overlay::FaultHook {
 public:
  explicit ReattachingHook(Meteorograph& sys) : sys_(sys) {}

  overlay::MessageFate on_message(const overlay::MessageContext&) override {
    ++calls_;
    if (sys_.batch_in_flight() && sys_.set_fault_hook(nullptr)) {
      detached_mid_batch_ = true;  // the guard failed
    }
    return overlay::MessageFate::kDeliver;
  }
  [[nodiscard]] bool is_stalled(overlay::NodeId) const override {
    return false;
  }

  [[nodiscard]] std::size_t calls() const noexcept { return calls_; }
  [[nodiscard]] bool detached_mid_batch() const noexcept {
    return detached_mid_batch_;
  }

 private:
  Meteorograph& sys_;
  std::size_t calls_ = 0;
  bool detached_mid_batch_ = false;
};

TEST(BatchEngine, SetFaultHookRejectedMidBatch) {
  const TestWorkload wl = make_workload(60, 17);
  Meteorograph sys = make_published_system(wl, 17);
  ReattachingHook hook(sys);
  ASSERT_TRUE(sys.set_fault_hook(&hook));

  const std::vector<LocateOp> ops = locate_ops(wl);
  BatchEngine engine(sys, {.workers = 4});
  (void)engine.locate(ops);

  EXPECT_GT(hook.calls(), 0u);
  EXPECT_FALSE(hook.detached_mid_batch());
  // The hook survived the batch, and detaching works again afterwards.
  EXPECT_EQ(sys.network().fault_hook(), &hook);
  EXPECT_FALSE(sys.batch_in_flight());
  EXPECT_TRUE(sys.set_fault_hook(nullptr));
}

/// Tries to swap in a *different* hook from inside the message path —
/// the attach direction of the mid-batch guard (the test above covers
/// the detach direction).
class SwappingHook final : public overlay::FaultHook {
 public:
  SwappingHook(Meteorograph& sys, overlay::FaultHook* replacement)
      : sys_(sys), replacement_(replacement) {}

  overlay::MessageFate on_message(const overlay::MessageContext&) override {
    ++calls_;
    if (sys_.batch_in_flight() && sys_.set_fault_hook(replacement_)) {
      swapped_mid_batch_ = true;  // the guard failed
    }
    return overlay::MessageFate::kDeliver;
  }
  [[nodiscard]] bool is_stalled(overlay::NodeId) const override {
    return false;
  }

  [[nodiscard]] std::size_t calls() const noexcept { return calls_; }
  [[nodiscard]] bool swapped_mid_batch() const noexcept {
    return swapped_mid_batch_;
  }

 private:
  Meteorograph& sys_;
  overlay::FaultHook* replacement_;
  std::size_t calls_ = 0;
  bool swapped_mid_batch_ = false;
};

TEST(BatchEngine, SetFaultHookReattachesAfterBatchDrains) {
  const TestWorkload wl = make_workload(60, 18);
  Meteorograph sys = make_published_system(wl, 18);
  sim::FaultPlan replacement({.drop_rate = 0.0}, 1);
  SwappingHook hook(sys, &replacement);
  ASSERT_TRUE(sys.set_fault_hook(&hook));

  const std::vector<LocateOp> ops = locate_ops(wl);
  BatchEngine engine(sys, {.workers = 4});
  (void)engine.locate(ops);

  // Every mid-batch swap attempt was rejected: the original hook carried
  // the whole batch.
  EXPECT_GT(hook.calls(), 0u);
  EXPECT_FALSE(hook.swapped_mid_batch());
  EXPECT_EQ(sys.network().fault_hook(), &hook);

  // Once the batch drains, re-attaching succeeds and the new hook
  // carries the next batch end to end.
  ASSERT_FALSE(sys.batch_in_flight());
  ASSERT_TRUE(sys.set_fault_hook(&replacement));
  EXPECT_EQ(sys.network().fault_hook(), &replacement);
  (void)engine.locate(ops);
  EXPECT_GT(replacement.messages_seen(), 0u);
  EXPECT_TRUE(sys.set_fault_hook(nullptr));
}

}  // namespace
}  // namespace meteo::core
