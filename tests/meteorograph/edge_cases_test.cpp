/// Edge-case coverage for the facade and its operations: degenerate
/// overlay sizes, disabled features, tiny capacities, empty systems.

#include <gtest/gtest.h>

#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "obs/names.hpp"

namespace meteo::core {
namespace {

std::uint64_t op_count(const Meteorograph& sys, const char* op) {
  return sys.metrics().counter_total(obs::names::kOpCount,
                                     {{obs::names::kLabelOp, op}});
}

vsm::SparseVector vec(std::initializer_list<vsm::KeywordId> kws) {
  return vsm::SparseVector::binary(std::vector<vsm::KeywordId>(kws));
}

SystemConfig base_config(std::size_t nodes) {
  SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.dimension = 64;
  cfg.load_balance = LoadBalanceMode::kNone;
  return cfg;
}

TEST(EdgeCases, SingleNodeSystemWorks) {
  Meteorograph sys(base_config(1), {}, 1);
  const PublishResult p = sys.publish(1, vec({1, 2}));
  EXPECT_TRUE(p.success);
  EXPECT_EQ(p.route_hops, 0u);
  const RetrieveResult r = sys.retrieve(vec({1, 2}), 1);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0].id, 1u);
  const std::vector<vsm::KeywordId> q = {1};
  const SearchResult s = sys.similarity_search(q, 0);
  ASSERT_EQ(s.items.size(), 1u);
}

TEST(EdgeCases, SingleNodeFullCapacityDropsOverflow) {
  SystemConfig cfg = base_config(1);
  cfg.node_capacity = 2;
  Meteorograph sys(cfg, {}, 2);
  EXPECT_TRUE(sys.publish(1, vec({1})).success);
  EXPECT_TRUE(sys.publish(2, vec({2})).success);
  // Third item: node full, no neighbor to chain to.
  const PublishResult p = sys.publish(3, vec({3}));
  EXPECT_FALSE(p.success);
  EXPECT_EQ(sys.stored_item_count(), 2u);
}

TEST(EdgeCases, TwoNodeSystemChainsBetweenThem) {
  SystemConfig cfg = base_config(2);
  cfg.node_capacity = 1;
  Meteorograph sys(cfg, {}, 3);
  EXPECT_TRUE(sys.publish(1, vec({1})).success);
  EXPECT_TRUE(sys.publish(2, vec({2})).success);
  EXPECT_EQ(sys.stored_item_count(), 2u);
  // Both full now; a third publish evicts and the chain dead-ends.
  const PublishResult p = sys.publish(3, vec({3}));
  EXPECT_EQ(sys.stored_item_count(), 2u);
  (void)p;  // success depends on which copy got dropped; count is bounded
}

TEST(EdgeCases, SearchWithoutDirectoryPointers) {
  // §3.5.2 disabled: the walk over stored items must still find
  // everything (it crawls nodes directly instead of chasing pointers).
  SystemConfig cfg = base_config(40);
  cfg.directory_pointers = false;
  Meteorograph sys(cfg, {}, 4);
  for (vsm::ItemId id = 0; id < 50; ++id) {
    ASSERT_TRUE(
        sys.publish(id, vec({static_cast<vsm::KeywordId>(id % 7), 60})).success);
  }
  const std::vector<vsm::KeywordId> q = {60};
  const SearchResult r = sys.similarity_search(q, 0);
  EXPECT_EQ(r.items.size(), 50u);
  EXPECT_EQ(r.lookup_messages, 0u);  // nothing to chase
}

TEST(EdgeCases, RetrieveOnEmptySystemReturnsNothing) {
  Meteorograph sys(base_config(20), {}, 5);
  const RetrieveResult r = sys.retrieve(vec({1}), 5);
  EXPECT_TRUE(r.items.empty());
}

TEST(EdgeCases, SimilaritySearchNoMatches) {
  Meteorograph sys(base_config(20), {}, 6);
  for (vsm::ItemId id = 0; id < 10; ++id) {
    (void)sys.publish(id, vec({static_cast<vsm::KeywordId>(id)}));
  }
  const std::vector<vsm::KeywordId> q = {63};
  const SearchResult r = sys.similarity_search(q, 0);
  EXPECT_TRUE(r.items.empty());
}

TEST(EdgeCases, LocateUnpublishedItemFails) {
  Meteorograph sys(base_config(20), {}, 7);
  const LocateResult r = sys.locate(99, vec({1, 2}));
  EXPECT_FALSE(r.found);
}

TEST(EdgeCases, DuplicatePublishKeepsOneCopy) {
  Meteorograph sys(base_config(20), {}, 8);
  EXPECT_TRUE(sys.publish(1, vec({1, 2})).success);
  EXPECT_TRUE(sys.publish(1, vec({1, 2})).success);
  EXPECT_EQ(sys.stored_item_count(), 1u);
}

TEST(EdgeCases, RepublishWithChangedVectorMovesItem) {
  Meteorograph sys(base_config(50), {}, 9);
  ASSERT_TRUE(sys.publish(1, vec({1})).success);
  // Same id, different content: after withdraw+publish, the old copy is
  // gone and the new one is locatable under the new vector.
  (void)sys.withdraw(1, vec({1}));
  ASSERT_TRUE(sys.publish(1, vec({40, 41, 42})).success);
  EXPECT_EQ(sys.stored_item_count(), 1u);
  EXPECT_TRUE(sys.locate(1, vec({40, 41, 42})).found);
}

TEST(EdgeCases, MaxWalkNodesBoundsRetrieve) {
  SystemConfig cfg = base_config(60);
  cfg.max_walk_nodes = 3;
  Meteorograph sys(cfg, {}, 10);
  for (vsm::ItemId id = 0; id < 60; ++id) {
    (void)sys.publish(id, vec({static_cast<vsm::KeywordId>(id % 5)}));
  }
  const RetrieveResult r = sys.retrieve(vec({0}), 60);
  EXPECT_LE(r.nodes_visited, 3u);
}

TEST(EdgeCases, ReplicasClampToPopulation) {
  SystemConfig cfg = base_config(3);
  cfg.replicas = 8;  // more replicas than nodes
  Meteorograph sys(cfg, {}, 11);
  const PublishResult p = sys.publish(1, vec({1}));
  EXPECT_TRUE(p.success);
  // At most node_count - 1 replica copies exist besides the primary.
  std::size_t replica_copies = 0;
  for (const auto node : sys.network().alive_nodes()) {
    if (node != p.stored_at && sys.locate(1, vec({1})).found) {
      // count via locate from each start is awkward; just sanity-check
      // the publish did not crash and reported bounded traffic.
    }
  }
  (void)replica_copies;
  EXPECT_LT(p.replica_messages, 100u);
}

TEST(EdgeCases, HotRegionModeWithUniformSampleFallsBack) {
  // A uniform sample produces no hot regions; construction must still
  // succeed and name nodes uniformly.
  SystemConfig cfg = base_config(100);
  cfg.load_balance = LoadBalanceMode::kUnusedHashSpacePlusHotRegions;
  cfg.dimension = 64;
  std::vector<vsm::SparseVector> sample;
  Rng rng(12);
  for (int i = 0; i < 300; ++i) {
    std::vector<vsm::KeywordId> kws;
    for (int j = 0; j < 5; ++j) {
      kws.push_back(static_cast<vsm::KeywordId>(rng.below(64)));
    }
    sample.push_back(vsm::SparseVector::binary(kws));
  }
  Meteorograph sys(cfg, sample, 13);
  EXPECT_EQ(sys.network().alive_count(), 100u);
}

TEST(EdgeCases, MetricsSurviveMixedOperations) {
  Meteorograph sys(base_config(30), {}, 14);
  (void)sys.publish(1, vec({1, 2}));
  (void)sys.retrieve(vec({1}), 2);
  (void)sys.locate(1, vec({1, 2}));
  const std::vector<vsm::KeywordId> q = {1};
  (void)sys.similarity_search(q, 1);
  (void)sys.withdraw(1, vec({1, 2}));
  EXPECT_EQ(op_count(sys, "publish"), 1u);
  EXPECT_EQ(op_count(sys, "retrieve"), 1u);
  EXPECT_GE(op_count(sys, "locate"), 1u);
  EXPECT_EQ(op_count(sys, "search"), 1u);
  EXPECT_EQ(op_count(sys, "withdraw"), 1u);
}

}  // namespace
}  // namespace meteo::core
