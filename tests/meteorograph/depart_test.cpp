#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "obs/names.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct DepartFixture : ::testing::Test {
  DepartFixture() {
    workload::TraceConfig tc;
    tc.num_items = 300;
    tc.num_keywords = 600;
    tc.mean_basket = 8.0;
    tc.max_basket = 40;
    const workload::Trace trace = workload::synthesize_trace(tc, 21);
    const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
    for (std::size_t i = 0; i < trace.item_count(); ++i) {
      vectors_.push_back(trace.vector_of(i, weights));
    }
    std::vector<vsm::SparseVector> sample;
    for (std::size_t i = 0; i < vectors_.size(); i += 7) {
      sample.push_back(vectors_[i]);
    }
    SystemConfig cfg;
    cfg.node_count = 60;
    cfg.dimension = 600;
    cfg.replicas = 2;
    sys_.emplace(cfg, sample, 22);
    for (vsm::ItemId id = 0; id < vectors_.size(); ++id) {
      EXPECT_TRUE(sys_->publish(id, vectors_[id]).success);
    }
  }

  std::vector<vsm::SparseVector> vectors_;
  std::optional<Meteorograph> sys_;
};

TEST_F(DepartFixture, NoItemLostAfterDeparture) {
  const std::size_t before = sys_->stored_item_count();
  // Depart the most loaded node (worst case).
  overlay::NodeId victim = sys_->network().alive_nodes().front();
  std::size_t max_load = 0;
  for (const auto node : sys_->network().alive_nodes()) {
    if (sys_->store_of(node).size() > max_load) {
      max_load = sys_->store_of(node).size();
      victim = node;
    }
  }
  ASSERT_GT(max_load, 0u);
  const DepartResult r = sys_->depart_node(victim);
  EXPECT_EQ(r.items_transferred, max_load);
  EXPECT_EQ(sys_->stored_item_count(), before);
  EXPECT_FALSE(sys_->network().is_alive(victim));
  // Everything is still locatable.
  for (vsm::ItemId id = 0; id < vectors_.size(); ++id) {
    EXPECT_TRUE(sys_->locate(id, vectors_[id]).found) << "item " << id;
  }
}

TEST_F(DepartFixture, SequentialDeparturesPreserveEverything) {
  for (int round = 0; round < 20; ++round) {
    sys_->depart_node(sys_->network().alive_nodes().front());
  }
  EXPECT_EQ(sys_->network().alive_count(), 40u);
  EXPECT_EQ(sys_->stored_item_count(), vectors_.size());
  for (vsm::ItemId id = 0; id < vectors_.size(); id += 5) {
    EXPECT_TRUE(sys_->locate(id, vectors_[id]).found);
  }
}

TEST_F(DepartFixture, SearchStaysCompleteAfterDepartures) {
  const vsm::KeywordId kw = vectors_[0].entries()[0].keyword;
  const std::vector<vsm::KeywordId> q = {kw};
  const SearchResult before = sys_->similarity_search(q, 0);
  for (int round = 0; round < 10; ++round) {
    sys_->depart_node(sys_->network().random_alive(sys_->rng()));
  }
  const SearchResult after = sys_->similarity_search(q, 0);
  EXPECT_EQ(std::set<vsm::ItemId>(after.items.begin(), after.items.end()),
            std::set<vsm::ItemId>(before.items.begin(), before.items.end()));
}

TEST_F(DepartFixture, SubscriptionsSurviveDirectoryNodeDeparture) {
  const overlay::NodeId me = sys_->network().alive_nodes().back();
  (void)sys_->subscribe(
      std::vector<vsm::KeywordId>{vectors_[0].entries()[0].keyword}, me,
      {.horizon = 500});
  // Depart several nodes; subscription copies re-plant elsewhere.
  for (int round = 0; round < 10; ++round) {
    overlay::NodeId victim = sys_->network().random_alive(sys_->rng());
    if (victim == me) continue;
    sys_->depart_node(victim);
  }
  // A fresh matching publish still notifies.
  const vsm::ItemId fresh = 9999;
  (void)sys_->publish(fresh, vectors_[0]);
  bool notified = false;
  for (const Notification& n : sys_->take_notifications(me)) {
    if (n.item == fresh) notified = true;
  }
  EXPECT_TRUE(notified);
}

TEST_F(DepartFixture, AttributeRecordsSurviveDeparture) {
  const AttributeId attr = sys_->register_attribute(0.0, 100.0);
  for (vsm::ItemId id = 0; id < 50; ++id) {
    (void)sys_->publish_attribute(id, attr, static_cast<double>(id));
  }
  for (int round = 0; round < 15; ++round) {
    sys_->depart_node(sys_->network().random_alive(sys_->rng()));
  }
  const RangeSearchResult r = sys_->range_search(attr, 0.0, 100.0);
  EXPECT_EQ(r.matches.size(), 50u);
}

TEST_F(DepartFixture, DepartCountsMessages) {
  const DepartResult r =
      sys_->depart_node(sys_->network().alive_nodes().front());
  EXPECT_GE(r.messages, r.items_transferred);
  EXPECT_GT(sys_->metrics().counter_total(obs::names::kOpCount,
                                          {{obs::names::kLabelOp, "depart"}}),
            0u);
}

}  // namespace
}  // namespace meteo::core
