/// Golden oracle for the naming seam: the default (absolute-angle)
/// strategy must be bit-identical — names, routes, results, metric dumps,
/// and traces — to the pre-refactor hardcoded Eq. 5/Eq. 6 path. The
/// fingerprints below were captured from the seed revision *before* the
/// NamingStrategy interface existed, on the fig7-shaped (uncapacitated
/// locate/retrieve) and fig10-shaped (8c-capacitated similarity-search)
/// workloads; any drift in a key, a hop count, an item order, a metric
/// cell, or a span event changes the hash.
///
/// If a fingerprint ever changes on purpose (a deliberate re-baseline),
/// document the behavior change and paste the new value from the failure
/// message — never re-capture silently.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "meteorograph/batch.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

// --- fingerprint helpers -----------------------------------------------

/// FNV-1a over the accumulated byte string. Everything fed in is either
/// integral or a double produced by deterministic IEEE arithmetic (the
/// bit-identical contract, DESIGN.md §7), so the hash is exact.
class Fingerprint {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void add(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    add(bits);
  }
  void add(bool v) { byte(v ? 1 : 0); }
  void add(const std::string& s) {
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ULL;
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct Corpus {
  std::vector<vsm::SparseVector> vectors;
  std::vector<vsm::SparseVector> sample;
  workload::Trace trace;
};

Corpus make_corpus(std::size_t items, std::uint64_t seed) {
  workload::TraceConfig tc;
  tc.num_items = items;
  tc.num_keywords = 2000;
  tc.mean_basket = 10.0;
  tc.max_basket = 100;
  Corpus corpus{{}, {}, workload::synthesize_trace(tc, seed)};
  const auto weights =
      corpus.trace.keyword_weights(workload::WeightScheme::kIdf);
  for (std::size_t i = 0; i < items; ++i) {
    corpus.vectors.push_back(corpus.trace.vector_of(i, weights));
  }
  for (std::size_t i = 0; i < items; i += 29) {
    corpus.sample.push_back(corpus.vectors[i]);
  }
  return corpus;
}

void add_publish(Fingerprint& fp, const PublishResult& r) {
  fp.add(r.success);
  fp.add(static_cast<std::uint64_t>(r.home));
  fp.add(static_cast<std::uint64_t>(r.stored_at));
  fp.add(static_cast<std::uint64_t>(r.route_hops));
  fp.add(static_cast<std::uint64_t>(r.chain_hops));
  fp.add(static_cast<std::uint64_t>(r.replica_messages));
  fp.add(static_cast<std::uint64_t>(r.pointer_messages));
  fp.add(r.degraded);
}

/// fig7 shape: uncapacitated hot-region system; publish the corpus, then
/// a mixed locate/retrieve batch at 3 workers. Names, per-op results,
/// and both observability dumps feed the fingerprint.
std::uint64_t fig7_fingerprint() {
  const Corpus corpus = make_corpus(240, 21);

  SystemConfig cfg;
  cfg.node_count = 90;
  cfg.dimension = 2000;
  cfg.replicas = 2;
  std::optional<Meteorograph> sys;
  sys.emplace(cfg, corpus.sample, 33);

  Fingerprint fp;
  // Names first: raw and balanced keys are the seam's direct output.
  for (const vsm::SparseVector& v : corpus.vectors) {
    fp.add(static_cast<std::uint64_t>(sys->raw_key(v)));
    fp.add(static_cast<std::uint64_t>(sys->balanced_key(v)));
  }
  for (vsm::ItemId id = 0; id < corpus.vectors.size(); ++id) {
    add_publish(fp, sys->publish(id, corpus.vectors[id]));
  }

  obs::TraceLog log;
  EXPECT_TRUE(sys->set_tracer(&log));
  BatchEngine engine(*sys, BatchOptions{.workers = 3, .seed = 5});
  std::vector<LocateOp> locates;
  std::vector<RetrieveOp> retrieves;
  for (vsm::ItemId id = 0; id < corpus.vectors.size(); id += 2) {
    locates.push_back(LocateOp{id, &corpus.vectors[id], {}});
    retrieves.push_back(RetrieveOp{&corpus.vectors[id], 5, {}});
  }
  for (const LocateResult& r : engine.locate(locates)) {
    fp.add(r.found);
    fp.add(static_cast<std::uint64_t>(r.node));
    fp.add(r.via_replica);
    fp.add(static_cast<std::uint64_t>(r.route_hops));
    fp.add(static_cast<std::uint64_t>(r.walk_hops));
  }
  for (const RetrieveResult& r : engine.retrieve(retrieves)) {
    fp.add(static_cast<std::uint64_t>(r.items.size()));
    for (const vsm::ScoredItem& item : r.items) {
      fp.add(static_cast<std::uint64_t>(item.id));
      fp.add(item.score);
    }
    fp.add(static_cast<std::uint64_t>(r.nodes_visited));
    fp.add(static_cast<std::uint64_t>(r.route_hops));
    fp.add(static_cast<std::uint64_t>(r.walk_hops));
  }
  fp.add(obs::metrics_to_json(sys->metrics()));
  fp.add(obs::trace_to_chrome_json(log));
  return fp.value();
}

/// fig10 shape: 8c capacity (publishes overflow-chain), directory
/// pointers on; similarity-search batch over each item's leading
/// keywords, traced.
std::uint64_t fig10_fingerprint() {
  const Corpus corpus = make_corpus(300, 22);

  SystemConfig cfg;
  cfg.node_count = 80;
  cfg.dimension = 2000;
  cfg.node_capacity = 8 * (300 / 80);
  std::optional<Meteorograph> sys;
  sys.emplace(cfg, corpus.sample, 44);

  Fingerprint fp;
  for (vsm::ItemId id = 0; id < corpus.vectors.size(); ++id) {
    add_publish(fp, sys->publish(id, corpus.vectors[id]));
  }

  obs::TraceLog log;
  EXPECT_TRUE(sys->set_tracer(&log));
  std::vector<std::vector<vsm::KeywordId>> queries;
  for (std::size_t i = 0; i < corpus.vectors.size(); i += 5) {
    const auto entries = corpus.vectors[i].entries();
    std::vector<vsm::KeywordId> q;
    for (std::size_t j = 0; j < entries.size() && j < 2; ++j) {
      q.push_back(entries[j].keyword);
    }
    queries.push_back(std::move(q));
  }
  std::vector<SearchOp> ops;
  ops.reserve(queries.size());
  for (const auto& q : queries) ops.push_back(SearchOp{q, 10, {}});
  BatchEngine engine(*sys, BatchOptions{.workers = 3, .seed = 7});
  for (const SearchResult& r : engine.similarity_search(ops)) {
    fp.add(static_cast<std::uint64_t>(r.items.size()));
    for (std::size_t i = 0; i < r.items.size(); ++i) {
      fp.add(static_cast<std::uint64_t>(r.items[i]));
      fp.add(static_cast<std::uint64_t>(r.discovery_hops[i]));
    }
    fp.add(static_cast<std::uint64_t>(r.lookup_messages));
    fp.add(static_cast<std::uint64_t>(r.nodes_visited));
    fp.add(static_cast<std::uint64_t>(r.route_hops));
    fp.add(static_cast<std::uint64_t>(r.walk_hops));
  }
  fp.add(obs::metrics_to_json(sys->metrics()));
  fp.add(obs::trace_to_chrome_json(log));
  return fp.value();
}

// Captured from the pre-refactor seed (commit c2f42dc, hardcoded Eq. 5/6
// naming path) — see the file comment before touching these.
constexpr std::uint64_t kFig7Golden = 1326521579247890518ULL;
constexpr std::uint64_t kFig10Golden = 8462943567605827534ULL;

TEST(NamingGolden, Fig7WorkloadBitIdenticalToPreRefactorPath) {
  EXPECT_EQ(fig7_fingerprint(), kFig7Golden);
}

TEST(NamingGolden, Fig10WorkloadBitIdenticalToPreRefactorPath) {
  EXPECT_EQ(fig10_fingerprint(), kFig10Golden);
}

}  // namespace
}  // namespace meteo::core
