#include "meteorograph/naming.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "vsm/absolute_angle.hpp"

namespace meteo::core {
namespace {

SystemConfig test_config(LoadBalanceMode mode) {
  SystemConfig cfg;
  cfg.load_balance = mode;
  cfg.dimension = 1000;
  return cfg;
}

/// A skewed raw-key sample: 85% of keys in a narrow band, like Fig. 3.
std::vector<overlay::Key> skewed_sample(Rng& rng, std::size_t n,
                                        overlay::Key space) {
  std::vector<overlay::Key> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.85)) {
      keys.push_back(space / 2 - 50'000 + rng.below(100'000));
    } else {
      keys.push_back(rng.below(space / 2));
    }
  }
  return keys;
}

TEST(NamingScheme, NoneModeIsIdentity) {
  const SystemConfig cfg = test_config(LoadBalanceMode::kNone);
  const NamingScheme scheme = NamingScheme::fit({}, cfg);
  EXPECT_EQ(scheme.remap(0), 0u);
  EXPECT_EQ(scheme.remap(12345), 12345u);
  EXPECT_TRUE(scheme.knees().empty());
}

TEST(NamingScheme, RawKeyMatchesAbsoluteAngle) {
  const SystemConfig cfg = test_config(LoadBalanceMode::kNone);
  const NamingScheme scheme = NamingScheme::fit({}, cfg);
  const auto v = vsm::SparseVector::binary(std::vector<vsm::KeywordId>{1, 2, 3});
  EXPECT_EQ(scheme.raw_key(v),
            vsm::absolute_angle_key(v, cfg.dimension, cfg.overlay.key_space));
}

TEST(NamingScheme, RemapIsMonotone) {
  Rng rng(1);
  const SystemConfig cfg = test_config(LoadBalanceMode::kUnusedHashSpace);
  const auto sample = skewed_sample(rng, 5000, cfg.overlay.key_space);
  const NamingScheme scheme = NamingScheme::fit(sample, cfg);
  overlay::Key prev = 0;
  for (overlay::Key raw = 0; raw < cfg.overlay.key_space;
       raw += cfg.overlay.key_space / 1000) {
    const overlay::Key mapped = scheme.remap(raw);
    EXPECT_GE(mapped, prev);
    EXPECT_LT(mapped, cfg.overlay.key_space);
    prev = mapped;
  }
}

TEST(NamingScheme, RemapFlattensSkewedDistribution) {
  Rng rng(2);
  const SystemConfig cfg = test_config(LoadBalanceMode::kUnusedHashSpace);
  const auto sample = skewed_sample(rng, 20000, cfg.overlay.key_space);
  const NamingScheme scheme = NamingScheme::fit(sample, cfg);

  // Remap a fresh draw from the same distribution and measure uniformity
  // over 10 equal bins of the space.
  const auto fresh = skewed_sample(rng, 20000, cfg.overlay.key_space);
  Histogram hist(0.0, static_cast<double>(cfg.overlay.key_space), 10);
  for (const overlay::Key k : fresh) {
    hist.add(static_cast<double>(scheme.remap(k)));
  }
  Histogram raw_hist(0.0, static_cast<double>(cfg.overlay.key_space), 10);
  for (const overlay::Key k : fresh) raw_hist.add(static_cast<double>(k));

  // Raw: the hot band (straddling two bins at space/2) holds > 80% of
  // mass. Remapped: no single bin above 35%.
  std::vector<std::uint64_t> raw_counts;
  std::uint64_t remap_max = 0;
  for (std::size_t b = 0; b < 10; ++b) {
    raw_counts.push_back(raw_hist.count(b));
    remap_max = std::max(remap_max, hist.count(b));
  }
  std::sort(raw_counts.begin(), raw_counts.end(), std::greater<>());
  EXPECT_GT(raw_counts[0] + raw_counts[1], 20000u * 80 / 100);
  EXPECT_LT(remap_max, 20000u * 35 / 100);
}

TEST(NamingScheme, KneeBudgetRespected) {
  Rng rng(3);
  SystemConfig cfg = test_config(LoadBalanceMode::kUnusedHashSpace);
  cfg.eq6_knees = 5;
  const auto sample = skewed_sample(rng, 5000, cfg.overlay.key_space);
  const NamingScheme scheme = NamingScheme::fit(sample, cfg);
  // Budget + possibly 2 pinned boundary knots.
  EXPECT_LE(scheme.knees().size(), 7u);
  EXPECT_GE(scheme.knees().size(), 2u);
}

TEST(NamingScheme, BoundaryKeysStayInSpace) {
  Rng rng(4);
  const SystemConfig cfg = test_config(LoadBalanceMode::kUnusedHashSpace);
  const auto sample = skewed_sample(rng, 1000, cfg.overlay.key_space);
  const NamingScheme scheme = NamingScheme::fit(sample, cfg);
  EXPECT_LT(scheme.remap(0), cfg.overlay.key_space);
  EXPECT_LT(scheme.remap(cfg.overlay.key_space - 1), cfg.overlay.key_space);
}

class OrderPreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderPreservation, SimilarItemsStayAdjacent) {
  // The property Eq. 6 must preserve: if raw(a) <= raw(b) <= raw(c) then
  // the remapped keys keep that order, so b remains between a and c.
  Rng rng(GetParam());
  const SystemConfig cfg = test_config(LoadBalanceMode::kUnusedHashSpace);
  const auto sample = skewed_sample(rng, 3000, cfg.overlay.key_space);
  const NamingScheme scheme = NamingScheme::fit(sample, cfg);
  for (int trial = 0; trial < 1000; ++trial) {
    overlay::Key a = rng.below(cfg.overlay.key_space);
    overlay::Key b = rng.below(cfg.overlay.key_space);
    if (a > b) std::swap(a, b);
    EXPECT_LE(scheme.remap(a), scheme.remap(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderPreservation,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace meteo::core
