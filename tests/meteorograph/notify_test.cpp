#include <gtest/gtest.h>

#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct NotifyFixture : ::testing::Test {
  NotifyFixture() {
    workload::TraceConfig tc;
    tc.num_items = 600;
    tc.num_keywords = 800;
    tc.mean_basket = 8.0;
    tc.max_basket = 40;
    trace_.emplace(workload::synthesize_trace(tc, 5));
    weights_ = trace_->keyword_weights(workload::WeightScheme::kIdf);
    for (std::size_t i = 0; i < trace_->item_count(); ++i) {
      vectors_.push_back(trace_->vector_of(i, weights_));
    }
    std::vector<vsm::SparseVector> sample;
    for (std::size_t i = 0; i < vectors_.size(); i += 11) {
      sample.push_back(vectors_[i]);
    }
    SystemConfig cfg;
    cfg.node_count = 80;
    cfg.dimension = 800;
    sys_.emplace(cfg, sample, 9);
  }

  std::optional<workload::Trace> trace_;
  std::vector<double> weights_;
  std::vector<vsm::SparseVector> vectors_;
  std::optional<Meteorograph> sys_;
};

TEST_F(NotifyFixture, SubscriberReceivesMatchingPublishes) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  const std::vector<vsm::KeywordId> interest = {0};  // most popular keyword
  const SubscribeResult sub =
      sys_->subscribe(interest, me, {.horizon = 1000});  // cover everything
  EXPECT_GT(sub.planted_nodes, 0u);

  std::size_t expected = 0;
  for (vsm::ItemId id = 0; id < vectors_.size(); ++id) {
    ASSERT_TRUE(sys_->publish(id, vectors_[id]).success);
    if (vectors_[id].contains(0)) ++expected;
  }
  ASSERT_GT(expected, 0u);

  const auto inbox = sys_->take_notifications(me);
  EXPECT_EQ(inbox.size(), expected);
  for (const Notification& n : inbox) {
    EXPECT_EQ(n.subscription, sub.id);
    EXPECT_TRUE(vectors_[n.item].contains(0));
  }
}

TEST_F(NotifyFixture, NonMatchingPublishesDoNotNotify) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  // Subscribe to a keyword id that no item uses.
  const std::vector<vsm::KeywordId> interest = {799};
  bool unused = true;
  for (const auto& v : vectors_) {
    if (v.contains(799)) unused = false;
  }
  if (!unused) GTEST_SKIP() << "keyword 799 happens to be used";
  (void)sys_->subscribe(interest, me, {.horizon = 1000});
  for (vsm::ItemId id = 0; id < 100; ++id) {
    (void)sys_->publish(id, vectors_[id]);
  }
  EXPECT_TRUE(sys_->take_notifications(me).empty());
}

TEST_F(NotifyFixture, TakeNotificationsDrains) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  (void)sys_->subscribe(std::vector<vsm::KeywordId>{0}, me, {.horizon = 1000});
  for (vsm::ItemId id = 0; id < 200; ++id) {
    (void)sys_->publish(id, vectors_[id]);
  }
  const auto first = sys_->take_notifications(me);
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(sys_->take_notifications(me).empty());
}

TEST_F(NotifyFixture, UnsubscribeStopsDeliveries) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  const SubscribeResult sub =
      sys_->subscribe(std::vector<vsm::KeywordId>{0}, me, {.horizon = 1000});
  EXPECT_TRUE(sys_->unsubscribe(sub.id));
  EXPECT_FALSE(sys_->unsubscribe(sub.id));  // idempotence check
  for (vsm::ItemId id = 0; id < 200; ++id) {
    (void)sys_->publish(id, vectors_[id]);
  }
  EXPECT_TRUE(sys_->take_notifications(me).empty());
}

TEST_F(NotifyFixture, MultipleSubscribersAreIndependent) {
  const auto nodes = sys_->network().alive_nodes();
  const overlay::NodeId a = nodes[0];
  const overlay::NodeId b = nodes[1];
  const SubscribeResult sa =
      sys_->subscribe(std::vector<vsm::KeywordId>{0}, a, {.horizon = 1000});
  const SubscribeResult sb =
      sys_->subscribe(std::vector<vsm::KeywordId>{1}, b, {.horizon = 1000});
  EXPECT_NE(sa.id, sb.id);
  for (vsm::ItemId id = 0; id < vectors_.size(); ++id) {
    (void)sys_->publish(id, vectors_[id]);
  }
  for (const Notification& n : sys_->take_notifications(a)) {
    EXPECT_EQ(n.subscription, sa.id);
    EXPECT_TRUE(vectors_[n.item].contains(0));
  }
  for (const Notification& n : sys_->take_notifications(b)) {
    EXPECT_EQ(n.subscription, sb.id);
    EXPECT_TRUE(vectors_[n.item].contains(1));
  }
}

TEST_F(NotifyFixture, ConjunctiveSubscriptionMatchesAllKeywords) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  // Find a 2-keyword combination present in the data.
  std::vector<vsm::KeywordId> interest;
  for (const auto& v : vectors_) {
    if (v.nnz() >= 2) {
      interest = {v.entries()[0].keyword, v.entries()[1].keyword};
      break;
    }
  }
  ASSERT_EQ(interest.size(), 2u);
  (void)sys_->subscribe(interest, me, {.horizon = 1000});
  std::size_t expected = 0;
  for (vsm::ItemId id = 0; id < vectors_.size(); ++id) {
    (void)sys_->publish(id, vectors_[id]);
    if (vectors_[id].contains(interest[0]) &&
        vectors_[id].contains(interest[1])) {
      ++expected;
    }
  }
  EXPECT_EQ(sys_->take_notifications(me).size(), expected);
}

TEST_F(NotifyFixture, LimitedHorizonIsBestEffort) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  const SubscribeResult sub =
      sys_->subscribe(std::vector<vsm::KeywordId>{0}, me, {.horizon = 2});
  EXPECT_LE(sub.planted_nodes, 2u);
  std::size_t matching = 0;
  for (vsm::ItemId id = 0; id < vectors_.size(); ++id) {
    (void)sys_->publish(id, vectors_[id]);
    if (vectors_[id].contains(0)) ++matching;
  }
  // Best-effort: no more than the matching count, possibly fewer.
  EXPECT_LE(sys_->take_notifications(me).size(), matching);
}

TEST_F(NotifyFixture, NotificationCostIsAccounted) {
  const overlay::NodeId me = sys_->network().alive_nodes().front();
  (void)sys_->subscribe(std::vector<vsm::KeywordId>{0}, me, {.horizon = 1000});
  std::size_t notify_msgs = 0;
  for (vsm::ItemId id = 0; id < 100; ++id) {
    notify_msgs += sys_->publish(id, vectors_[id]).notify_messages;
  }
  const auto inbox = sys_->take_notifications(me);
  EXPECT_GE(notify_msgs, inbox.size());  // >= 1 message per delivery
}

}  // namespace
}  // namespace meteo::core
