/// Replica-aware retrieval: after a primary's host dies, retrieve() must
/// still surface the item from a surviving replica (§3.6 failover applied
/// to ranked search, not just exact lookup).

#include <gtest/gtest.h>

#include <vector>

#include "meteorograph/meteorograph.hpp"

namespace meteo::core {
namespace {

vsm::SparseVector vec(std::initializer_list<vsm::KeywordId> kws) {
  return vsm::SparseVector::binary(std::vector<vsm::KeywordId>(kws));
}

SystemConfig make_config() {
  SystemConfig cfg;
  cfg.node_count = 40;
  cfg.dimension = 128;
  cfg.load_balance = LoadBalanceMode::kNone;
  cfg.replicas = 3;
  return cfg;
}

TEST(ReplicaRetrieve, SurvivesPrimaryFailure) {
  Meteorograph sys(make_config(), {}, 31);
  const auto v = vec({5, 6, 7});
  const PublishResult p = sys.publish(1, v);
  ASSERT_TRUE(p.success);
  sys.network().fail(p.stored_at);
  sys.network().repair();
  const RetrieveResult r = sys.retrieve(v, 1);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0].id, 1u);
  EXPECT_NEAR(r.items[0].score, 1.0, 1e-9);
}

TEST(ReplicaRetrieve, NoDuplicateWhenPrimaryAndReplicaBothVisible) {
  Meteorograph sys(make_config(), {}, 32);
  const auto v = vec({1, 2});
  ASSERT_TRUE(sys.publish(1, v).success);
  // Ask for more results than exist: the item must appear exactly once
  // even though the walk sees both its primary and its replica copies.
  const RetrieveResult r = sys.retrieve(v, 10);
  std::size_t occurrences = 0;
  for (const auto& hit : r.items) {
    if (hit.id == 1) ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(ReplicaRetrieve, RankingStillDescending) {
  Meteorograph sys(make_config(), {}, 33);
  ASSERT_TRUE(sys.publish(1, vec({1, 2})).success);
  ASSERT_TRUE(sys.publish(2, vec({1, 9})).success);
  ASSERT_TRUE(sys.publish(3, vec({8, 9})).success);
  const RetrieveResult r = sys.retrieve(vec({1, 2}), 3);
  for (std::size_t i = 1; i < r.items.size(); ++i) {
    EXPECT_GE(r.items[i - 1].score, r.items[i].score);
  }
}

TEST(ReplicaRetrieve, MassFailureRecallWithReplicas) {
  SystemConfig cfg = make_config();
  cfg.node_count = 120;
  cfg.replicas = 4;
  Meteorograph sys(cfg, {}, 34);
  Rng rng(35);
  std::vector<vsm::SparseVector> vectors;
  for (vsm::ItemId id = 0; id < 150; ++id) {
    std::vector<vsm::KeywordId> kws;
    for (int j = 0; j < 5; ++j) {
      kws.push_back(static_cast<vsm::KeywordId>(rng.below(128)));
    }
    vectors.push_back(vsm::SparseVector::binary(kws));
    ASSERT_TRUE(sys.publish(id, vectors.back()).success);
  }
  // Fail 30% of nodes, stabilize, and self-query every item.
  std::vector<overlay::NodeId> nodes = sys.network().alive_nodes();
  for (std::size_t i = 0; i < nodes.size(); i += 3) {
    if (sys.network().alive_count() > 1) sys.network().fail(nodes[i]);
  }
  sys.network().repair();
  std::size_t recalled = 0;
  for (vsm::ItemId id = 0; id < 150; ++id) {
    const RetrieveResult r = sys.retrieve(vectors[id], 1);
    if (!r.items.empty() && r.items[0].id == id) ++recalled;
  }
  // With 4 replicas and 30% loss, P(all copies dead) ~ 0.8% — expect
  // near-total recall.
  EXPECT_GT(recalled, 140u);
}

}  // namespace
}  // namespace meteo::core
