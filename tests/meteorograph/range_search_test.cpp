#include "meteorograph/range_search.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "meteorograph/meteorograph.hpp"
#include "obs/names.hpp"

namespace meteo::core {
namespace {

TEST(AttributeSpace, LinearMappingEndpoints) {
  const AttributeSpace space(0, 0.0, 100.0, 1000, 2000,
                             AttributeScale::kLinear);
  EXPECT_EQ(space.key_of(0.0), 1000u);
  EXPECT_EQ(space.key_of(100.0), 2000u);
  EXPECT_EQ(space.key_of(50.0), 1500u);
}

TEST(AttributeSpace, ClampsOutOfRange) {
  const AttributeSpace space(0, 10.0, 20.0, 0, 100, AttributeScale::kLinear);
  EXPECT_EQ(space.key_of(-5.0), space.key_of(10.0));
  EXPECT_EQ(space.key_of(500.0), space.key_of(20.0));
}

TEST(AttributeSpace, LinearIsMonotone) {
  const AttributeSpace space(0, -50.0, 50.0, 0, 1'000'000,
                             AttributeScale::kLinear);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.uniform(-60.0, 60.0);
    const double b = rng.uniform(-60.0, 60.0);
    if (a <= b) {
      EXPECT_LE(space.key_of(a), space.key_of(b));
    }
  }
}

TEST(AttributeSpace, LogScaleSpreadsOrdersOfMagnitude) {
  // 1 GiB .. 1 TiB memory sizes; log scale gives each decade equal keys.
  const AttributeSpace space(0, 1.0, 1024.0, 0, 1'000'000,
                             AttributeScale::kLog);
  const overlay::Key k1 = space.key_of(1.0);
  const overlay::Key k32 = space.key_of(32.0);
  const overlay::Key k1024 = space.key_of(1024.0);
  // 32 is the geometric midpoint of [1, 1024].
  EXPECT_NEAR(static_cast<double>(k32 - k1),
              static_cast<double>(k1024 - k32), 2.0);
}

TEST(AttributeSpace, LogIsMonotone) {
  const AttributeSpace space(0, 0.5, 4096.0, 0, 1'000'000, AttributeScale::kLog);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.uniform(0.5, 4096.0);
    const double b = rng.uniform(0.5, 4096.0);
    if (a <= b) {
      EXPECT_LE(space.key_of(a), space.key_of(b));
    }
  }
}

TEST(AttributeRegistry, SlicesAreDisjoint) {
  AttributeRegistry reg(overlay::kDefaultKeySpace);
  const AttributeId a = reg.register_attribute(0.0, 1.0);
  const AttributeId b = reg.register_attribute(0.0, 1.0);
  EXPECT_NE(a, b);
  EXPECT_LT(reg.space(a).key_hi(), reg.space(b).key_lo());
}

TEST(AttributeRegistry, SizeTracksRegistrations) {
  AttributeRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  (void)reg.register_attribute(0.0, 10.0);
  (void)reg.register_attribute(1.0, 100.0, AttributeScale::kLog);
  EXPECT_EQ(reg.size(), 2u);
}

// --- end-to-end through the facade -----------------------------------------

class RangeSearchEndToEnd : public ::testing::Test {
 protected:
  RangeSearchEndToEnd() : sys_(make_config(), sample(), 7) {
    memory_ = sys_.register_attribute(1.0, 1024.0, AttributeScale::kLog);
    cores_ = sys_.register_attribute(1.0, 256.0, AttributeScale::kLinear);
    // 200 machines: memory = id MiB-ish values spread over the range.
    for (vsm::ItemId id = 0; id < 200; ++id) {
      const double mem = 1.0 + static_cast<double>(id) * 5.0;
      (void)sys_.publish_attribute(id, memory_, mem);
      (void)sys_.publish_attribute(id, cores_,
                                   static_cast<double>(1 + id % 64));
    }
  }

  static SystemConfig make_config() {
    SystemConfig cfg;
    cfg.node_count = 64;
    cfg.dimension = 100;
    cfg.load_balance = LoadBalanceMode::kNone;
    return cfg;
  }
  static std::vector<vsm::SparseVector> sample() { return {}; }

  Meteorograph sys_ = Meteorograph(make_config(), {}, 7);
  AttributeId memory_ = 0;
  AttributeId cores_ = 0;
};

TEST_F(RangeSearchEndToEnd, FindsExactRange) {
  // Items with memory in [101, 201]: ids 20..40.
  const RangeSearchResult r = sys_.range_search(memory_, 101.0, 201.0);
  ASSERT_EQ(r.matches.size(), 21u);
  for (const RangeMatch& m : r.matches) {
    EXPECT_GE(m.value, 101.0);
    EXPECT_LE(m.value, 201.0);
  }
}

TEST_F(RangeSearchEndToEnd, ResultsSortedByValue) {
  const RangeSearchResult r = sys_.range_search(memory_, 1.0, 1024.0);
  ASSERT_EQ(r.matches.size(), 200u);  // the whole population
  for (std::size_t i = 1; i < r.matches.size(); ++i) {
    EXPECT_LE(r.matches[i - 1].value, r.matches[i].value);
  }
}

TEST_F(RangeSearchEndToEnd, EmptyRangeYieldsNothing) {
  const RangeSearchResult r = sys_.range_search(memory_, 2.5, 3.5);
  EXPECT_TRUE(r.matches.empty());
}

TEST_F(RangeSearchEndToEnd, PointQueryFindsExactValue) {
  const RangeSearchResult r = sys_.range_search(memory_, 6.0, 6.0);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].item, 1u);  // id 1 has memory 6.0
}

TEST_F(RangeSearchEndToEnd, AttributesAreIsolated) {
  // A cores query must never return memory records.
  const RangeSearchResult r = sys_.range_search(cores_, 1.0, 256.0);
  EXPECT_EQ(r.matches.size(), 200u);
  for (const RangeMatch& m : r.matches) {
    EXPECT_LE(m.value, 64.0);  // cores were published as 1..64
  }
}

TEST_F(RangeSearchEndToEnd, CostIsRoutePlusSpan) {
  // A narrow range should cost O(log N) route + a short walk; a full-space
  // range walks more nodes.
  const RangeSearchResult narrow = sys_.range_search(memory_, 500.0, 510.0);
  const RangeSearchResult wide = sys_.range_search(memory_, 1.0, 1024.0);
  EXPECT_LT(narrow.total_messages(), wide.total_messages());
  EXPECT_LE(narrow.route_hops, 10u);
}

TEST_F(RangeSearchEndToEnd, MessagesAreCounted) {
  (void)sys_.range_search(memory_, 1.0, 100.0);
  EXPECT_GT(
      sys_.metrics().counter_total(obs::names::kOpCount,
                                   {{obs::names::kLabelOp, "range_search"}}),
      0u);
}

}  // namespace
}  // namespace meteo::core
