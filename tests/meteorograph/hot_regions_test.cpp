#include "meteorograph/hot_regions.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/cdf.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace meteo::core {
namespace {

SystemConfig test_config() {
  SystemConfig cfg;
  cfg.hot_regions = 2;
  cfg.hot_region_knees = 6;
  return cfg;
}

/// Sample with two hot bands (like the paper's regions B and C) over a
/// uniform background.
std::vector<overlay::Key> two_hot_bands(Rng& rng, std::size_t n,
                                        overlay::Key space) {
  std::vector<overlay::Key> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rng.uniform();
    if (r < 0.4) {
      keys.push_back(space / 4 + rng.below(space / 16));          // band B
    } else if (r < 0.7) {
      keys.push_back((space * 3) / 4 + rng.below(space / 16));    // band C
    } else {
      keys.push_back(rng.below(space));
    }
  }
  return keys;
}

TEST(HotRegionSet, EmptySampleYieldsNoRegions) {
  const HotRegionSet set = HotRegionSet::detect({}, test_config());
  EXPECT_TRUE(set.regions().empty());
}

TEST(HotRegionSet, UniformSampleYieldsNoRegions) {
  Rng rng(1);
  const SystemConfig cfg = test_config();
  std::vector<overlay::Key> keys;
  for (int i = 0; i < 50000; ++i) keys.push_back(rng.below(cfg.overlay.key_space));
  const HotRegionSet set = HotRegionSet::detect(keys, cfg);
  EXPECT_TRUE(set.regions().empty());
}

TEST(HotRegionSet, DetectsTwoBands) {
  Rng rng(2);
  const SystemConfig cfg = test_config();
  const auto keys = two_hot_bands(rng, 50000, cfg.overlay.key_space);
  const HotRegionSet set = HotRegionSet::detect(keys, cfg);
  ASSERT_EQ(set.regions().size(), 2u);
  // Band B around space/4, band C around 3*space/4; regions sorted by lo.
  const auto& b = set.regions()[0];
  const auto& c = set.regions()[1];
  EXPECT_LE(b.lo, cfg.overlay.key_space / 4);
  EXPECT_GE(b.hi, cfg.overlay.key_space / 4);
  EXPECT_LE(c.lo, cfg.overlay.key_space * 3 / 4);
  EXPECT_GE(c.hi, cfg.overlay.key_space * 3 / 4);
  EXPECT_GT(b.item_share, 0.3);
  EXPECT_GT(c.item_share, 0.2);
}

TEST(HotRegionSet, RegionOfLookups) {
  Rng rng(3);
  const SystemConfig cfg = test_config();
  const auto keys = two_hot_bands(rng, 50000, cfg.overlay.key_space);
  const HotRegionSet set = HotRegionSet::detect(keys, cfg);
  ASSERT_EQ(set.regions().size(), 2u);
  const auto& b = set.regions()[0];
  EXPECT_EQ(set.region_of(b.lo), &b);
  EXPECT_EQ(set.region_of(b.hi), set.region_of(b.hi));  // hi is exclusive
  EXPECT_EQ(set.region_of(0), nullptr);
}

TEST(HotRegionSet, DegreesOfHotnessSumToOne) {
  Rng rng(4);
  const SystemConfig cfg = test_config();
  const auto keys = two_hot_bands(rng, 50000, cfg.overlay.key_space);
  const HotRegionSet set = HotRegionSet::detect(keys, cfg);
  for (const HotRegion& region : set.regions()) {
    double sum = 0.0;
    for (std::size_t j = 0; j + 1 < region.knees.size(); ++j) {
      const double p = HotRegionSet::degree_of_hotness(region, j);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(HotRegionSet, EmptySetNamesUniformly) {
  const HotRegionSet set;
  Rng rng(5);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(set.name_node(rng)));
  }
  EXPECT_NEAR(stats.mean(),
              static_cast<double>(overlay::kDefaultKeySpace) / 2.0,
              static_cast<double>(overlay::kDefaultKeySpace) * 0.02);
}

TEST(HotRegionSet, NameNodeBiasesTowardItemDensity) {
  Rng rng(6);
  const SystemConfig cfg = test_config();
  const auto keys = two_hot_bands(rng, 50000, cfg.overlay.key_space);
  const HotRegionSet set = HotRegionSet::detect(keys, cfg);
  ASSERT_FALSE(set.regions().empty());

  // Count node names landing inside hot regions vs a uniform baseline.
  std::size_t in_hot = 0;
  const std::size_t draws = 50000;
  for (std::size_t i = 0; i < draws; ++i) {
    if (set.region_of(set.name_node(rng)) != nullptr) ++in_hot;
  }
  // Uniform expectation = total hot width / space; the Fig. 5 scheme keeps
  // the same total probability of being in a hot region but concentrates
  // placement inside it, so in-hot share stays near the width share.
  double hot_width = 0.0;
  for (const HotRegion& r : set.regions()) {
    hot_width += static_cast<double>(r.hi - r.lo);
  }
  const double expected = hot_width / static_cast<double>(cfg.overlay.key_space);
  EXPECT_NEAR(static_cast<double>(in_hot) / static_cast<double>(draws),
              expected, 0.05);

  // Within a region, sub-region node density must track item density:
  // compare the node-name CDF inside region B against its item CDF knees.
  const HotRegion& b = set.regions()[0];
  std::vector<double> names_in_b;
  for (std::size_t i = 0; i < 200000 && names_in_b.size() < 20000; ++i) {
    const overlay::Key k = set.name_node(rng);
    if (k >= b.lo && k < b.hi) names_in_b.push_back(static_cast<double>(k));
  }
  ASSERT_GT(names_in_b.size(), 1000u);
  const EmpiricalCdf node_cdf(names_in_b);
  const double y1 = b.knees.front().y;
  const double yt = b.knees.back().y;
  for (const Knot& knee : b.knees) {
    const double item_fraction = (knee.y - y1) / (yt - y1);
    const double node_fraction = node_cdf.fraction_at(knee.x);
    EXPECT_NEAR(node_fraction, item_fraction, 0.08);
  }
}

}  // namespace
}  // namespace meteo::core
