/// The naming-strategy seam (DESIGN.md §12): range-key order
/// preservation, LSH key/probe geometry and statelessness, multi-key
/// publication end to end, per-strategy observability, and the LSH
/// determinism bar — byte-identical dumps at 1 vs 4 workers under 5%
/// message drop.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "meteorograph/batch.hpp"
#include "meteorograph/naming/lsh.hpp"
#include "meteorograph/naming/range_key.hpp"
#include "meteorograph/naming/strategy.hpp"
#include "obs/export.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct Corpus {
  std::vector<vsm::SparseVector> vectors;
  std::vector<vsm::SparseVector> sample;
};

Corpus make_corpus(std::size_t items, std::uint64_t seed) {
  workload::TraceConfig tc;
  tc.num_items = items;
  tc.num_keywords = 2000;
  tc.mean_basket = 10.0;
  tc.max_basket = 100;
  const workload::Trace trace = workload::synthesize_trace(tc, seed);
  const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
  Corpus corpus;
  for (std::size_t i = 0; i < items; ++i) {
    corpus.vectors.push_back(trace.vector_of(i, weights));
  }
  for (std::size_t i = 0; i < items; i += 17) {
    corpus.sample.push_back(corpus.vectors[i]);
  }
  return corpus;
}

SystemConfig small_config(NamingStrategyKind strategy) {
  SystemConfig cfg;
  cfg.node_count = 60;
  cfg.dimension = 2000;
  cfg.naming.strategy = strategy;
  return cfg;
}

// --- factory & strategy identity -------------------------------------------

TEST(NamingStrategyTest, FactoryBuildsTheConfiguredStrategy) {
  const Corpus corpus = make_corpus(80, 7);
  for (const auto& [kind, name] :
       {std::pair{NamingStrategyKind::kAngle, "angle"},
        std::pair{NamingStrategyKind::kRangeKey, "range"},
        std::pair{NamingStrategyKind::kLsh, "lsh"}}) {
    const auto strategy =
        make_naming_strategy(corpus.sample, small_config(kind));
    EXPECT_STREQ(strategy->name(), name);
    EXPECT_EQ(strategy->multi_key(), kind == NamingStrategyKind::kLsh);
    // The angle strategy is the silent default; the others must announce
    // themselves in spans and metrics.
    EXPECT_EQ(strategy->records_naming(), kind != NamingStrategyKind::kAngle);
  }
}

TEST(NamingStrategyTest, SingleKeyStrategiesProbeExactlyThePrimaryKey) {
  const Corpus corpus = make_corpus(80, 7);
  for (const NamingStrategyKind kind :
       {NamingStrategyKind::kAngle, NamingStrategyKind::kRangeKey}) {
    const auto strategy =
        make_naming_strategy(corpus.sample, small_config(kind));
    for (const vsm::SparseVector& v : corpus.vectors) {
      std::vector<overlay::Key> publish;
      std::vector<overlay::Key> probe;
      strategy->publish_keys(v, publish);
      strategy->probe_keys(v, probe);
      ASSERT_EQ(publish.size(), 1u);
      ASSERT_EQ(probe.size(), 1u);
      EXPECT_EQ(publish.front(), strategy->primary_key(v));
      EXPECT_EQ(probe.front(), strategy->primary_key(v));
    }
  }
}

TEST(NamingStrategyTest, DirectoryKeyIsTheRawAngleKeyUnderEveryStrategy) {
  const Corpus corpus = make_corpus(60, 11);
  for (const NamingStrategyKind kind :
       {NamingStrategyKind::kAngle, NamingStrategyKind::kRangeKey,
        NamingStrategyKind::kLsh}) {
    const auto strategy =
        make_naming_strategy(corpus.sample, small_config(kind));
    for (const vsm::SparseVector& v : corpus.vectors) {
      EXPECT_EQ(strategy->directory_key(v), strategy->scheme().raw_key(v));
    }
  }
}

// --- range-key strategy -----------------------------------------------------

TEST(NamingStrategyTest, RangeKeyPreservesAngleOrder) {
  const Corpus corpus = make_corpus(120, 13);
  const auto strategy = make_naming_strategy(
      corpus.sample, small_config(NamingStrategyKind::kRangeKey));
  const auto& scheme = strategy->scheme();

  // Sort items by continuous raw angle; their range keys must be
  // non-decreasing in that order (strict monotonicity modulo flooring).
  std::vector<std::size_t> order(corpus.vectors.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scheme.raw_value(corpus.vectors[a]) <
           scheme.raw_value(corpus.vectors[b]);
  });
  overlay::Key prev = 0;
  for (const std::size_t i : order) {
    const overlay::Key key = strategy->primary_key(corpus.vectors[i]);
    EXPECT_GE(key, prev);
    prev = key;
  }
}

TEST(NamingStrategyTest, RangeKeyStretchesTheSampleBandOverTheKeySpace) {
  const Corpus corpus = make_corpus(120, 13);
  const SystemConfig cfg = small_config(NamingStrategyKind::kRangeKey);
  NamingScheme scheme =
      NamingScheme::fit(NamingScheme::raw_keys(corpus.sample, cfg), cfg);
  const RangeKeyNaming strategy(std::move(scheme), corpus.sample);
  ASSERT_LT(strategy.band_lo(), strategy.band_hi());

  // The sample extremes land on (or clamp to) the space's extremes.
  overlay::Key lo = cfg.overlay.key_space;
  overlay::Key hi = 0;
  for (const vsm::SparseVector& v : corpus.sample) {
    const overlay::Key key = strategy.primary_key(v);
    lo = std::min(lo, key);
    hi = std::max(hi, key);
  }
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, cfg.overlay.key_space - 1);
}

// --- LSH strategy ------------------------------------------------------------

TEST(NamingStrategyTest, LshPublishesOneKeyPerTableInDisjointSegments) {
  const Corpus corpus = make_corpus(100, 17);
  const SystemConfig cfg = small_config(NamingStrategyKind::kLsh);
  const auto strategy = make_naming_strategy(corpus.sample, cfg);
  const overlay::Key segment =
      cfg.overlay.key_space / cfg.naming.lsh_tables;

  for (const vsm::SparseVector& v : corpus.vectors) {
    std::vector<overlay::Key> keys;
    strategy->publish_keys(v, keys);
    ASSERT_EQ(keys.size(), cfg.naming.lsh_tables);
    EXPECT_EQ(keys.front(), strategy->primary_key(v));
    for (std::size_t t = 0; t < keys.size(); ++t) {
      // Table t's bucket key lives inside table t's segment: keys never
      // collide across tables.
      EXPECT_GE(keys[t], static_cast<overlay::Key>(t) * segment);
      EXPECT_LT(keys[t], static_cast<overlay::Key>(t + 1) * segment);
    }
  }
}

TEST(NamingStrategyTest, LshProbesCoverEveryBaseBucketPlusPerturbations) {
  const Corpus corpus = make_corpus(60, 19);
  const SystemConfig cfg = small_config(NamingStrategyKind::kLsh);
  const auto strategy = make_naming_strategy(corpus.sample, cfg);

  for (const vsm::SparseVector& v : corpus.vectors) {
    std::vector<overlay::Key> publish;
    std::vector<overlay::Key> probes;
    strategy->publish_keys(v, publish);
    strategy->probe_keys(v, probes);
    ASSERT_EQ(probes.size(),
              cfg.naming.lsh_tables * (1 + cfg.naming.lsh_probes));
    // Self-query: each table's base probe is exactly the published bucket.
    for (std::size_t t = 0; t < cfg.naming.lsh_tables; ++t) {
      EXPECT_EQ(probes[t * (1 + cfg.naming.lsh_probes)], publish[t]);
    }
    // Perturbations are distinct from their base bucket.
    for (std::size_t t = 0; t < cfg.naming.lsh_tables; ++t) {
      const std::size_t base = t * (1 + cfg.naming.lsh_probes);
      for (std::size_t p = 1; p <= cfg.naming.lsh_probes; ++p) {
        EXPECT_NE(probes[base + p], probes[base]);
      }
    }
  }
}

TEST(NamingStrategyTest, LshKeysAreStatelessAndSeedStable) {
  const Corpus corpus = make_corpus(60, 23);
  const SystemConfig cfg = small_config(NamingStrategyKind::kLsh);
  // Two independent instances — and repeated calls on one instance —
  // agree exactly: keys are pure functions of (config seed, vector).
  const auto a = make_naming_strategy(corpus.sample, cfg);
  const auto b = make_naming_strategy(corpus.sample, cfg);
  for (const vsm::SparseVector& v : corpus.vectors) {
    std::vector<overlay::Key> ka;
    std::vector<overlay::Key> kb;
    std::vector<overlay::Key> ka2;
    a->publish_keys(v, ka);
    b->publish_keys(v, kb);
    a->publish_keys(v, ka2);
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(ka, ka2);
  }

  // A different hyperplane seed names differently (the seed is live).
  SystemConfig reseeded = cfg;
  reseeded.naming.lsh_seed ^= 0xdeadbeefULL;
  const auto c = make_naming_strategy(corpus.sample, reseeded);
  std::size_t differing = 0;
  for (const vsm::SparseVector& v : corpus.vectors) {
    if (c->primary_key(v) != a->primary_key(v)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

// --- end-to-end through the facade ------------------------------------------

TEST(NamingStrategyTest, MultiKeyPublishRetrieveLocateWithdrawRoundTrip) {
  const Corpus corpus = make_corpus(120, 29);
  std::optional<Meteorograph> sys;
  sys.emplace(small_config(NamingStrategyKind::kLsh), corpus.sample, 31);

  for (vsm::ItemId id = 0; id < corpus.vectors.size(); ++id) {
    const PublishResult r = sys->publish(id, corpus.vectors[id]);
    ASSERT_TRUE(r.success);
    // g-1 extra copies were placed and billed.
    EXPECT_GT(r.naming_key_messages, 0u);
    EXPECT_GT(r.total_messages(), r.route_hops + r.chain_hops);
  }

  // Self-queries find their item through the probe plan.
  std::size_t found = 0;
  for (vsm::ItemId id = 0; id < corpus.vectors.size(); id += 3) {
    const RetrieveResult r = sys->retrieve(corpus.vectors[id], 5);
    for (const vsm::ScoredItem& item : r.items) {
      if (item.id == id) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, (corpus.vectors.size() + 2) / 3);

  const LocateResult located = sys->locate(7, corpus.vectors[7]);
  EXPECT_TRUE(located.found);

  // Withdraw erases the primary and sweeps the bucket copies.
  const WithdrawResult withdrawn = sys->withdraw(7, corpus.vectors[7]);
  EXPECT_TRUE(withdrawn.removed);
  const LocateResult gone = sys->locate(7, corpus.vectors[7], {});
  EXPECT_FALSE(gone.found);
}

TEST(NamingStrategyTest, LshDepartMigratesBucketCopies) {
  const Corpus corpus = make_corpus(90, 37);
  std::optional<Meteorograph> sys;
  sys.emplace(small_config(NamingStrategyKind::kLsh), corpus.sample, 41);
  for (vsm::ItemId id = 0; id < corpus.vectors.size(); ++id) {
    ASSERT_TRUE(sys->publish(id, corpus.vectors[id]).success);
  }
  const std::size_t stored_before = sys->stored_item_count();

  // Depart a handful of nodes; every bucket copy they held must re-home
  // (the strategy's migration_key keeps copies in their own buckets).
  for (const overlay::NodeId node : {3u, 11u, 29u}) {
    (void)sys->depart_node(node);
  }
  EXPECT_EQ(sys->stored_item_count(), stored_before);

  // Items are still reachable afterwards.
  std::size_t found = 0;
  for (vsm::ItemId id = 0; id < corpus.vectors.size(); id += 5) {
    if (sys->locate(id, corpus.vectors[id]).found) ++found;
  }
  EXPECT_EQ(found, (corpus.vectors.size() + 4) / 5);
}

TEST(NamingStrategyTest, NamingSeriesAppearOnlyForNonDefaultStrategies) {
  const Corpus corpus = make_corpus(60, 43);

  std::optional<Meteorograph> angle;
  angle.emplace(small_config(NamingStrategyKind::kAngle), corpus.sample, 47);
  for (vsm::ItemId id = 0; id < 20; ++id) {
    ASSERT_TRUE(angle->publish(id, corpus.vectors[id]).success);
    (void)angle->retrieve(corpus.vectors[id], 3);
  }
  const std::string angle_dump = obs::metrics_to_json(angle->metrics());
  EXPECT_EQ(angle_dump.find(obs::names::kNamingProbes), std::string::npos);
  EXPECT_EQ(angle_dump.find(obs::names::kNamingKeys), std::string::npos);

  std::optional<Meteorograph> lsh;
  lsh.emplace(small_config(NamingStrategyKind::kLsh), corpus.sample, 47);
  obs::TraceLog log;
  ASSERT_TRUE(lsh->set_tracer(&log));
  for (vsm::ItemId id = 0; id < 20; ++id) {
    ASSERT_TRUE(lsh->publish(id, corpus.vectors[id]).success);
    (void)lsh->retrieve(corpus.vectors[id], 3);
  }
  const std::string lsh_dump = obs::metrics_to_json(lsh->metrics());
  EXPECT_NE(lsh_dump.find(obs::names::kNamingProbes), std::string::npos);
  EXPECT_NE(lsh_dump.find(obs::names::kNamingKeys), std::string::npos);

  // Spans carry the strategy attribute, and the exporter emits it.
  ASSERT_FALSE(log.empty());
  for (const obs::Span& span : log.spans()) {
    EXPECT_EQ(span.naming, "lsh");
  }
  EXPECT_NE(obs::trace_to_chrome_json(log).find("\"naming\":\"lsh\""),
            std::string::npos);
}

// --- determinism (the ISSUE's tier-1 bar) -----------------------------------

struct LshRun {
  std::vector<vsm::SparseVector> vectors;
  std::optional<sim::FaultPlan> plan;
  std::optional<Meteorograph> sys;
  obs::TraceLog log;
};

void run_lsh(LshRun& run, std::size_t workers) {
  const Corpus corpus = make_corpus(200, 21);
  run.vectors = corpus.vectors;

  SystemConfig cfg = small_config(NamingStrategyKind::kLsh);
  cfg.node_count = 80;
  cfg.replicas = 2;
  run.sys.emplace(cfg, corpus.sample, 21);
  // Corpus goes in over clean untraced links (multi-key publication
  // included); faults and tracing cover the query phase.
  for (vsm::ItemId id = 0; id < run.vectors.size(); ++id) {
    ASSERT_TRUE(run.sys->publish(id, run.vectors[id]).success);
  }

  ASSERT_TRUE(run.sys->set_tracer(&run.log));
  run.plan.emplace(sim::FaultPlanConfig{.drop_rate = 0.05}, 99);
  ASSERT_TRUE(run.sys->set_fault_hook(&*run.plan));

  BatchEngine engine(*run.sys, BatchOptions{.workers = workers, .seed = 5});
  std::vector<LocateOp> locates;
  std::vector<RetrieveOp> retrieves;
  for (vsm::ItemId id = 0; id < run.vectors.size(); id += 2) {
    locates.push_back(LocateOp{id, &run.vectors[id], {}});
    retrieves.push_back(RetrieveOp{&run.vectors[id], 5, {}});
  }
  (void)engine.locate(locates);
  (void)engine.retrieve(retrieves);
}

TEST(NamingStrategyTest, LshDumpsByteIdenticalAcrossWorkerCountsUnderFaults) {
  LshRun par;
  LshRun seq;
  run_lsh(par, 4);
  run_lsh(seq, 1);

  // The network really was lossy and the multi-probe plans really ran.
  ASSERT_GT(par.plan->dropped(), 0u);
  ASSERT_FALSE(par.log.empty());
  ASSERT_GT(
      par.sys->metrics().counter_total(obs::names::kOpMessages), 0u);

  EXPECT_EQ(obs::trace_to_chrome_json(par.log),
            obs::trace_to_chrome_json(seq.log));
  EXPECT_EQ(obs::metrics_to_json(par.sys->metrics()),
            obs::metrics_to_json(seq.sys->metrics()));
}

}  // namespace
}  // namespace meteo::core
