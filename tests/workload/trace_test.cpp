#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace meteo::workload {
namespace {

TraceConfig small_config() {
  TraceConfig cfg;
  cfg.num_items = 2000;
  cfg.num_keywords = 5000;
  cfg.mean_basket = 20.0;
  cfg.max_basket = 500;
  return cfg;
}

TEST(Trace, SynthesisBasicShape) {
  const Trace t = synthesize_trace(small_config(), 1);
  EXPECT_EQ(t.item_count(), 2000u);
  EXPECT_EQ(t.keyword_space(), 5000u);
}

TEST(Trace, DeterministicForSeed) {
  const Trace a = synthesize_trace(small_config(), 7);
  const Trace b = synthesize_trace(small_config(), 7);
  ASSERT_EQ(a.item_count(), b.item_count());
  for (std::size_t i = 0; i < a.item_count(); ++i) {
    const auto ka = a.keywords_of(i);
    const auto kb = b.keywords_of(i);
    ASSERT_EQ(ka.size(), kb.size());
    EXPECT_TRUE(std::equal(ka.begin(), ka.end(), kb.begin()));
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  const Trace a = synthesize_trace(small_config(), 1);
  const Trace b = synthesize_trace(small_config(), 2);
  std::uint64_t fa = 0;
  std::uint64_t fb = 0;
  for (std::size_t i = 0; i < a.item_count(); ++i) {
    for (const auto k : a.keywords_of(i)) fa += k;
    for (const auto k : b.keywords_of(i)) fb += k;
  }
  EXPECT_NE(fa, fb);
}

TEST(Trace, KeywordsAreSortedAndDistinct) {
  const Trace t = synthesize_trace(small_config(), 3);
  for (std::size_t i = 0; i < t.item_count(); ++i) {
    const auto kws = t.keywords_of(i);
    for (std::size_t j = 1; j < kws.size(); ++j) {
      EXPECT_LT(kws[j - 1], kws[j]);
    }
  }
}

TEST(Trace, BasketBoundsRespected) {
  TraceConfig cfg = small_config();
  cfg.min_basket = 2;
  cfg.max_basket = 50;
  const Trace t = synthesize_trace(cfg, 4);
  const TraceStats s = t.stats();
  EXPECT_GE(s.min_basket, 2u);
  EXPECT_LE(s.max_basket, 50u);
}

TEST(Trace, MeanBasketNearTarget) {
  TraceConfig cfg = small_config();
  cfg.num_items = 20000;
  const Trace t = synthesize_trace(cfg, 5);
  const TraceStats s = t.stats();
  // Lognormal clamping biases slightly; allow 15%.
  EXPECT_NEAR(s.mean_basket, 20.0, 3.0);
}

TEST(Trace, StatsConsistency) {
  const Trace t = synthesize_trace(small_config(), 6);
  const TraceStats s = t.stats();
  EXPECT_EQ(s.items, 2000u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < t.item_count(); ++i) {
    total += t.keywords_of(i).size();
  }
  EXPECT_EQ(s.total_incidences, total);
  EXPECT_LE(s.keywords_used, t.keyword_space());
  EXPECT_GT(s.keywords_used, 0u);
}

TEST(Trace, PopularityIsSkewed) {
  // Zipf keyword popularity: the most popular keyword should appear in far
  // more items than the median keyword (Fig. 6's shape).
  const Trace t = synthesize_trace(small_config(), 7);
  auto df = t.document_frequency();
  std::sort(df.begin(), df.end(), std::greater<>());
  EXPECT_GT(df[0], 20 * std::max<std::uint64_t>(df[df.size() / 2], 1));
}

TEST(Trace, DocumentFrequencySumsToIncidences) {
  const Trace t = synthesize_trace(small_config(), 8);
  const auto& df = t.document_frequency();
  std::uint64_t sum = 0;
  for (const auto d : df) sum += d;
  EXPECT_EQ(sum, t.stats().total_incidences);
}

TEST(Trace, BinaryWeightsAllOne) {
  const Trace t = synthesize_trace(small_config(), 9);
  const auto w = t.keyword_weights(WeightScheme::kBinary);
  ASSERT_EQ(w.size(), t.keyword_space());
  for (const double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Trace, IdfWeightsFavorRareKeywords) {
  const Trace t = synthesize_trace(small_config(), 10);
  const auto w = t.keyword_weights(WeightScheme::kIdf);
  const auto& df = t.document_frequency();
  // Keyword 0 is the most popular under Zipf; find a rare used keyword.
  std::size_t rare = 0;
  for (std::size_t k = 0; k < df.size(); ++k) {
    if (df[k] == 1) {
      rare = k;
      break;
    }
  }
  EXPECT_GT(w[rare], w[0]);
  for (const double x : w) EXPECT_GT(x, 0.0);
}

TEST(Trace, VectorOfMatchesKeywords) {
  const Trace t = synthesize_trace(small_config(), 11);
  const auto w = t.keyword_weights(WeightScheme::kIdf);
  const auto v = t.vector_of(0, w);
  const auto kws = t.keywords_of(0);
  ASSERT_EQ(v.nnz(), kws.size());
  for (const auto k : kws) {
    EXPECT_DOUBLE_EQ(v.weight_of(k), w[k]);
  }
}

TEST(Trace, LargeBasketsResolveDistinct) {
  // Baskets near the keyword-space size force the dedup fill path.
  TraceConfig cfg;
  cfg.num_items = 20;
  cfg.num_keywords = 100;
  cfg.mean_basket = 80.0;
  cfg.basket_sigma = 0.3;
  cfg.max_basket = 100;
  const Trace t = synthesize_trace(cfg, 12);
  for (std::size_t i = 0; i < t.item_count(); ++i) {
    const auto kws = t.keywords_of(i);
    const std::set<vsm::KeywordId> distinct(kws.begin(), kws.end());
    EXPECT_EQ(distinct.size(), kws.size());
  }
}

}  // namespace
}  // namespace meteo::workload
