#include "workload/knee.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace meteo::workload {
namespace {

std::vector<Knot> linear_curve(std::size_t points) {
  std::vector<Knot> c;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(points - 1);
    c.push_back(Knot{x, x});
  }
  return c;
}

/// A CDF-looking curve with one sharp corner at (0.2, 0.9).
std::vector<Knot> elbow_curve(std::size_t points) {
  std::vector<Knot> c;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(points - 1);
    const double y = x <= 0.2 ? x * 4.5 : 0.9 + (x - 0.2) * 0.125;
    c.push_back(Knot{x, y});
  }
  return c;
}

TEST(FindKnees, AlwaysIncludesEndpoints) {
  const auto curve = elbow_curve(101);
  const auto knees = find_knees(curve, KneeConfig{4, 0.0});
  ASSERT_GE(knees.size(), 2u);
  EXPECT_EQ(knees.front(), curve.front());
  EXPECT_EQ(knees.back(), curve.back());
}

TEST(FindKnees, LinearCurveNeedsOnlyEndpoints) {
  const auto curve = linear_curve(101);
  const auto knees = find_knees(curve, KneeConfig{5, 1e-9});
  EXPECT_EQ(knees.size(), 2u);
}

TEST(FindKnees, ElbowIsDetected) {
  const auto curve = elbow_curve(101);
  const auto knees = find_knees(curve, KneeConfig{3, 0.0});
  ASSERT_EQ(knees.size(), 3u);
  // The middle knee should be at (or adjacent to) the corner x = 0.2.
  EXPECT_NEAR(knees[1].x, 0.2, 0.02);
}

TEST(FindKnees, RespectsBudget) {
  Rng rng(1);
  std::vector<Knot> curve;
  double y = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    y += rng.uniform() * 0.01;
    curve.push_back(Knot{static_cast<double>(i), y});
  }
  const auto knees = find_knees(curve, KneeConfig{7, 0.0});
  EXPECT_LE(knees.size(), 7u);
}

TEST(FindKnees, OutputSortedAndMonotone) {
  const auto curve = elbow_curve(301);
  const auto knees = find_knees(curve, KneeConfig{6, 0.0});
  for (std::size_t i = 1; i < knees.size(); ++i) {
    EXPECT_GT(knees[i].x, knees[i - 1].x);
    EXPECT_GE(knees[i].y, knees[i - 1].y);
  }
}

TEST(FindKnees, MoreKneesNeverWorseFit) {
  const auto curve = elbow_curve(301);
  double prev = 1e9;
  for (std::size_t budget = 2; budget <= 10; ++budget) {
    const auto knees = find_knees(curve, KneeConfig{budget, 0.0});
    const double dev = max_deviation(curve, knees);
    EXPECT_LE(dev, prev + 1e-12);
    prev = dev;
  }
}

TEST(FindKnees, MinDeviationStopsEarly) {
  const auto curve = elbow_curve(101);
  // Huge tolerance: only the endpoints survive.
  const auto knees = find_knees(curve, KneeConfig{10, 10.0});
  EXPECT_EQ(knees.size(), 2u);
}

TEST(MaxDeviation, ZeroForExactFit) {
  const auto curve = linear_curve(11);
  const std::vector<Knot> knees = {curve.front(), curve.back()};
  EXPECT_NEAR(max_deviation(curve, knees), 0.0, 1e-12);
}

TEST(MaxDeviation, DetectsMisfit) {
  const auto curve = elbow_curve(101);
  const std::vector<Knot> knees = {curve.front(), curve.back()};
  // The corner at y=0.9 vs chord y(0.2)~0.2: deviation ~0.7.
  EXPECT_GT(max_deviation(curve, knees), 0.5);
}

TEST(FindKnees, TwoPointCurve) {
  const std::vector<Knot> curve = {{0.0, 0.0}, {1.0, 1.0}};
  const auto knees = find_knees(curve, KneeConfig{5, 0.0});
  EXPECT_EQ(knees.size(), 2u);
}

}  // namespace
}  // namespace meteo::workload
