#include "workload/worldcup.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace meteo::workload {
namespace {

WorldCupRecord rec(std::uint32_t ts, std::uint32_t client, std::uint32_t obj) {
  WorldCupRecord r;
  r.timestamp = ts;
  r.client_id = client;
  r.object_id = obj;
  r.size = 1234;
  r.method = 1;
  r.status = 200 & 0x3f;
  r.type = 2;
  r.server = 3;
  return r;
}

TEST(WorldCup, WriteReadRoundTrip) {
  const std::vector<WorldCupRecord> records = {
      rec(100, 1, 10), rec(101, 2, 20), rec(0xFFFFFFFF, 0xDEADBEEF, 0xCAFEBABE)};
  std::stringstream ss;
  write_worldcup_log(ss, records);
  const auto read = read_worldcup_log(ss);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read.value(), records);
}

TEST(WorldCup, RecordIsTwentyBytes) {
  std::stringstream ss;
  write_worldcup_log(ss, std::vector<WorldCupRecord>{rec(1, 2, 3)});
  EXPECT_EQ(ss.str().size(), kWorldCupRecordBytes);
}

TEST(WorldCup, BigEndianLayout) {
  std::stringstream ss;
  write_worldcup_log(ss, std::vector<WorldCupRecord>{rec(0x01020304, 0, 0)});
  const std::string bytes = ss.str();
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x04);
}

TEST(WorldCup, EmptyStreamYieldsNoRecords) {
  std::stringstream ss;
  const auto read = read_worldcup_log(ss);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read.value().empty());
}

TEST(WorldCup, TruncatedRecordIsError) {
  std::stringstream ss;
  write_worldcup_log(ss, std::vector<WorldCupRecord>{rec(1, 2, 3)});
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 3);  // chop the tail
  std::stringstream truncated(bytes);
  const auto read = read_worldcup_log(truncated);
  ASSERT_FALSE(read.has_value());
  EXPECT_EQ(read.error(), WorldCupError::kTruncatedRecord);
}

TEST(WorldCup, MaxRecordsLimitsRead) {
  std::vector<WorldCupRecord> records;
  for (std::uint32_t i = 0; i < 10; ++i) records.push_back(rec(i, i, i));
  std::stringstream ss;
  write_worldcup_log(ss, records);
  const auto read = read_worldcup_log(ss, 4);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read.value().size(), 4u);
  EXPECT_EQ(read.value()[3].timestamp, 3u);
}

TEST(WorldCup, BuildTraceAggregatesClients) {
  // Client 7 requests objects {10, 20, 10}; client 8 requests {20}.
  const std::vector<WorldCupRecord> records = {
      rec(1, 7, 10), rec(2, 7, 20), rec(3, 7, 10), rec(4, 8, 20)};
  const Trace t = build_trace(records);
  ASSERT_EQ(t.item_count(), 2u);
  EXPECT_EQ(t.keywords_of(0).size(), 2u);  // {10,20} deduped
  EXPECT_EQ(t.keywords_of(1).size(), 1u);
  const TraceStats s = t.stats();
  EXPECT_EQ(s.total_incidences, 3u);
  EXPECT_EQ(s.keywords_used, 2u);
}

TEST(WorldCup, BuildTraceDensifiesIds) {
  const std::vector<WorldCupRecord> records = {rec(1, 1000000, 99999999),
                                               rec(2, 2000000, 88888888)};
  const Trace t = build_trace(records);
  EXPECT_EQ(t.item_count(), 2u);
  EXPECT_EQ(t.keyword_space(), 2u);
  EXPECT_EQ(t.keywords_of(0)[0], 0u);
  EXPECT_EQ(t.keywords_of(1)[0], 1u);
}

TEST(WorldCup, BuildTraceTimestampFilter) {
  const std::vector<WorldCupRecord> records = {
      rec(10, 1, 100), rec(20, 2, 200), rec(30, 3, 300)};
  const Trace t = build_trace(records, 15, 25);
  EXPECT_EQ(t.item_count(), 1u);
  EXPECT_EQ(t.stats().total_incidences, 1u);
}

TEST(WorldCup, BuildTracePreservesOrderOfFirstAppearance) {
  const std::vector<WorldCupRecord> records = {
      rec(1, 5, 50), rec(2, 6, 60), rec(3, 5, 70)};
  const Trace t = build_trace(records);
  // Client 5 appeared first -> item 0 with objects {50->0, 70->2}.
  ASSERT_EQ(t.keywords_of(0).size(), 2u);
  EXPECT_EQ(t.keywords_of(0)[0], 0u);
  EXPECT_EQ(t.keywords_of(0)[1], 2u);
}

}  // namespace
}  // namespace meteo::workload
