/// Property tests cross-checking the overlay against brute-force oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "overlay/overlay.hpp"

namespace meteo::overlay {
namespace {

Overlay build(std::size_t n, Rng& rng, OverlayConfig cfg = {}) {
  Overlay o(cfg);
  while (o.alive_count() < n) {
    (void)o.join(rng.below(cfg.key_space));
  }
  o.repair();
  return o;
}

TEST(OverlayProperty, ClosestAliveMatchesBruteForce) {
  Rng rng(1);
  const Overlay o = build(300, rng);
  const auto nodes = o.alive_nodes();
  for (int trial = 0; trial < 2000; ++trial) {
    const Key target = rng.below(o.config().key_space);
    NodeId best = nodes.front();
    for (const NodeId n : nodes) {
      if (strictly_closer(o.key_of(n), o.key_of(best), target)) best = n;
    }
    EXPECT_EQ(o.closest_alive(target), best) << "target " << target;
  }
}

TEST(OverlayProperty, ClosestNodesMatchesBruteForce) {
  Rng rng(2);
  const Overlay o = build(120, rng);
  auto nodes = o.alive_nodes();
  for (int trial = 0; trial < 300; ++trial) {
    const Key target = rng.below(o.config().key_space);
    const std::size_t k = 1 + rng.below(8);
    // Brute force: sort all nodes by the strictly_closer total order.
    std::vector<NodeId> sorted = nodes;
    std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
      return strictly_closer(o.key_of(a), o.key_of(b), target);
    });
    sorted.resize(k);
    const auto got = o.closest_nodes(target, k);
    EXPECT_EQ(got, sorted) << "target " << target << " k " << k;
  }
}

TEST(OverlayProperty, LeafSetsHoldNearestNeighbors) {
  Rng rng(3);
  OverlayConfig cfg;
  cfg.leaf_set_size = 3;
  const Overlay o = build(100, rng, cfg);
  const auto nodes = o.alive_nodes();  // ascending key order
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& leaf_set = o.table_of(nodes[i]).leaf_set;
    // Expected: up to 3 on each side in the sorted order.
    std::vector<NodeId> expected;
    for (std::size_t d = 1; d <= 3; ++d) {
      if (i >= d) expected.push_back(nodes[i - d]);
      if (i + d < nodes.size()) expected.push_back(nodes[i + d]);
    }
    std::vector<NodeId> got(leaf_set.begin(), leaf_set.end());
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "node " << nodes[i];
  }
}

TEST(OverlayProperty, RouteHopsNeverExceedGuard) {
  Rng rng(4);
  OverlayConfig cfg;
  cfg.max_route_hops = 5;  // artificially tight guard
  Overlay o = build(2000, rng, cfg);
  for (int trial = 0; trial < 200; ++trial) {
    const auto r = o.route(o.random_alive(rng), rng.below(cfg.key_space));
    EXPECT_LE(r.hops, cfg.max_route_hops + 1);
  }
}

TEST(OverlayProperty, RouteDistanceMonotonicallyShrinks) {
  // Greedy routing's termination argument: re-running a route step by
  // step, each hop's key is strictly closer to the target.
  Rng rng(5);
  const Overlay o = build(500, rng);
  for (int trial = 0; trial < 200; ++trial) {
    const Key target = rng.below(o.config().key_space);
    NodeId cur = o.random_alive(rng);
    Key dist = key_distance(o.key_of(cur), target);
    for (int step = 0; step < 64; ++step) {
      // Re-implement one greedy step via the public table.
      const auto& table = o.table_of(cur);
      NodeId best = cur;
      Key best_dist = dist;
      auto consider = [&](NodeId n) {
        if (n == kInvalidNode || !o.is_alive(n)) return;
        const Key d = key_distance(o.key_of(n), target);
        if (d < best_dist) {
          best = n;
          best_dist = d;
        }
      };
      for (const NodeId f : table.fingers) consider(f);
      for (const NodeId l : table.leaf_set) consider(l);
      consider(table.predecessor);
      consider(table.successor);
      if (best == cur) break;
      EXPECT_LT(best_dist, dist);
      cur = best;
      dist = best_dist;
    }
  }
}

TEST(OverlayProperty, JoinLeaveChurnKeepsRegistryConsistent) {
  Rng rng(6);
  Overlay o = build(100, rng);
  for (int round = 0; round < 300; ++round) {
    if (rng.chance(0.5) && o.alive_count() > 2) {
      if (rng.chance(0.5)) {
        o.leave(o.random_alive(rng));
      } else {
        o.fail(o.random_alive(rng));
      }
    } else {
      (void)o.join(rng.below(o.config().key_space));
    }
    // alive_nodes stays sorted and consistent with is_alive.
    const auto nodes = o.alive_nodes();
    EXPECT_EQ(nodes.size(), o.alive_count());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_TRUE(o.is_alive(nodes[i]));
      if (i > 0) {
        EXPECT_LT(o.key_of(nodes[i - 1]), o.key_of(nodes[i]));
      }
    }
  }
}

}  // namespace
}  // namespace meteo::overlay
