#include "overlay/key_space.hpp"

#include <gtest/gtest.h>

namespace meteo::overlay {
namespace {

TEST(KeyDistance, Symmetric) {
  EXPECT_EQ(key_distance(3, 10), 7u);
  EXPECT_EQ(key_distance(10, 3), 7u);
  EXPECT_EQ(key_distance(5, 5), 0u);
}

TEST(KeyDistance, LargeValuesNoOverflow) {
  const Key big = kDefaultKeySpace - 1;
  EXPECT_EQ(key_distance(0, big), big);
  EXPECT_EQ(key_distance(big, 0), big);
}

TEST(StrictlyCloser, BasicOrdering) {
  EXPECT_TRUE(strictly_closer(5, 9, 4));    // |5-4| < |9-4|
  EXPECT_FALSE(strictly_closer(9, 5, 4));
}

TEST(StrictlyCloser, TieBreaksTowardSmallerKey) {
  // 3 and 7 are equidistant from 5; the smaller key wins.
  EXPECT_TRUE(strictly_closer(3, 7, 5));
  EXPECT_FALSE(strictly_closer(7, 3, 5));
}

TEST(StrictlyCloser, EqualKeysNotStrictlyCloser) {
  EXPECT_FALSE(strictly_closer(4, 4, 10));
}

TEST(StrictlyCloser, TotalOrderProperty) {
  // For any pair exactly one of closer(a,b), closer(b,a), a==b holds.
  for (Key a = 0; a < 20; ++a) {
    for (Key b = 0; b < 20; ++b) {
      for (Key t = 0; t < 20; ++t) {
        const bool ab = strictly_closer(a, b, t);
        const bool ba = strictly_closer(b, a, t);
        if (a == b) {
          EXPECT_FALSE(ab);
          EXPECT_FALSE(ba);
        } else {
          EXPECT_NE(ab, ba);
        }
      }
    }
  }
}

}  // namespace
}  // namespace meteo::overlay
