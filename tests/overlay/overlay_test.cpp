#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace meteo::overlay {
namespace {

/// Builds a *stabilized* overlay of `n` nodes at distinct uniform-random
/// keys: after the bulk joins, repair() models the periodic stabilization
/// every real DHT runs (early joiners' tables are otherwise stale).
Overlay random_overlay(std::size_t n, Rng& rng, OverlayConfig cfg = {}) {
  Overlay o(cfg);
  while (o.alive_count() < n) {
    (void)o.join(rng.below(cfg.key_space));
  }
  o.repair();
  return o;
}

TEST(Overlay, JoinAssignsSequentialIds) {
  Overlay o;
  const auto a = o.join(100);
  const auto b = o.join(200);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(o.alive_count(), 2u);
}

TEST(Overlay, DuplicateKeyRejected) {
  Overlay o;
  ASSERT_TRUE(o.join(100).has_value());
  const auto dup = o.join(100);
  ASSERT_FALSE(dup.has_value());
  EXPECT_EQ(dup.error(), JoinError::kKeyTaken);
}

TEST(Overlay, KeyOfRoundTrip) {
  Overlay o;
  const NodeId id = o.join(4242).value();
  EXPECT_EQ(o.key_of(id), 4242u);
  EXPECT_TRUE(o.is_alive(id));
}

TEST(Overlay, LeafPointersFollowKeyOrder) {
  Overlay o;
  const NodeId a = o.join(100).value();
  const NodeId b = o.join(300).value();
  const NodeId c = o.join(200).value();
  // Order by key: a(100) -> c(200) -> b(300).
  EXPECT_EQ(o.successor(a), c);
  EXPECT_EQ(o.predecessor(c), a);
  EXPECT_EQ(o.successor(c), b);
  EXPECT_EQ(o.predecessor(b), c);
  EXPECT_EQ(o.predecessor(a), kInvalidNode);
  EXPECT_EQ(o.successor(b), kInvalidNode);
}

TEST(Overlay, ClosestAliveExact) {
  Overlay o;
  const NodeId a = o.join(100).value();
  const NodeId b = o.join(1000).value();
  EXPECT_EQ(o.closest_alive(100), a);
  EXPECT_EQ(o.closest_alive(101), a);
  EXPECT_EQ(o.closest_alive(549), a);   // closer to 100
  EXPECT_EQ(o.closest_alive(551), b);
  EXPECT_EQ(o.closest_alive(999999), b);
}

TEST(Overlay, ClosestAliveTieBreaksSmallerKey) {
  Overlay o;
  const NodeId a = o.join(100).value();
  (void)o.join(200);
  EXPECT_EQ(o.closest_alive(150), a);  // equidistant -> smaller key
}

TEST(Overlay, ClosestNodesOrderedByDistance) {
  Overlay o;
  const NodeId n100 = o.join(100).value();
  const NodeId n200 = o.join(200).value();
  const NodeId n400 = o.join(400).value();
  const NodeId n800 = o.join(800).value();
  const auto homes = o.closest_nodes(210, 3);
  ASSERT_EQ(homes.size(), 3u);
  EXPECT_EQ(homes[0], n200);
  EXPECT_EQ(homes[1], n100);
  EXPECT_EQ(homes[2], n400);
  (void)n800;
}

TEST(Overlay, ClosestNodesClampsToPopulation) {
  Overlay o;
  (void)o.join(1);
  (void)o.join(2);
  EXPECT_EQ(o.closest_nodes(0, 10).size(), 2u);
  EXPECT_TRUE(o.closest_nodes(0, 0).empty());
}

TEST(Overlay, RouteSingleNodeTerminatesImmediately) {
  Overlay o;
  const NodeId a = o.join(500).value();
  const RouteResult r = o.route(a, 99999);
  EXPECT_EQ(r.destination, a);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_TRUE(r.reached_closest);
  EXPECT_FALSE(r.stranded);
}

TEST(Overlay, RouteAlwaysReachesClosestInHealthyOverlay) {
  Rng rng(1);
  Overlay o = random_overlay(500, rng);
  for (int q = 0; q < 2000; ++q) {
    const Key target = rng.below(o.config().key_space);
    const NodeId from = o.random_alive(rng);
    const RouteResult r = o.route(from, target);
    EXPECT_TRUE(r.reached_closest) << "target=" << target;
    EXPECT_EQ(r.destination, o.closest_alive(target));
  }
}

TEST(Overlay, RouteHopCountIsLogarithmic) {
  Rng rng(2);
  OverlayConfig cfg;
  cfg.routing_base = 4;
  Overlay o = random_overlay(4096, rng, cfg);
  OnlineStats hops;
  for (int q = 0; q < 3000; ++q) {
    const Key target = rng.below(cfg.key_space);
    const RouteResult r = o.route(o.random_alive(rng), target);
    ASSERT_TRUE(r.reached_closest);
    hops.add(static_cast<double>(r.hops));
  }
  // log_4(4096) = 6; greedy bidirectional fingers do a bit better on
  // average. Bound generously but meaningfully.
  EXPECT_LT(hops.mean(), 8.0);
  EXPECT_GT(hops.mean(), 2.0);
  EXPECT_LT(hops.max(), 20.0);
}

class RoutingBaseSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoutingBaseSweep, AllRoutesSucceedAndStayBounded) {
  Rng rng(3);
  OverlayConfig cfg;
  cfg.routing_base = GetParam();
  Overlay o = random_overlay(1000, rng, cfg);
  const double bound =
      2.0 * std::log(1000.0) / std::log(static_cast<double>(cfg.routing_base)) +
      8.0;
  for (int q = 0; q < 500; ++q) {
    const RouteResult r = o.route(o.random_alive(rng), rng.below(cfg.key_space));
    EXPECT_TRUE(r.reached_closest);
    EXPECT_LE(static_cast<double>(r.hops), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, RoutingBaseSweep,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(Overlay, GracefulLeaveRelinksNeighbors) {
  Overlay o;
  const NodeId a = o.join(100).value();
  const NodeId b = o.join(200).value();
  const NodeId c = o.join(300).value();
  o.leave(b);
  EXPECT_FALSE(o.is_alive(b));
  EXPECT_EQ(o.successor(a), c);
  EXPECT_EQ(o.predecessor(c), a);
  EXPECT_EQ(o.alive_count(), 2u);
}

TEST(Overlay, FailLeavesStalePointers) {
  Overlay o;
  const NodeId a = o.join(100).value();
  const NodeId b = o.join(200).value();
  const NodeId c = o.join(300).value();
  o.fail(b);
  // a's successor pointer still names b, but b is dead, so the live
  // accessor hides it.
  EXPECT_EQ(o.table_of(a).successor, b);
  EXPECT_EQ(o.successor(a), kInvalidNode);
  EXPECT_EQ(o.predecessor(c), kInvalidNode);
}

TEST(Overlay, RepairRestoresLeafChain) {
  Overlay o;
  const NodeId a = o.join(100).value();
  const NodeId b = o.join(200).value();
  const NodeId c = o.join(300).value();
  o.fail(b);
  o.repair();
  EXPECT_EQ(o.successor(a), c);
  EXPECT_EQ(o.predecessor(c), a);
}

TEST(Overlay, RoutingSurvivesModerateFailures) {
  Rng rng(4);
  Overlay o = random_overlay(1000, rng);
  // Fail 10% of nodes without repair; routes from live nodes should
  // still overwhelmingly succeed thanks to finger diversity.
  auto nodes = o.alive_nodes();
  for (std::size_t i = 0; i < 100; ++i) {
    const NodeId victim = nodes[rng.below(nodes.size())];
    if (o.is_alive(victim)) o.fail(victim);
  }
  int successes = 0;
  const int queries = 1000;
  for (int q = 0; q < queries; ++q) {
    const RouteResult r = o.route(o.random_alive(rng), rng.below(o.config().key_space));
    if (r.reached_closest) ++successes;
  }
  EXPECT_GT(successes, queries * 90 / 100);
}

TEST(Overlay, RouteAfterMassiveFailureAndRepair) {
  Rng rng(5);
  Overlay o = random_overlay(500, rng);
  auto nodes = o.alive_nodes();
  for (std::size_t i = 0; i < nodes.size(); i += 2) {
    o.fail(nodes[i]);
  }
  o.repair();
  for (int q = 0; q < 500; ++q) {
    const RouteResult r = o.route(o.random_alive(rng), rng.below(o.config().key_space));
    EXPECT_TRUE(r.reached_closest);
  }
}

TEST(Overlay, AliveNodesSortedByKey) {
  Rng rng(6);
  Overlay o = random_overlay(200, rng);
  const auto nodes = o.alive_nodes();
  ASSERT_EQ(nodes.size(), 200u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(o.key_of(nodes[i - 1]), o.key_of(nodes[i]));
  }
}

TEST(Overlay, FingerTablesStayCompact) {
  Rng rng(7);
  OverlayConfig cfg;
  cfg.routing_base = 4;
  Overlay o = random_overlay(2000, rng, cfg);
  // log_4(1e8) ~ 13.3 levels, (base-1)=3 digits per level, two
  // directions, deduplicated: <= ~84 entries.
  for (const NodeId id : o.alive_nodes()) {
    EXPECT_LE(o.table_of(id).fingers.size(), 90u);
  }
}

TEST(Overlay, JoinsAfterFailuresKeepRoutingCorrect) {
  Rng rng(8);
  Overlay o = random_overlay(300, rng);
  for (int round = 0; round < 50; ++round) {
    o.fail(o.random_alive(rng));
    while (!o.join(rng.below(o.config().key_space)).has_value()) {
    }
  }
  o.repair();
  for (int q = 0; q < 300; ++q) {
    const RouteResult r = o.route(o.random_alive(rng), rng.below(o.config().key_space));
    EXPECT_TRUE(r.reached_closest);
  }
}

TEST(Overlay, RandomAliveOnlyReturnsLiveNodes) {
  Rng rng(9);
  Overlay o = random_overlay(50, rng);
  for (int i = 0; i < 20; ++i) o.fail(o.random_alive(rng));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(o.is_alive(o.random_alive(rng)));
  }
}

}  // namespace
}  // namespace meteo::overlay
