#include "baseline/flooding.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace meteo::baseline {
namespace {

TEST(Flooding, GraphIsSymmetricAndSelfLoopFree) {
  Rng rng(1);
  const FloodingNetwork net({200, 4}, rng);
  for (std::size_t u = 0; u < net.node_count(); ++u) {
    for (const std::size_t v : net.neighbors(u)) {
      EXPECT_NE(v, u);
      const auto back = net.neighbors(v);
      EXPECT_TRUE(std::find(back.begin(), back.end(), u) != back.end());
    }
  }
}

TEST(Flooding, SearchFindsLocalItem) {
  Rng rng(2);
  FloodingNetwork net({50, 3}, rng);
  net.place_item(7, {1, 2, 3}, 10);
  const std::vector<vsm::KeywordId> q = {1, 2};
  const FloodResult r = net.search(q, 0, 10);  // TTL 0: only the source
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], 7u);
  EXPECT_EQ(r.nodes_reached, 1u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Flooding, TtlLimitsScope) {
  Rng rng(3);
  FloodingNetwork net({500, 3}, rng);
  // Spread one matching item on every node.
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    net.place_item(n, {42}, n);
  }
  const std::vector<vsm::KeywordId> q = {42};
  const FloodResult shallow = net.search(q, 1, 0);
  const FloodResult deep = net.search(q, 6, 0);
  EXPECT_LT(shallow.nodes_reached, deep.nodes_reached);
  EXPECT_LT(shallow.items.size(), deep.items.size());
  // The paper's scope problem: shallow floods miss existing items.
  EXPECT_LT(shallow.items.size(), net.total_matches(q));
}

TEST(Flooding, MessagesGrowExponentiallyWithTtl) {
  Rng rng(4);
  const FloodingNetwork net({2000, 4}, rng);
  const std::vector<vsm::KeywordId> q = {1};
  std::size_t prev = 0;
  for (std::size_t ttl = 1; ttl <= 4; ++ttl) {
    const FloodResult r = net.search(q, ttl, 0);
    EXPECT_GT(r.messages, prev);
    prev = r.messages;
  }
  // By TTL 4 with degree ~8 the flood covers a large share of the graph.
  EXPECT_GT(prev, 1000u);
}

TEST(Flooding, ResultsDependOnIssuingNode) {
  // Nondeterministic results (paper §5 problem 3): different sources with
  // a bounded TTL see different item sets.
  Rng rng(5);
  FloodingNetwork net({1000, 3}, rng);
  for (std::size_t n = 0; n < net.node_count(); n += 7) {
    net.place_item(n, {9}, n);
  }
  const std::vector<vsm::KeywordId> q = {9};
  const FloodResult a = net.search(q, 2, 0);
  const FloodResult b = net.search(q, 2, 500);
  const std::set<vsm::ItemId> sa(a.items.begin(), a.items.end());
  const std::set<vsm::ItemId> sb(b.items.begin(), b.items.end());
  EXPECT_NE(sa, sb);
}

TEST(Flooding, ExhaustiveFloodFindsEverything) {
  Rng rng(6);
  FloodingNetwork net({300, 4}, rng);
  for (std::size_t n = 0; n < 300; n += 5) {
    net.place_item(n, {7, 8}, n);
  }
  const std::vector<vsm::KeywordId> q = {7};
  const FloodResult r = net.search(q, 300, 0);  // TTL >= diameter
  EXPECT_EQ(r.items.size(), net.total_matches(q));
  EXPECT_EQ(r.nodes_reached, net.node_count());
  // Cost of completeness: ~sum of degrees messages (N-1 lower bound).
  EXPECT_GT(r.messages, net.node_count() - 1);
}

TEST(Flooding, ConjunctiveMatching) {
  Rng rng(7);
  FloodingNetwork net({20, 3}, rng);
  net.place_item(1, {1, 2}, 0);
  net.place_item(2, {1}, 0);
  const std::vector<vsm::KeywordId> q = {1, 2};
  const FloodResult r = net.search(q, 20, 0);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], 1u);
}

TEST(Flooding, PublishRandomPlacesSomewhere) {
  Rng rng(8);
  FloodingNetwork net({100, 3}, rng);
  Rng prng(9);
  for (vsm::ItemId id = 0; id < 50; ++id) {
    net.publish_random(id, {static_cast<vsm::KeywordId>(id % 5)}, prng);
  }
  const std::vector<vsm::KeywordId> q = {0};
  EXPECT_EQ(net.total_matches(q), 10u);
}

}  // namespace
}  // namespace meteo::baseline
