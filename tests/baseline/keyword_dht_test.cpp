#include "baseline/keyword_dht.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace meteo::baseline {
namespace {

KeywordDhtConfig small_config(std::size_t nodes = 100) {
  KeywordDhtConfig cfg;
  cfg.node_count = nodes;
  return cfg;
}

TEST(KeywordDht, PublishAndSingleKeywordSearch) {
  KeywordDht dht(small_config(), 1);
  const std::vector<vsm::KeywordId> kws = {5, 9};
  (void)dht.publish(1, kws);
  const std::vector<vsm::KeywordId> q = {5};
  const DhtQueryResult r = dht.search(q);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], 1u);
}

TEST(KeywordDht, ConjunctiveIntersection) {
  KeywordDht dht(small_config(), 2);
  (void)dht.publish(1, std::vector<vsm::KeywordId>{1, 2});
  (void)dht.publish(2, std::vector<vsm::KeywordId>{1});
  (void)dht.publish(3, std::vector<vsm::KeywordId>{2});
  const std::vector<vsm::KeywordId> q = {1, 2};
  const DhtQueryResult r = dht.search(q);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], 1u);
  // Both full posting lists crossed the network: 2 + 2 postings.
  EXPECT_EQ(r.postings_examined, 4u);
  EXPECT_EQ(r.transfer_messages, 4u);
}

TEST(KeywordDht, DuplicatePublishIsIdempotent) {
  KeywordDht dht(small_config(), 3);
  (void)dht.publish(1, std::vector<vsm::KeywordId>{7});
  (void)dht.publish(1, std::vector<vsm::KeywordId>{7});
  const std::vector<vsm::KeywordId> q = {7};
  EXPECT_EQ(dht.search(q).items.size(), 1u);
}

TEST(KeywordDht, EmptyQueryEmptyResult) {
  KeywordDht dht(small_config(), 4);
  const DhtQueryResult r = dht.search({});
  EXPECT_TRUE(r.items.empty());
  EXPECT_EQ(r.total_messages(), 0u);
}

TEST(KeywordDht, MissingKeywordYieldsEmpty) {
  KeywordDht dht(small_config(), 5);
  (void)dht.publish(1, std::vector<vsm::KeywordId>{3});
  const std::vector<vsm::KeywordId> q = {3, 99};
  EXPECT_TRUE(dht.search(q).items.empty());
}

TEST(KeywordDht, PopularKeywordCreatesHotspot) {
  // The §1 pathology: every item shares keyword 0, so one node stores a
  // posting per item.
  KeywordDht dht(small_config(200), 6);
  for (vsm::ItemId id = 0; id < 1000; ++id) {
    (void)dht.publish(
        id, std::vector<vsm::KeywordId>{0, static_cast<vsm::KeywordId>(1 + id % 50)});
  }
  const auto loads = dht.node_loads();
  const std::size_t max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_GE(max_load, 1000u);  // the keyword-0 node holds every item
}

TEST(KeywordDht, QueryCostScalesWithPostingLength) {
  KeywordDht dht(small_config(), 7);
  for (vsm::ItemId id = 0; id < 500; ++id) {
    (void)dht.publish(id, std::vector<vsm::KeywordId>{1});
  }
  const std::vector<vsm::KeywordId> q = {1};
  const DhtQueryResult r = dht.search(q);
  EXPECT_EQ(r.items.size(), 500u);
  // Transfer cost is the full list, even though the requester may only
  // want a handful of results.
  EXPECT_EQ(r.transfer_messages, 500u);
}

TEST(KeywordDht, PublishCostScalesWithKeywordCount) {
  KeywordDht dht(small_config(), 8);
  std::vector<vsm::KeywordId> many;
  for (vsm::KeywordId k = 0; k < 40; ++k) many.push_back(k);
  const DhtPublishResult r = dht.publish(1, many);
  // ~40 routes of ~log(100)/log(4) hops each.
  EXPECT_GT(r.messages, 40u);
}

TEST(KeywordDht, KeywordKeyIsDeterministic) {
  KeywordDht a(small_config(), 9);
  KeywordDht b(small_config(), 10);
  EXPECT_EQ(a.keyword_key(42), b.keyword_key(42));
  EXPECT_NE(a.keyword_key(1), a.keyword_key(2));
}

}  // namespace
}  // namespace meteo::baseline
