#include "baseline/can.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace meteo::baseline {
namespace {

TEST(CanZone, ContainsAndBoundaries) {
  const CanZone z{{0.25, 0.5}, {0.5, 1.0}};
  EXPECT_TRUE(z.contains({0.25, 0.5}));    // lo inclusive
  EXPECT_TRUE(z.contains({0.4, 0.9}));
  EXPECT_FALSE(z.contains({0.5, 0.75}));   // hi exclusive
  EXPECT_FALSE(z.contains({0.1, 0.75}));
}

TEST(CanZone, DistanceZeroInside) {
  const CanZone z{{0.0, 0.0}, {0.5, 0.5}};
  EXPECT_DOUBLE_EQ(z.distance_to({0.25, 0.25}), 0.0);
}

TEST(CanZone, DistanceWrapsTorus) {
  const CanZone z{{0.9, 0.0}, {1.0, 1.0}};
  // Point at x = 0.05: direct distance 0.85, torus distance 0.05.
  EXPECT_NEAR(z.distance_to({0.05, 0.5}), 0.05, 1e-12);
}

TEST(CanZone, Volume) {
  const CanZone z{{0.0, 0.25}, {0.5, 0.75}};
  EXPECT_DOUBLE_EQ(z.volume(), 0.25);
}

class CanNetworkTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CanNetworkTest, ZonesPartitionTheTorus) {
  Rng rng(1);
  const CanNetwork can(200, GetParam(), rng);
  double total = 0.0;
  for (std::size_t i = 0; i < can.node_count(); ++i) {
    total += can.zone_of(i).volume();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Random points are owned by exactly one zone.
  Rng probe(2);
  for (int i = 0; i < 500; ++i) {
    const CanPoint p = CanNetwork::random_point(GetParam(), probe);
    std::size_t owners = 0;
    for (std::size_t n = 0; n < can.node_count(); ++n) {
      if (can.zone_of(n).contains(p)) ++owners;
    }
    EXPECT_EQ(owners, 1u);
  }
}

TEST_P(CanNetworkTest, NeighborsAreSymmetric) {
  Rng rng(3);
  const CanNetwork can(150, GetParam(), rng);
  for (std::size_t u = 0; u < can.node_count(); ++u) {
    for (const std::size_t v : can.neighbors(u)) {
      const auto back = can.neighbors(v);
      EXPECT_TRUE(std::find(back.begin(), back.end(), u) != back.end())
          << u << " <-> " << v;
    }
  }
}

TEST_P(CanNetworkTest, RoutingReachesOwner) {
  Rng rng(4);
  const CanNetwork can(300, GetParam(), rng);
  Rng probe(5);
  for (int q = 0; q < 300; ++q) {
    const CanPoint p = CanNetwork::random_point(GetParam(), probe);
    const CanRouteResult r = can.route(probe.below(can.node_count()), p);
    EXPECT_EQ(r.owner, can.owner_of(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CanNetworkTest, ::testing::Values(2u, 3u, 4u));

TEST(CanNetwork, HopsScaleAsDTimesRootN) {
  Rng rng(6);
  const std::size_t d = 2;
  const CanNetwork can(400, d, rng);
  Rng probe(7);
  OnlineStats hops;
  for (int q = 0; q < 500; ++q) {
    const CanPoint p = CanNetwork::random_point(d, probe);
    hops.add(static_cast<double>(can.route(probe.below(can.node_count()), p).hops));
  }
  // Theory: (d/4) * N^(1/d) = 10 expected for uniform zones; random splits
  // skew zone sizes, so bound loosely.
  EXPECT_GT(hops.mean(), 3.0);
  EXPECT_LT(hops.mean(), 25.0);
}

TEST(CanNetwork, SingleNodeOwnsEverything) {
  Rng rng(8);
  const CanNetwork can(1, 3, rng);
  const CanPoint p = CanNetwork::random_point(3, rng);
  EXPECT_EQ(can.owner_of(p), 0u);
  EXPECT_EQ(can.route(0, p).hops, 0u);
}

TEST(CanNetwork, ExpandingRingGrowsWithRadius) {
  Rng rng(9);
  const CanNetwork can(500, 2, rng);
  std::size_t prev = 0;
  std::size_t prev_messages = 0;
  for (std::size_t radius = 0; radius <= 4; ++radius) {
    std::size_t messages = 0;
    const auto ring = can.expanding_ring(0, radius, &messages);
    EXPECT_GE(ring.size(), prev);
    EXPECT_GE(messages, prev_messages);
    prev = ring.size();
    prev_messages = messages;
  }
  EXPECT_GT(prev, 10u);
}

TEST(CanNetwork, ExpandingRingRadiusZeroIsJustCenter) {
  Rng rng(10);
  const CanNetwork can(100, 2, rng);
  std::size_t messages = 0;
  const auto ring = can.expanding_ring(42, 0, &messages);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0], 42u);
  EXPECT_EQ(messages, 0u);
}

}  // namespace
}  // namespace meteo::baseline
