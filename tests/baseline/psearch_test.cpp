#include "baseline/psearch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace meteo::baseline {
namespace {

vsm::SparseVector vec(std::initializer_list<vsm::KeywordId> kws) {
  return vsm::SparseVector::binary(std::vector<vsm::KeywordId>(kws));
}

PSearchConfig small_config() {
  PSearchConfig cfg;
  cfg.nodes = 200;
  cfg.dimensions = 3;
  cfg.seed = 11;
  return cfg;
}

TEST(PSearch, ProjectionIsDeterministic) {
  PSearch a(small_config());
  PSearch b(small_config());
  const auto v = vec({1, 5, 9});
  EXPECT_EQ(a.project(v), b.project(v));
}

TEST(PSearch, ProjectionInUnitTorus) {
  PSearch p(small_config());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::vector<vsm::Entry> entries;
    for (int j = 0; j < 8; ++j) {
      entries.push_back({static_cast<vsm::KeywordId>(rng.below(1000)),
                         rng.uniform() + 0.1});
    }
    const auto point = p.project(vsm::SparseVector::from_entries(entries));
    for (const double x : point) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(PSearch, ScaleInvariantProjection) {
  PSearch p(small_config());
  const auto a = vsm::SparseVector::from_entries({{1, 1.0}, {2, 2.0}});
  const auto b = vsm::SparseVector::from_entries({{1, 10.0}, {2, 20.0}});
  const auto pa = p.project(a);
  const auto pb = p.project(b);
  for (std::size_t d = 0; d < pa.size(); ++d) {
    EXPECT_NEAR(pa[d], pb[d], 1e-12);
  }
}

TEST(PSearch, SimilarVectorsProjectNearby) {
  PSearch p(small_config());
  Rng rng(2);
  double similar_dist = 0.0;
  double random_dist = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<vsm::Entry> base;
    for (int j = 0; j < 20; ++j) {
      base.push_back({static_cast<vsm::KeywordId>(rng.below(2000)), 1.0});
    }
    auto a = vsm::SparseVector::from_entries(base);
    auto perturbed = base;
    perturbed[0].keyword = static_cast<vsm::KeywordId>(rng.below(2000));
    auto b = vsm::SparseVector::from_entries(perturbed);
    std::vector<vsm::Entry> other;
    for (int j = 0; j < 20; ++j) {
      other.push_back({static_cast<vsm::KeywordId>(rng.below(2000)), 1.0});
    }
    auto c = vsm::SparseVector::from_entries(other);
    auto dist = [&](const CanPoint& x, const CanPoint& y) {
      double s = 0.0;
      for (std::size_t d = 0; d < x.size(); ++d) {
        const double diff = std::abs(x[d] - y[d]);
        const double wrapped = std::min(diff, 1.0 - diff);
        s += wrapped * wrapped;
      }
      return std::sqrt(s);
    };
    similar_dist += dist(p.project(a), p.project(b));
    random_dist += dist(p.project(a), p.project(c));
  }
  EXPECT_LT(similar_dist, random_dist * 0.5);
}

TEST(PSearch, PublishAndExactQuery) {
  PSearch p(small_config());
  for (vsm::ItemId id = 0; id < 100; ++id) {
    (void)p.publish(id, vec({static_cast<vsm::KeywordId>(id),
                             static_cast<vsm::KeywordId>(id + 1),
                             static_cast<vsm::KeywordId>(id + 2)}));
  }
  // Querying an item's own vector with a ring wide enough finds it first.
  const auto q = vec({50, 51, 52});
  const PSearchQueryResult r = p.query(q, 1, 6);
  ASSERT_FALSE(r.items.empty());
  EXPECT_EQ(r.items[0].id, 50u);
  EXPECT_NEAR(r.items[0].score, 1.0, 1e-9);
}

TEST(PSearch, RecallGrowsWithRingRadius) {
  PSearch p(small_config());
  // 60 items all containing keyword 7 (plus noise), so ground truth = 60.
  Rng rng(3);
  for (vsm::ItemId id = 0; id < 60; ++id) {
    (void)p.publish(id, vec({7, static_cast<vsm::KeywordId>(100 + rng.below(500)),
                             static_cast<vsm::KeywordId>(700 + rng.below(500))}));
  }
  const auto q = vec({7});
  std::size_t prev_found = 0;
  std::size_t prev_messages = 0;
  for (const std::size_t radius : {0u, 2u, 4u, 8u, 32u}) {
    const PSearchQueryResult r = p.query(q, 60, radius);
    std::size_t relevant = 0;
    for (const auto& hit : r.items) {
      if (hit.score > 0.0) ++relevant;
    }
    EXPECT_GE(relevant, prev_found);
    EXPECT_GE(r.flood_messages, prev_messages);
    prev_found = relevant;
    prev_messages = r.flood_messages;
  }
  // A full-coverage ring reaches everything...
  EXPECT_EQ(prev_found, 60u);
  // ...at flooding cost (the §5 criticism): messages ~ edges of the graph.
  EXPECT_GT(prev_messages, p.network().node_count());
}

TEST(PSearch, BasisRebuildRepublishesEverything) {
  PSearch p(small_config());
  for (vsm::ItemId id = 0; id < 200; ++id) {
    (void)p.publish(id, vec({static_cast<vsm::KeywordId>(id % 50),
                             static_cast<vsm::KeywordId>(id % 31)}));
  }
  const std::size_t messages = p.rebuild_basis(999);
  // Every one of the 200 items re-routed: a bulk republish, unlike
  // Meteorograph's fixed universal dictionary (§3.7).
  EXPECT_GT(messages, 200u);
  // Items remain findable under the new basis.
  const auto q = vec({5, 5 % 31});
  const PSearchQueryResult r = p.query(q, 5, 8);
  EXPECT_FALSE(r.items.empty());
}

TEST(PSearch, QueryOnEmptySystem) {
  PSearch p(small_config());
  const PSearchQueryResult r = p.query(vec({1}), 5, 3);
  EXPECT_TRUE(r.items.empty());
  EXPECT_GT(r.nodes_searched, 0u);
}

}  // namespace
}  // namespace meteo::baseline
