// meteo-lint fixture: shapes R6 must NOT fire on — facade code that
// names vectors through the strategy seam, plus identifiers and
// literals that merely resemble the banned kernel. Not compiled.
#include <cstdint>

namespace core {
struct SparseVector;
struct NamingStrategy {
  std::uint64_t primary_key(const SparseVector&) const;
  std::uint64_t directory_key(const SparseVector&) const;
};
}  // namespace core

std::uint64_t plan_key(const core::NamingStrategy& strategy,
                       const core::SparseVector& v) {
  return strategy.primary_key(v);  // the sanctioned seam
}

std::uint64_t pointer_key(const core::NamingStrategy& strategy,
                          const core::SparseVector& v) {
  return strategy.directory_key(v);
}

// A string literal naming the kernel is documentation, not a call.
const char* scheme_doc = "fitted absolute_angle_key (Eq. 5 + Eq. 6)";
