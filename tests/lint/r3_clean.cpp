// meteo-lint fixture: patterns R3 must NOT fire on — left-to-right
// std::accumulate over ordered ranges is part of the contract. Not
// compiled.
#include <numeric>
#include <vector>

double ordered_sum(const std::vector<double>& xs) {
  // Sequential accumulate over an ordered range: the fold order is
  // specified left-to-right, so the bit pattern is reproducible.
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double manual_sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  return total;
}
