// meteo-lint fixture: the sanctioned stateless shape R4 must NOT fire
// on — hyperplane components recomputed per call from immutable inputs;
// the only statics are constants. Not compiled.
#include <cstdint>

double mix_to_unit(std::uint64_t h);

static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

double hyperplane_component(std::uint64_t seed, std::uint64_t key) {
  return mix_to_unit(seed + kGolden * key);  // pure function, no cache
}
