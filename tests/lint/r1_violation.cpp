// meteo-lint fixture: R1 must fire on iteration over an unordered
// container (checked as-if under src/meteorograph/). Not compiled.
#include <cstddef>
#include <unordered_map>
#include <vector>

std::size_t result_from_hash_order() {
  std::unordered_map<int, int> scores;
  scores.emplace(1, 2);
  std::vector<int> out;
  for (const auto& [id, score] : scores) {  // R1: order feeds a result
    out.push_back(id);
  }
  return out.size();
}

std::size_t iterator_walk() {
  std::unordered_map<int, int> scores;
  std::size_t n = 0;
  for (auto it = scores.begin(); it != scores.end(); ++it) {  // R1
    ++n;
  }
  return n;
}
