// meteo-lint fixture: the sanctioned LSH hyperplane shape R2 must NOT
// fire on — every component is a pure splitmix64 hash of the fixed
// config seed and the (table, bit, keyword) coordinates, so any worker
// on any run computes the identical hyperplanes. Not compiled.
#include <cstdint>

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hyperplane_component(std::uint64_t seed, std::size_t table,
                            std::size_t bit, std::uint32_t keyword) {
  std::uint64_t h = mix(seed + 0x9e3779b97f4a7c15ULL * (table + 1));
  h ^= mix((static_cast<std::uint64_t>(bit) << 32) | keyword);
  h = mix(h);
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}
