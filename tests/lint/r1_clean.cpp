// meteo-lint fixture: patterns R1 must NOT fire on — ordered
// containers, lookup-only unordered use, the find()-sentinel idiom,
// and an annotated provably-order-insensitive fold. Not compiled.
#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

std::size_t ordered_iteration() {
  // Ordered container: iteration is deterministic. (Named distinctly
  // from the unordered params below — the token engine resolves
  // container kinds by name, so reusing a name across kinds in one
  // file would blur the distinction.)
  std::map<int, int> ranked;
  std::size_t n = 0;
  for (const auto& [id, score] : ranked) {
    n += static_cast<std::size_t>(score);
  }
  return n;
}

bool lookup_only(const std::unordered_map<int, int>& scores, int id) {
  // find()/end() sentinel comparison is not iteration.
  return scores.find(id) != scores.end();
}

std::size_t annotated_fold(const std::unordered_map<int, int>& sizes) {
  std::size_t total = 0;
  // meteo-lint: order-insensitive(integer sum commutes)
  for (const auto& [id, size] : sizes) {
    total += static_cast<std::size_t>(size);
  }
  return total;
}

std::vector<int> call_result_range(std::vector<int> (*pick)(std::size_t),
                                   const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  // The *call result* is iterated; `m` inside the argument list does
  // not make the iterated range unordered.
  for (int v : pick(m.size())) {
    out.push_back(v);
  }
  return out;
}
