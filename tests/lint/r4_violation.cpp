// meteo-lint fixture: R4 must fire on thread_local and on mutable
// static state (checked as-if under src/meteorograph/). Not compiled.
#include <cstdint>
#include <vector>

std::uint64_t next_id() {
  static std::uint64_t counter = 0;  // R4: survives across ops/batches
  return ++counter;
}

std::vector<double>& scratch() {
  thread_local std::vector<double> buf;  // R4: worker-count-dependent
  return buf;
}
