// meteo-lint fixture: patterns R5 must NOT fire on — default
// (seq_cst) atomics, explicit acquire/release, and an annotated metric
// total. Not compiled.
#include <atomic>
#include <cstdint>

std::uint64_t strict_read(const std::atomic<std::uint64_t>& x) {
  return x.load();  // seq_cst default
}

void publish_flag(std::atomic<bool>& flag) {
  flag.store(true, std::memory_order_release);
}

void bump_metric(std::atomic<std::uint64_t>& total) {
  // meteo-lint: relaxed(metric total; read after join/commit barrier)
  total.fetch_add(1, std::memory_order_relaxed);
}
