// meteo-lint fixture: R4 must fire on thread_local state caching an
// epoch across reads (checked as-if under src/meteorograph/). A cached
// pinned epoch makes a read's snapshot depend on which worker ran it —
// exactly the hazard the EpochEngine's per-op ReadView avoids
// (DESIGN.md §11). Not compiled.
#include <cstdint>

std::uint64_t pinned_epoch(std::uint64_t current) {
  thread_local std::uint64_t cached = 0;  // R4: stale across epochs
  if (cached == 0) cached = current;
  return cached;
}

std::uint64_t epochs_served() {
  static std::uint64_t count = 0;  // R4: tallies leak across seals
  return ++count;
}
