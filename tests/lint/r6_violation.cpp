// meteo-lint fixture: R6 must fire on direct absolute-angle naming in
// facade code (checked as-if under src/meteorograph/, outside the
// naming layer). An op that names vectors itself bypasses the
// configured core::NamingStrategy and splits the key space between two
// schemes (DESIGN.md §12). Not compiled.
#include <cstdint>

namespace vsm {
struct SparseVector;
enum class AngleMode { kUniversal };
std::uint64_t absolute_angle_key(const SparseVector&, std::size_t, AngleMode);
double absolute_angle(const SparseVector&, std::size_t, AngleMode);
}  // namespace vsm

std::uint64_t plan_key(const vsm::SparseVector& v) {
  // R6: the op computes its own key instead of asking the strategy
  return vsm::absolute_angle_key(v, 89'000, vsm::AngleMode::kUniversal);
}

double plan_angle(const vsm::SparseVector& v) {
  return vsm::absolute_angle(v, 89'000, vsm::AngleMode::kUniversal);  // R6
}
