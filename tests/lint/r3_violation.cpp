// meteo-lint fixture: R3 must fire on FP accumulation with unspecified
// order (checked as-if under src/meteorograph/). Not compiled.
#include <numeric>
#include <unordered_map>
#include <vector>

double unordered_reduce(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);  // R3: unspecified order
}

double hash_order_sum(const std::unordered_map<int, double>& weights) {
  // R3: std::accumulate visits hash order
  return std::accumulate(weights.begin(), weights.end(), 0.0,
                         [](double acc, const auto& kv) {
                           return acc + kv.second;
                         });
}
