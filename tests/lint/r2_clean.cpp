// meteo-lint fixture: patterns R2 must NOT fire on — seeded generator
// use and identifiers that merely contain banned substrings. Not
// compiled (the Rng include is illustrative).
#include <cstdint>

struct Splitmix {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

std::uint64_t seeded_draw(std::uint64_t seed) {
  Splitmix rng{seed};  // deterministic substream: the sanctioned source
  return rng.next();
}

// Identifiers containing banned names are not calls.
int randomize_count = 0;
int uptime_ms = 0;
const char* label = "steady_clock";  // string literal, not code
