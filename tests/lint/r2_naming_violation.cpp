// meteo-lint fixture: R2 must fire on ambient randomness seeding LSH
// hyperplanes (checked as-if under src/meteorograph/). Hyperplane
// components drawn from std::random_device differ across processes and
// workers, so two runs of the same config would name the same item
// under different bucket keys — the naming layer must derive every
// component statelessly from the fixed config seed (DESIGN.md §12).
// Not compiled.
#include <cstdint>
#include <random>

double hyperplane_component(std::size_t table, std::uint32_t keyword) {
  std::random_device entropy;  // R2: unreproducible hyperplanes
  std::uint64_t h = entropy() ^ (static_cast<std::uint64_t>(table) << 32);
  h ^= keyword;
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}
