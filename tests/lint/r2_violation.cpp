// meteo-lint fixture: R2 must fire on wall-clock / ambient randomness
// in core code (checked as-if under src/meteorograph/). Not compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned ambient_entropy() {
  std::random_device rd;  // R2: unseeded, unreproducible
  return rd();
}

int libc_rand() {
  return rand();  // R2: process-global hidden state
}

long wall_clock_seed() {
  return time(nullptr);  // R2: wall clock
}

long now_ns() {
  // R2: even the monotonic clock makes results run-dependent
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
