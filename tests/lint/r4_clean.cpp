// meteo-lint fixture: patterns R4 must NOT fire on — immutable statics,
// static member functions, and an annotated audited scratch. Not
// compiled.
#include <cstdint>
#include <vector>

static constexpr std::uint64_t kSeedMix = 0x9e3779b97f4a7c15ULL;
static const int kTableSize = 1024;

struct Codec {
  static int versioned_size(int version);  // static fn, not state
};

std::vector<double>& audited_scratch() {
  // meteo-lint: scoped(epoch-stamped; contents never outlive one query)
  thread_local std::vector<double> buf;
  return buf;
}
