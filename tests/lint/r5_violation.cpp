// meteo-lint fixture: R5 must fire on volatile-as-synchronization and
// unannotated relaxed atomics (checked as-if under src/meteorograph/).
// Not compiled.
#include <atomic>
#include <cstdint>

volatile bool ready = false;  // R5: volatile is not synchronization

std::uint64_t sloppy_read(const std::atomic<std::uint64_t>& x) {
  return x.load(std::memory_order_relaxed);  // R5: unaudited relaxed
}
