// meteo-lint fixture: the epoch-scoped patterns R4 must NOT fire on —
// the pinned epoch travels in a per-op context value instead of
// thread-cached state, and constants stay immutable. Mirrors how the
// EpochEngine threads ReadView{epoch} through the read cores
// (DESIGN.md §11). Not compiled.
#include <cstdint>

static constexpr std::uint64_t kEpochNever = ~std::uint64_t{0};

struct ReadContext {
  std::uint64_t pinned = kEpochNever;  // per-op, dies with the op
};

std::uint64_t pinned_epoch(const ReadContext& ctx) { return ctx.pinned; }

struct Engine {
  std::uint64_t epochs_served() const { return served_; }
  std::uint64_t served_ = 0;  // member state, committed under the seal
};
