// meteo-lint fixture: the suppression grammar itself. A tag with an
// empty reason must be rejected, and a suppression with no matching
// violation must be reported as stale. Not compiled.
#include <atomic>
#include <cstdint>

void empty_reason(std::atomic<std::uint64_t>& total) {
  // meteo-lint: relaxed()
  total.fetch_add(1, std::memory_order_relaxed);
}

// meteo-lint: order-insensitive(nothing here iterates anything)
int stale_site = 0;
