// meteo-lint fixture: R4 must fire on a lazily-filled static cache of
// LSH hyperplane components (checked as-if under src/meteorograph/).
// The cache's fill order depends on which ops ran first, racing workers
// mutate it concurrently, and a second system instance with a different
// seed would read the first instance's planes — stateless recomputation
// is the contract (DESIGN.md §12). Not compiled.
#include <cstdint>
#include <unordered_map>

double mix_to_unit(std::uint64_t h);

double hyperplane_component(std::uint64_t key) {
  static std::unordered_map<std::uint64_t, double> cache;  // R4: op-order fill
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const double value = mix_to_unit(key);
  cache.emplace(key, value);
  return value;
}
