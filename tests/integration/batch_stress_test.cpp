/// Tier-2 stress: the batch engine under a lossy network. A 5% drop-rate
/// FaultPlan rides along while four workers push large publish/read batches
/// through one system; a second identically-seeded system runs the same
/// batches single-threaded and must end up byte-identical — results,
/// stored state, metric registry, and fault tallies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "meteorograph/batch.hpp"
#include "obs/export.hpp"
#include "obs/names.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

constexpr std::size_t kItems = 800;
constexpr std::size_t kNodes = 200;
constexpr double kDropRate = 0.05;

struct StressRun {
  std::vector<vsm::SparseVector> vectors;
  std::optional<sim::FaultPlan> plan;
  std::optional<Meteorograph> sys;
  std::optional<BatchEngine> engine;

  std::vector<PublishResult> published;
  std::vector<RetrieveResult> retrieved;
  std::vector<LocateResult> located;
};

void run_stress(StressRun& run, std::size_t workers) {
  workload::TraceConfig tc;
  tc.num_items = kItems;
  tc.num_keywords = 3000;
  tc.mean_basket = 10.0;
  tc.max_basket = 100;
  const workload::Trace trace = workload::synthesize_trace(tc, 31);
  const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
  for (std::size_t i = 0; i < kItems; ++i) {
    run.vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < kItems; i += 23) sample.push_back(run.vectors[i]);

  SystemConfig cfg;
  cfg.node_count = kNodes;
  cfg.dimension = 3000;
  cfg.replicas = 2;
  run.sys.emplace(cfg, sample, 31);
  run.plan.emplace(sim::FaultPlanConfig{.drop_rate = kDropRate}, 77);
  ASSERT_TRUE(run.sys->set_fault_hook(&*run.plan));
  run.engine.emplace(*run.sys, BatchOptions{.workers = workers, .seed = 404});

  std::vector<PublishOp> publishes;
  for (vsm::ItemId id = 0; id < kItems; ++id) {
    publishes.push_back(PublishOp{id, &run.vectors[id], {}});
  }
  run.published = run.engine->publish(publishes);

  std::vector<RetrieveOp> retrieves;
  std::vector<LocateOp> locates;
  for (vsm::ItemId id = 0; id < kItems; id += 2) {
    retrieves.push_back(RetrieveOp{&run.vectors[id], 5, {}});
    locates.push_back(LocateOp{id, &run.vectors[id], {}});
  }
  run.retrieved = run.engine->retrieve(retrieves);
  run.located = run.engine->locate(locates);
}

std::string metric_fingerprint(const obs::MetricRegistry& metrics) {
  return obs::metrics_to_csv(metrics);
}

TEST(BatchStress, LossyNetworkFourWorkersMatchesSequential) {
  StressRun par;
  StressRun seq;
  run_stress(par, 4);
  run_stress(seq, 1);

  // The network really was lossy, and both runs saw the same faults.
  ASSERT_GT(par.plan->dropped(), 0u);
  EXPECT_EQ(par.plan->messages_seen(), seq.plan->messages_seen());
  EXPECT_EQ(par.plan->dropped(), seq.plan->dropped());

  // Publishes degrade gracefully, never silently: most succeed despite the
  // drops, and every outcome matches the sequential run.
  ASSERT_EQ(par.published.size(), seq.published.size());
  std::size_t successes = 0;
  for (std::size_t i = 0; i < par.published.size(); ++i) {
    EXPECT_EQ(par.published[i].success, seq.published[i].success) << i;
    EXPECT_EQ(par.published[i].stored_at, seq.published[i].stored_at) << i;
    EXPECT_EQ(par.published[i].route_hops, seq.published[i].route_hops) << i;
    EXPECT_EQ(par.published[i].degraded, seq.published[i].degraded) << i;
    if (par.published[i].success) ++successes;
  }
  EXPECT_GT(successes, par.published.size() * 8 / 10);
  EXPECT_EQ(par.sys->stored_item_count(), seq.sys->stored_item_count());
  EXPECT_EQ(par.sys->node_loads(), seq.sys->node_loads());

  ASSERT_EQ(par.retrieved.size(), seq.retrieved.size());
  for (std::size_t i = 0; i < par.retrieved.size(); ++i) {
    ASSERT_EQ(par.retrieved[i].items.size(), seq.retrieved[i].items.size())
        << i;
    for (std::size_t j = 0; j < par.retrieved[i].items.size(); ++j) {
      EXPECT_EQ(par.retrieved[i].items[j].id, seq.retrieved[i].items[j].id)
          << i;
    }
    EXPECT_EQ(par.retrieved[i].partial, seq.retrieved[i].partial) << i;
    EXPECT_EQ(par.retrieved[i].total_messages(),
              seq.retrieved[i].total_messages())
        << i;
  }

  ASSERT_EQ(par.located.size(), seq.located.size());
  std::size_t found = 0;
  for (std::size_t i = 0; i < par.located.size(); ++i) {
    EXPECT_EQ(par.located[i].found, seq.located[i].found) << i;
    EXPECT_EQ(par.located[i].node, seq.located[i].node) << i;
    if (par.located[i].found) ++found;
  }
  EXPECT_GT(found, par.located.size() * 8 / 10);

  // The whole metric registry folded identically: counters, and every
  // distribution down to float-accumulation order.
  EXPECT_EQ(metric_fingerprint(par.sys->metrics()),
            metric_fingerprint(seq.sys->metrics()));

  // Fault/retry accounting made it into the metrics from worker threads.
  EXPECT_GT(par.sys->metrics().counter_total(obs::names::kFaultRetries), 0u);
}

}  // namespace
}  // namespace meteo::core
