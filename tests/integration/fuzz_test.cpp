/// Randomized stress test: a long mixed sequence of publishes, queries,
/// withdrawals, crashes, graceful departures, joins, and repairs, with
/// system invariants checked throughout. Seeds are parameterized so the
/// sequence space is sampled deterministically.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "meteorograph/meteorograph.hpp"

namespace meteo::core {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, MixedOperationSequenceKeepsInvariants) {
  SystemConfig cfg;
  cfg.node_count = 60;
  cfg.dimension = 500;
  cfg.load_balance = LoadBalanceMode::kNone;
  cfg.node_capacity = 40;
  cfg.replicas = 2;
  Meteorograph sys(cfg, {}, GetParam());
  Rng rng(GetParam() ^ 0xf022);

  // Ground truth the fuzzer maintains: id -> vector of live items.
  std::map<vsm::ItemId, vsm::SparseVector> live;
  vsm::ItemId next_id = 0;

  auto random_vector = [&] {
    std::vector<vsm::Entry> entries;
    const std::size_t nnz = 1 + rng.below(12);
    for (std::size_t i = 0; i < nnz; ++i) {
      entries.push_back({static_cast<vsm::KeywordId>(rng.below(500)),
                         rng.uniform() + 0.1});
    }
    return vsm::SparseVector::from_entries(std::move(entries));
  };

  std::size_t crash_count = 0;
  for (int step = 0; step < 600; ++step) {
    const double op = rng.uniform();
    if (op < 0.45) {
      // Publish a new item.
      const vsm::ItemId id = next_id++;
      const auto v = random_vector();
      if (sys.publish(id, v).success) live.emplace(id, v);
    } else if (op < 0.55 && !live.empty()) {
      // Withdraw a random live item.
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      (void)sys.withdraw(it->first, it->second);
      live.erase(it);
    } else if (op < 0.75 && !live.empty()) {
      // Query a random live item (retrieve or locate or search).
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      switch (rng.below(3)) {
        case 0:
          (void)sys.retrieve(it->second, 1 + rng.below(5));
          break;
        case 1:
          (void)sys.locate(it->first, it->second);
          break;
        default: {
          const std::vector<vsm::KeywordId> q = {
              it->second.entries()[0].keyword};
          (void)sys.similarity_search(q, 1 + rng.below(8));
          break;
        }
      }
    } else if (op < 0.82 && sys.network().alive_count() > 30) {
      // Graceful departure: nothing may be lost.
      (void)sys.depart_node(sys.network().random_alive(rng));
    } else if (op < 0.88 && sys.network().alive_count() > 30 &&
               crash_count < 10) {
      // Crash: data on the node is lost (drop it from ground truth).
      const overlay::NodeId victim = sys.network().random_alive(rng);
      std::vector<vsm::ItemId> lost;
      sys.store_of(victim).for_each(
          [&](const StoredEntry& e) { lost.push_back(e.id); });
      sys.network().fail(victim);
      ++crash_count;
      for (const vsm::ItemId id : lost) live.erase(id);
    } else if (op < 0.94) {
      // Join a fresh node.
      (void)sys.network().join(rng.below(sys.network().config().key_space));
    } else {
      sys.network().repair();
    }
  }
  sys.network().repair();

  // Invariant 1: capacity respected everywhere.
  for (const overlay::NodeId node : sys.network().alive_nodes()) {
    const std::size_t cap = sys.capacity_of(node);
    if (cap != 0) {
      EXPECT_LE(sys.store_of(node).size(), cap);
    }
  }
  // Invariant 2: every ground-truth item is still locatable (crashed
  // hosts' items were removed from ground truth; replicas may still serve
  // some of them, which is fine — found-extra is not an error).
  std::size_t found = 0;
  for (const auto& [id, vector] : live) {
    if (sys.locate(id, vector).found) ++found;
  }
  EXPECT_EQ(found, live.size());
  // Invariant 3: stored primaries never exceed published-minus-crashed.
  EXPECT_GE(sys.stored_item_count() + 10 * cfg.node_capacity,
            live.size());  // slack for replica-served crash survivors
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace meteo::core
