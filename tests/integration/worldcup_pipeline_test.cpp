/// End-to-end pipeline test: synthesize a workload, serialize it in the
/// World Cup binary log format, read it back, aggregate it into the
/// keyword-item incidence, and run the full Meteorograph stack on it —
/// exactly what a user with the real ITA trace would do.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "meteorograph/meteorograph.hpp"
#include "workload/trace.hpp"
#include "workload/worldcup.hpp"

namespace meteo {
namespace {

TEST(WorldCupPipeline, LogRoundTripFeedsTheSystem) {
  // 1. Synthesize and export as a binary access log.
  workload::TraceConfig tc;
  tc.num_items = 800;
  tc.num_keywords = 1500;
  tc.mean_basket = 10.0;
  tc.max_basket = 60;
  const workload::Trace original = workload::synthesize_trace(tc, 2024);

  std::vector<workload::WorldCupRecord> records;
  std::uint32_t timestamp = 0;
  for (std::size_t client = 0; client < original.item_count(); ++client) {
    for (const vsm::KeywordId object : original.keywords_of(client)) {
      workload::WorldCupRecord r;
      r.timestamp = timestamp++;
      r.client_id = static_cast<std::uint32_t>(client);
      r.object_id = object;
      records.push_back(r);
    }
  }
  std::stringstream log;
  workload::write_worldcup_log(log, records);

  // 2. Read back and aggregate, as with the real trace.
  const auto read = workload::read_worldcup_log(log);
  ASSERT_TRUE(read.has_value());
  const workload::Trace trace = workload::build_trace(read.value());
  ASSERT_EQ(trace.item_count(), original.item_count());
  EXPECT_EQ(trace.stats().total_incidences, original.stats().total_incidences);

  // 3. Run the full system on the re-imported workload.
  const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
  std::vector<vsm::SparseVector> vectors;
  for (std::size_t i = 0; i < trace.item_count(); ++i) {
    vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < vectors.size(); i += 13) {
    sample.push_back(vectors[i]);
  }
  core::SystemConfig cfg;
  cfg.node_count = 100;
  cfg.dimension = 1500;
  core::Meteorograph sys(cfg, sample, 7);
  for (vsm::ItemId id = 0; id < vectors.size(); ++id) {
    ASSERT_TRUE(sys.publish(id, vectors[id]).success);
  }

  // 4. The pipeline preserves searchability: a discover-all query over a
  //    mid-popularity object matches the trace's ground truth.
  const auto& df = trace.document_frequency();
  vsm::KeywordId keyword = 0;
  for (vsm::KeywordId k = 0; k < df.size(); ++k) {
    if (df[k] >= 10 && df[k] <= 200) {
      keyword = k;
      break;
    }
  }
  std::set<vsm::ItemId> expected;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (vectors[i].contains(keyword)) expected.insert(i);
  }
  ASSERT_FALSE(expected.empty());
  const std::vector<vsm::KeywordId> q = {keyword};
  const core::SearchResult r = sys.similarity_search(q, 0);
  EXPECT_EQ(std::set<vsm::ItemId>(r.items.begin(), r.items.end()), expected);
}

}  // namespace
}  // namespace meteo
