/// Seed-driven epoch-boundary interleave fuzzer (DESIGN.md §11).
///
/// Each iteration synthesizes a random mixed read/write/churn schedule
/// and forces a random subset of its reads — plus targeted probes — to
/// straddle the epoch boundary: they pin epoch E when the window seals,
/// but physically execute only after the window's publishes,
/// withdrawals, and departures have committed into E+1, against the
/// version-retaining stores. Two properties are checked:
///
///  1. Replay equality: the straddling run's complete transcript
///     (results, Chrome trace, metric dump) is byte-identical to a
///     sequential replay (workers = 1, nothing deferred) of the same
///     schedule — fault-free and under a 5% drop plan.
///  2. Snapshot semantics: every straddling read observes exactly epoch
///     E — an item withdrawn in-window is still locatable, retrievable,
///     and keyword-discoverable (its posting lists and directory bucket
///     are untorn), and an item published in-window is invisible on all
///     three paths. One epoch later, both flips appear.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "meteorograph/epoch.hpp"
#include "obs/export.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct TestWorkload {
  workload::Trace trace;
  std::vector<double> weights;
  std::vector<vsm::SparseVector> vectors;  // all items, index = ItemId
  std::vector<vsm::SparseVector> sample;
};

TestWorkload make_workload(std::size_t items, std::uint64_t seed) {
  workload::TraceConfig cfg;
  cfg.num_items = items;
  cfg.num_keywords = 2000;
  cfg.mean_basket = 10.0;
  cfg.max_basket = 100;
  workload::Trace trace = workload::synthesize_trace(cfg, seed);
  std::vector<double> weights =
      trace.keyword_weights(workload::WeightScheme::kIdf);
  std::vector<vsm::SparseVector> vectors;
  vectors.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < items; i += 37) sample.push_back(vectors[i]);
  return TestWorkload{std::move(trace), std::move(weights),
                      std::move(vectors), std::move(sample)};
}

constexpr vsm::ItemId kNoItem = ~vsm::ItemId{0};
constexpr std::size_t kNodes = 60;
constexpr std::size_t kInitialItems = 90;
constexpr int kEpochs = 3;

/// Medium-detail result digest: the data payload of every result. Hop
/// and message accounting is byte-covered separately by the trace and
/// metric dumps appended to the transcript.
struct DigestVisitor {
  std::string& out;
  void operator()(const RetrieveResult& r) const {
    out += "R";
    for (const vsm::ScoredItem& s : r.items) {
      out += ' ' + std::to_string(s.id) + ':' + obs::format_double(s.score);
    }
    out += " /" + std::to_string(r.nodes_visited) + ' ' +
           std::to_string(r.items_missed) + (r.partial ? "p" : "");
  }
  void operator()(const LocateResult& r) const {
    out += "L " + std::to_string(r.found ? 1 : 0) + ' ' +
           std::to_string(r.node) + ' ' +
           std::to_string(r.via_replica ? 1 : 0) +
           (r.fault_blocked ? "b" : "");
  }
  void operator()(const SearchResult& r) const {
    out += "S";
    for (std::size_t j = 0; j < r.items.size(); ++j) {
      out += ' ' + std::to_string(r.items[j]) + '@' +
             std::to_string(r.discovery_hops[j]);
    }
    out += " /" + std::to_string(r.lookups_failed);
  }
  void operator()(const RangeSearchResult& r) const {
    out += "G";
    for (const RangeMatch& m : r.matches) {
      out += ' ' + obs::format_double(m.value) + ':' + std::to_string(m.item);
    }
  }
  void operator()(const PublishResult& r) const {
    out += "P " + std::to_string(r.success ? 1 : 0) + ' ' +
           std::to_string(r.stored_at) + ' ' +
           std::to_string(r.replicas_missed) +
           (r.pointer_missed ? "m" : "");
  }
  void operator()(const WithdrawResult& r) const {
    out += "W " + std::to_string(r.removed ? 1 : 0) + ' ' +
           std::to_string(r.replicas_removed) + ' ' +
           std::to_string(r.pointer_removed ? 1 : 0);
  }
  void operator()(const DepartResult& r) const {
    out += "D " + std::to_string(r.items_transferred) + ' ' +
           std::to_string(r.replicas_transferred) + ' ' +
           std::to_string(r.pointers_transferred);
  }
};

struct RunMode {
  std::size_t workers = 1;
  bool straddle = false;  ///< defer probes + a random read subset
  double drop_rate = 0.0;
};

/// Replays the schedule derived from `seed` and returns its transcript.
/// Semantic straddle assertions fire only on fault-free runs (a dropped
/// message can legitimately blind a locate or a pointer chase).
std::string run_fuzz(const TestWorkload& wl, std::uint64_t seed,
                     const RunMode& mode) {
  SystemConfig cfg;
  cfg.node_count = kNodes;
  cfg.dimension = 2000;
  cfg.load_balance = LoadBalanceMode::kUnusedHashSpace;
  Meteorograph sys(cfg, wl.sample, 77);
  for (vsm::ItemId id = 0; id < kInitialItems; ++id) {
    EXPECT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }

  obs::TraceLog log;
  EXPECT_TRUE(sys.set_tracer(&log));
  std::optional<sim::FaultPlan> plan;
  if (mode.drop_rate > 0.0) {
    plan.emplace(sim::FaultPlanConfig{.drop_rate = mode.drop_rate}, 7);
    EXPECT_TRUE(sys.set_fault_hook(&*plan));
  }

  // The defer seam: probe ops always straddle; other reads straddle by a
  // coin flip keyed on (seed, global op index). The set outlives the
  // engine and is fully populated before each seal().
  std::unordered_set<std::size_t> forced;
  EpochOptions opts;
  opts.workers = mode.workers;
  opts.seed = seed;
  if (mode.straddle) {
    opts.defer_read = [&forced, seed](std::size_t g) {
      return forced.contains(g) || (splitmix64(seed ^ (g + 1)) & 1) != 0;
    };
  }
  EpochEngine engine(sys, opts);

  Rng rng(seed);  // schedule synthesis stream; identical across modes
  std::vector<vsm::ItemId> live;
  for (vsm::ItemId id = 0; id < kInitialItems; ++id) live.push_back(id);
  vsm::ItemId next_new = kInitialItems;
  std::vector<bool> departed(kNodes, false);
  std::size_t departs_total = 0;
  std::vector<vsm::KeywordId> kw_storage;
  kw_storage.reserve(1024);  // spans into elements: no reallocation allowed
  const bool check_semantics = mode.drop_rate == 0.0;

  std::string out;
  std::size_t submitted = 0;  // mirrors the engine's global op counter
  vsm::ItemId prev_victim = kNoItem;
  vsm::ItemId prev_fresh = kNoItem;
  for (int e = 0; e < kEpochs; ++e) {
    auto submit = [&](auto op) {
      engine.submit(op);
      ++submitted;
    };

    // Boundary probes for the *previous* window's flips: now committed,
    // they must be visible (no deferral needed; the state is live).
    std::size_t prev_victim_probe = 0;
    std::size_t prev_fresh_probe = 0;
    if (prev_victim != kNoItem) {
      prev_victim_probe =
          engine.submit(LocateOp{prev_victim, &wl.vectors[prev_victim], {}});
      ++submitted;
      prev_fresh_probe =
          engine.submit(LocateOp{prev_fresh, &wl.vectors[prev_fresh], {}});
      ++submitted;
    }

    // This window's victim (visible at E, withdrawn into E+1) and fresh
    // item (published into E+1).
    const std::size_t vi = rng.below(live.size());
    const vsm::ItemId victim = live[vi];
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(vi));
    const vsm::ItemId fresh = next_new++;

    // Random filler ops around the churn, victim withdrawal and fresh
    // publish at random positions.
    const std::size_t ops = 12 + rng.below(8);
    const std::size_t withdraw_at = rng.below(ops);
    const std::size_t publish_at = rng.below(ops);
    for (std::size_t k = 0; k < ops; ++k) {
      if (k == withdraw_at) {
        submit(WithdrawOp{victim, &wl.vectors[victim], {}});
      }
      if (k == publish_at) {
        submit(PublishOp{fresh, &wl.vectors[fresh], {}});
      }
      switch (rng.below(10)) {
        case 0:
        case 1:
        case 2: {
          const vsm::ItemId q = static_cast<vsm::ItemId>(rng.below(next_new));
          submit(RetrieveOp{&wl.vectors[q], 1 + rng.below(5), {}});
          break;
        }
        case 3:
        case 4:
        case 5: {
          const vsm::ItemId q = static_cast<vsm::ItemId>(rng.below(next_new));
          submit(LocateOp{q, &wl.vectors[q], {}});
          break;
        }
        case 6:
        case 7: {
          const vsm::ItemId q = static_cast<vsm::ItemId>(rng.below(next_new));
          kw_storage.push_back(wl.vectors[q].entries()[0].keyword);
          submit(SearchOp{{&kw_storage.back(), 1}, 3, {}});
          break;
        }
        case 8: {
          if (!live.empty() && rng.below(2) == 0) {
            const std::size_t wi = rng.below(live.size());
            const vsm::ItemId w = live[wi];
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(wi));
            submit(WithdrawOp{w, &wl.vectors[w], {}});
          }
          break;
        }
        default: {
          if (departs_total < 6 && rng.below(4) == 0) {
            const overlay::NodeId node =
                static_cast<overlay::NodeId>(rng.below(kNodes));
            if (!departed[node]) {
              departed[node] = true;
              ++departs_total;
              submit(DepartOp{node});
            }
          }
          break;
        }
      }
    }

    // Straddle probes: forced past the write phase, pinned at E.
    auto probe = [&](auto op) {
      forced.insert(submitted);
      const std::size_t index = engine.submit(op);
      ++submitted;
      return index;
    };
    const std::size_t victim_locate =
        probe(LocateOp{victim, &wl.vectors[victim], {}});
    const std::size_t fresh_locate =
        probe(LocateOp{fresh, &wl.vectors[fresh], {}});
    const std::size_t victim_retrieve =
        probe(RetrieveOp{&wl.vectors[victim], 5, {}});
    kw_storage.push_back(wl.vectors[victim].entries()[0].keyword);
    const std::size_t victim_search =
        probe(SearchOp{{&kw_storage.back(), 1}, 0, {}});
    kw_storage.push_back(wl.vectors[fresh].entries()[0].keyword);
    const std::size_t fresh_search =
        probe(SearchOp{{&kw_storage.back(), 1}, 0, {}});
    EXPECT_LT(kw_storage.size(), 1024u);

    const EpochEngine::SealedEpoch sealed = engine.seal();
    out += "== epoch " + std::to_string(sealed.epoch) + " ==\n";
    for (const EpochEngine::OpResult& r : sealed.results) {
      std::visit(DigestVisitor{out}, r);
      out += '\n';
    }

    if (check_semantics) {
      // The straddling reads observed exactly epoch E: the in-window
      // withdrawal is invisible on the locate, retrieve, and keyword
      // paths; the in-window publish is invisible on locate and search.
      const auto& vl = std::get<LocateResult>(sealed.results[victim_locate]);
      EXPECT_TRUE(vl.found) << "victim " << victim << " torn at epoch "
                            << sealed.epoch;
      const auto& fl = std::get<LocateResult>(sealed.results[fresh_locate]);
      EXPECT_FALSE(fl.found) << "fresh " << fresh << " leaked into epoch "
                             << sealed.epoch;
      const auto& vr =
          std::get<RetrieveResult>(sealed.results[victim_retrieve]);
      EXPECT_TRUE(std::any_of(
          vr.items.begin(), vr.items.end(),
          [&](const vsm::ScoredItem& s) { return s.id == victim; }))
          << "victim " << victim << " missing from pinned retrieve";
      const auto& vs = std::get<SearchResult>(sealed.results[victim_search]);
      EXPECT_TRUE(std::find(vs.items.begin(), vs.items.end(), victim) !=
                  vs.items.end())
          << "victim " << victim << " missing from pinned search";
      const auto& fs = std::get<SearchResult>(sealed.results[fresh_search]);
      EXPECT_TRUE(std::find(fs.items.begin(), fs.items.end(), fresh) ==
                  fs.items.end())
          << "fresh " << fresh << " leaked into pinned search";

      // The previous window's flips committed at its boundary.
      if (prev_victim != kNoItem) {
        EXPECT_FALSE(
            std::get<LocateResult>(sealed.results[prev_victim_probe]).found)
            << "withdrawn " << prev_victim << " survived its epoch";
        EXPECT_TRUE(
            std::get<LocateResult>(sealed.results[prev_fresh_probe]).found)
            << "published " << prev_fresh << " lost at its epoch";
      }
    }
    prev_victim = victim;
    prev_fresh = fresh;
  }

  out += obs::trace_to_chrome_json(log);
  out += obs::metrics_to_csv(sys.metrics());
  return out;
}

TEST(EpochInterleaveFuzz, StraddlingReadsMatchSequentialReplay) {
  const TestWorkload wl = make_workload(160, 51);
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    const std::string oracle = run_fuzz(wl, seed, {.workers = 1});
    EXPECT_EQ(run_fuzz(wl, seed, {.workers = 8, .straddle = true}), oracle)
        << "seed " << seed;
  }
}

TEST(EpochInterleaveFuzz, StraddlingReadsMatchSequentialReplayUnderDrops) {
  const TestWorkload wl = make_workload(160, 52);
  for (const std::uint64_t seed : {55u, 66u}) {
    const std::string oracle =
        run_fuzz(wl, seed, {.workers = 1, .drop_rate = 0.05});
    EXPECT_EQ(run_fuzz(wl, seed,
                       {.workers = 8, .straddle = true, .drop_rate = 0.05}),
              oracle)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace meteo::core
