/// Cross-mode property sweeps over the whole system: the invariants of
/// DESIGN.md §5, parameterized over load-balance mode, capacity, and
/// eviction policy (TEST_P).

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

struct SweepWorkload {
  std::vector<vsm::SparseVector> vectors;
  std::vector<vsm::SparseVector> sample;
};

const SweepWorkload& sweep_workload() {
  static const SweepWorkload wl = [] {
    workload::TraceConfig tc;
    tc.num_items = 1500;
    tc.num_keywords = 3000;
    tc.mean_basket = 12.0;
    tc.max_basket = 80;
    const workload::Trace trace = workload::synthesize_trace(tc, 77);
    const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
    SweepWorkload out;
    for (std::size_t i = 0; i < trace.item_count(); ++i) {
      out.vectors.push_back(trace.vector_of(i, weights));
    }
    for (std::size_t i = 0; i < out.vectors.size(); i += 17) {
      out.sample.push_back(out.vectors[i]);
    }
    return out;
  }();
  return wl;
}

using SweepParam = std::tuple<LoadBalanceMode, std::size_t /*cap factor*/,
                              EvictionPolicy>;

class SystemSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  Meteorograph make_system() const {
    const auto [mode, cap_factor, eviction] = GetParam();
    SystemConfig cfg;
    cfg.node_count = 120;
    cfg.dimension = 3000;
    cfg.load_balance = mode;
    cfg.eviction = eviction;
    if (cap_factor > 0) {
      cfg.node_capacity =
          cap_factor * (sweep_workload().vectors.size() / cfg.node_count);
    }
    return Meteorograph(cfg, sweep_workload().sample, 123);
  }
};

TEST_P(SystemSweep, EveryItemIsStoredAndLocatable) {
  Meteorograph sys = make_system();
  const auto& wl = sweep_workload();
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success) << "item " << id;
  }
  EXPECT_EQ(sys.stored_item_count(), wl.vectors.size());
  for (vsm::ItemId id = 0; id < wl.vectors.size(); id += 7) {
    EXPECT_TRUE(sys.locate(id, wl.vectors[id]).found) << "item " << id;
  }
}

TEST_P(SystemSweep, NoNodeExceedsItsCapacity) {
  Meteorograph sys = make_system();
  const auto& wl = sweep_workload();
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    (void)sys.publish(id, wl.vectors[id]);
  }
  for (const overlay::NodeId node : sys.network().alive_nodes()) {
    const std::size_t cap = sys.capacity_of(node);
    if (cap == 0) continue;
    EXPECT_LE(sys.store_of(node).size(), cap) << "node " << node;
  }
}

TEST_P(SystemSweep, SelfQueryRanksSelfFirst) {
  Meteorograph sys = make_system();
  const auto& wl = sweep_workload();
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    (void)sys.publish(id, wl.vectors[id]);
  }
  const bool exact_expected = std::get<1>(GetParam()) == 0;
  for (vsm::ItemId id = 0; id < wl.vectors.size(); id += 31) {
    const RetrieveResult r = sys.retrieve(wl.vectors[id], 1);
    ASSERT_FALSE(r.items.empty());
    if (exact_expected) {
      // Infinite capacity: the item sits exactly at its key's home, so a
      // self-query's first hit is the item itself.
      EXPECT_NEAR(r.items[0].score, 1.0, 1e-9);
    } else {
      // Finite capacity: overflow may have spilled the exact item past
      // the greedy walk's first satisfied stop (a property of the
      // paper's Fig. 2 algorithm); the hit must still be similar.
      EXPECT_GT(r.items[0].score, 0.0);
    }
  }
}

TEST_P(SystemSweep, SimilaritySearchIsCompleteAndExact) {
  Meteorograph sys = make_system();
  const auto& wl = sweep_workload();
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    (void)sys.publish(id, wl.vectors[id]);
  }
  // Pick a keyword with a moderate match count.
  vsm::KeywordId keyword = 0;
  std::set<vsm::ItemId> expected;
  for (vsm::KeywordId candidate = 0; candidate < 40; ++candidate) {
    expected.clear();
    for (std::size_t i = 0; i < wl.vectors.size(); ++i) {
      if (wl.vectors[i].contains(candidate)) expected.insert(i);
    }
    if (expected.size() >= 5 && expected.size() <= 400) {
      keyword = candidate;
      break;
    }
  }
  ASSERT_GE(expected.size(), 5u);
  const std::vector<vsm::KeywordId> q = {keyword};
  const SearchResult r = sys.similarity_search(q, 0);
  EXPECT_EQ(std::set<vsm::ItemId>(r.items.begin(), r.items.end()), expected);
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& param) {
  const auto [mode, cap, evict] = param.param;
  std::string name;
  switch (mode) {
    case LoadBalanceMode::kNone:
      name = "None";
      break;
    case LoadBalanceMode::kUnusedHashSpace:
      name = "UHS";
      break;
    case LoadBalanceMode::kUnusedHashSpacePlusHotRegions:
      name = "UHSHR";
      break;
  }
  name += cap == 0 ? "_InfCap" : "_Cap4c";
  name += evict == EvictionPolicy::kFarthestAngle ? "_Angle" : "_Cosine";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SystemSweep,
    ::testing::Combine(
        ::testing::Values(LoadBalanceMode::kNone,
                          LoadBalanceMode::kUnusedHashSpace,
                          LoadBalanceMode::kUnusedHashSpacePlusHotRegions),
        ::testing::Values(std::size_t{0}, std::size_t{4}),
        ::testing::Values(EvictionPolicy::kFarthestAngle,
                          EvictionPolicy::kLeastSimilarCosine)),
    sweep_name);

}  // namespace
}  // namespace meteo::core
