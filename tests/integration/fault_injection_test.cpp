/// End-to-end fault-injection properties over a 256-node Meteorograph:
/// deterministic replay (same FaultPlan seed twice -> byte-identical
/// metrics and results), zero-rate transparency (a do-nothing hook leaves
/// the system exactly on its no-fault path), the graceful-degradation
/// curve (retrieve success vs message drop rate, with and without
/// retries), and replica failover after a scheduled crash.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "meteorograph/meteorograph.hpp"
#include "obs/export.hpp"
#include "obs/names.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

namespace names = obs::names;

struct FaultWorkload {
  std::vector<vsm::SparseVector> vectors;
  std::vector<vsm::SparseVector> sample;
};

const FaultWorkload& fault_workload() {
  static const FaultWorkload wl = [] {
    workload::TraceConfig tc;
    tc.num_items = 800;
    tc.num_keywords = 2000;
    tc.mean_basket = 10.0;
    tc.max_basket = 60;
    const workload::Trace trace = workload::synthesize_trace(tc, 91);
    const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
    FaultWorkload out;
    for (std::size_t i = 0; i < trace.item_count(); ++i) {
      out.vectors.push_back(trace.vector_of(i, weights));
    }
    for (std::size_t i = 0; i < out.vectors.size(); i += 13) {
      out.sample.push_back(out.vectors[i]);
    }
    return out;
  }();
  return wl;
}

Meteorograph make_system(std::size_t max_retries = 3) {
  SystemConfig cfg;
  cfg.node_count = 256;
  cfg.dimension = 2000;
  cfg.replicas = 2;
  cfg.max_walk_nodes = 48;
  cfg.overlay.retry.max_retries = max_retries;
  return Meteorograph(cfg, fault_workload().sample, 2024);
}

struct RunSummary {
  std::size_t queries = 0;
  std::size_t full = 0;  ///< queries that came back with partial == false
  std::uint64_t digest = 0;
  std::string metrics_csv;  ///< full-registry export, byte-comparable
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t retrieve_partial = 0;

  [[nodiscard]] double success() const {
    return static_cast<double>(full) / static_cast<double>(queries);
  }
};

void mix(std::uint64_t& h, std::uint64_t v) { h = splitmix64(h ^ v); }

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Publishes the whole corpus, runs one retrieve per third item, and
/// fingerprints everything observable: every result field and the full
/// metric registry. `faulty_publish` decides whether the plan is attached
/// before or after the publish phase.
RunSummary run_workload(double drop_rate, std::size_t max_retries,
                        bool attach_hook, bool faulty_publish,
                        std::uint64_t fault_seed) {
  Meteorograph sys = make_system(max_retries);
  sim::FaultPlan plan({drop_rate, 0.0, 0.0}, fault_seed);
  const auto& wl = fault_workload();
  RunSummary out;

  if (attach_hook && faulty_publish) sys.set_fault_hook(&plan);
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    const PublishResult p = sys.publish(id, wl.vectors[id]);
    mix(out.digest, p.home);
    mix(out.digest, p.stored_at);
    mix(out.digest, p.degraded ? 1 : 0);
    mix(out.digest, p.replicas_missed);
  }
  if (attach_hook && !faulty_publish) sys.set_fault_hook(&plan);

  for (std::size_t q = 0; q < wl.vectors.size(); q += 3) {
    const RetrieveResult r = sys.retrieve(wl.vectors[q], 6);
    ++out.queries;
    if (!r.partial) ++out.full;
    mix(out.digest, r.items.size());
    for (const vsm::ScoredItem& hit : r.items) {
      mix(out.digest, hit.id);
      mix(out.digest, bits(hit.score));
    }
    mix(out.digest, r.partial ? 1 : 0);
    mix(out.digest, r.items_missed);
  }

  out.metrics_csv = obs::metrics_to_csv(sys.metrics());
  out.retries = sys.metrics().counter_total(names::kFaultRetries);
  out.timeouts = sys.metrics().counter_total(names::kFaultTimeouts);
  out.reroutes = sys.metrics().counter_total(names::kFaultReroutes);
  out.retrieve_partial = sys.metrics().counter_value(
      names::kOpCount,
      {{names::kLabelOp, "retrieve"}, {names::kLabelOutcome, "partial"}});
  return out;
}

TEST(FaultInjectionTest, ReplayIsByteIdentical) {
  // Publishes *and* retrieves run under 15% drop; replaying the same plan
  // seed must reproduce every result field and every metric bit-for-bit.
  const RunSummary a = run_workload(0.15, 3, true, /*faulty_publish=*/true, 5);
  const RunSummary b = run_workload(0.15, 3, true, /*faulty_publish=*/true, 5);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.full, b.full);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
  // The run was genuinely faulty, not trivially identical by inactivity.
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.timeouts, 0u);
}

TEST(FaultInjectionTest, DifferentFaultSeedsDiverge) {
  const RunSummary a = run_workload(0.15, 3, true, true, 5);
  const RunSummary b = run_workload(0.15, 3, true, true, 6);
  EXPECT_NE(a.digest, b.digest);
}

TEST(FaultInjectionTest, ZeroDropRateMatchesNoFaultPathExactly) {
  // An attached plan with all-zero rates must be invisible: identical
  // results AND an identical metric registry (no stray zero counters).
  const RunSummary hooked = run_workload(0.0, 3, true, true, 7);
  const RunSummary bare = run_workload(0.0, 3, false, true, 7);
  EXPECT_EQ(hooked.digest, bare.digest);
  EXPECT_EQ(hooked.metrics_csv, bare.metrics_csv);
  EXPECT_EQ(hooked.full, hooked.queries);  // perfect links: never partial
  EXPECT_EQ(hooked.retries, 0u);
  EXPECT_EQ(hooked.retrieve_partial, 0u);
}

TEST(FaultInjectionTest, DegradationCurveIsMonotoneAndRetriesHold) {
  // Clean corpus, faulty queries: sweep the drop rate and watch retrieve
  // success degrade gracefully. With the default retry budget the system
  // must hold >= 0.9 success at 5% drop (ISSUE acceptance bar).
  const std::array<double, 6> rates{0.0, 0.02, 0.05, 0.1, 0.2, 0.3};
  std::array<double, rates.size()> success{};
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RunSummary r =
        run_workload(rates[i], 3, true, /*faulty_publish=*/false, 11);
    success[i] = r.success();
    // Partial results and the outcome=partial counter must agree exactly.
    EXPECT_EQ(r.retrieve_partial,
              static_cast<std::uint64_t>(r.queries - r.full))
        << "rate " << rates[i];
  }

  EXPECT_DOUBLE_EQ(success[0], 1.0);  // no faults -> never partial
  for (std::size_t i = 1; i < rates.size(); ++i) {
    // Monotone non-increasing up to sampling noise.
    EXPECT_LE(success[i], success[i - 1] + 0.02)
        << "success jumped between drop " << rates[i - 1] << " and "
        << rates[i];
  }
  EXPECT_GE(success[2], 0.9) << "success at 5% drop with retries";
}

TEST(FaultInjectionTest, RetriesMeasurablyBeatNoRetriesAtSameDrop) {
  // Same fault seed, same drop rate; the only difference is the retry
  // budget. Retries must recover a measurable amount of success, and the
  // retries-off run must show timeouts but (by construction) zero retries.
  const double drop = 0.05;
  const RunSummary on = run_workload(drop, 3, true, false, 17);
  const RunSummary off = run_workload(drop, 0, true, false, 17);

  EXPECT_GE(on.success(), 0.9);
  EXPECT_LT(off.success(), on.success() - 0.02)
      << "retries on: " << on.success() << ", off: " << off.success();
  EXPECT_GT(on.retries, 0u);
  EXPECT_EQ(off.retries, 0u);
  EXPECT_GT(off.timeouts, 0u);
  // Losing a candidate forces alternate-finger reroutes in both modes.
  EXPECT_GT(off.reroutes, 0u);
}

TEST(FaultInjectionTest, ScheduledCrashFailsOverToReplica) {
  Meteorograph sys = make_system();
  const auto& wl = fault_workload();
  for (vsm::ItemId id = 0; id < wl.vectors.size(); ++id) {
    ASSERT_TRUE(sys.publish(id, wl.vectors[id]).success);
  }
  const vsm::ItemId victim_item = 42;
  const LocateResult before = sys.locate(victim_item, wl.vectors[victim_item]);
  ASSERT_TRUE(before.found);
  ASSERT_FALSE(before.via_replica);
  const overlay::NodeId victim = before.node;

  // Crash the primary's host at message count 0: the plan stalls it
  // immediately and the membership change lands at the next operation
  // boundary, never mid-route.
  sim::FaultPlan plan({}, 3);
  plan.crash_at(0, victim);
  sys.set_fault_hook(&plan);
  (void)sys.retrieve(wl.vectors[0], 1);  // any operation applies the crash
  sys.set_fault_hook(nullptr);

  EXPECT_FALSE(sys.network().is_alive(victim));
  EXPECT_EQ(sys.metrics().counter_value("fault.crashes_applied"), 1u);

  // After overlay repair the item is still served -- by a replica.
  sys.network().repair();
  const LocateResult after = sys.locate(victim_item, wl.vectors[victim_item]);
  EXPECT_TRUE(after.found);
  EXPECT_TRUE(after.via_replica);
  EXPECT_NE(after.node, victim);
}

}  // namespace
}  // namespace meteo::core
