/// Determinism of the observability layer itself: two identically-seeded
/// systems run the same faulted batches at 1 and 4 workers, and both the
/// chrome-trace dump and the metrics dump must be byte-identical. This is
/// the DESIGN.md §8 contract end to end — per-op substream scopes feed
/// per-op span buffers, which the engine commits in op-index order.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "meteorograph/batch.hpp"
#include "obs/export.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "sim/fault_plan.hpp"
#include "workload/trace.hpp"

namespace meteo::core {
namespace {

constexpr std::size_t kItems = 200;
constexpr std::size_t kNodes = 80;
constexpr double kDropRate = 0.05;

struct TracedRun {
  std::vector<vsm::SparseVector> vectors;
  std::optional<sim::FaultPlan> plan;
  std::optional<Meteorograph> sys;
  obs::TraceLog log;
  std::size_t query_ops = 0;
};

void run_traced(TracedRun& run, std::size_t workers) {
  workload::TraceConfig tc;
  tc.num_items = kItems;
  tc.num_keywords = 2000;
  tc.mean_basket = 10.0;
  tc.max_basket = 100;
  const workload::Trace trace = workload::synthesize_trace(tc, 21);
  const auto weights = trace.keyword_weights(workload::WeightScheme::kIdf);
  for (std::size_t i = 0; i < kItems; ++i) {
    run.vectors.push_back(trace.vector_of(i, weights));
  }
  std::vector<vsm::SparseVector> sample;
  for (std::size_t i = 0; i < kItems; i += 29) sample.push_back(run.vectors[i]);

  SystemConfig cfg;
  cfg.node_count = kNodes;
  cfg.dimension = 2000;
  cfg.replicas = 2;
  run.sys.emplace(cfg, sample, 21);
  // The corpus goes in over clean, untraced links so both runs start from
  // one stored state; tracing and message loss cover the query phase.
  for (vsm::ItemId id = 0; id < kItems; ++id) {
    ASSERT_TRUE(run.sys->publish(id, run.vectors[id]).success);
  }

  ASSERT_TRUE(run.sys->set_tracer(&run.log));
  run.plan.emplace(sim::FaultPlanConfig{.drop_rate = kDropRate}, 99);
  ASSERT_TRUE(run.sys->set_fault_hook(&*run.plan));

  BatchEngine engine(*run.sys, BatchOptions{.workers = workers, .seed = 5});
  std::vector<LocateOp> locates;
  std::vector<RetrieveOp> retrieves;
  for (vsm::ItemId id = 0; id < kItems; id += 2) {
    locates.push_back(LocateOp{id, &run.vectors[id], {}});
    retrieves.push_back(RetrieveOp{&run.vectors[id], 5, {}});
  }
  run.query_ops = locates.size() + retrieves.size();
  (void)engine.locate(locates);
  (void)engine.retrieve(retrieves);
}

TEST(TraceDeterminism, DumpsByteIdenticalAcrossWorkerCountsUnderFaults) {
  TracedRun par;
  TracedRun seq;
  run_traced(par, 4);
  run_traced(seq, 1);

  // The network really was lossy and the traces are non-trivial.
  ASSERT_GT(par.plan->dropped(), 0u);
  ASSERT_EQ(par.log.spans().size(), par.query_ops);
  ASSERT_GT(par.sys->metrics().counter_total(obs::names::kFaultRetries), 0u);

  // Span ids are commit order: dense and sequential regardless of which
  // worker ran the op.
  for (std::size_t i = 0; i < par.log.spans().size(); ++i) {
    EXPECT_EQ(par.log.spans()[i].id, i);
  }

  // The acceptance bar: byte-identical dumps at 1 vs 4 workers.
  EXPECT_EQ(obs::trace_to_chrome_json(par.log),
            obs::trace_to_chrome_json(seq.log));
  EXPECT_EQ(obs::metrics_to_json(par.sys->metrics()),
            obs::metrics_to_json(seq.sys->metrics()));
}

TEST(TraceDeterminism, FaultEventsAppearInsideAffectedSpans) {
  TracedRun run;
  run_traced(run, 4);

  // Every retry/timeout/reroute counted in the registry is visible as a
  // typed event inside some span — the trace and the metrics agree.
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t reroutes = 0;
  for (const obs::Span& span : run.log.spans()) {
    for (std::size_t i = 0; i < span.events.size(); ++i) {
      const obs::TraceEvent& event = span.events[i];
      switch (event.kind) {
        case obs::EventKind::kRetry: ++retries; break;
        case obs::EventKind::kTimeout: ++timeouts; break;
        case obs::EventKind::kReroute: ++reroutes; break;
        default: break;
      }
      // Logical timestamps count events within the span.
      EXPECT_EQ(event.ts, static_cast<std::uint64_t>(i));
    }
  }
  const obs::MetricRegistry& metrics = run.sys->metrics();
  EXPECT_EQ(retries, metrics.counter_total(obs::names::kFaultRetries));
  EXPECT_EQ(timeouts, metrics.counter_total(obs::names::kFaultTimeouts));
  EXPECT_EQ(reroutes, metrics.counter_total(obs::names::kFaultReroutes));
}

TEST(TraceDeterminism, DisabledTracerLeavesLogEmpty) {
  TracedRun run;
  run_traced(run, 2);
  ASSERT_FALSE(run.log.empty());

  // Detach and run another batch: nothing new is recorded.
  const std::size_t before = run.log.spans().size();
  ASSERT_TRUE(run.sys->set_tracer(nullptr));
  BatchEngine engine(*run.sys, BatchOptions{.workers = 2, .seed = 6});
  std::vector<LocateOp> locates;
  for (vsm::ItemId id = 0; id < kItems; id += 4) {
    locates.push_back(LocateOp{id, &run.vectors[id], {}});
  }
  (void)engine.locate(locates);
  EXPECT_EQ(run.log.spans().size(), before);
}

}  // namespace
}  // namespace meteo::core
