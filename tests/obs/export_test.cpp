#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace meteo::obs {
namespace {

/// One small registry covering all three series types, with and without
/// labels. Label construction order is deliberately unsorted to prove
/// the exporters see the normalised form.
MetricRegistry golden_registry() {
  MetricRegistry registry;
  registry.counter("fault.retries") += 1;
  registry.counter("op.count", {{"outcome", "ok"}, {"op", "locate"}}) += 2;
  registry.gauge("system.alive_nodes").set(60.0);
  Histogram h =
      registry.histogram("op.route_hops", {1.0, 2.0, 4.0}, {{"op", "locate"}});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);
  return registry;
}

/// One retrieve span with a hop and a retry, built through the recorder
/// exactly as the op path does, plus an epoch-stamped publish span the
/// way the EpochEngine coordinator stamps one.
TraceLog golden_log() {
  TraceLog log;
  SpanRecorder rec;
  rec.open(OpKind::kRetrieve, 3, 42);
  rec.event(EventKind::kRouteHop, 3, 7, 0);
  rec.event(EventKind::kRetry, 7, 9, 1, 0.5);
  rec.finish("ok", log);
  rec.open(OpKind::kPublish, 5, 77);
  rec.set_epoch(4);
  rec.finish("ok", log);
  return log;
}

// The golden strings below are the documented exporter formats
// (docs/OBSERVABILITY.md). A mismatch here means the on-disk format
// changed: update the docs and the goldens together.

TEST(Export, MetricsToJsonGolden) {
  const std::string expected =
      "{\n"
      "\"counters\": [\n"
      "{\"name\":\"fault.retries\",\"labels\":{},\"value\":1},\n"
      "{\"name\":\"op.count\",\"labels\":{\"op\":\"locate\",\"outcome\":\"ok\"},"
      "\"value\":2}\n"
      "],\n"
      "\"gauges\": [\n"
      "{\"name\":\"system.alive_nodes\",\"labels\":{},\"value\":60}\n"
      "],\n"
      "\"histograms\": [\n"
      "{\"name\":\"op.route_hops\",\"labels\":{\"op\":\"locate\"},\"count\":3,"
      "\"sum\":13,\"min\":1,\"max\":9,\"buckets\":[{\"le\":1,\"count\":1},"
      "{\"le\":2,\"count\":0},{\"le\":4,\"count\":1},"
      "{\"le\":\"+inf\",\"count\":1}]}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(metrics_to_json(golden_registry()), expected);
}

TEST(Export, MetricsToCsvGolden) {
  const std::string expected =
      "type,name,labels,field,value\n"
      "counter,fault.retries,,value,1\n"
      "counter,op.count,op=locate;outcome=ok,value,2\n"
      "gauge,system.alive_nodes,,value,60\n"
      "histogram,op.route_hops,op=locate,count,3\n"
      "histogram,op.route_hops,op=locate,sum,13\n"
      "histogram,op.route_hops,op=locate,min,1\n"
      "histogram,op.route_hops,op=locate,max,9\n"
      "histogram,op.route_hops,op=locate,le_1,1\n"
      "histogram,op.route_hops,op=locate,le_2,0\n"
      "histogram,op.route_hops,op=locate,le_4,1\n"
      "histogram,op.route_hops,op=locate,le_inf,1\n";
  EXPECT_EQ(metrics_to_csv(golden_registry()), expected);
}

TEST(Export, TraceToChromeJsonGolden) {
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"retrieve\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":0,\"dur\":4,"
      "\"pid\":1,\"tid\":1,\"args\":{\"span\":0,\"source\":3,\"key\":42,"
      "\"outcome\":\"ok\",\"epoch\":0}},\n"
      "{\"name\":\"route_hop\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\","
      "\"ts\":1,\"pid\":1,\"tid\":1,\"args\":{\"span\":0,\"from\":3,\"to\":7,"
      "\"key\":42,\"detail\":0,\"cost\":0}},\n"
      "{\"name\":\"retry\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\","
      "\"ts\":2,\"pid\":1,\"tid\":1,\"args\":{\"span\":0,\"from\":7,\"to\":9,"
      "\"key\":42,\"detail\":1,\"cost\":0.5}},\n"
      "{\"name\":\"publish\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":4,\"dur\":2,"
      "\"pid\":1,\"tid\":1,\"args\":{\"span\":1,\"source\":5,\"key\":77,"
      "\"outcome\":\"ok\",\"epoch\":4}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(trace_to_chrome_json(golden_log()), expected);
}

TEST(Export, EmptyInputsStillWellFormed) {
  const MetricRegistry registry;
  EXPECT_EQ(metrics_to_json(registry),
            "{\n\"counters\": [\n],\n\"gauges\": [\n],\n\"histograms\": "
            "[\n]\n}\n");
  EXPECT_EQ(metrics_to_csv(registry), "type,name,labels,field,value\n");
  const TraceLog log;
  EXPECT_EQ(trace_to_chrome_json(log),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(Export, FormatDoubleRoundTrips) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1.5), "1.5");
  // %.17g prints enough digits that parsing the text recovers the exact
  // bit pattern (0.1 is not representable, so it gets the long form).
  EXPECT_EQ(format_double(0.1), "0.10000000000000001");
  for (const double value : {0.1, 1.0 / 3.0, 6.9077552789821368}) {
    EXPECT_EQ(std::stod(format_double(value)), value);
  }
}

TEST(Export, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "obs_export_test.txt";
  ASSERT_TRUE(write_file(path, "hello\n"));
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "hello\n");
}

}  // namespace
}  // namespace meteo::obs
