#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace meteo::obs {
namespace {

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  MetricRegistry registry;
  Histogram h = registry.histogram("hops", {1.0, 2.0, 4.0});

  // A value exactly on a bound lands in that bound's bucket ("le"
  // semantics): 1.0 -> le_1, 2.0 -> le_2, 4.0 -> le_4.
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  // Between bounds rounds up to the next bound's bucket.
  h.observe(1.5);
  h.observe(3.0);
  // Above the last bound goes to the implicit overflow bucket.
  h.observe(9.0);

  const HistogramData& data = h.data();
  ASSERT_EQ(data.buckets.size(), 4u);
  EXPECT_EQ(data.buckets[0], 1u);  // le_1: {1.0}
  EXPECT_EQ(data.buckets[1], 2u);  // le_2: {1.5, 2.0}
  EXPECT_EQ(data.buckets[2], 2u);  // le_4: {3.0, 4.0}
  EXPECT_EQ(data.buckets[3], 1u);  // le_inf: {9.0}
  EXPECT_EQ(data.count, 6u);
  EXPECT_DOUBLE_EQ(data.sum, 20.5);
  EXPECT_DOUBLE_EQ(data.min(), 1.0);
  EXPECT_DOUBLE_EQ(data.max(), 9.0);
}

TEST(Histogram, EmptyReportsZeroMinMax) {
  MetricRegistry registry;
  const Histogram h = registry.histogram("hops", {1.0, 2.0});
  EXPECT_EQ(h.data().count, 0u);
  EXPECT_DOUBLE_EQ(h.data().min(), 0.0);
  EXPECT_DOUBLE_EQ(h.data().max(), 0.0);
}

TEST(Histogram, BoundlessHistogramKeepsCountSumMinMax) {
  MetricRegistry registry;
  Histogram h = registry.histogram("raw", {});
  h.observe(3.0);
  h.observe(-1.0);
  ASSERT_EQ(h.data().buckets.size(), 1u);  // just the overflow bucket
  EXPECT_EQ(h.data().buckets[0], 2u);
  EXPECT_DOUBLE_EQ(h.data().min(), -1.0);
  EXPECT_DOUBLE_EQ(h.data().max(), 3.0);
}

TEST(Histogram, PresetBucketsAreStrictlyIncreasing) {
  for (const std::vector<double>& preset :
       {hop_buckets(), cost_buckets(), count_buckets()}) {
    ASSERT_FALSE(preset.empty());
    for (std::size_t i = 1; i < preset.size(); ++i) {
      EXPECT_LT(preset[i - 1], preset[i]);
    }
  }
}

TEST(Registry, LabelsNormalizeToOneSeries) {
  MetricRegistry registry;
  Counter a = registry.counter("op.count", {{"op", "locate"}, {"outcome", "ok"}});
  Counter b = registry.counter("op.count", {{"outcome", "ok"}, {"op", "locate"}});
  ++a;
  ++b;
  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(
      registry.counter_value("op.count", {{"op", "locate"}, {"outcome", "ok"}}),
      2u);
}

TEST(Registry, CounterTotalSumsAcrossLabelSets) {
  MetricRegistry registry;
  registry.counter("op.count", {{"op", "locate"}, {"outcome", "ok"}}) += 3;
  registry.counter("op.count", {{"op", "locate"}, {"outcome", "partial"}}) += 2;
  registry.counter("op.count", {{"op", "publish"}, {"outcome", "ok"}}) += 5;
  registry.counter("op.messages", {{"op", "locate"}}) += 99;

  EXPECT_EQ(registry.counter_total("op.count"), 10u);
  EXPECT_EQ(registry.counter_total("op.count", {{"op", "locate"}}), 5u);
  EXPECT_EQ(registry.counter_total("op.count", {{"outcome", "ok"}}), 8u);
  EXPECT_EQ(registry.counter_total("op.count", {{"op", "withdraw"}}), 0u);
  EXPECT_EQ(registry.counter_total("absent"), 0u);
}

TEST(Registry, PointLookupsReturnZeroForMissingSeries) {
  const MetricRegistry registry;
  EXPECT_EQ(registry.counter_value("nope"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("nope"), 0.0);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
  EXPECT_TRUE(registry.empty());
}

TEST(Registry, GaugeOverwrites) {
  MetricRegistry registry;
  Gauge g = registry.gauge("system.alive_nodes");
  g.set(100.0);
  g.set(97.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("system.alive_nodes"), 97.0);
}

// Regression test for the sim::MetricRegistry footgun this registry
// supersedes: its reset() cleared the maps, so handles held across
// repetitions dangled. Here reset() zeroes cells in place and every
// handle stays usable.
TEST(Registry, HandlesSurviveReset) {
  MetricRegistry registry;
  Counter counter = registry.counter("fault.retries");
  Gauge gauge = registry.gauge("system.alive_nodes");
  Histogram histogram = registry.histogram("op.route_hops", {1.0, 4.0});

  counter += 7;
  gauge.set(50.0);
  histogram.observe(2.0);

  registry.reset();

  // Series survive (keys and bucket layout), values are zero.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.data().count, 0u);
  EXPECT_EQ(histogram.data().upper_bounds.size(), 2u);
  EXPECT_EQ(registry.counters().size(), 1u);

  // The old handles still address the live cells.
  ++counter;
  gauge.set(9.0);
  histogram.observe(8.0);
  EXPECT_EQ(registry.counter_value("fault.retries"), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("system.alive_nodes"), 9.0);
  ASSERT_NE(registry.find_histogram("op.route_hops"), nullptr);
  EXPECT_EQ(registry.find_histogram("op.route_hops")->count, 1u);
  EXPECT_DOUBLE_EQ(registry.find_histogram("op.route_hops")->max(), 8.0);
}

TEST(Registry, RegisteringMoreSeriesKeepsOldHandlesValid) {
  MetricRegistry registry;
  Counter first = registry.counter("a");
  ++first;
  // Map nodes never move: inserting many more series must not disturb
  // the first handle.
  for (int i = 0; i < 100; ++i) {
    registry.counter("series_" + std::to_string(i)) += 1;
  }
  ++first;
  EXPECT_EQ(registry.counter_value("a"), 2u);
}

}  // namespace
}  // namespace meteo::obs
