#!/usr/bin/env bash
# Documentation contract for the observability schema: every quoted string
# in src/obs/names.hpp (metric names, label keys, label values listed in
# the comments) must appear somewhere in docs/OBSERVABILITY.md. Run from
# anywhere; tier-1 (tools/run_tier1.sh) fails when a metric is added to
# the code but not documented.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
names_hpp="${repo_root}/src/obs/names.hpp"
docs_md="${repo_root}/docs/OBSERVABILITY.md"

if [[ ! -f "${names_hpp}" ]]; then
  echo "check_observability_docs: missing ${names_hpp}" >&2
  exit 1
fi
if [[ ! -f "${docs_md}" ]]; then
  echo "check_observability_docs: missing ${docs_md}" >&2
  exit 1
fi

# Every "quoted string" in the header, deduplicated. This covers the
# constant values and the enumerated label values in the doc comments.
mapfile -t names < <(grep -o '"[^"]\+"' "${names_hpp}" | tr -d '"' | sort -u)

if [[ ${#names[@]} -eq 0 ]]; then
  echo "check_observability_docs: extracted no names from ${names_hpp}" >&2
  exit 1
fi

missing=0
for name in "${names[@]}"; do
  if ! grep -qF -- "${name}" "${docs_md}"; then
    echo "check_observability_docs: '${name}' (src/obs/names.hpp) is not" \
         "documented in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done

if [[ ${missing} -ne 0 ]]; then
  echo "check_observability_docs: FAILED" >&2
  exit 1
fi
echo "check_observability_docs: ok (${#names[@]} names documented)"
