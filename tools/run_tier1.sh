#!/usr/bin/env bash
# Tier-1 gate: configure with sanitizers, build, and run the fast test
# tier. This is the pre-merge check — tier2 (whole-system integration
# sweeps) runs in the full `ctest` invocation instead.
#
# Usage: tools/run_tier1.sh [build-dir]
#   build-dir    defaults to build-tier1 (kept separate from the plain
#                `build` tree so sanitizer flags never pollute it)
#
# Environment:
#   METEO_SANITIZE  sanitizer list passed to CMake (default
#                   "address,undefined"; set to "" to disable)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-tier1}"
sanitize="${METEO_SANITIZE-address,undefined}"

cmake -B "$build_dir" -S . \
  -DMETEO_SANITIZE="$sanitize" \
  -DMETEO_BUILD_BENCH=OFF \
  -DMETEO_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$(nproc)"
