#!/usr/bin/env bash
# Tier-1 gate: static analysis, sanitized build, and the fast test tier.
# This is the pre-merge check — tier2 (whole-system integration sweeps)
# runs in the full `ctest` invocation instead.
#
# Usage: tools/run_tier1.sh [build-dir]
#   build-dir    defaults to build-tier1 (kept separate from the plain
#                `build` tree so sanitizer flags never pollute it)
#
# Environment:
#   METEO_SANITIZE  sanitizer list passed to CMake (default
#                   "address,undefined"; set to "" to disable)
#   METEO_TSAN      set to 0 to skip the ThreadSanitizer pass over the
#                   whole tier1 label (default: run it; TSan and ASan
#                   cannot share a build tree, hence the second
#                   ${build_dir}-tsan configuration)
#   METEO_LINT      set to 0 to skip the meteo-lint determinism pass
#   METEO_TIDY      set to 0 to skip clang-tidy (self-skips with a
#                   notice when clang-tidy is not installed)
#   METEO_FMT       set to 0 to skip the clang-format check (self-skips
#                   with a notice when clang-format is not installed)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-tier1}"
sanitize="${METEO_SANITIZE-address,undefined}"
tsan="${METEO_TSAN-1}"
lint="${METEO_LINT-1}"
tidy="${METEO_TIDY-1}"
fmt="${METEO_FMT-1}"

# --- static analysis (DESIGN.md §10) ---------------------------------------
# meteo-lint first: it needs no build tree and catches the determinism
# hazards (unordered iteration, wall clocks, FP reduction order) that
# the dynamic tiers only catch as golden-fingerprint drift.
if [[ "$lint" != 0 ]]; then
  python3 tools/meteo_lint.py --selftest
  python3 tools/meteo_lint.py
else
  echo "meteo-lint: skipped (METEO_LINT=0)"
fi

if [[ "$fmt" != 0 ]]; then
  if command -v clang-format > /dev/null 2>&1; then
    git ls-files -- 'src/*.cpp' 'src/*.hpp' 'tests/*.cpp' 'tests/*.hpp' \
        'bench/*.cpp' 'bench/*.hpp' 'tools/*.cpp' 'examples/*.cpp' \
      | xargs clang-format --dry-run -Werror
  else
    echo "clang-format: not installed, stage skipped (.clang-format is" \
         "still the authoritative style)"
  fi
else
  echo "clang-format: skipped (METEO_FMT=0)"
fi

cmake -B "$build_dir" -S . \
  -DMETEO_SANITIZE="$sanitize" \
  -DMETEO_BUILD_BENCH=OFF \
  -DMETEO_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)"

# clang-tidy wants the compilation database the configure step above
# just exported (CMAKE_EXPORT_COMPILE_COMMANDS in the top-level lists).
if [[ "$tidy" != 0 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    git ls-files -- 'src/*.cpp' \
      | xargs clang-tidy -p "$build_dir" --quiet
  else
    echo "clang-tidy: not installed, stage skipped (.clang-tidy carries" \
         "the curated check set)"
  fi
else
  echo "clang-tidy: skipped (METEO_TIDY=0)"
fi

ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$(nproc)"

# Observability gate: the trace_dump CLI must round-trip its own export
# format, and every metric name in src/obs/names.hpp must be documented
# in docs/OBSERVABILITY.md (docs/OBSERVABILITY.md, DESIGN.md §8).
"$build_dir/tools/trace_dump" --selftest
tools/check_observability_docs.sh

# Benchmark-regression gate: the comparator must prove it can catch an
# injected regression, then the committed throughput numbers must sit
# within 15% of the baseline snapshots (tools/baselines/).
python3 tools/bench_compare.py --selftest
python3 tools/bench_compare.py tools/baselines/BENCH_batch.json BENCH_batch.json
python3 tools/bench_compare.py tools/baselines/BENCH_local_index.json BENCH_local_index.json
python3 tools/bench_compare.py tools/baselines/BENCH_serve.json BENCH_serve.json
python3 tools/bench_compare.py tools/baselines/BENCH_ablation_naming.json BENCH_ablation_naming.json

# ThreadSanitizer over the whole tier1 label (not a hand-picked filter
# list): every new tier-1 test is TSan-covered by default, so a test
# that exercises fresh concurrency cannot silently dodge the pass.
if [[ "$tsan" != 0 ]]; then
  cmake -B "${build_dir}-tsan" -S . \
    -DMETEO_SANITIZE=thread \
    -DMETEO_BUILD_BENCH=OFF \
    -DMETEO_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}-tsan" -j "$(nproc)"
  ctest --test-dir "${build_dir}-tsan" -L tier1 --output-on-failure \
    -j "$(nproc)"
  # The epoch-snapshot suites carry their own label; `-L tier1` above
  # already matches it by substring, but the explicit invocation keeps
  # the concurrency tier TSan-covered even if the label ever stops
  # sharing the tier1 prefix.
  ctest --test-dir "${build_dir}-tsan" -L tier1-concurrency \
    --output-on-failure -j "$(nproc)"
fi
