#!/usr/bin/env bash
# Tier-1 gate: configure with sanitizers, build, and run the fast test
# tier. This is the pre-merge check — tier2 (whole-system integration
# sweeps) runs in the full `ctest` invocation instead.
#
# Usage: tools/run_tier1.sh [build-dir]
#   build-dir    defaults to build-tier1 (kept separate from the plain
#                `build` tree so sanitizer flags never pollute it)
#
# Environment:
#   METEO_SANITIZE  sanitizer list passed to CMake (default
#                   "address,undefined"; set to "" to disable)
#   METEO_TSAN      set to 0 to skip the ThreadSanitizer pass over the
#                   batch-engine determinism tests (default: run it; TSan
#                   and ASan cannot share a build tree, hence the second
#                   ${build_dir}-tsan configuration)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-tier1}"
sanitize="${METEO_SANITIZE-address,undefined}"
tsan="${METEO_TSAN-1}"

cmake -B "$build_dir" -S . \
  -DMETEO_SANITIZE="$sanitize" \
  -DMETEO_BUILD_BENCH=OFF \
  -DMETEO_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$(nproc)"

# Observability gate: the trace_dump CLI must round-trip its own export
# format, and every metric name in src/obs/names.hpp must be documented
# in docs/OBSERVABILITY.md (docs/OBSERVABILITY.md, DESIGN.md §8).
"$build_dir/tools/trace_dump" --selftest
tools/check_observability_docs.sh

# Benchmark-regression gate: the comparator must prove it can catch an
# injected regression, then the committed batch-throughput numbers must
# sit within 15% of the baseline snapshot (tools/baselines/).
python3 tools/bench_compare.py --selftest
python3 tools/bench_compare.py tools/baselines/BENCH_batch.json BENCH_batch.json

if [[ "$tsan" != 0 ]]; then
  cmake -B "${build_dir}-tsan" -S . \
    -DMETEO_SANITIZE=thread \
    -DMETEO_BUILD_BENCH=OFF \
    -DMETEO_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}-tsan" -j "$(nproc)" \
    --target meteo_batch_tests --target meteo_obs_tests \
    --target meteo_vsm_tests
  "${build_dir}-tsan/tests/meteo_batch_tests" \
    --gtest_filter='BatchDeterminism.*:BatchEngine.*'
  "${build_dir}-tsan/tests/meteo_obs_tests" \
    --gtest_filter='TraceDeterminism.*'
  # The inverted index's score scratch is thread_local; concurrent const
  # queries from BatchEngine workers must stay race-free (DESIGN.md §9).
  "${build_dir}-tsan/tests/meteo_vsm_tests" \
    --gtest_filter='LocalIndexOracle.*'
fi
