/// trace_dump — summarizes a Chrome trace_event JSON file produced by the
/// observability layer (obs::trace_to_chrome_json, or any bench run with
/// --trace-out) into per-op tables: span counts by outcome, hop totals,
/// and fault-recovery events (retries, timeouts, backoffs, reroutes).
///
///   trace_dump [--csv] <trace.json>
///   trace_dump --selftest          # in-memory build->export->parse check
///
/// The parser is purpose-built for the exporter's line-oriented output
/// (one event object per line, fields in fixed order); it is not a
/// general JSON reader. --selftest exercises the full round trip without
/// fixture files, which is how tools/run_tier1.sh smokes this binary.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace {

using meteo::TextTable;

/// Extract `"key":"value"` from one line; nullopt when absent.
std::optional<std::string> string_field(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

/// Extract numeric `"key":123` / `"key":1.5` from one line.
std::optional<double> number_field(const std::string& line,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return value;
}

struct OpSummary {
  std::uint64_t spans = 0;
  std::map<std::string, std::uint64_t> outcomes;
  std::uint64_t route_hops = 0;
  std::uint64_t walk_hops = 0;
  std::uint64_t chain_hops = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t fault_verdicts = 0;
  double timeout_cost = 0.0;

  [[nodiscard]] std::uint64_t hops() const {
    return route_hops + walk_hops + chain_hops;
  }
};

using Summary = std::map<std::string, OpSummary>;

/// Parse a trace_to_chrome_json dump. Events reference their owning span
/// by id; spans always precede their events in the dump, so one forward
/// pass resolves every event to an op name.
std::optional<Summary> parse_trace(const std::string& json,
                                   std::string* error) {
  if (json.find("\"traceEvents\"") == std::string::npos) {
    *error = "not a trace_event dump (no \"traceEvents\" key)";
    return std::nullopt;
  }
  Summary summary;
  std::map<std::uint64_t, std::string> span_op;
  std::istringstream in(json);
  for (std::string line; std::getline(in, line);) {
    const auto cat = string_field(line, "cat");
    if (!cat.has_value()) continue;  // header / footer lines
    const auto name = string_field(line, "name");
    const auto span = number_field(line, "span");
    if (!name.has_value() || !span.has_value()) {
      *error = "event line missing name/span: " + line;
      return std::nullopt;
    }
    const auto span_id = static_cast<std::uint64_t>(*span);
    if (*cat == "op") {
      span_op[span_id] = *name;
      OpSummary& op = summary[*name];
      ++op.spans;
      ++op.outcomes[string_field(line, "outcome").value_or("?")];
    } else if (*cat == "event") {
      const auto owner = span_op.find(span_id);
      if (owner == span_op.end()) {
        *error = "event references unknown span " + std::to_string(span_id);
        return std::nullopt;
      }
      OpSummary& op = summary[owner->second];
      if (*name == "route_hop") ++op.route_hops;
      else if (*name == "walk_hop") ++op.walk_hops;
      else if (*name == "chain_hop") ++op.chain_hops;
      else if (*name == "retry") ++op.retries;
      else if (*name == "backoff") ++op.backoffs;
      else if (*name == "reroute") ++op.reroutes;
      else if (*name == "fault_verdict") ++op.fault_verdicts;
      else if (*name == "timeout") {
        ++op.timeouts;
        op.timeout_cost += number_field(line, "cost").value_or(0.0);
      }
    }
  }
  return summary;
}

std::uint64_t outcome_count(const OpSummary& op, const char* outcome) {
  const auto it = op.outcomes.find(outcome);
  return it == op.outcomes.end() ? 0 : it->second;
}

std::string u64(std::uint64_t v) {
  return TextTable::integer(static_cast<long long>(v));
}

void print_summary(const Summary& summary, bool csv) {
  TextTable spans({"op", "spans", "ok", "partial", "degraded", "blocked",
                   "failed", "route hops", "walk hops", "chain hops",
                   "mean hops/span"});
  TextTable faults({"op", "retries", "timeouts", "backoffs", "reroutes",
                    "fault verdicts", "timeout cost (s)"});
  bool any_faults = false;
  for (const auto& [op_name, op] : summary) {
    spans.add_row(
        {op_name, u64(op.spans), u64(outcome_count(op, "ok")),
         u64(outcome_count(op, "partial")), u64(outcome_count(op, "degraded")),
         u64(outcome_count(op, "blocked")), u64(outcome_count(op, "failed")),
         u64(op.route_hops), u64(op.walk_hops), u64(op.chain_hops),
         TextTable::num(op.spans == 0 ? 0.0
                                      : static_cast<double>(op.hops()) /
                                            static_cast<double>(op.spans),
                        4)});
    if (op.retries + op.timeouts + op.backoffs + op.reroutes +
            op.fault_verdicts >
        0) {
      any_faults = true;
    }
    faults.add_row({op_name, u64(op.retries), u64(op.timeouts),
                    u64(op.backoffs), u64(op.reroutes), u64(op.fault_verdicts),
                    TextTable::num(op.timeout_cost, 6)});
  }
  if (csv) {
    spans.print_csv(std::cout);
  } else {
    spans.print(std::cout);
  }
  if (any_faults) {
    std::cout << '\n';
    if (csv) {
      faults.print_csv(std::cout);
    } else {
      faults.print(std::cout);
    }
  }
}

#define SELFTEST_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "trace_dump selftest: FAILED at %s:%d: %s\n",  \
                   __FILE__, __LINE__, #cond);                            \
      return 1;                                                           \
    }                                                                     \
  } while (false)

/// Build a log through the same SpanRecorder the op path uses, export it,
/// parse the export, and check the summary — the whole chain this tool
/// depends on, with no fixture files.
int run_selftest() {
  namespace obs = meteo::obs;
  obs::TraceLog log;
  obs::SpanRecorder rec;

  rec.open(obs::OpKind::kLocate, 1, 10);
  rec.event(obs::EventKind::kRouteHop, 1, 2);
  rec.event(obs::EventKind::kRouteHop, 2, 3);
  rec.event(obs::EventKind::kFaultVerdict, 2, 3, 1);
  rec.event(obs::EventKind::kTimeout, 2, 3, 0, 2.0);
  rec.event(obs::EventKind::kRetry, 2, 3, 1);
  rec.event(obs::EventKind::kWalkHop, 3, 4);
  rec.finish("ok", log);

  rec.open(obs::OpKind::kPublish, 5, 77);
  rec.event(obs::EventKind::kChainHop, 5, 6);
  rec.finish("degraded", log);

  std::string error;
  const auto summary = parse_trace(obs::trace_to_chrome_json(log), &error);
  SELFTEST_CHECK(summary.has_value());
  SELFTEST_CHECK(summary->size() == 2);

  const OpSummary& locate = summary->at("locate");
  SELFTEST_CHECK(locate.spans == 1);
  SELFTEST_CHECK(outcome_count(locate, "ok") == 1);
  SELFTEST_CHECK(locate.route_hops == 2);
  SELFTEST_CHECK(locate.walk_hops == 1);
  SELFTEST_CHECK(locate.fault_verdicts == 1);
  SELFTEST_CHECK(locate.timeouts == 1);
  SELFTEST_CHECK(locate.timeout_cost == 2.0);
  SELFTEST_CHECK(locate.retries == 1);

  const OpSummary& publish = summary->at("publish");
  SELFTEST_CHECK(publish.spans == 1);
  SELFTEST_CHECK(outcome_count(publish, "degraded") == 1);
  SELFTEST_CHECK(publish.chain_hops == 1);
  SELFTEST_CHECK(publish.hops() == 1);

  print_summary(*summary, /*csv=*/false);
  std::printf("trace_dump selftest: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  meteo::CliParser cli;
  cli.add_bool("csv", false, "emit CSV instead of aligned tables");
  cli.add_bool("selftest", false,
               "run the in-memory export/parse round trip and exit");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.get_bool("selftest")) return run_selftest();
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: trace_dump [--csv] <trace.json>\n");
    return 1;
  }

  const std::string path = cli.positional().front();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_dump: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::string error;
  const auto summary = parse_trace(buffer.str(), &error);
  if (!summary.has_value()) {
    std::fprintf(stderr, "trace_dump: %s\n", error.c_str());
    return 1;
  }
  print_summary(*summary, cli.get_bool("csv"));
  return 0;
}
