#!/usr/bin/env python3
"""Compare two benchmark JSON files and fail on throughput regressions.

Supports both benchmark output formats this repo emits:

  * the harness format (BENCH_batch.json): a top-level ``results`` array of
    ``{"bench": ..., "workers": ..., "ops_per_second": ...}`` rows, keyed by
    ``bench/workers``;
  * google-benchmark JSON (BENCH_local_index.json): a top-level
    ``benchmarks`` array keyed by ``name``, using ``items_per_second`` when
    present and falling back to ``1 / real_time`` otherwise.

A row regresses when its ops/s drops more than ``--threshold`` (default
15%) below the baseline. Rows present in only one file are reported but
never fail the comparison (benchmarks come and go across PRs).

Exit status: 0 = no regression, 1 = at least one regression (or, with
--selftest, a self-test failure), 2 = usage/parse error.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
  tools/bench_compare.py --selftest
"""

from __future__ import annotations

import argparse
import json
import sys


def load_rows(path):
    """Return {key: ops_per_second} for either supported format."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return extract_rows(data, path)


def extract_rows(data, label):
    rows = {}
    if "results" in data:  # harness format
        for row in data["results"]:
            key = f"{row['bench']}/workers:{row['workers']}"
            rows[key] = float(row["ops_per_second"])
    elif "benchmarks" in data:  # google-benchmark format
        for row in data["benchmarks"]:
            if row.get("run_type") == "aggregate":
                continue
            if "items_per_second" in row:
                ops = float(row["items_per_second"])
            else:
                # real_time is per-iteration in row["time_unit"]; any
                # monotone transform works for a ratio test.
                scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}[
                    row.get("time_unit", "ns")
                ]
                ops = scale / float(row["real_time"])
            rows[row["name"]] = ops
    else:
        raise ValueError(f"{label}: neither 'results' nor 'benchmarks' found")
    if not rows:
        raise ValueError(f"{label}: no benchmark rows")
    return rows


def compare(baseline, current, threshold):
    """Return (regressions, report_lines) for two {key: ops/s} maps."""
    regressions = []
    lines = []
    for key in sorted(baseline):
        if key not in current:
            lines.append(f"  [gone]    {key} (baseline only)")
            continue
        base, cur = baseline[key], current[key]
        ratio = cur / base if base > 0 else float("inf")
        mark = "ok"
        if ratio < 1.0 - threshold:
            mark = "REGRESSED"
            regressions.append(key)
        lines.append(
            f"  [{mark:>9}] {key}: {base:.4g} -> {cur:.4g} ops/s "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
    for key in sorted(set(current) - set(baseline)):
        lines.append(f"  [new]     {key} (no baseline)")
    return regressions, lines


def selftest():
    """Prove the comparator fails on an injected regression."""
    baseline = {
        "results": [
            {"bench": "a", "workers": 1, "ops_per_second": 100.0},
            {"bench": "b", "workers": 1, "ops_per_second": 50.0},
        ]
    }
    # 30% drop on "a" must regress at the 15% threshold; a 10% drop on "b"
    # must not; google-benchmark rows must parse through both ops fields.
    injected = {
        "results": [
            {"bench": "a", "workers": 1, "ops_per_second": 70.0},
            {"bench": "b", "workers": 1, "ops_per_second": 45.0},
        ]
    }
    regressions, _ = compare(
        extract_rows(baseline, "base"), extract_rows(injected, "cur"), 0.15
    )
    if regressions != ["a/workers:1"]:
        print(f"selftest FAILED: expected ['a/workers:1'], got {regressions}")
        return 1

    gb_base = {
        "benchmarks": [
            {"name": "BM_X/8", "items_per_second": 1000.0},
            {"name": "BM_Y/8", "real_time": 100.0, "time_unit": "ns"},
        ]
    }
    gb_cur = {
        "benchmarks": [
            {"name": "BM_X/8", "items_per_second": 990.0},
            {"name": "BM_Y/8", "real_time": 200.0, "time_unit": "ns"},  # 2x slower
        ]
    }
    regressions, _ = compare(
        extract_rows(gb_base, "base"), extract_rows(gb_cur, "cur"), 0.15
    )
    if regressions != ["BM_Y/8"]:
        print(f"selftest FAILED: expected ['BM_Y/8'], got {regressions}")
        return 1

    # Identical files must pass.
    regressions, _ = compare(
        extract_rows(baseline, "base"), extract_rows(baseline, "cur"), 0.15
    )
    if regressions:
        print(f"selftest FAILED: identical inputs regressed: {regressions}")
        return 1
    print("bench_compare selftest: ok (injected 50% regression detected)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline JSON")
    parser.add_argument("current", nargs="?", help="current JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max allowed fractional ops/s drop (default 0.15)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="verify the comparator flags an injected regression",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.baseline is None or args.current is None:
        parser.print_usage()
        return 2

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    regressions, lines = compare(baseline, current, args.threshold)
    print(f"bench_compare: {args.baseline} vs {args.current} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
