/// trace_gen — synthesizes a Table-1-calibrated keyword-item workload and
/// writes it as a World Cup '98-format binary access log, so any tool that
/// consumes the real trace (including this repo's trace_stats and the
/// worldcup reader) can run on synthetic data.
///
///   trace_gen --items 60000 --out /tmp/synthetic.log

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "workload/trace.hpp"
#include "workload/worldcup.hpp"

int main(int argc, char** argv) {
  using namespace meteo;
  CliParser cli;
  cli.add_flag("items", "60000", "number of clients (items)");
  cli.add_flag("keywords", "89000", "number of web objects (keywords)");
  cli.add_flag("seed", "1", "RNG seed");
  cli.add_flag("out", "worldcup_synthetic.log", "output file (binary)");
  if (!cli.parse(argc, argv)) return 1;

  workload::TraceConfig cfg;
  cfg.num_items = static_cast<std::size_t>(cli.get_int("items"));
  cfg.num_keywords = static_cast<std::size_t>(cli.get_int("keywords"));
  cfg.max_basket = std::min(cfg.max_basket, cfg.num_keywords);
  const workload::Trace trace = workload::synthesize_trace(
      cfg, static_cast<std::uint64_t>(cli.get_int("seed")));

  // One request record per (client, object) incidence. Timestamps walk
  // forward one second per record, as the real log's do within a day.
  std::vector<workload::WorldCupRecord> records;
  records.reserve(trace.stats().total_incidences);
  std::uint32_t timestamp = 901'238'400;  // 1998-07-24 00:00 UTC
  for (std::size_t client = 0; client < trace.item_count(); ++client) {
    for (const vsm::KeywordId object : trace.keywords_of(client)) {
      workload::WorldCupRecord r;
      r.timestamp = timestamp++;
      r.client_id = static_cast<std::uint32_t>(client + 1);
      r.object_id = object;
      r.size = 1024;
      r.method = 1;   // GET
      r.status = 34;  // HTTP/1.0, 200
      r.type = 2;     // HTML
      r.server = 1;
      records.push_back(r);
    }
  }

  const std::string path = cli.get("out");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace_gen: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  workload::write_worldcup_log(out, records);
  std::printf("wrote %zu records (%zu clients, %zu objects) to %s\n",
              records.size(), trace.item_count(),
              static_cast<std::size_t>(trace.stats().keywords_used),
              path.c_str());
  return 0;
}
