#!/usr/bin/env python3
"""meteo-lint: static enforcement of Meteorograph's determinism contract.

The repo's headline guarantee — publish/search results, traces, and
metric dumps that are bit-identical at any BatchEngine worker count
(DESIGN.md §7–§9) — is enforced dynamically by oracle tests and golden
fingerprints. This linter enforces the same contract *statically*, at
review time, via a small rule catalog (DESIGN.md §10):

  R1  no iteration over std::unordered_map/std::unordered_set in core
      code unless the site carries a
      `// meteo-lint: order-insensitive(<reason>)` annotation.
      Hash-order is not part of any contract; iterating it into a
      result, trace, or accumulation is the canonical nondeterminism
      bug class.
  R2  no wall-clock or ambient randomness in core code:
      std::random_device, rand()/srand(), time()/clock(),
      std::chrono::{system,steady,high_resolution}_clock. Core code
      draws from the seeded splitmix64/xoshiro substreams
      (src/common/rng.hpp). Paths under obs/, bench/, tools/ and
      examples/ are allowlisted (they time real executions);
      elsewhere a `// meteo-lint: real-time(<reason>)` annotation is
      required.
  R3  no floating-point accumulation with unspecified order:
      std::reduce / std::transform_reduce / std::execution::par*, and
      std::accumulate over an unordered container. FP addition order
      is part of the bit-identical contract. Also bans -ffast-math in
      any CMake file. Suppress with `// meteo-lint: fp-order(<reason>)`.
  R4  no thread_local, and no mutable static state, in
      src/meteorograph/ or src/vsm/ without a
      `// meteo-lint: scoped(<reason>)` annotation documenting why the
      state cannot leak across ops/batches.
  R5  no volatile (it is not synchronization), and no
      std::memory_order_relaxed outside annotated metric totals —
      suppress with `// meteo-lint: relaxed(<reason>)`.
  R6  no direct vsm::absolute_angle* calls in src/meteorograph/
      outside the naming layer (naming.{hpp,cpp} and naming/). The
      vector→key mapping is owned by core::NamingStrategy
      (DESIGN.md §12); an op that names items itself bypasses the
      configured strategy and silently splits the key space between
      two naming schemes. Suppress with
      `// meteo-lint: naming-seam(<reason>)`.

Every suppression requires a non-empty reason; `--list-suppressions`
prints the audited inventory. A suppression that matches no violation
is itself an error (stale suppressions rot).

Engines: with python-libclang available the checker walks the clang
AST for R1/R4 (exact types, no name heuristics); otherwise a
token-level engine covers all rules. `--engine auto` (default) picks
libclang when importable, falling back silently — rule semantics and
fixtures are identical either way. R2/R3/R5 are keyword-shaped and
always run on tokens.

Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

RULES = {
    "R1": ("order-insensitive", "iteration over unordered container"),
    "R2": ("real-time", "wall-clock / ambient randomness in core code"),
    "R3": ("fp-order", "floating-point accumulation with unspecified order"),
    "R4": ("scoped", "thread_local / mutable static state in core code"),
    "R5": ("relaxed", "volatile-as-sync / relaxed atomic ordering"),
    "R6": ("naming-seam",
           "direct absolute-angle naming outside the naming layer"),
}
TAG_TO_RULE = {tag: rule for rule, (tag, _) in RULES.items()}

# Directories (relative to repo root) where each restriction applies.
# R2's allowlist: code that times or seeds from the real world.
R2_ALLOW_PREFIXES = ("src/obs/", "bench/", "tools/", "examples/")
# R4 applies where per-op state determinism is contractual. The prefix
# covers the whole facade layer including the epoch/serving subsystem
# (src/meteorograph/epoch.*, src/meteorograph/server.*): a pinned epoch
# cached in thread_local or static state would make a read's snapshot
# depend on worker scheduling, which is exactly what DESIGN.md §11
# forbids — the epoch travels in per-op ReadView values instead.
R4_PREFIXES = ("src/meteorograph/", "src/vsm/")
# R6: the facade layer must name items through core::NamingStrategy; only
# the naming layer itself may touch the vsm::absolute_angle* kernels.
R6_PREFIX = "src/meteorograph/"
R6_ALLOW = ("src/meteorograph/naming.hpp", "src/meteorograph/naming.cpp")
R6_ALLOW_PREFIX = "src/meteorograph/naming/"

SOURCE_EXT = {".cpp", ".hpp", ".cc", ".h", ".cxx", ".hxx"}

SUPPRESSION_RE = re.compile(r"//\s*meteo-lint:\s*(.*)$")
TAG_RE = re.compile(r"([a-z-]+)\(([^()]*)\)")

R2_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
]

R3_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*reduce\b"), "std::reduce"),
    (re.compile(r"\bstd\s*::\s*transform_reduce\b"), "std::transform_reduce"),
    (re.compile(r"\bstd\s*::\s*execution\s*::\s*par"), "std::execution::par*"),
]

R6_PATTERN = re.compile(r"\babsolute_angle\w*\b")

R5_VOLATILE_RE = re.compile(r"(?<![\w])volatile(?![\w])")
R5_RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
# `name` of a variable declared with an unordered type: the identifier that
# follows the closing template bracket(s), e.g.
#   std::unordered_map<K, V> seen;
#   std::unordered_map<K, std::vector<V>> harvested_;
DECL_NAME_RE = re.compile(r">\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)")
FOR_HEAD_RE = re.compile(r"\bfor\s*\(")
# Only `begin` starts a walk; a lone `.end()` is the find()-sentinel idiom
# and carries no ordering dependence.
ITER_BEGIN_RE = re.compile(r"([A-Za-z_]\w*(?:\.|->))?\s*([A-Za-z_]\w*)\s*"
                           r"(?:\.|->)\s*c?r?begin\s*\(")
ACCUMULATE_RE = re.compile(r"\bstd\s*::\s*accumulate\s*\(([^;]*)")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?static\s+(?!assert\b)(.*)$")
FAST_MATH_RE = re.compile(r"-f+fast-math|\bffast-math\b")


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        tag, _ = RULES[self.rule]
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message} "
                f"(suppress with `// meteo-lint: {tag}(<reason>)`)")


@dataclass
class Suppression:
    path: str
    line: int
    tag: str
    reason: str
    used: bool = False


@dataclass
class FileReport:
    violations: list[Violation] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Lexing helpers (token engine)
# --------------------------------------------------------------------------

def split_code_comment(line: str, in_block: bool) -> tuple[str, str, bool]:
    """Splits one physical line into (code, line-comment, in_block_after).

    String and char literals are blanked out of the code part so banned
    identifiers inside literals never fire. Block comments are blanked
    too; only the trailing `//` comment is returned (that is where
    meteo-lint annotations live).
    """
    code: list[str] = []
    comment = ""
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block:
            if c == "*" and nxt == "/":
                in_block = False
                i += 2
            else:
                i += 1
            continue
        if c == "/" and nxt == "/":
            comment = line[i:]
            break
        if c == "/" and nxt == "*":
            in_block = True
            i += 2
            continue
        if c == '"' or c == "'":
            quote = c
            code.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            code.append(quote)
            continue
        code.append(c)
        i += 1
    return "".join(code), comment, in_block


@dataclass
class Line:
    raw: str
    code: str
    comment: str


def lex_file(text: str) -> list[Line]:
    lines: list[Line] = []
    in_block = False
    for raw in text.splitlines():
        code, comment, in_block = split_code_comment(raw, in_block)
        lines.append(Line(raw=raw, code=code, comment=comment))
    return lines


def parse_suppressions(path: str, lines: list[Line],
                       report: FileReport) -> None:
    for idx, ln in enumerate(lines):
        m = SUPPRESSION_RE.search(ln.comment)
        if not m:
            continue
        body = m.group(1).strip()
        tags = TAG_RE.findall(body)
        if not tags:
            report.errors.append(
                f"{path}:{idx + 1}: malformed meteo-lint annotation "
                f"(expected `tag(reason)`): {body!r}")
            continue
        # Anything left over after removing well-formed tag(reason) pairs
        # is a grammar error (e.g. a bare tag with no reason).
        leftover = TAG_RE.sub("", body).replace(",", "").strip()
        if leftover:
            report.errors.append(
                f"{path}:{idx + 1}: malformed meteo-lint annotation near "
                f"{leftover!r} (grammar: tag(reason)[, tag(reason)...])")
        for tag, reason in tags:
            if tag not in TAG_TO_RULE:
                report.errors.append(
                    f"{path}:{idx + 1}: unknown meteo-lint tag {tag!r} "
                    f"(known: {', '.join(sorted(TAG_TO_RULE))})")
                continue
            if not reason.strip():
                report.errors.append(
                    f"{path}:{idx + 1}: meteo-lint suppression "
                    f"`{tag}` requires a non-empty reason")
                continue
            report.suppressions.append(
                Suppression(path=path, line=idx + 1, tag=tag,
                            reason=reason.strip()))


def find_suppression(report: FileReport, tag: str, line: int) -> Suppression | None:
    """A suppression annotates the same line or the line directly above.

    Same-line wins, and unused entries win over used ones, so stacked
    per-line annotations on consecutive violations each get claimed by
    their own line instead of one trailing comment absorbing its
    neighbor's violation.
    """
    candidates = [s for s in report.suppressions
                  if s.tag == tag and s.line in (line, line - 1)]
    candidates.sort(key=lambda s: (s.line != line, s.used))
    return candidates[0] if candidates else None


def add_violation(report: FileReport, path: str, line: int, rule: str,
                  message: str) -> None:
    tag, _ = RULES[rule]
    sup = find_suppression(report, tag, line)
    if sup is not None:
        sup.used = True
        return
    if any(v.path == path and v.line == line and v.rule == rule
           for v in report.violations):
        return
    report.violations.append(Violation(path, line, rule, message))


def _balanced_paren(text: str, open_at: int) -> str | None:
    """The content of the paren group opening at text[open_at] == '('."""
    depth = 0
    for i in range(open_at, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_at + 1:i]
    return None


def _strip_paren_groups(expr: str) -> str:
    """Removes every ( ... ) group (and its contents) from expr."""
    out: list[str] = []
    depth = 0
    for c in expr:
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(c)
    return "".join(out)


def _range_for_range_expr(head: str) -> str | None:
    """For a range-for header, the range expression after the top-level
    ':'; None for classic for(;;) loops. `::` is not a separator."""
    depth = 0
    i = 0
    while i < len(head):
        c = head[i]
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            if not (c == ">" and head[i - 1:i] == "-"):  # `->` is not a close
                depth -= 1
        elif depth == 0:
            if c == ";":
                return None
            if c == ":":
                if head[i + 1:i + 2] == ":" or head[i - 1:i] == ":":
                    i += 2 if head[i + 1:i + 2] == ":" else 1
                    continue
                return head[i + 1:]
        i += 1
    return None


# --------------------------------------------------------------------------
# Token engine
# --------------------------------------------------------------------------

class TokenEngine:
    """All five rules on lexed lines; R1/R4 use name/shape heuristics.

    The unordered-name set is built globally across the scanned file set
    so a member declared in a header fires on iteration in the .cpp.
    """

    name = "token"

    def __init__(self) -> None:
        # Names visible across the scanned set: declared in a header
        # (class members live there) or following the `member_` naming
        # convention. Names declared in a .cpp stay scoped to that file
        # so an unrelated local of the same name elsewhere never fires.
        self.global_names: set[str] = set()
        self.local_names: dict[str, set[str]] = {}
        self._current_file: str = ""

    def collect(self, path: str, lines: list[Line]) -> None:
        is_header = os.path.splitext(path)[1] in (".hpp", ".h", ".hxx")
        local = self.local_names.setdefault(path, set())
        for ln in lines:
            if not UNORDERED_DECL_RE.search(ln.code):
                continue
            for m in DECL_NAME_RE.finditer(ln.code):
                ident = m.group(1)
                if ident in ("const", "static", "return"):
                    continue
                if is_header or ident.endswith("_"):
                    self.global_names.add(ident)
                else:
                    local.add(ident)

    def _known_unordered(self, ident: str) -> bool:
        return ident in self.global_names or \
            ident in self.local_names.get(self._current_file, set())

    # -- R1 ----------------------------------------------------------------
    def check_r1(self, path: str, lines: list[Line],
                 report: FileReport) -> None:
        self._current_file = path
        # Loop headers can span lines; scan a joined view with a line map.
        joined: list[str] = []
        starts: list[int] = []
        for idx, ln in enumerate(lines):
            starts.append(sum(len(j) + 1 for j in joined))
            joined.append(ln.code)
        blob = "\n".join(joined)

        def line_of(offset: int) -> int:
            lo, hi = 0, len(starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if starts[mid] <= offset:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1

        for m in FOR_HEAD_RE.finditer(blob):
            head = _balanced_paren(blob, m.end() - 1)
            if head is None:
                continue
            range_expr = _range_for_range_expr(head)
            if range_expr is not None and self._mentions_unordered(range_expr):
                add_violation(
                    report, path, line_of(m.start()), "R1",
                    f"range-for over unordered container "
                    f"`{range_expr.strip()}` — hash order is not "
                    f"deterministic across libraries or runs")
        for idx, ln in enumerate(lines):
            for m in ITER_BEGIN_RE.finditer(ln.code):
                obj = m.group(2)
                if self._known_unordered(obj):
                    add_violation(
                        report, path, idx + 1, "R1",
                        f"iterator walk over unordered container `{obj}`")

    def _mentions_unordered(self, expr: str) -> bool:
        if UNORDERED_DECL_RE.search(expr):
            return True
        # Only identifiers at the top level of the range expression count:
        # in `closest_nodes(key, config_.replicas)` the call's *result* is
        # iterated, so names inside its argument list say nothing about
        # the iterated type.
        top = _strip_paren_groups(expr)
        return any(self._known_unordered(name)
                   for name in re.findall(r"[A-Za-z_]\w*", top))

    # -- R4 ----------------------------------------------------------------
    def check_r4(self, path: str, lines: list[Line],
                 report: FileReport) -> None:
        for idx, ln in enumerate(lines):
            code = ln.code
            if THREAD_LOCAL_RE.search(code):
                add_violation(
                    report, path, idx + 1, "R4",
                    "thread_local state — worker-count-dependent unless "
                    "scoped to one op (DESIGN.md §7)")
                continue
            m = STATIC_DECL_RE.match(code)
            if m and self._is_mutable_static(m.group(1)):
                add_violation(
                    report, path, idx + 1, "R4",
                    "mutable static state — shared across ops and batches")

    @staticmethod
    def _is_mutable_static(rest: str) -> bool:
        rest = rest.strip()
        if rest.startswith(("const ", "constexpr ", "const&", "constinit ")):
            return False
        # A '(' before any '=', '{', or ';' means a function declaration
        # (or a direct-init ctor call — direct-init statics are rare in
        # this codebase; declare them with `= Foo{...}` or annotate).
        stop = len(rest)
        for ch in ("=", "{", ";"):
            p = rest.find(ch)
            if p != -1:
                stop = min(stop, p)
        paren = rest.find("(")
        if paren != -1 and paren < stop:
            return False
        # `static_cast<...>` etc. never match STATIC_DECL_RE (no space),
        # and `static class-key` forward declarations are not state.
        return bool(re.match(r"[A-Za-z_:]", rest))


# --------------------------------------------------------------------------
# libclang engine (R1/R4 on the AST; falls back to tokens on any failure)
# --------------------------------------------------------------------------

class ClangEngine(TokenEngine):
    """AST-exact R1/R4; inherits collect() so fallback stays warm.

    Uses python-libclang when importable. Parsing failures on any file
    degrade that file to the token checks rather than aborting the run.
    """

    name = "clang"

    def __init__(self, compile_args: list[str] | None = None) -> None:
        super().__init__()
        import clang.cindex  # noqa: F401 — raises ImportError when absent
        self._cindex = sys.modules["clang.cindex"]
        self._args = compile_args or ["-std=c++20", "-xc++"]

    def _is_unordered_type(self, type_obj) -> bool:
        spelling = type_obj.get_canonical().spelling
        return "unordered_map" in spelling or "unordered_set" in spelling \
            or "unordered_multimap" in spelling \
            or "unordered_multiset" in spelling

    def check_r1(self, path: str, lines: list[Line],
                 report: FileReport) -> None:
        ci = self._cindex
        try:
            tu = ci.Index.create().parse(path, args=self._args)
        except Exception:  # parse failure → token fallback for this file
            super().check_r1(path, lines, report)
            return

        def walk(node):
            if node.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                # The range initializer is the last non-body child's expr;
                # probe every child's type — exact, no name heuristics.
                for child in children[:-1]:
                    if child.type and self._is_unordered_type(child.type):
                        add_violation(
                            report, path, node.location.line, "R1",
                            "range-for over unordered container "
                            f"of type `{child.type.spelling}`")
                        break
            walk_children(node)

        def walk_children(node):
            for child in node.get_children():
                if child.location.file and \
                        os.path.samefile(str(child.location.file), path):
                    walk(child)

        try:
            walk_children(tu.cursor)
        except Exception:
            super().check_r1(path, lines, report)

    def check_r4(self, path: str, lines: list[Line],
                 report: FileReport) -> None:
        ci = self._cindex
        try:
            tu = ci.Index.create().parse(path, args=self._args)
        except Exception:
            super().check_r4(path, lines, report)
            return

        def walk(node):
            if node.kind == ci.CursorKind.VAR_DECL:
                storage = node.storage_class
                tls = node.tls_kind != ci.TLSKind.NONE \
                    if hasattr(node, "tls_kind") else False
                if tls:
                    add_violation(report, path, node.location.line, "R4",
                                  "thread_local state")
                elif storage == ci.StorageClass.STATIC and \
                        not node.type.is_const_qualified():
                    add_violation(report, path, node.location.line, "R4",
                                  "mutable static state")
            for child in node.get_children():
                if child.location.file and \
                        os.path.samefile(str(child.location.file), path):
                    walk(child)

        try:
            walk(tu.cursor)
        except Exception:
            super().check_r4(path, lines, report)


# --------------------------------------------------------------------------
# Keyword rules (engine-independent)
# --------------------------------------------------------------------------

def check_r2(path: str, rel: str, lines: list[Line],
             report: FileReport) -> None:
    if rel.replace(os.sep, "/").startswith(R2_ALLOW_PREFIXES):
        return
    for idx, ln in enumerate(lines):
        for pattern, what in R2_PATTERNS:
            if pattern.search(ln.code):
                add_violation(
                    report, path, idx + 1, "R2",
                    f"{what} in core code — draw from the seeded "
                    f"splitmix64/xoshiro substreams (src/common/rng.hpp)")


def check_r3(path: str, lines: list[Line], report: FileReport,
             engine: "TokenEngine") -> None:
    engine._current_file = path
    for idx, ln in enumerate(lines):
        for pattern, what in R3_PATTERNS:
            if pattern.search(ln.code):
                add_violation(
                    report, path, idx + 1, "R3",
                    f"{what} — FP reduction order is part of the "
                    f"bit-identical contract")
        m = ACCUMULATE_RE.search(ln.code)
        if m:
            args = m.group(1)
            over_unordered = any(
                engine._known_unordered(name)
                for name in re.findall(r"[A-Za-z_]\w*", args))
            if over_unordered:
                add_violation(
                    report, path, idx + 1, "R3",
                    "std::accumulate over an unordered container — "
                    "accumulation visits hash order")


def check_r5(path: str, lines: list[Line], report: FileReport) -> None:
    for idx, ln in enumerate(lines):
        if R5_VOLATILE_RE.search(ln.code):
            add_violation(
                report, path, idx + 1, "R5",
                "volatile is not synchronization — use std::atomic with "
                "explicit ordering or a mutex")
        if R5_RELAXED_RE.search(ln.code):
            add_violation(
                report, path, idx + 1, "R5",
                "memory_order_relaxed — permitted only for metric totals "
                "whose value is read after a join/commit barrier")


def check_r6(path: str, rel: str, lines: list[Line],
             report: FileReport) -> None:
    if not rel.startswith(R6_PREFIX):
        return
    if rel in R6_ALLOW or rel.startswith(R6_ALLOW_PREFIX):
        return
    for idx, ln in enumerate(lines):
        m = R6_PATTERN.search(ln.code)
        if m:
            add_violation(
                report, path, idx + 1, "R6",
                f"`{m.group(0)}` outside the naming layer — map vectors to "
                f"keys through core::NamingStrategy (primary_key / "
                f"directory_key), never the angle kernel directly")


def check_cmake(path: str, rel: str, report: FileReport) -> None:
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            for idx, raw in enumerate(fh):
                code = raw.split("#", 1)[0]
                if FAST_MATH_RE.search(code):
                    report.violations.append(Violation(
                        path, idx + 1, "R3",
                        "-ffast-math breaks the bit-identical FP contract"))
    except OSError as exc:
        report.errors.append(f"{path}: {exc}")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def iter_source_files(roots: list[str]) -> list[str]:
    out: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and not d.startswith("build"))
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in SOURCE_EXT:
                    out.append(os.path.join(dirpath, fn))
    return out


def iter_cmake_files(repo_root: str) -> list[str]:
    out: list[str] = []
    for dirpath, dirnames, filenames in os.walk(repo_root):
        dirnames[:] = sorted(
            d for d in dirnames
            if not d.startswith(".") and not d.startswith("build")
            and d != "Testing")
        for fn in sorted(filenames):
            if fn == "CMakeLists.txt" or fn.endswith(".cmake"):
                out.append(os.path.join(dirpath, fn))
    return out


def make_engine(kind: str) -> TokenEngine:
    if kind in ("auto", "clang"):
        try:
            return ClangEngine()
        except Exception:
            if kind == "clang":
                raise SystemExit(
                    "meteo-lint: --engine clang requested but python "
                    "libclang is unavailable (pip package `libclang`)")
    return TokenEngine()


def scan(paths: list[str], repo_root: str, engine: TokenEngine,
         pretend_rel: str | None = None,
         check_cmake_files: bool = True) -> FileReport:
    report = FileReport()
    file_lines: dict[str, list[Line]] = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                lines = lex_file(fh.read())
        except OSError as exc:
            report.errors.append(f"{path}: {exc}")
            continue
        file_lines[path] = lines
        engine.collect(path, lines)

    for path, lines in file_lines.items():
        rel = pretend_rel if pretend_rel is not None \
            else os.path.relpath(path, repo_root)
        rel = rel.replace(os.sep, "/")
        parse_suppressions(path, lines, report)
        engine.check_r1(path, lines, report)
        check_r2(path, rel, lines, report)
        check_r3(path, lines, report, engine)
        if rel.startswith(R4_PREFIXES):
            engine.check_r4(path, lines, report)
        check_r5(path, lines, report)
        check_r6(path, rel, lines, report)

    if check_cmake_files:
        for cm in iter_cmake_files(repo_root):
            check_cmake(cm, os.path.relpath(cm, repo_root), report)

    for sup in report.suppressions:
        if not sup.used:
            report.errors.append(
                f"{sup.path}:{sup.line}: stale suppression "
                f"`{sup.tag}({sup.reason})` — no matching violation on "
                f"this or the next line; delete it")
    return report


# --------------------------------------------------------------------------
# Selftest: fixture pairs under tests/lint/ must keep every rule firing
# --------------------------------------------------------------------------

# Hazard-shape regression pairs beyond the one-per-rule fixtures: each
# entry is (rule, violation fixture, clean fixture) and is held to the
# same fire/stay-quiet standard. The epoch pair pins the R4 shape that
# motivated extending the rule's charter to the serving layer:
# thread-cached pinned epochs vs per-op ReadView context. The naming
# pairs pin the shapes the NamingStrategy seam (DESIGN.md §12) added to
# the R2/R4 charters: LSH hyperplanes must be derived statelessly from
# the fixed config seed, never from ambient randomness (R2) or a
# lazily-filled static component cache (R4).
SCENARIO_FIXTURES = [
    ("R4", "r4_epoch_violation.cpp", "r4_epoch_clean.cpp"),
    ("R2", "r2_naming_violation.cpp", "r2_naming_clean.cpp"),
    ("R4", "r4_naming_violation.cpp", "r4_naming_clean.cpp"),
]


def selftest(repo_root: str, engine_kind: str) -> int:
    fixture_dir = os.path.join(repo_root, "tests", "lint")
    if not os.path.isdir(fixture_dir):
        print(f"meteo-lint selftest: missing fixture dir {fixture_dir}",
              file=sys.stderr)
        return 2
    failures: list[str] = []
    # Fixtures are checked as-if under src/meteorograph/ so the
    # path-scoped rules (R2 allowlist, R4 dir filter) apply.
    pretend = "src/meteorograph/fixture.cpp"

    def run_one(fixture: str) -> FileReport:
        engine = make_engine(engine_kind)
        return scan([os.path.join(fixture_dir, fixture)], repo_root, engine,
                    pretend_rel=pretend, check_cmake_files=False)

    pairs = [(rule, f"{rule.lower()}_violation.cpp",
              f"{rule.lower()}_clean.cpp") for rule in sorted(RULES)]
    pairs += SCENARIO_FIXTURES
    for rule, bad, good in pairs:
        for fx in (bad, good):
            if not os.path.isfile(os.path.join(fixture_dir, fx)):
                failures.append(f"missing fixture {fx}")
        if failures and failures[-1].startswith("missing"):
            continue
        bad_report = run_one(bad)
        fired = [v for v in bad_report.violations if v.rule == rule]
        if not fired:
            failures.append(
                f"{rule}: did not fire on tests/lint/{bad} — the rule has "
                f"gone dead")
        good_report = run_one(good)
        misfired = [v for v in good_report.violations if v.rule == rule]
        if misfired:
            failures.append(
                f"{rule}: false positive on tests/lint/{good}: "
                + "; ".join(v.render() for v in misfired))
        if good_report.errors:
            failures.append(
                f"{rule}: errors on tests/lint/{good}: "
                + "; ".join(good_report.errors))

    # The suppression grammar itself: a reason-less tag must be rejected,
    # and a stale suppression must be reported.
    grammar = run_one("suppression_grammar.cpp")
    if not any("requires a non-empty reason" in e for e in grammar.errors):
        failures.append("suppression grammar: empty reason not rejected")
    if not any("stale suppression" in e for e in grammar.errors):
        failures.append("suppression grammar: stale suppression not flagged")

    if failures:
        print("meteo-lint selftest FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"meteo-lint selftest OK: all {len(RULES)} rules (plus "
          f"{len(SCENARIO_FIXTURES)} scenario pair"
          f"{'s' if len(SCENARIO_FIXTURES) != 1 else ''}) fire on their "
          f"violation fixtures and stay quiet on the clean ones "
          f"(engine: {make_engine(engine_kind).name})")
    return 0


# --------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="meteo_lint.py",
        description="Static determinism-contract checker (DESIGN.md §10).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: src/)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--engine", choices=("auto", "clang", "token"),
                        default="auto")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="print the audited suppression inventory")
    parser.add_argument("--selftest", action="store_true",
                        help="verify every rule fires on tests/lint fixtures")
    args = parser.parse_args(argv)

    repo_root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.selftest:
        return selftest(repo_root, args.engine)

    roots = args.paths or [os.path.join(repo_root, "src")]
    engine = make_engine(args.engine)
    report = scan(iter_source_files(roots), repo_root, engine)

    if args.list_suppressions:
        sups = sorted(report.suppressions, key=lambda s: (s.path, s.line))
        print(f"# meteo-lint suppression inventory ({len(sups)} entries)")
        for sup in sups:
            rule = TAG_TO_RULE[sup.tag]
            rel = os.path.relpath(sup.path, repo_root)
            print(f"{rel}:{sup.line}: [{rule}] {sup.tag}({sup.reason})")

    status = 0
    for v in sorted(report.violations, key=lambda v: (v.path, v.line)):
        print(v.render(), file=sys.stderr)
        status = 1
    for e in report.errors:
        print(e, file=sys.stderr)
        status = 1
    if status == 0 and not args.list_suppressions:
        n = len(report.suppressions)
        print(f"meteo-lint: clean ({engine.name} engine, "
              f"{n} audited suppression{'s' if n != 1 else ''})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
