#include "workload/worldcup.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "common/assert.hpp"

namespace meteo::workload {

namespace {

std::uint32_t load_be32(const unsigned char* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(unsigned char* p, std::uint32_t v) noexcept {
  p[0] = static_cast<unsigned char>(v >> 24);
  p[1] = static_cast<unsigned char>(v >> 16);
  p[2] = static_cast<unsigned char>(v >> 8);
  p[3] = static_cast<unsigned char>(v);
}

}  // namespace

Result<std::vector<WorldCupRecord>, WorldCupError> read_worldcup_log(
    std::istream& in) {
  return read_worldcup_log(in, 0);
}

Result<std::vector<WorldCupRecord>, WorldCupError> read_worldcup_log(
    std::istream& in, std::size_t max_records) {
  std::vector<WorldCupRecord> records;
  std::array<unsigned char, kWorldCupRecordBytes> buf{};
  while (max_records == 0 || records.size() < max_records) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const auto got = in.gcount();
    if (got == 0 && in.eof()) break;
    if (got != static_cast<std::streamsize>(buf.size())) {
      return Err{in.eof() ? WorldCupError::kTruncatedRecord
                          : WorldCupError::kStreamFailure};
    }
    WorldCupRecord r;
    r.timestamp = load_be32(buf.data());
    r.client_id = load_be32(buf.data() + 4);
    r.object_id = load_be32(buf.data() + 8);
    r.size = load_be32(buf.data() + 12);
    r.method = buf[16];
    r.status = buf[17];
    r.type = buf[18];
    r.server = buf[19];
    records.push_back(r);
  }
  return records;
}

void write_worldcup_log(std::ostream& out,
                        std::span<const WorldCupRecord> records) {
  std::array<unsigned char, kWorldCupRecordBytes> buf{};
  for (const WorldCupRecord& r : records) {
    store_be32(buf.data(), r.timestamp);
    store_be32(buf.data() + 4, r.client_id);
    store_be32(buf.data() + 8, r.object_id);
    store_be32(buf.data() + 12, r.size);
    buf[16] = r.method;
    buf[17] = r.status;
    buf[18] = r.type;
    buf[19] = r.server;
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
}

Trace build_trace(std::span<const WorldCupRecord> records,
                  std::uint32_t from_timestamp, std::uint32_t to_timestamp) {
  // Densify client and object ids in first-appearance order, collecting
  // each client's distinct object set.
  std::unordered_map<std::uint32_t, std::size_t> client_index;
  std::unordered_map<std::uint32_t, vsm::KeywordId> object_index;
  std::vector<std::vector<vsm::KeywordId>> baskets;

  for (const WorldCupRecord& r : records) {
    if (r.timestamp < from_timestamp || r.timestamp > to_timestamp) continue;
    const auto [cit, cnew] = client_index.emplace(r.client_id, baskets.size());
    if (cnew) baskets.emplace_back();
    const auto [oit, onew] = object_index.emplace(
        r.object_id, static_cast<vsm::KeywordId>(object_index.size()));
    baskets[cit->second].push_back(oit->second);
  }

  std::vector<std::uint64_t> offsets;
  offsets.reserve(baskets.size() + 1);
  offsets.push_back(0);
  std::vector<vsm::KeywordId> keywords;
  for (auto& basket : baskets) {
    std::sort(basket.begin(), basket.end());
    basket.erase(std::unique(basket.begin(), basket.end()), basket.end());
    keywords.insert(keywords.end(), basket.begin(), basket.end());
    offsets.push_back(keywords.size());
  }
  const std::size_t num_keywords = object_index.size();
  return Trace(std::move(offsets), std::move(keywords),
               std::max<std::size_t>(num_keywords, 2));
}

}  // namespace meteo::workload
