#include "workload/knee.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "common/assert.hpp"

namespace meteo::workload {

namespace {

/// Vertical distance from curve[i] to the chord curve[lo] -> curve[hi].
double deviation(std::span<const Knot> curve, std::size_t lo, std::size_t hi,
                 std::size_t i) {
  const Knot& a = curve[lo];
  const Knot& b = curve[hi];
  const double t = (curve[i].x - a.x) / (b.x - a.x);
  const double chord_y = a.y + t * (b.y - a.y);
  return std::abs(curve[i].y - chord_y);
}

struct Segment {
  std::size_t lo;
  std::size_t hi;
  std::size_t split;      // index of the max-deviation point
  double max_dev;

  bool operator<(const Segment& other) const noexcept {
    return max_dev < other.max_dev;  // max-heap on deviation
  }
};

Segment make_segment(std::span<const Knot> curve, std::size_t lo,
                     std::size_t hi) {
  Segment s{lo, hi, lo, 0.0};
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double d = deviation(curve, lo, hi, i);
    if (d > s.max_dev) {
      s.max_dev = d;
      s.split = i;
    }
  }
  return s;
}

}  // namespace

std::vector<Knot> find_knees(std::span<const Knot> curve,
                             const KneeConfig& config) {
  METEO_EXPECTS(curve.size() >= 2);
  METEO_EXPECTS(config.max_knees >= 2);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    METEO_EXPECTS(curve[i].x > curve[i - 1].x);
  }

  std::set<std::size_t> selected = {0, curve.size() - 1};
  std::priority_queue<Segment> heap;
  heap.push(make_segment(curve, 0, curve.size() - 1));

  while (selected.size() < config.max_knees && !heap.empty()) {
    const Segment seg = heap.top();
    heap.pop();
    if (seg.max_dev <= config.min_deviation) break;
    selected.insert(seg.split);
    if (seg.split - seg.lo >= 2) heap.push(make_segment(curve, seg.lo, seg.split));
    if (seg.hi - seg.split >= 2) heap.push(make_segment(curve, seg.split, seg.hi));
  }

  std::vector<Knot> knees;
  knees.reserve(selected.size());
  for (const std::size_t i : selected) knees.push_back(curve[i]);
  return knees;
}

double max_deviation(std::span<const Knot> curve, std::span<const Knot> knees) {
  METEO_EXPECTS(knees.size() >= 2);
  std::vector<Knot> copy(knees.begin(), knees.end());
  const PiecewiseLinearMap fit(std::move(copy));
  double worst = 0.0;
  for (const Knot& k : curve) {
    worst = std::max(worst, std::abs(fit(k.x) - k.y));
  }
  return worst;
}

}  // namespace meteo::workload
