#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace meteo::workload {

Trace::Trace(std::vector<std::uint64_t> offsets,
             std::vector<vsm::KeywordId> keywords, std::size_t num_keywords)
    : offsets_(std::move(offsets)),
      keywords_(std::move(keywords)),
      num_keywords_(num_keywords) {
  METEO_EXPECTS(!offsets_.empty());
  METEO_EXPECTS(offsets_.front() == 0);
  METEO_EXPECTS(offsets_.back() == keywords_.size());
}

std::span<const vsm::KeywordId> Trace::keywords_of(std::size_t i) const {
  METEO_EXPECTS(i < item_count());
  return std::span(keywords_).subspan(
      offsets_[i], offsets_[i + 1] - offsets_[i]);
}

const std::vector<std::uint64_t>& Trace::document_frequency() const {
  if (df_cache_.empty()) {
    df_cache_.assign(num_keywords_, 0);
    for (const vsm::KeywordId k : keywords_) ++df_cache_[k];
  }
  return df_cache_;
}

std::vector<double> Trace::keyword_weights(WeightScheme scheme) const {
  std::vector<double> weights(num_keywords_, 1.0);
  if (scheme == WeightScheme::kBinary) return weights;
  const auto& df = document_frequency();
  const double n = static_cast<double>(item_count());
  for (std::size_t k = 0; k < num_keywords_; ++k) {
    // log(1 + n/df): smooth IDF, strictly positive for df >= 1; keywords
    // never used get the maximal weight but also never appear in vectors.
    const double denom = df[k] > 0 ? static_cast<double>(df[k]) : 1.0;
    weights[k] = std::log(1.0 + n / denom);
  }
  return weights;
}

vsm::SparseVector Trace::vector_of(std::size_t i,
                                   std::span<const double> weights) const {
  METEO_EXPECTS(weights.size() == num_keywords_);
  std::vector<vsm::Entry> entries;
  const auto kws = keywords_of(i);
  entries.reserve(kws.size());
  for (const vsm::KeywordId k : kws) {
    entries.push_back(vsm::Entry{k, weights[k]});
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.items = item_count();
  s.total_incidences = keywords_.size();
  const auto& df = document_frequency();
  s.keywords_used = static_cast<std::size_t>(
      std::count_if(df.begin(), df.end(), [](std::uint64_t d) { return d > 0; }));
  std::size_t min_b = ~std::size_t{0};
  std::size_t max_b = 0;
  for (std::size_t i = 0; i < item_count(); ++i) {
    const std::size_t b = static_cast<std::size_t>(offsets_[i + 1] - offsets_[i]);
    min_b = std::min(min_b, b);
    max_b = std::max(max_b, b);
  }
  s.min_basket = item_count() ? min_b : 0;
  s.max_basket = max_b;
  s.mean_basket = item_count() == 0
                      ? 0.0
                      : static_cast<double>(keywords_.size()) /
                            static_cast<double>(item_count());
  return s;
}

Trace synthesize_trace(const TraceConfig& config, std::uint64_t seed) {
  METEO_EXPECTS(config.num_items > 0);
  METEO_EXPECTS(config.num_keywords > 1);
  METEO_EXPECTS(config.min_basket >= 1);
  METEO_EXPECTS(config.max_basket >= config.min_basket);
  METEO_EXPECTS(config.max_basket <= config.num_keywords);
  METEO_EXPECTS(config.mean_basket >= 1.0);

  Rng rng(seed);
  const ZipfSampler keyword_sampler(config.num_keywords,
                                    config.keyword_zipf_exponent);

  // Lognormal basket sizes with E[X] = mean_basket:
  // mu = ln(mean) - sigma^2/2.
  const double sigma = config.basket_sigma;
  const double mu = std::log(config.mean_basket) - sigma * sigma / 2.0;

  std::vector<std::uint64_t> offsets;
  offsets.reserve(config.num_items + 1);
  offsets.push_back(0);
  std::vector<vsm::KeywordId> keywords;
  keywords.reserve(static_cast<std::size_t>(
      static_cast<double>(config.num_items) * config.mean_basket * 1.1));

  std::unordered_set<vsm::KeywordId> basket;
  for (std::size_t item = 0; item < config.num_items; ++item) {
    const double raw = rng.lognormal(mu, sigma);
    std::size_t size = static_cast<std::size_t>(std::llround(raw));
    size = std::clamp(size, config.min_basket, config.max_basket);

    basket.clear();
    // Distinct keywords via rejection; popular keywords collide often for
    // big baskets, so cap the attempts and then fill deterministically
    // from the unpopular tail (which is essentially never exhausted).
    std::size_t attempts = 0;
    const std::size_t max_attempts = 20 * size + 64;
    while (basket.size() < size && attempts < max_attempts) {
      basket.insert(static_cast<vsm::KeywordId>(keyword_sampler(rng)));
      ++attempts;
    }
    for (std::uint64_t k = config.num_keywords; basket.size() < size && k > 0;
         --k) {
      basket.insert(static_cast<vsm::KeywordId>(k - 1));
    }

    // meteo-lint: order-insensitive(copied out and sorted before use)
    std::vector<vsm::KeywordId> sorted(basket.begin(), basket.end());
    std::sort(sorted.begin(), sorted.end());
    keywords.insert(keywords.end(), sorted.begin(), sorted.end());
    offsets.push_back(keywords.size());
  }

  return Trace(std::move(offsets), std::move(keywords), config.num_keywords);
}

}  // namespace meteo::workload
