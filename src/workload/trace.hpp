#pragma once

/// \file trace.hpp
/// The evaluation workload: a "market-basket" keyword-item incidence
/// structure (paper §4).
///
/// The paper reads the World Cup 1998 access log for July 24 and treats
/// web objects as keywords and clients as items, producing a 89K x 2,760K
/// incidence matrix whose statistics are Table 1. The real trace is not
/// redistributable, so synthesize_trace() generates an equivalent:
///  - keyword (object) popularity is Zipf-like, the classic web-access
///    distribution (Fig. 6's rank plot);
///  - basket sizes (objects per client) are lognormal, calibrated so the
///    mean is 43 with min 1 and a heavy tail clamped at 11,868 (Table 1).
///
/// Storage is CSR (offsets + flat keyword array): the default 1/10-scale
/// trace is ~50 MB, the --paper-scale one ~500 MB.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::workload {

struct TraceConfig {
  /// Number of items (clients). Paper: 2,760,000. Default is 1/10 scale.
  std::size_t num_items = 276'000;
  /// Number of keywords (web objects). Paper: 89,000.
  std::size_t num_keywords = 89'000;
  /// Zipf exponent of keyword popularity.
  double keyword_zipf_exponent = 0.95;
  /// Target mean basket size (keywords per item). Paper: 43.
  double mean_basket = 43.0;
  /// Lognormal shape; larger = heavier tail.
  double basket_sigma = 1.2;
  /// Basket bounds. Paper: min 1, max 11,868.
  std::size_t min_basket = 1;
  std::size_t max_basket = 11'868;
};

struct TraceStats {
  std::size_t items = 0;
  std::size_t keywords_used = 0;  // keywords appearing in >= 1 item
  double mean_basket = 0.0;
  std::size_t max_basket = 0;
  std::size_t min_basket = 0;
  std::uint64_t total_incidences = 0;
};

/// How keyword weights are assigned when turning a basket into a vector.
enum class WeightScheme {
  /// w = 1 for every present keyword (the paper's plain VSM reading).
  kBinary,
  /// w = log(1 + n_items / df(keyword)): inverse document frequency,
  /// which makes the absolute angle content-dependent (DESIGN.md note 2).
  kIdf,
};

class Trace {
 public:
  Trace(std::vector<std::uint64_t> offsets, std::vector<vsm::KeywordId> keywords,
        std::size_t num_keywords);

  [[nodiscard]] std::size_t item_count() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t keyword_space() const noexcept {
    return num_keywords_;
  }

  /// The (distinct, sorted) keywords of item `i`. \pre i < item_count()
  [[nodiscard]] std::span<const vsm::KeywordId> keywords_of(
      std::size_t i) const;

  /// Document frequency of every keyword (index = KeywordId).
  [[nodiscard]] const std::vector<std::uint64_t>& document_frequency() const;

  /// Global keyword weights under `scheme` (index = KeywordId).
  [[nodiscard]] std::vector<double> keyword_weights(WeightScheme scheme) const;

  /// Materializes item `i` as a sparse vector using precomputed weights
  /// (from keyword_weights()). \pre weights.size() == keyword_space()
  [[nodiscard]] vsm::SparseVector vector_of(
      std::size_t i, std::span<const double> weights) const;

  [[nodiscard]] TraceStats stats() const;

 private:
  std::vector<std::uint64_t> offsets_;       // CSR row offsets, size items+1
  std::vector<vsm::KeywordId> keywords_;     // CSR column indices
  std::size_t num_keywords_;
  mutable std::vector<std::uint64_t> df_cache_;
};

/// Generates a synthetic trace per `config`, deterministically from `seed`.
[[nodiscard]] Trace synthesize_trace(const TraceConfig& config,
                                     std::uint64_t seed);

}  // namespace meteo::workload
