#pragma once

/// \file knee.hpp
/// Knee-point identification on CDF curves (paper §3.4.1/§3.4.2).
///
/// Meteorograph's load balancing starts by "identifying several points of
/// knees" on the sampled key CDF. The paper hard-codes knees eyeballed from
/// its trace; we reproduce the *derivation* with a principled algorithm:
/// greedy polyline simplification (Douglas–Peucker run to a point budget).
/// Starting from the chord between the curve's endpoints, the point with
/// the maximum vertical-distance deviation is promoted to a knee, the
/// segment splits, and the process repeats until `max_knees` points are
/// selected (or no segment deviates more than `min_deviation`).
///
/// The output is ordered, starts/ends at the curve's endpoints, and is
/// monotone in both coordinates whenever the input CDF is — exactly the
/// precondition of the Eq. 6 remap.

#include <cstddef>
#include <span>
#include <vector>

#include "common/cdf.hpp"

namespace meteo::workload {

struct KneeConfig {
  /// Total knee points returned, endpoints included. Paper's Eq. 6 uses 5.
  std::size_t max_knees = 5;
  /// Stop early when no point deviates from its chord by more than this
  /// (in y units of the curve, i.e. CDF fraction).
  double min_deviation = 0.0;
};

/// Finds knees on `curve` (a polyline, typically EmpiricalCdf::resample()
/// output). \pre curve.size() >= 2, strictly increasing in x
[[nodiscard]] std::vector<Knot> find_knees(std::span<const Knot> curve,
                                           const KneeConfig& config = {});

/// Maximum vertical deviation between `curve` and the polyline through
/// `knees` — a fit-quality measure used by the knee-count ablation.
[[nodiscard]] double max_deviation(std::span<const Knot> curve,
                                   std::span<const Knot> knees);

}  // namespace meteo::workload
