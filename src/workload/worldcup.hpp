#pragma once

/// \file worldcup.hpp
/// Reader/writer for the World Cup 1998 access-log binary format, so the
/// evaluation can run on the *real* trace when the user has it (the ITA
/// archive distributes it as gzipped binary request records).
///
/// Record layout (20 bytes, all multi-byte fields big-endian / network
/// order, per the ITA tools documentation):
///
///   uint32 timestamp   seconds since epoch of the request
///   uint32 clientID    anonymized client identifier
///   uint32 objectID    identifier of the requested URL
///   uint32 size        response bytes
///   uint8  method      HTTP method code
///   uint8  status      HTTP protocol version + response status code
///   uint8  type        file type code
///   uint8  server      responding server id
///
/// build_trace() performs the paper's §4 aggregation: clients become items,
/// objects become keywords, duplicates within a client collapse.

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/result.hpp"
#include "workload/trace.hpp"

namespace meteo::workload {

struct WorldCupRecord {
  std::uint32_t timestamp = 0;
  std::uint32_t client_id = 0;
  std::uint32_t object_id = 0;
  std::uint32_t size = 0;
  std::uint8_t method = 0;
  std::uint8_t status = 0;
  std::uint8_t type = 0;
  std::uint8_t server = 0;

  friend bool operator==(const WorldCupRecord&, const WorldCupRecord&) = default;
};

inline constexpr std::size_t kWorldCupRecordBytes = 20;

enum class WorldCupError {
  kTruncatedRecord,
  kStreamFailure,
};

/// Reads records until EOF. Fails on a partial trailing record.
[[nodiscard]] Result<std::vector<WorldCupRecord>, WorldCupError>
read_worldcup_log(std::istream& in);

/// Reads at most `max_records` records (0 = unlimited).
[[nodiscard]] Result<std::vector<WorldCupRecord>, WorldCupError>
read_worldcup_log(std::istream& in, std::size_t max_records);

/// Serializes records in the on-disk format (for tests and for exporting
/// synthetic traces in the canonical layout).
void write_worldcup_log(std::ostream& out,
                        std::span<const WorldCupRecord> records);

/// Aggregates raw requests into the paper's keyword-item incidence:
/// one item per distinct client, one keyword per distinct object, requests
/// outside [from_timestamp, to_timestamp] dropped (0/UINT32_MAX = no bound).
/// Client and object ids are densified in first-appearance order.
[[nodiscard]] Trace build_trace(std::span<const WorldCupRecord> records,
                                std::uint32_t from_timestamp = 0,
                                std::uint32_t to_timestamp = ~std::uint32_t{0});

}  // namespace meteo::workload
