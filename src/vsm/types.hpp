#pragma once

/// \file types.hpp
/// Core identifier types of the vector space model layer.

#include <cstdint>

namespace meteo::vsm {

/// Index of a keyword (dimension) in the dictionary. The paper's keywords
/// are the World Cup trace's web objects (~89K of them).
using KeywordId = std::uint32_t;

/// Identifier of a published item (the trace's clients, ~2,760K of them).
using ItemId = std::uint64_t;

inline constexpr KeywordId kInvalidKeyword = ~KeywordId{0};

/// Epoch counter for snapshot-isolated reads (DESIGN.md §11). A version is
/// visible at epoch `at` when `added <= at && at < removed`.
using Epoch = std::uint64_t;

/// "Removed" stamp of a version that is still live.
inline constexpr Epoch kEpochNever = ~Epoch{0};

/// Pseudo-epoch meaning "read the latest state, ignore versioning". Store
/// reads at kEpochLatest are byte-identical to the unversioned kernels.
inline constexpr Epoch kEpochLatest = ~Epoch{0} - 1;

}  // namespace meteo::vsm
