#pragma once

/// \file types.hpp
/// Core identifier types of the vector space model layer.

#include <cstdint>

namespace meteo::vsm {

/// Index of a keyword (dimension) in the dictionary. The paper's keywords
/// are the World Cup trace's web objects (~89K of them).
using KeywordId = std::uint32_t;

/// Identifier of a published item (the trace's clients, ~2,760K of them).
using ItemId = std::uint64_t;

inline constexpr KeywordId kInvalidKeyword = ~KeywordId{0};

}  // namespace meteo::vsm
