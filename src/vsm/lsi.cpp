#include "vsm/lsi.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace meteo::vsm {

namespace {

/// Sparse term-document product helpers working directly on the documents'
/// sparse vectors (A is never materialized densely).
///
/// A is |terms| x |docs|: column j holds doc j's weights on the compact
/// term rows.

// Y = A * X, X is |docs| x k.
Matrix a_times(const std::vector<const SparseVector*>& docs,
               const std::unordered_map<KeywordId, std::size_t>& term_rows,
               std::size_t n_terms, const Matrix& x) {
  METEO_EXPECTS(x.rows() == docs.size());
  Matrix y(n_terms, x.cols());
  for (std::size_t j = 0; j < docs.size(); ++j) {
    for (const Entry& e : docs[j]->entries()) {
      const std::size_t row = term_rows.at(e.keyword);
      for (std::size_t c = 0; c < x.cols(); ++c) {
        y.at(row, c) += e.weight * x.at(j, c);
      }
    }
  }
  return y;
}

// Z = A^T * Y, Y is |terms| x k; Z is |docs| x k.
Matrix at_times(const std::vector<const SparseVector*>& docs,
                const std::unordered_map<KeywordId, std::size_t>& term_rows,
                const Matrix& y) {
  Matrix z(docs.size(), y.cols());
  for (std::size_t j = 0; j < docs.size(); ++j) {
    for (const Entry& e : docs[j]->entries()) {
      const std::size_t row = term_rows.at(e.keyword);
      for (std::size_t c = 0; c < y.cols(); ++c) {
        z.at(j, c) += e.weight * y.at(row, c);
      }
    }
  }
  return z;
}

double latent_cosine(std::span<const double> a, std::span<const double> b) {
  METEO_ASSERT(a.size() == b.size());
  double dot_ab = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot_ab += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot_ab / std::sqrt(na * nb);
}

}  // namespace

LsiModel LsiModel::build(std::span<const StoredItem> docs, std::size_t rank,
                         Rng& rng, std::size_t power_iterations,
                         std::size_t oversample) {
  METEO_EXPECTS(!docs.empty());
  METEO_EXPECTS(rank >= 1);

  LsiModel model;
  std::vector<const SparseVector*> vectors;
  vectors.reserve(docs.size());
  for (const StoredItem& d : docs) {
    METEO_EXPECTS(!d.vector.empty());
    model.doc_ids_.push_back(d.id);
    vectors.push_back(&d.vector);
    for (const Entry& e : d.vector.entries()) {
      model.term_rows_.emplace(e.keyword, model.term_rows_.size());
    }
  }
  const std::size_t n_terms = model.term_rows_.size();
  const std::size_t n_docs = docs.size();
  const std::size_t max_rank = std::min(n_terms, n_docs);
  rank = std::min(rank, max_rank);
  const std::size_t k = std::min(rank + oversample, max_rank);

  // 1. Random test matrix Omega (|docs| x k) and sketch Y = A Omega.
  Matrix omega(n_docs, k);
  for (std::size_t i = 0; i < n_docs; ++i) {
    for (std::size_t j = 0; j < k; ++j) omega.at(i, j) = rng.normal();
  }
  Matrix y = a_times(vectors, model.term_rows_, n_terms, omega);

  // 2. Power iterations sharpen the spectrum; orthonormalize between
  //    applications for numerical stability.
  for (std::size_t it = 0; it < power_iterations; ++it) {
    orthonormalize_columns(y);
    y = a_times(vectors, model.term_rows_, n_terms,
                at_times(vectors, model.term_rows_, y));
  }
  orthonormalize_columns(y);  // Q = orth(Y), |terms| x k

  // 3. B = Q^T A  (k x |docs|) built column-by-column from the sparse docs.
  Matrix b(k, n_docs);
  for (std::size_t j = 0; j < n_docs; ++j) {
    for (const Entry& e : vectors[j]->entries()) {
      const std::size_t row = model.term_rows_.at(e.keyword);
      for (std::size_t c = 0; c < k; ++c) {
        b.at(c, j) += y.at(row, c) * e.weight;
      }
    }
  }

  // 4. Eigendecompose B B^T (k x k) to get the singular structure:
  //    B = U_b S V^T  with  B B^T = U_b S^2 U_b^T.
  Matrix bbt(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (std::size_t d = 0; d < n_docs; ++d) s += b.at(i, d) * b.at(j, d);
      bbt.at(i, j) = s;
    }
  }
  const EigenResult eig = symmetric_eigen(std::move(bbt));

  model.rank_ = rank;
  model.singular_values_.resize(rank);
  for (std::size_t r = 0; r < rank; ++r) {
    model.singular_values_[r] = std::sqrt(std::max(0.0, eig.values[r]));
  }

  // U = Q * U_b (|terms| x rank).
  model.term_space_ = Matrix(n_terms, rank);
  for (std::size_t i = 0; i < n_terms; ++i) {
    for (std::size_t r = 0; r < rank; ++r) {
      double s = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        s += y.at(i, c) * eig.vectors.at(c, r);
      }
      model.term_space_.at(i, r) = s;
    }
  }

  // V rows: v_j = (1/s_r) * (U^T a_j), i.e. the fold-in of each document.
  model.doc_space_ = Matrix(n_docs, rank);
  for (std::size_t j = 0; j < n_docs; ++j) {
    const std::vector<double> latent = model.fold_in(*vectors[j]);
    for (std::size_t r = 0; r < rank; ++r) {
      model.doc_space_.at(j, r) = latent[r];
    }
  }
  return model;
}

std::vector<double> LsiModel::fold_in(const SparseVector& query) const {
  std::vector<double> latent(rank_, 0.0);
  for (const Entry& e : query.entries()) {
    const auto it = term_rows_.find(e.keyword);
    if (it == term_rows_.end()) continue;  // unseen term contributes nothing
    for (std::size_t r = 0; r < rank_; ++r) {
      latent[r] += term_space_.at(it->second, r) * e.weight;
    }
  }
  for (std::size_t r = 0; r < rank_; ++r) {
    if (singular_values_[r] > 1e-12) {
      latent[r] /= singular_values_[r];
    } else {
      latent[r] = 0.0;
    }
  }
  return latent;
}

std::vector<ScoredItem> LsiModel::top_k(const SparseVector& query,
                                        std::size_t k) const {
  const std::vector<double> q = fold_in(query);
  std::vector<ScoredItem> scored;
  scored.reserve(doc_ids_.size());
  std::vector<double> row(rank_);
  for (std::size_t j = 0; j < doc_ids_.size(); ++j) {
    for (std::size_t r = 0; r < rank_; ++r) row[r] = doc_space_.at(j, r);
    scored.push_back(ScoredItem{doc_ids_[j], latent_cosine(q, row)});
  }
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(),
                    [](const ScoredItem& a, const ScoredItem& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(take);
  return scored;
}

}  // namespace meteo::vsm
