#pragma once

/// \file naive_scan.hpp
/// Retained naive-scan reference for LocalIndex (DESIGN.md §9).
///
/// This is the pre-inverted-index implementation, kept verbatim as the
/// correctness oracle: every LocalIndex kernel must return byte-identical
/// `ScoredItem`/`ItemId` sequences to this scan (same floating-point
/// summation order, same tie-breaks, same ordering). The randomized churn
/// test (tests/vsm/local_index_oracle_test.cpp) drives both side by side,
/// and the BM_LocalIndexNaive* microbenches use it as the "before" column
/// of BENCH_local_index.json. Header-only so that neither tests nor bench
/// binaries grow a library dependency for a reference implementation.

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "vsm/local_index.hpp"
#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::vsm {

/// The seed LocalIndex: a flat item array scanned end-to-end with a
/// merge-based cosine per item. O(items × (nnz_item + nnz_query)) per
/// query — the complexity the inverted index exists to beat.
class NaiveScanIndex {
 public:
  void insert(ItemId id, SparseVector vector) {
    METEO_EXPECTS(!vector.empty());
    const auto it = positions_.find(id);
    if (it != positions_.end()) {
      items_[it->second].vector = std::move(vector);
      return;
    }
    positions_.emplace(id, items_.size());
    items_.push_back(StoredItem{id, std::move(vector)});
  }

  bool erase(ItemId id) {
    const auto it = positions_.find(id);
    if (it == positions_.end()) return false;
    const std::size_t pos = it->second;
    positions_.erase(it);
    if (pos != items_.size() - 1) {
      items_[pos] = std::move(items_.back());
      positions_[items_[pos].id] = pos;
    }
    items_.pop_back();
    return true;
  }

  [[nodiscard]] bool contains(ItemId id) const noexcept {
    return positions_.contains(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  [[nodiscard]] const SparseVector* vector_of(ItemId id) const noexcept {
    const auto it = positions_.find(id);
    if (it == positions_.end()) return nullptr;
    return &items_[it->second].vector;
  }

  std::optional<StoredItem> evict_least_similar(const SparseVector& reference) {
    if (items_.empty()) return std::nullopt;
    std::size_t worst = 0;
    double worst_score = 2.0;  // above any cosine
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const double score = cosine_similarity(reference, items_[i].vector);
      if (score < worst_score ||
          (score == worst_score && items_[i].id < items_[worst].id)) {
        worst = i;
        worst_score = score;
      }
    }
    StoredItem evicted = std::move(items_[worst]);
    positions_.erase(evicted.id);
    if (worst != items_.size() - 1) {
      items_[worst] = std::move(items_.back());
      positions_[items_[worst].id] = worst;
    }
    items_.pop_back();
    return evicted;
  }

  [[nodiscard]] std::vector<ScoredItem> top_k(const SparseVector& query,
                                              std::size_t k) const {
    std::vector<ScoredItem> scored;
    scored.reserve(items_.size());
    for (const StoredItem& item : items_) {
      scored.push_back(
          ScoredItem{item.id, cosine_similarity(query, item.vector)});
    }
    const std::size_t take = std::min(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(take),
                      scored.end(),
                      [](const ScoredItem& a, const ScoredItem& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;
                      });
    scored.resize(take);
    return scored;
  }

  [[nodiscard]] std::vector<ItemId> match_all(
      std::span<const KeywordId> keywords) const {
    std::vector<ItemId> out;
    for (const StoredItem& item : items_) {
      const bool all =
          std::all_of(keywords.begin(), keywords.end(),
                      [&](KeywordId k) { return item.vector.contains(k); });
      if (all) out.push_back(item.id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::vector<ItemId> match_any(
      std::span<const KeywordId> keywords) const {
    std::vector<ItemId> out;
    for (const StoredItem& item : items_) {
      const bool any =
          std::any_of(keywords.begin(), keywords.end(),
                      [&](KeywordId k) { return item.vector.contains(k); });
      if (any) out.push_back(item.id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::vector<ScoredItem> within_angle(const SparseVector& query,
                                                     double tau) const {
    METEO_EXPECTS(tau >= 0.0);
    // cos(pi/2) is ~6e-17 rather than 0; the epsilon keeps boundary angles
    // (exactly tau) inside the result set.
    const double min_cosine = std::cos(tau) - 1e-12;
    std::vector<ScoredItem> out;
    for (const StoredItem& item : items_) {
      const double score = cosine_similarity(query, item.vector);
      if (score >= min_cosine) out.push_back(ScoredItem{item.id, score});
    }
    std::sort(out.begin(), out.end(),
              [](const ScoredItem& a, const ScoredItem& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
    return out;
  }

 private:
  std::vector<StoredItem> items_;
  std::unordered_map<ItemId, std::size_t> positions_;
};

}  // namespace meteo::vsm
