#pragma once

/// \file absolute_angle.hpp
/// The absolute angle (paper §3.1, Eq. 1-3) and its hash key (§3.2,
/// Eq. 4-5) — the heart of Meteorograph's naming scheme.
///
/// For a vector d in an m-dimensional space, the angle between d and the
/// axis subspace spanned by I_i is theta_i = acos(d_i / |d|) (Eq. 2-3
/// collapse to this because the projection of d onto axis i is the vector
/// [0..0, d_i, 0..0]). The absolute angle is the quadratic mean
///
///     theta = sqrt( (theta_1^2 + ... + theta_m^2) / m )          (Eq. 1)
///
/// For coordinates outside the support d_i = 0, so theta_i = pi/2; the sum
/// therefore needs only O(nnz) work:
///
///     theta = sqrt( (sum_{i in supp} acos(d_i/|d|)^2
///                    + (m - nnz) * (pi/2)^2) / m )               (Eq. 5)
///
/// This is what makes the universal-dictionary mode of §3.7 cheap: vectors
/// are very sparse, and the absolute angle "needs no sophisticated
/// computations".
///
/// Two dimension conventions are provided:
///  - kUniversal (the paper's §3.7 mode): m = dictionary dimension. With
///    m >> nnz all angles concentrate just below pi/2; the Eq. 6 remap then
///    spreads the occupied band over the full key space.
///  - kSupportOnly: m = nnz(d), an ablation mode that spreads raw angles
///    more aggressively but changes every item's key when its keyword set
///    changes.
///
/// For non-negative vectors theta is always in [0, pi/2].

#include <cstdint>

#include "vsm/sparse_vector.hpp"

namespace meteo::vsm {

enum class AngleMode {
  kUniversal,
  kSupportOnly,
};

/// Computes the absolute angle in radians.
/// \pre !v.empty(); dimension >= v.nnz() when mode == kUniversal
[[nodiscard]] double absolute_angle(const SparseVector& v,
                                    std::size_t dimension,
                                    AngleMode mode = AngleMode::kUniversal);

/// Eq. 4: maps an angle to an integer hash key in [0, key_space):
/// h = floor((theta / pi) * key_space), clamped into range.
/// \pre key_space > 0, theta in [0, pi]
[[nodiscard]] std::uint64_t angle_to_key(double theta,
                                         std::uint64_t key_space);

/// Eq. 5 end to end: the raw (pre-load-balancing) hash key of a vector.
[[nodiscard]] std::uint64_t absolute_angle_key(
    const SparseVector& v, std::size_t dimension, std::uint64_t key_space,
    AngleMode mode = AngleMode::kUniversal);

}  // namespace meteo::vsm
