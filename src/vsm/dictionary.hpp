#pragma once

/// \file dictionary.hpp
/// Keyword dictionary: string <-> KeywordId mapping plus the *universal
/// dimension* concept of paper §3.7.
///
/// Meteorograph avoids republishing items when the keyword set grows by
/// fixing the vector space dimension up front to a "comprehensive set of
/// keywords from a dictionary". We model this as a dictionary whose
/// `dimension()` is a fixed universal size (default 89K to mirror the
/// evaluation workload); interning more keywords than the declared
/// dimension grows the dimension, which is exactly the re-publishing hazard
/// the paper warns about, so callers can detect it via dimension_grew().

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vsm/types.hpp"

namespace meteo::vsm {

class Dictionary {
 public:
  /// \param universal_dimension fixed vector-space dimension m (§3.7).
  ///        0 means "track interned count" (the naive, republish-prone mode).
  explicit Dictionary(std::size_t universal_dimension = 0)
      : universal_dimension_(universal_dimension) {}

  /// Interns `keyword`, returning its stable id. Idempotent.
  KeywordId intern(std::string_view keyword);

  /// Looks up an already-interned keyword.
  [[nodiscard]] std::optional<KeywordId> find(std::string_view keyword) const;

  /// The keyword string for an id. \pre id < interned_count()
  [[nodiscard]] const std::string& spelling(KeywordId id) const;

  [[nodiscard]] std::size_t interned_count() const noexcept {
    return spellings_.size();
  }

  /// The vector-space dimension m used in the absolute-angle formula:
  /// max(universal dimension, interned count).
  [[nodiscard]] std::size_t dimension() const noexcept {
    return std::max(universal_dimension_, spellings_.size());
  }

  /// True when interning outgrew the declared universal dimension — the
  /// condition under which a naive system would have to republish all
  /// items (§3.7).
  [[nodiscard]] bool dimension_grew() const noexcept {
    return universal_dimension_ != 0 &&
           spellings_.size() > universal_dimension_;
  }

 private:
  std::size_t universal_dimension_;
  std::unordered_map<std::string, KeywordId> ids_;
  std::vector<std::string> spellings_;
};

}  // namespace meteo::vsm
