#pragma once

/// \file lsi.hpp
/// Latent Semantic Indexing (the paper's optional per-node local index,
/// §3.3) via randomized truncated SVD.
///
/// A node's documents form a term-document matrix A (terms compacted to the
/// union of keywords actually present). We approximate A ~= U S V^T with a
/// randomized subspace iteration (Halko, Martinsson & Tropp 2011):
///
///   1. Y = A * Omega, Omega gaussian (n x (r + oversample))
///   2. power iterations: Y = A * (A^T * Y), re-orthonormalizing
///   3. Q = orth(Y); B = Q^T A  ((r+p) x n, small)
///   4. eigendecompose B B^T to recover the top-r singular triplets
///
/// Queries are folded into the latent space (q_hat = S^-1 U^T q) and ranked
/// by latent-space cosine, which surfaces items sharing *correlated*
/// keywords even without literal overlap — the classic LSI win over raw VSM.

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "vsm/linalg.hpp"
#include "vsm/local_index.hpp"
#include "vsm/sparse_vector.hpp"

namespace meteo::vsm {

class LsiModel {
 public:
  /// Builds a rank-`rank` model over `docs`. Ranks larger than the matrix
  /// allows are clamped. \pre !docs.empty(), every doc non-empty
  static LsiModel build(std::span<const StoredItem> docs, std::size_t rank,
                        Rng& rng, std::size_t power_iterations = 2,
                        std::size_t oversample = 4);

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t doc_count() const noexcept {
    return doc_ids_.size();
  }
  [[nodiscard]] std::span<const double> singular_values() const noexcept {
    return singular_values_;
  }

  /// Projects a query vector into the latent space.
  [[nodiscard]] std::vector<double> fold_in(const SparseVector& query) const;

  /// Ranks all indexed documents against `query` by latent cosine,
  /// descending; returns at most k.
  [[nodiscard]] std::vector<ScoredItem> top_k(const SparseVector& query,
                                              std::size_t k) const;

 private:
  std::size_t rank_ = 0;
  std::vector<double> singular_values_;        // s_1 >= ... >= s_r
  Matrix term_space_;                          // |terms| x r  (U)
  Matrix doc_space_;                           // |docs| x r   (V, row per doc)
  std::vector<ItemId> doc_ids_;                    // row -> item id
  std::unordered_map<KeywordId, std::size_t> term_rows_;  // keyword -> U row
};

}  // namespace meteo::vsm
