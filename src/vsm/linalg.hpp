#pragma once

/// \file linalg.hpp
/// Small dense linear algebra kernels backing the LSI module: row-major
/// matrices, products, modified Gram-Schmidt QR, and a cyclic Jacobi
/// eigensolver for symmetric matrices.
///
/// These run on per-node document sets (hundreds to a few thousand
/// documents, compacted term space), so the O(n^3) dense algorithms are
/// appropriate; no BLAS dependency is wanted for an offline-buildable
/// simulator.

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace meteo::vsm {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    METEO_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    METEO_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. \pre a.cols() == b.rows()
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B. \pre a.rows() == b.rows()
[[nodiscard]] Matrix matmul_at_b(const Matrix& a, const Matrix& b);

[[nodiscard]] Matrix transpose(const Matrix& a);

/// In-place modified Gram-Schmidt orthonormalization of the columns of `a`.
/// Columns that become numerically zero are replaced by zero columns (rank
/// deficiency is tolerated; callers using the result as a basis should check
/// column norms). Returns the effective rank.
std::size_t orthonormalize_columns(Matrix& a);

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Returns eigenvalues (descending) and the matching eigenvectors as the
/// columns of `vectors`.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};

/// \pre a is square and (numerically) symmetric
[[nodiscard]] EigenResult symmetric_eigen(Matrix a, double tolerance = 1e-12,
                                          std::size_t max_sweeps = 64);

}  // namespace meteo::vsm
