#include "vsm/dictionary.hpp"

#include "common/assert.hpp"

namespace meteo::vsm {

KeywordId Dictionary::intern(std::string_view keyword) {
  const auto it = ids_.find(std::string(keyword));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<KeywordId>(spellings_.size());
  spellings_.emplace_back(keyword);
  ids_.emplace(spellings_.back(), id);
  return id;
}

std::optional<KeywordId> Dictionary::find(std::string_view keyword) const {
  const auto it = ids_.find(std::string(keyword));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::spelling(KeywordId id) const {
  METEO_EXPECTS(id < spellings_.size());
  return spellings_[id];
}

}  // namespace meteo::vsm
