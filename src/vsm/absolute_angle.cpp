#include "vsm/absolute_angle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace meteo::vsm {

double absolute_angle(const SparseVector& v, std::size_t dimension,
                      AngleMode mode) {
  METEO_EXPECTS(!v.empty());
  const std::size_t m =
      mode == AngleMode::kUniversal ? dimension : v.nnz();
  METEO_EXPECTS(m >= v.nnz());
  METEO_EXPECTS(m > 0);

  const double norm = v.norm();
  METEO_ASSERT(norm > 0.0);

  constexpr double kHalfPi = std::numbers::pi / 2.0;
  double sum_sq = 0.0;
  for (const Entry& e : v.entries()) {
    const double cosine = std::clamp(e.weight / norm, -1.0, 1.0);
    const double theta_i = std::acos(cosine);
    sum_sq += theta_i * theta_i;
  }
  // Coordinates outside the support contribute (pi/2)^2 each.
  sum_sq += static_cast<double>(m - v.nnz()) * kHalfPi * kHalfPi;

  const double theta = std::sqrt(sum_sq / static_cast<double>(m));
  METEO_ENSURES(theta >= 0.0 && theta <= kHalfPi + 1e-9);
  return std::min(theta, kHalfPi);
}

std::uint64_t angle_to_key(double theta, std::uint64_t key_space) {
  METEO_EXPECTS(key_space > 0);
  METEO_EXPECTS(theta >= 0.0 && theta <= std::numbers::pi);
  const double scaled =
      (theta / std::numbers::pi) * static_cast<double>(key_space);
  auto key = static_cast<std::uint64_t>(scaled);
  if (key >= key_space) key = key_space - 1;
  return key;
}

std::uint64_t absolute_angle_key(const SparseVector& v, std::size_t dimension,
                                 std::uint64_t key_space, AngleMode mode) {
  return angle_to_key(absolute_angle(v, dimension, mode), key_space);
}

}  // namespace meteo::vsm
