#pragma once

/// \file sparse_vector.hpp
/// Immutable sparse non-negative vectors for the vector space model.
///
/// An item "is characterized by" a set of keywords with weights (paper §2):
/// v_j = w_j if keyword k_j characterizes the item, 0 otherwise. Vectors are
/// stored as index-sorted (KeywordId, weight) pairs; all similarity kernels
/// (dot product, cosine, angle) are O(nnz_a + nnz_b).
///
/// Weights must be strictly positive: a zero weight is representationally
/// identical to absence, so the builder drops zeros and rejects negatives
/// (VSM weights are term weights, never negative).

#include <cstddef>
#include <span>
#include <vector>

#include "vsm/types.hpp"

namespace meteo::vsm {

struct Entry {
  KeywordId keyword = 0;
  double weight = 0.0;

  friend bool operator==(const Entry&, const Entry&) = default;
};

class SparseVector {
 public:
  /// The empty vector (norm 0). Valid but unpublishable.
  SparseVector() = default;

  /// Builds from possibly unsorted, possibly duplicated entries.
  /// Duplicate keywords have their weights summed; zero weights dropped.
  /// \pre all weights >= 0
  static SparseVector from_entries(std::vector<Entry> entries);

  /// Convenience: binary (weight 1) vector over a keyword set.
  static SparseVector binary(std::span<const KeywordId> keywords);

  [[nodiscard]] std::span<const Entry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Euclidean norm, cached at construction.
  [[nodiscard]] double norm() const noexcept { return norm_; }

  /// Weight of `keyword` (0 when absent). O(log nnz).
  [[nodiscard]] double weight_of(KeywordId keyword) const noexcept;

  /// True when `keyword` is in the support. O(log nnz).
  [[nodiscard]] bool contains(KeywordId keyword) const noexcept;

  /// Largest keyword id in the support. \pre !empty()
  [[nodiscard]] KeywordId max_keyword() const;

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  std::vector<Entry> entries_;  // sorted by keyword, strictly increasing
  double norm_ = 0.0;
};

/// Dot product. O(nnz_a + nnz_b).
[[nodiscard]] double dot(const SparseVector& a, const SparseVector& b) noexcept;

/// Cosine similarity in [0, 1] for non-negative vectors; 0 if either is
/// empty.
[[nodiscard]] double cosine_similarity(const SparseVector& a,
                                       const SparseVector& b) noexcept;

/// Angle between the two vectors in radians, in [0, pi/2] for non-negative
/// vectors (paper §2's similarity measure: small angle = similar).
/// \pre neither vector is empty
[[nodiscard]] double angle_between(const SparseVector& a,
                                   const SparseVector& b);

}  // namespace meteo::vsm
