#include "vsm/local_index.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace meteo::vsm {

void LocalIndex::insert(ItemId id, SparseVector vector) {
  METEO_EXPECTS(!vector.empty());
  const auto it = positions_.find(id);
  if (it != positions_.end()) {
    items_[it->second].vector = std::move(vector);
    return;
  }
  positions_.emplace(id, items_.size());
  items_.push_back(StoredItem{id, std::move(vector)});
}

bool LocalIndex::erase(ItemId id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return false;
  const std::size_t pos = it->second;
  positions_.erase(it);
  if (pos != items_.size() - 1) {
    items_[pos] = std::move(items_.back());
    positions_[items_[pos].id] = pos;
  }
  items_.pop_back();
  return true;
}

bool LocalIndex::contains(ItemId id) const noexcept {
  return positions_.contains(id);
}

const SparseVector* LocalIndex::vector_of(ItemId id) const noexcept {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return nullptr;
  return &items_[it->second].vector;
}

std::optional<StoredItem> LocalIndex::evict_least_similar(
    const SparseVector& reference) {
  if (items_.empty()) return std::nullopt;
  std::size_t worst = 0;
  double worst_score = 2.0;  // above any cosine
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const double score = cosine_similarity(reference, items_[i].vector);
    if (score < worst_score ||
        (score == worst_score && items_[i].id < items_[worst].id)) {
      worst = i;
      worst_score = score;
    }
  }
  StoredItem evicted = std::move(items_[worst]);
  positions_.erase(evicted.id);
  if (worst != items_.size() - 1) {
    items_[worst] = std::move(items_.back());
    positions_[items_[worst].id] = worst;
  }
  items_.pop_back();
  return evicted;
}

std::vector<ScoredItem> LocalIndex::top_k(const SparseVector& query,
                                          std::size_t k) const {
  std::vector<ScoredItem> scored;
  scored.reserve(items_.size());
  for (const StoredItem& item : items_) {
    scored.push_back(ScoredItem{item.id, cosine_similarity(query, item.vector)});
  }
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const ScoredItem& a, const ScoredItem& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(take);
  return scored;
}

std::vector<ItemId> LocalIndex::match_all(
    std::span<const KeywordId> keywords) const {
  std::vector<ItemId> out;
  for (const StoredItem& item : items_) {
    const bool all = std::all_of(
        keywords.begin(), keywords.end(),
        [&](KeywordId k) { return item.vector.contains(k); });
    if (all) out.push_back(item.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ItemId> LocalIndex::match_any(
    std::span<const KeywordId> keywords) const {
  std::vector<ItemId> out;
  for (const StoredItem& item : items_) {
    const bool any = std::any_of(
        keywords.begin(), keywords.end(),
        [&](KeywordId k) { return item.vector.contains(k); });
    if (any) out.push_back(item.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ScoredItem> LocalIndex::within_angle(const SparseVector& query,
                                                 double tau) const {
  METEO_EXPECTS(tau >= 0.0);
  // cos(pi/2) is ~6e-17 rather than 0; the epsilon keeps boundary angles
  // (exactly tau) inside the result set.
  const double min_cosine = std::cos(tau) - 1e-12;
  std::vector<ScoredItem> out;
  for (const StoredItem& item : items_) {
    const double score = cosine_similarity(query, item.vector);
    if (score >= min_cosine) out.push_back(ScoredItem{item.id, score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return out;
}

}  // namespace meteo::vsm
