#include "vsm/local_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/assert.hpp"

namespace meteo::vsm {

namespace detail {

/// Dense-over-slots score accumulator. `epoch` tags make clearing O(1):
/// a slot whose tag differs from `cur` reads as untouched, so starting a
/// query is one counter bump, and scoring allocates nothing once the
/// arrays are warm. The scratch is thread_local (see begin_scratch) so
/// const kernels stay safe under the BatchEngine's parallel read batches.
struct ScoreScratch {
  std::vector<double> acc;          ///< partial dot product per slot
  std::vector<std::size_t> count;   ///< matched-term count per slot
  std::vector<std::uint64_t> epoch; ///< last query that touched the slot
  std::vector<std::size_t> touched; ///< slots touched by this query
  std::vector<ScoredItem> scored;   ///< kernel-local result staging
  std::vector<ItemId> zero_ids;     ///< kernel-local zero-score staging
  std::uint64_t cur = 0;
};

}  // namespace detail

namespace {

using detail::ScoreScratch;

/// The per-thread scratch, grown to cover `slots` and advanced to a fresh
/// epoch. Sharing one scratch across every LocalIndex on the thread is
/// safe because each call starts a new epoch.
ScoreScratch& begin_scratch(std::size_t slots) {
  // meteo-lint: scoped(epoch-stamped scratch; contents never outlive one query and never feed results across calls, DESIGN.md §9)
  thread_local ScoreScratch s;
  if (s.acc.size() < slots) {
    s.acc.resize(slots);
    s.count.resize(slots);
    s.epoch.resize(slots, 0);
  }
  ++s.cur;
  s.touched.clear();
  return s;
}

/// The ordering every scored kernel reports: score descending, then item
/// id ascending — a total order, so results never depend on posting-list
/// internals.
constexpr auto by_score_then_id = [](const ScoredItem& a,
                                     const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
};

/// Index of `keyword` within `vector`'s entry array. \pre present
std::size_t entry_index(const SparseVector& vector, KeywordId keyword) {
  const auto entries = vector.entries();
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), keyword,
      [](const Entry& e, KeywordId k) { return e.keyword < k; });
  METEO_ASSERT(it != entries.end() && it->keyword == keyword);
  return static_cast<std::size_t>(it - entries.begin());
}

/// Sparse dot of `v` against `query`, accumulated in ascending order of
/// the *query's* keywords — the exact summation order accumulate() uses
/// per slot, so a retired item scores bit-identically to its live self.
double dot_in_query_order(const SparseVector& query, const SparseVector& v) {
  const auto entries = v.entries();
  double acc = 0.0;
  for (const Entry& e : query.entries()) {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), e.keyword,
        [](const Entry& a, KeywordId k) { return a.keyword < k; });
    if (it == entries.end() || it->keyword != e.keyword) continue;
    acc += e.weight * it->weight;
  }
  return acc;
}

/// Does `v` contain every keyword of `keywords`?
bool contains_all_keywords(const SparseVector& v,
                           std::span<const KeywordId> keywords) {
  const auto entries = v.entries();
  for (const KeywordId kw : keywords) {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), kw,
        [](const Entry& a, KeywordId k) { return a.keyword < k; });
    if (it == entries.end() || it->keyword != kw) return false;
  }
  return true;
}

}  // namespace

void LocalIndex::add_postings(std::size_t slot) {
  std::vector<std::size_t>& pp = posting_pos_[slot];
  pp.clear();
  for (const Entry& e : items_[slot].vector.entries()) {
    std::vector<Posting>& list = postings_[e.keyword];
    pp.push_back(list.size());
    list.push_back(Posting{slot, e.weight});
  }
}

void LocalIndex::remove_postings(std::size_t slot) {
  const auto entries = items_[slot].vector.entries();
  std::vector<std::size_t>& pp = posting_pos_[slot];
  for (std::size_t j = 0; j < entries.size(); ++j) {
    const KeywordId kw = entries[j].keyword;
    const auto list_it = postings_.find(kw);
    METEO_ASSERT(list_it != postings_.end());
    std::vector<Posting>& list = list_it->second;
    const std::size_t pos = pp[j];
    if (pos != list.size() - 1) {
      list[pos] = list.back();
      // The displaced posting belongs to another item (an item holds at
      // most one posting per keyword); point its back-reference here.
      const std::size_t moved_slot = list[pos].slot;
      posting_pos_[moved_slot][entry_index(items_[moved_slot].vector, kw)] =
          pos;
    }
    list.pop_back();
    if (list.empty()) postings_.erase(list_it);
  }
  pp.clear();
}

void LocalIndex::restamp_postings(std::size_t slot) {
  const auto entries = items_[slot].vector.entries();
  const std::vector<std::size_t>& pp = posting_pos_[slot];
  for (std::size_t j = 0; j < entries.size(); ++j) {
    postings_.at(entries[j].keyword)[pp[j]].slot = slot;
  }
}

void LocalIndex::retire(const StoredItem& item, Epoch added) {
  if (!retain_) return;
  retired_.push_back(Retired{StoredItem{item.id, item.vector},
                             added, write_epoch_});
}

void LocalIndex::insert(ItemId id, SparseVector vector) {
  METEO_EXPECTS(!vector.empty());
  if (write_epoch_ > newest_added_) newest_added_ = write_epoch_;
  const auto it = positions_.find(id);
  if (it != positions_.end()) {
    // In-place replace: the old terms' postings must go before the new
    // vector lands, or match_* would keep returning stale matches.
    const std::size_t slot = it->second;
    retire(items_[slot], added_[slot]);
    remove_postings(slot);
    items_[slot].vector = std::move(vector);
    added_[slot] = write_epoch_;
    add_postings(slot);
    return;
  }
  const std::size_t slot = items_.size();
  positions_.emplace(id, slot);
  items_.push_back(StoredItem{id, std::move(vector)});
  posting_pos_.emplace_back();
  added_.push_back(write_epoch_);
  add_postings(slot);
}

StoredItem LocalIndex::take_slot(std::size_t slot) {
  retire(items_[slot], added_[slot]);
  remove_postings(slot);
  StoredItem out = std::move(items_[slot]);
  positions_.erase(out.id);
  const std::size_t last = items_.size() - 1;
  if (slot != last) {
    items_[slot] = std::move(items_[last]);
    posting_pos_[slot] = std::move(posting_pos_[last]);
    added_[slot] = added_[last];
    positions_[items_[slot].id] = slot;
    restamp_postings(slot);
  }
  items_.pop_back();
  posting_pos_.pop_back();
  added_.pop_back();
  return out;
}

bool LocalIndex::erase(ItemId id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return false;
  (void)take_slot(it->second);
  return true;
}

std::optional<StoredItem> LocalIndex::take(ItemId id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return std::nullopt;
  return take_slot(it->second);
}

bool LocalIndex::contains(ItemId id) const noexcept {
  return positions_.contains(id);
}

const SparseVector* LocalIndex::vector_of(ItemId id) const noexcept {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return nullptr;
  return &items_[it->second].vector;
}

void LocalIndex::accumulate(const SparseVector& query,
                            detail::ScoreScratch& s) const {
  for (const Entry& e : query.entries()) {
    const auto it = postings_.find(e.keyword);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      if (s.epoch[p.slot] != s.cur) {
        s.epoch[p.slot] = s.cur;
        s.acc[p.slot] = 0.0;
        s.touched.push_back(p.slot);
      }
      s.acc[p.slot] += e.weight * p.weight;
    }
  }
}

std::optional<ItemId> LocalIndex::least_similar(
    const SparseVector& reference) const {
  if (items_.empty()) return std::nullopt;
  ScoreScratch& s = begin_scratch(items_.size());
  accumulate(reference, s);
  const double rnorm = reference.norm();
  ItemId worst_id = 0;
  double worst_score = 2.0;  // above any cosine
  const auto consider = [&](ItemId id, double score) {
    if (score < worst_score || (score == worst_score && id < worst_id)) {
      worst_score = score;
      worst_id = id;
    }
  };
  for (const std::size_t slot : s.touched) {
    const double score = std::clamp(
        s.acc[slot] / (rnorm * items_[slot].vector.norm()), 0.0, 1.0);
    consider(items_[slot].id, score);
  }
  if (s.touched.size() != items_.size()) {
    // Items sharing no term with the reference score exactly 0.0 — the
    // same value the naive scan's dot/cosine produces for them.
    for (std::size_t slot = 0; slot < items_.size(); ++slot) {
      if (s.epoch[slot] != s.cur) consider(items_[slot].id, 0.0);
    }
  }
  return worst_id;
}

std::optional<StoredItem> LocalIndex::evict_least_similar(
    const SparseVector& reference) {
  const std::optional<ItemId> victim = least_similar(reference);
  if (!victim.has_value()) return std::nullopt;
  return take(*victim);
}

void LocalIndex::top_k(const SparseVector& query, std::size_t k,
                       std::vector<ScoredItem>& out) const {
  out.clear();
  const std::size_t take_n = std::min(k, items_.size());
  if (take_n == 0) return;
  ScoreScratch& s = begin_scratch(items_.size());
  accumulate(query, s);
  const double qnorm = query.norm();
  s.scored.clear();
  s.zero_ids.clear();
  for (const std::size_t slot : s.touched) {
    const double score = std::clamp(
        s.acc[slot] / (qnorm * items_[slot].vector.norm()), 0.0, 1.0);
    if (score > 0.0) {
      s.scored.push_back(ScoredItem{items_[slot].id, score});
    } else {
      s.zero_ids.push_back(items_[slot].id);
    }
  }
  if (s.scored.size() >= take_n) {
    std::partial_sort(s.scored.begin(),
                      s.scored.begin() + static_cast<std::ptrdiff_t>(take_n),
                      s.scored.end(), by_score_then_id);
    out.assign(s.scored.begin(),
               s.scored.begin() + static_cast<std::ptrdiff_t>(take_n));
    return;
  }
  // Not enough overlapping items: the naive scan pads with zero-score
  // items in ascending-id order (its tie-break), so do the same.
  std::sort(s.scored.begin(), s.scored.end(), by_score_then_id);
  out.assign(s.scored.begin(), s.scored.end());
  for (std::size_t slot = 0; slot < items_.size(); ++slot) {
    if (s.epoch[slot] != s.cur) s.zero_ids.push_back(items_[slot].id);
  }
  std::sort(s.zero_ids.begin(), s.zero_ids.end());
  for (const ItemId id : s.zero_ids) {
    if (out.size() == take_n) break;
    out.push_back(ScoredItem{id, 0.0});
  }
}

std::vector<ScoredItem> LocalIndex::top_k(const SparseVector& query,
                                          std::size_t k) const {
  std::vector<ScoredItem> out;
  top_k(query, k, out);
  return out;
}

void LocalIndex::match_all(std::span<const KeywordId> keywords,
                           std::vector<ItemId>& out) const {
  out.clear();
  // Empty-store fast path: most nodes of a large overlay store nothing,
  // and a walk visits them all — skip the scratch and the hash probes.
  if (items_.empty()) return;
  if (keywords.empty()) {
    for (const StoredItem& item : items_) out.push_back(item.id);
    std::sort(out.begin(), out.end());
    return;
  }
  if (keywords.size() == 1) {
    // One term needs no counting scratch: its posting list IS the match
    // set. Single-keyword conjunctions dominate similarity_search walks.
    const auto it = postings_.find(keywords[0]);
    if (it == postings_.end()) return;
    for (const Posting& p : it->second) out.push_back(items_[p.slot].id);
    std::sort(out.begin(), out.end());
    return;
  }
  ScoreScratch& s = begin_scratch(items_.size());
  for (const KeywordId kw : keywords) {
    const auto it = postings_.find(kw);
    if (it == postings_.end()) return;  // a term nobody has: no matches
    for (const Posting& p : it->second) {
      if (s.epoch[p.slot] != s.cur) {
        s.epoch[p.slot] = s.cur;
        s.count[p.slot] = 0;
        s.touched.push_back(p.slot);
      }
      ++s.count[p.slot];
    }
  }
  for (const std::size_t slot : s.touched) {
    if (s.count[slot] == keywords.size()) out.push_back(items_[slot].id);
  }
  std::sort(out.begin(), out.end());
}

std::vector<ItemId> LocalIndex::match_all(
    std::span<const KeywordId> keywords) const {
  std::vector<ItemId> out;
  match_all(keywords, out);
  return out;
}

void LocalIndex::match_any(std::span<const KeywordId> keywords,
                           std::vector<ItemId>& out) const {
  out.clear();
  if (items_.empty()) return;
  ScoreScratch& s = begin_scratch(items_.size());
  for (const KeywordId kw : keywords) {
    const auto it = postings_.find(kw);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      if (s.epoch[p.slot] != s.cur) {
        s.epoch[p.slot] = s.cur;
        s.touched.push_back(p.slot);
      }
    }
  }
  for (const std::size_t slot : s.touched) out.push_back(items_[slot].id);
  std::sort(out.begin(), out.end());
}

std::vector<ItemId> LocalIndex::match_any(
    std::span<const KeywordId> keywords) const {
  std::vector<ItemId> out;
  match_any(keywords, out);
  return out;
}

void LocalIndex::within_angle(const SparseVector& query, double tau,
                              std::vector<ScoredItem>& out) const {
  METEO_EXPECTS(tau >= 0.0);
  // cos(pi/2) is ~6e-17 rather than 0; the epsilon keeps boundary angles
  // (exactly tau) inside the result set.
  const double min_cosine = std::cos(tau) - 1e-12;
  out.clear();
  if (items_.empty()) return;
  ScoreScratch& s = begin_scratch(items_.size());
  accumulate(query, s);
  const double qnorm = query.norm();
  for (const std::size_t slot : s.touched) {
    const double score = std::clamp(
        s.acc[slot] / (qnorm * items_[slot].vector.norm()), 0.0, 1.0);
    if (score >= min_cosine) out.push_back(ScoredItem{items_[slot].id, score});
  }
  if (0.0 >= min_cosine) {
    // tau reaches (numerically) pi/2: zero-overlap items are in range too.
    for (std::size_t slot = 0; slot < items_.size(); ++slot) {
      if (s.epoch[slot] != s.cur) {
        out.push_back(ScoredItem{items_[slot].id, 0.0});
      }
    }
  }
  std::sort(out.begin(), out.end(), by_score_then_id);
}

std::vector<ScoredItem> LocalIndex::within_angle(const SparseVector& query,
                                                 double tau) const {
  std::vector<ScoredItem> out;
  within_angle(query, tau, out);
  return out;
}

// --- epoch-stamped kernels (DESIGN.md §11) ---------------------------------
// Each kernel first checks all_live_at: a store untouched by the current
// write epoch answers through the plain kernel, so the versioned view only
// costs on the (few) nodes a commit actually mutated.

bool LocalIndex::contains_at(ItemId id, Epoch at) const noexcept {
  if (all_live_at(at)) return contains(id);
  const auto it = positions_.find(id);
  if (it != positions_.end() && slot_visible_at(it->second, at)) return true;
  for (const Retired& r : retired_) {
    if (r.item.id == id && r.added <= at && at < r.removed) return true;
  }
  return false;
}

bool LocalIndex::empty_at(Epoch at) const noexcept {
  if (all_live_at(at)) return empty();
  for (std::size_t slot = 0; slot < items_.size(); ++slot) {
    if (slot_visible_at(slot, at)) return false;
  }
  for (const Retired& r : retired_) {
    if (r.added <= at && at < r.removed) return false;
  }
  return true;
}

void LocalIndex::top_k_at(const SparseVector& query, std::size_t k, Epoch at,
                          std::vector<ScoredItem>& out) const {
  if (all_live_at(at)) {
    top_k(query, k, out);
    return;
  }
  out.clear();
  // The epoch-`at` store size: visible live slots plus visible retired
  // versions. At most one version of an id is visible (a live slot whose
  // id also has a visible retired version was itself stamped this epoch,
  // hence invisible), so this is an exact item count.
  std::size_t visible = 0;
  for (std::size_t slot = 0; slot < items_.size(); ++slot) {
    if (slot_visible_at(slot, at)) ++visible;
  }
  for (const Retired& r : retired_) {
    if (r.added <= at && at < r.removed) ++visible;
  }
  const std::size_t take_n = std::min(k, visible);
  if (take_n == 0) return;
  ScoreScratch& s = begin_scratch(items_.size());
  accumulate(query, s);
  const double qnorm = query.norm();
  s.scored.clear();
  s.zero_ids.clear();
  for (const std::size_t slot : s.touched) {
    if (!slot_visible_at(slot, at)) continue;
    const double score = std::clamp(
        s.acc[slot] / (qnorm * items_[slot].vector.norm()), 0.0, 1.0);
    if (score > 0.0) {
      s.scored.push_back(ScoredItem{items_[slot].id, score});
    } else {
      s.zero_ids.push_back(items_[slot].id);
    }
  }
  for (const Retired& r : retired_) {
    if (!(r.added <= at && at < r.removed)) continue;
    const double score =
        std::clamp(dot_in_query_order(query, r.item.vector) /
                       (qnorm * r.item.vector.norm()),
                   0.0, 1.0);
    if (score > 0.0) {
      s.scored.push_back(ScoredItem{r.item.id, score});
    } else {
      s.zero_ids.push_back(r.item.id);
    }
  }
  // (score, id) pairs are unique across visible versions, so sorting by
  // the total order by_score_then_id yields the same sequence the plain
  // kernel produced from its touched-order input.
  if (s.scored.size() >= take_n) {
    std::partial_sort(s.scored.begin(),
                      s.scored.begin() + static_cast<std::ptrdiff_t>(take_n),
                      s.scored.end(), by_score_then_id);
    out.assign(s.scored.begin(),
               s.scored.begin() + static_cast<std::ptrdiff_t>(take_n));
    return;
  }
  std::sort(s.scored.begin(), s.scored.end(), by_score_then_id);
  out.assign(s.scored.begin(), s.scored.end());
  for (std::size_t slot = 0; slot < items_.size(); ++slot) {
    if (s.epoch[slot] != s.cur && slot_visible_at(slot, at)) {
      s.zero_ids.push_back(items_[slot].id);
    }
  }
  std::sort(s.zero_ids.begin(), s.zero_ids.end());
  for (const ItemId id : s.zero_ids) {
    if (out.size() == take_n) break;
    out.push_back(ScoredItem{id, 0.0});
  }
}

void LocalIndex::match_all_at(std::span<const KeywordId> keywords, Epoch at,
                              std::vector<ItemId>& out) const {
  if (all_live_at(at)) {
    match_all(keywords, out);
    return;
  }
  out.clear();
  if (!items_.empty()) {
    if (keywords.empty()) {
      for (std::size_t slot = 0; slot < items_.size(); ++slot) {
        if (slot_visible_at(slot, at)) out.push_back(items_[slot].id);
      }
    } else {
      // Unlike the plain kernel, a keyword with no live posting list must
      // NOT end the query: a retired version may still hold it.
      ScoreScratch& s = begin_scratch(items_.size());
      bool live_possible = true;
      for (const KeywordId kw : keywords) {
        const auto it = postings_.find(kw);
        if (it == postings_.end()) {
          live_possible = false;
          break;
        }
        for (const Posting& p : it->second) {
          if (s.epoch[p.slot] != s.cur) {
            s.epoch[p.slot] = s.cur;
            s.count[p.slot] = 0;
            s.touched.push_back(p.slot);
          }
          ++s.count[p.slot];
        }
      }
      if (live_possible) {
        for (const std::size_t slot : s.touched) {
          if (s.count[slot] == keywords.size() && slot_visible_at(slot, at)) {
            out.push_back(items_[slot].id);
          }
        }
      }
    }
  }
  for (const Retired& r : retired_) {
    if (!(r.added <= at && at < r.removed)) continue;
    if (contains_all_keywords(r.item.vector, keywords)) {
      out.push_back(r.item.id);
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace meteo::vsm
