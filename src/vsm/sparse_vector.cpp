#include "vsm/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace meteo::vsm {

SparseVector SparseVector::from_entries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.keyword < b.keyword; });
  SparseVector v;
  v.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    METEO_EXPECTS(e.weight >= 0.0);
    if (e.weight == 0.0) continue;
    if (!v.entries_.empty() && v.entries_.back().keyword == e.keyword) {
      v.entries_.back().weight += e.weight;
    } else {
      v.entries_.push_back(e);
    }
  }
  double sq = 0.0;
  for (const Entry& e : v.entries_) sq += e.weight * e.weight;
  v.norm_ = std::sqrt(sq);
  return v;
}

SparseVector SparseVector::binary(std::span<const KeywordId> keywords) {
  std::vector<Entry> entries;
  entries.reserve(keywords.size());
  for (const KeywordId k : keywords) entries.push_back(Entry{k, 1.0});
  return from_entries(std::move(entries));
}

double SparseVector::weight_of(KeywordId keyword) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), keyword,
      [](const Entry& e, KeywordId k) { return e.keyword < k; });
  if (it == entries_.end() || it->keyword != keyword) return 0.0;
  return it->weight;
}

bool SparseVector::contains(KeywordId keyword) const noexcept {
  return weight_of(keyword) > 0.0;
}

KeywordId SparseVector::max_keyword() const {
  METEO_EXPECTS(!entries_.empty());
  return entries_.back().keyword;
}

double dot(const SparseVector& a, const SparseVector& b) noexcept {
  const auto ea = a.entries();
  const auto eb = b.entries();
  double sum = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].keyword < eb[j].keyword) {
      ++i;
    } else if (ea[i].keyword > eb[j].keyword) {
      ++j;
    } else {
      sum += ea[i].weight * eb[j].weight;
      ++i;
      ++j;
    }
  }
  return sum;
}

double cosine_similarity(const SparseVector& a, const SparseVector& b) noexcept {
  if (a.empty() || b.empty()) return 0.0;
  const double c = dot(a, b) / (a.norm() * b.norm());
  // Clamp rounding noise so acos stays in-domain downstream.
  return std::clamp(c, 0.0, 1.0);
}

double angle_between(const SparseVector& a, const SparseVector& b) {
  METEO_EXPECTS(!a.empty() && !b.empty());
  return std::acos(cosine_similarity(a, b));
}

}  // namespace meteo::vsm
