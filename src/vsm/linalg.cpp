#include "vsm/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace meteo::vsm {

Matrix matmul(const Matrix& a, const Matrix& b) {
  METEO_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  METEO_EXPECTS(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t.at(j, i) = a.at(i, j);
    }
  }
  return t;
}

std::size_t orthonormalize_columns(Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  std::size_t rank = 0;
  for (std::size_t j = 0; j < n; ++j) {
    // Subtract projections onto all previous (already normalized) columns.
    for (std::size_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (std::size_t i = 0; i < m; ++i) proj += a.at(i, k) * a.at(i, j);
      for (std::size_t i = 0; i < m; ++i) a.at(i, j) -= proj * a.at(i, k);
    }
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm_sq += a.at(i, j) * a.at(i, j);
    const double norm = std::sqrt(norm_sq);
    if (norm < 1e-12) {
      for (std::size_t i = 0; i < m; ++i) a.at(i, j) = 0.0;
      continue;
    }
    for (std::size_t i = 0; i < m; ++i) a.at(i, j) /= norm;
    ++rank;
  }
  return rank;
}

EigenResult symmetric_eigen(Matrix a, double tolerance,
                            std::size_t max_sweeps) {
  METEO_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();

  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  auto off_diagonal_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        s += a.at(i, j) * a.at(i, j);
      }
    }
    return std::sqrt(s);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) <= tolerance) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply the rotation J(p,q,theta) on both sides of A and
        // accumulate into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by eigenvalue, descending, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a.at(x, x) > a.at(y, y);
  });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = a.at(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors.at(i, j) = v.at(i, order[j]);
    }
  }
  return result;
}

}  // namespace meteo::vsm
