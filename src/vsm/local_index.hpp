#pragma once

/// \file local_index.hpp
/// Per-node item store with VSM ranking (paper §3.3: "nodes may further
/// implement the vector space model (VSM) or the latent semantic indexing
/// (LSI) to manipulate the items stored locally").
///
/// This is the VSM flavour: exact cosine ranking over the node's items.
/// It also provides the primitive the publish algorithm's replacement
/// policy needs — removing the stored item *least similar* to an incoming
/// one (Fig. 2, `_publish` overflow branch).

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::vsm {

struct StoredItem {
  ItemId id = 0;
  SparseVector vector;
};

/// An item with its retrieval score (cosine similarity to the query).
struct ScoredItem {
  ItemId id = 0;
  double score = 0.0;
};

class LocalIndex {
 public:
  /// Inserts (or replaces) an item. \pre !vector.empty()
  void insert(ItemId id, SparseVector vector);

  /// Removes an item; returns false if absent.
  bool erase(ItemId id);

  [[nodiscard]] bool contains(ItemId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  /// The stored vector of `id`, or nullptr if absent.
  [[nodiscard]] const SparseVector* vector_of(ItemId id) const noexcept;

  /// Removes and returns the stored item with the lowest cosine similarity
  /// to `reference` (ties broken toward the smallest item id so eviction is
  /// deterministic). Returns nullopt when the index is empty.
  std::optional<StoredItem> evict_least_similar(const SparseVector& reference);

  /// The k most similar items to `query`, scored by cosine, descending.
  /// Fewer than k are returned if the index is smaller.
  [[nodiscard]] std::vector<ScoredItem> top_k(const SparseVector& query,
                                              std::size_t k) const;

  /// All items whose vectors contain *every* keyword in `keywords`
  /// (conjunctive multi-keyword match, the query type from §1).
  [[nodiscard]] std::vector<ItemId> match_all(
      std::span<const KeywordId> keywords) const;

  /// All items containing *at least one* of `keywords`.
  [[nodiscard]] std::vector<ItemId> match_any(
      std::span<const KeywordId> keywords) const;

  /// All items whose angle to `query` is at most `tau` radians (§2's
  /// threshold-based similarity set U), scored by cosine descending.
  [[nodiscard]] std::vector<ScoredItem> within_angle(const SparseVector& query,
                                                     double tau) const;

  /// Stable view of all stored items (iteration order is unspecified).
  [[nodiscard]] std::span<const StoredItem> items() const noexcept {
    return items_;
  }

 private:
  std::vector<StoredItem> items_;
  std::unordered_map<ItemId, std::size_t> positions_;
};

}  // namespace meteo::vsm
