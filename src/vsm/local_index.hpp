#pragma once

/// \file local_index.hpp
/// Per-node item store with VSM ranking (paper §3.3: "nodes may further
/// implement the vector space model (VSM) or the latent semantic indexing
/// (LSI) to manipulate the items stored locally").
///
/// This is the VSM flavour: exact cosine ranking over the node's items.
/// It also provides the primitive the publish algorithm's replacement
/// policy needs — removing the stored item *least similar* to an incoming
/// one (Fig. 2, `_publish` overflow branch).
///
/// Since PR 4 the index is inverted (DESIGN.md §9): every kernel walks
/// only the postings of the query's own terms instead of scanning the
/// whole store, while returning results bit-identical to a naive scan —
/// same floating-point summation order, same tie-breaks, same ordering.

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::vsm {

namespace detail {
struct ScoreScratch;  // reusable per-thread accumulator (local_index.cpp)
}  // namespace detail

struct StoredItem {
  ItemId id = 0;
  SparseVector vector;
};

/// An item with its retrieval score (cosine similarity to the query).
struct ScoredItem {
  ItemId id = 0;
  double score = 0.0;
};

class LocalIndex {
 public:
  /// Inserts (or replaces) an item. A replace rewrites the item's posting
  /// lists in place (old terms removed, new terms added) so stale matches
  /// are impossible. \pre !vector.empty()
  void insert(ItemId id, SparseVector vector);

  /// Removes an item; returns false if absent.
  bool erase(ItemId id);

  /// Removes an item and returns it (vector moved out), or nullopt.
  std::optional<StoredItem> take(ItemId id);

  [[nodiscard]] bool contains(ItemId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  // --- epoch-stamped views (DESIGN.md §11) --------------------------------
  // While retain_versions(true) is armed, mutations stamp their slot with
  // the current write epoch and park the version they displace in a
  // retired sidecar instead of destroying it. The *_at kernels then answer
  // reads pinned at an earlier epoch bit-identically to what the plain
  // kernels would have returned before those mutations ran. With the
  // defaults (retain off, write epoch 0) every path below forwards to the
  // unversioned kernel, so facade users pay nothing.

  /// Stamps subsequent mutations as belonging to epoch `e`.
  void set_write_epoch(Epoch e) noexcept { write_epoch_ = e; }

  /// Arms (or disarms) version retention for displaced items.
  void retain_versions(bool on) noexcept { retain_ = on; }

  /// Drops every retired version (epoch boundary: no reader pins the old
  /// epoch anymore).
  void gc() noexcept { retired_.clear(); }

  /// contains() as of epoch `at` (kEpochLatest = plain contains()).
  [[nodiscard]] bool contains_at(ItemId id, Epoch at) const noexcept;

  /// empty() as of epoch `at`.
  [[nodiscard]] bool empty_at(Epoch at) const noexcept;

  /// top_k() as of epoch `at`: scores and order are bit-identical to what
  /// the plain kernel returned when the store was in its epoch-`at` state.
  void top_k_at(const SparseVector& query, std::size_t k, Epoch at,
                std::vector<ScoredItem>& out) const;

  /// match_all() as of epoch `at`.
  void match_all_at(std::span<const KeywordId> keywords, Epoch at,
                    std::vector<ItemId>& out) const;

  /// The stored vector of `id`, or nullptr if absent.
  [[nodiscard]] const SparseVector* vector_of(ItemId id) const noexcept;

  /// The stored item with the lowest cosine similarity to `reference`
  /// (ties broken toward the smallest item id), without removing it.
  /// Returns nullopt when the index is empty.
  [[nodiscard]] std::optional<ItemId> least_similar(
      const SparseVector& reference) const;

  /// Removes and returns the stored item with the lowest cosine similarity
  /// to `reference` (ties broken toward the smallest item id so eviction is
  /// deterministic). Returns nullopt when the index is empty.
  std::optional<StoredItem> evict_least_similar(const SparseVector& reference);

  /// The k most similar items to `query`, scored by cosine, descending.
  /// Fewer than k are returned if the index is smaller.
  [[nodiscard]] std::vector<ScoredItem> top_k(const SparseVector& query,
                                              std::size_t k) const;

  /// Caller-buffer overload: clears `out` and fills it with the top-k
  /// result, reusing `out`'s capacity (no per-call allocation once warm).
  void top_k(const SparseVector& query, std::size_t k,
             std::vector<ScoredItem>& out) const;

  /// All items whose vectors contain *every* keyword in `keywords`
  /// (conjunctive multi-keyword match, the query type from §1).
  [[nodiscard]] std::vector<ItemId> match_all(
      std::span<const KeywordId> keywords) const;
  void match_all(std::span<const KeywordId> keywords,
                 std::vector<ItemId>& out) const;

  /// All items containing *at least one* of `keywords`.
  [[nodiscard]] std::vector<ItemId> match_any(
      std::span<const KeywordId> keywords) const;
  void match_any(std::span<const KeywordId> keywords,
                 std::vector<ItemId>& out) const;

  /// All items whose angle to `query` is at most `tau` radians (§2's
  /// threshold-based similarity set U), scored by cosine descending.
  [[nodiscard]] std::vector<ScoredItem> within_angle(const SparseVector& query,
                                                     double tau) const;
  void within_angle(const SparseVector& query, double tau,
                    std::vector<ScoredItem>& out) const;

  /// Stable view of all stored items (iteration order is unspecified).
  [[nodiscard]] std::span<const StoredItem> items() const noexcept {
    return items_;
  }

 private:
  /// One posting: the slot (index into items_) of an item containing the
  /// keyword, plus that item's stored weight for it. Slots — not item ids —
  /// so the score accumulator can be a dense array.
  struct Posting {
    std::size_t slot = 0;
    double weight = 0.0;
  };

  /// A displaced version kept alive for readers pinned at an older epoch:
  /// visible at `at` when `added <= at && at < removed`.
  struct Retired {
    StoredItem item;
    Epoch added = 0;
    Epoch removed = 0;
  };

  /// Appends postings for every term of items_[slot].vector, recording
  /// each posting's position in posting_pos_[slot].
  void add_postings(std::size_t slot);

  /// Removes items_[slot]'s postings (swap-erase inside each list, fixing
  /// the displaced posting's back-reference).
  void remove_postings(std::size_t slot);

  /// Rewrites the slots recorded in the moved item's postings after a
  /// swap-erase moved it from the last slot to `slot`.
  void restamp_postings(std::size_t slot);

  /// Removes the item at `slot` and returns it.
  StoredItem take_slot(std::size_t slot);

  /// Term-at-a-time dot products of `query` against every stored item
  /// sharing at least one term, accumulated into `scratch` (DESIGN.md §9:
  /// per item, contributions arrive in ascending-keyword order — the same
  /// summation order as a merge-based sparse dot, so scores are
  /// bit-identical to a naive scan).
  void accumulate(const SparseVector& query,
                  detail::ScoreScratch& scratch) const;

  /// True when the epoch-`at` view equals the live state, so a versioned
  /// kernel may dispatch straight to its unversioned twin.
  [[nodiscard]] bool all_live_at(Epoch at) const noexcept {
    return at == kEpochLatest || (retired_.empty() && newest_added_ <= at);
  }

  /// items_[slot] is visible to a reader pinned at `at`.
  [[nodiscard]] bool slot_visible_at(std::size_t slot,
                                     Epoch at) const noexcept {
    return added_[slot] <= at;
  }

  /// Parks a copy of a version displaced by the current write epoch.
  void retire(const StoredItem& item, Epoch added);

  std::vector<StoredItem> items_;
  /// posting_pos_[slot][j] = index within postings_[kw_j] of the item's
  /// posting for its j-th vector entry (parallel to the entry order).
  std::vector<std::vector<std::size_t>> posting_pos_;
  std::unordered_map<ItemId, std::size_t> positions_;
  std::unordered_map<KeywordId, std::vector<Posting>> postings_;

  /// added_[slot] = epoch that inserted (or last replaced) items_[slot];
  /// parallel to items_ and kept in sync through swap-erases.
  std::vector<Epoch> added_;
  std::vector<Retired> retired_;
  Epoch newest_added_ = 0;   ///< max over added_; gates the fast path
  Epoch write_epoch_ = 0;    ///< stamp for the next mutation
  bool retain_ = false;      ///< park displaced versions in retired_?
};

}  // namespace meteo::vsm
