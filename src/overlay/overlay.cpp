#include "overlay/overlay.hpp"

#include <algorithm>

namespace meteo::overlay {

Overlay::Overlay(OverlayConfig config) : config_(config) {
  METEO_EXPECTS(config_.key_space > 0);
  METEO_EXPECTS(config_.routing_base >= 2);
  METEO_EXPECTS(config_.retry.timeout > 0.0);
  METEO_EXPECTS(config_.retry.backoff >= 1.0);
}

bool Overlay::deliver(NodeId from, NodeId to, HopStats& stats,
                      obs::SpanRecorder* rec) const {
  ++stats.messages;
  if (fault_hook_ == nullptr) return true;

  double wait = config_.retry.timeout;
  for (std::size_t attempt = 0;; ++attempt) {
    if (attempt > 0) ++stats.messages;  // the retransmission
    const MessageFate fate =
        fault_hook_->on_message(MessageContext{from, to, attempt});
    if (rec != nullptr) {
      rec->event(obs::EventKind::kFaultVerdict, from, to,
                 static_cast<std::uint64_t>(fate));
    }
    const bool lost =
        fate == MessageFate::kDrop || fault_hook_->is_stalled(to);
    if (!lost) {
      if (fate == MessageFate::kDelay) {
        // The copy arrives, but only after the sender's timer fired: the
        // wait is paid, the late arrival still completes the hop.
        ++stats.timeouts;
        stats.timeout_cost += wait;
        if (rec != nullptr) {
          rec->event(obs::EventKind::kTimeout, from, to, 0, wait);
        }
      } else if (fate == MessageFate::kDuplicate) {
        ++stats.messages;  // the spurious extra copy on the wire
      }
      return true;
    }
    ++stats.timeouts;
    stats.timeout_cost += wait;
    if (rec != nullptr) {
      rec->event(obs::EventKind::kTimeout, from, to, 0, wait);
    }
    if (attempt >= config_.retry.max_retries) return false;
    ++stats.retries;
    wait *= config_.retry.backoff;
    if (rec != nullptr) {
      rec->event(obs::EventKind::kRetry, from, to, attempt + 1);
      rec->event(obs::EventKind::kBackoff, from, to, 0, wait);
    }
  }
}

std::size_t Overlay::registry_lower_bound(Key key) const {
  const auto it = std::lower_bound(
      registry_.begin(), registry_.end(), key,
      [](const RegistryEntry& e, Key k) { return e.key < k; });
  return static_cast<std::size_t>(it - registry_.begin());
}

NodeId Overlay::registry_closest(Key key) const {
  METEO_ASSERT(!registry_.empty());
  const std::size_t pos = registry_lower_bound(key);
  NodeId best = kInvalidNode;
  Key best_key = 0;
  auto consider = [&](std::size_t i) {
    if (i >= registry_.size()) return;
    if (best == kInvalidNode ||
        strictly_closer(registry_[i].key, best_key, key)) {
      best = registry_[i].id;
      best_key = registry_[i].key;
    }
  };
  consider(pos);
  if (pos > 0) consider(pos - 1);
  return best;
}

Result<NodeId, JoinError> Overlay::join(Key key) {
  METEO_EXPECTS(key < config_.key_space);
  const std::size_t pos = registry_lower_bound(key);
  if (pos < registry_.size() && registry_[pos].key == key) {
    return Err{JoinError::kKeyTaken};
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeState{key, true, {}});
  registry_.insert(registry_.begin() + static_cast<std::ptrdiff_t>(pos),
                   RegistryEntry{key, id});
  build_table(id);
  // The two adjacent nodes learn about the joiner (leaf relink); distant
  // nodes' fingers stay as they are, as in an incremental join protocol.
  if (pos > 0) nodes_[registry_[pos - 1].id].table.successor = id;
  if (pos + 1 < registry_.size()) {
    nodes_[registry_[pos + 1].id].table.predecessor = id;
  }
  return id;
}

void Overlay::build_table(NodeId id) {
  NodeState& node = nodes_[id];
  RoutingTable& table = node.table;
  table.fingers.clear();
  table.predecessor = kInvalidNode;
  table.successor = kInvalidNode;

  const std::size_t pos = registry_lower_bound(node.key);
  METEO_ASSERT(pos < registry_.size() && registry_[pos].id == id);
  if (pos > 0) table.predecessor = registry_[pos - 1].id;
  if (pos + 1 < registry_.size()) table.successor = registry_[pos + 1].id;

  // Leaf set: up to leaf_set_size nearest nodes on each side.
  table.leaf_set.clear();
  for (std::size_t i = 1; i <= config_.leaf_set_size; ++i) {
    if (pos >= i) table.leaf_set.push_back(registry_[pos - i].id);
    if (pos + i < registry_.size()) table.leaf_set.push_back(registry_[pos + i].id);
  }

  // Digit fingers: at each geometric level d the table points toward
  // key +/- j*d for every digit j in [1, base), so one hop always drops
  // the remaining distance below d.
  auto add_finger = [&](Key target) {
    const NodeId candidate = registry_closest(target);
    if (candidate != id &&
        std::find(table.fingers.begin(), table.fingers.end(), candidate) ==
            table.fingers.end()) {
      table.fingers.push_back(candidate);
    }
  };
  for (Key d = config_.key_space / config_.routing_base; d >= 1;
       d /= config_.routing_base) {
    for (unsigned j = 1; j < config_.routing_base; ++j) {
      const Key step = d * j;
      if (node.key + step < config_.key_space) add_finger(node.key + step);
      if (node.key >= step) add_finger(node.key - step);
    }
  }
}

void Overlay::leave(NodeId id) {
  METEO_EXPECTS(is_alive(id));
  const std::size_t pos = registry_lower_bound(nodes_[id].key);
  METEO_ASSERT(registry_[pos].id == id);
  const NodeId pred = pos > 0 ? registry_[pos - 1].id : kInvalidNode;
  const NodeId succ =
      pos + 1 < registry_.size() ? registry_[pos + 1].id : kInvalidNode;
  if (pred != kInvalidNode) nodes_[pred].table.successor = succ;
  if (succ != kInvalidNode) nodes_[succ].table.predecessor = pred;
  registry_.erase(registry_.begin() + static_cast<std::ptrdiff_t>(pos));
  nodes_[id].alive = false;
}

void Overlay::fail(NodeId id) {
  METEO_EXPECTS(is_alive(id));
  const std::size_t pos = registry_lower_bound(nodes_[id].key);
  METEO_ASSERT(registry_[pos].id == id);
  registry_.erase(registry_.begin() + static_cast<std::ptrdiff_t>(pos));
  nodes_[id].alive = false;
  // No relinking: everyone pointing here now holds a stale pointer.
}

void Overlay::repair() {
  for (const RegistryEntry& entry : registry_) build_table(entry.id);
}

bool Overlay::is_alive(NodeId id) const {
  METEO_EXPECTS(id < nodes_.size());
  return nodes_[id].alive;
}

Key Overlay::key_of(NodeId id) const {
  METEO_EXPECTS(id < nodes_.size());
  return nodes_[id].key;
}

const RoutingTable& Overlay::table_of(NodeId id) const {
  METEO_EXPECTS(id < nodes_.size());
  return nodes_[id].table;
}

NodeId Overlay::closest_alive(Key key) const {
  METEO_EXPECTS(!registry_.empty());
  return registry_closest(key);
}

std::vector<NodeId> Overlay::closest_nodes(Key key, std::size_t k) const {
  std::vector<NodeId> out;
  if (registry_.empty() || k == 0) return out;
  // Two-pointer expansion around the insertion point; always take the
  // closer frontier (ties toward the smaller key, matching
  // strictly_closer).
  std::size_t hi = registry_lower_bound(key);
  std::size_t lo = hi;  // [lo, hi) consumed so far is empty
  while (out.size() < k && (lo > 0 || hi < registry_.size())) {
    const bool has_lo = lo > 0;
    const bool has_hi = hi < registry_.size();
    bool take_lo;
    if (has_lo && has_hi) {
      take_lo = strictly_closer(registry_[lo - 1].key, registry_[hi].key, key);
    } else {
      take_lo = has_lo;
    }
    if (take_lo) {
      out.push_back(registry_[--lo].id);
    } else {
      out.push_back(registry_[hi++].id);
    }
  }
  return out;
}

NodeId Overlay::predecessor(NodeId id) const {
  METEO_EXPECTS(id < nodes_.size());
  const NodeId p = nodes_[id].table.predecessor;
  if (p == kInvalidNode || !nodes_[p].alive) return kInvalidNode;
  return p;
}

NodeId Overlay::successor(NodeId id) const {
  METEO_EXPECTS(id < nodes_.size());
  const NodeId s = nodes_[id].table.successor;
  if (s == kInvalidNode || !nodes_[s].alive) return kInvalidNode;
  return s;
}

RouteResult Overlay::route(NodeId from, Key target,
                           obs::SpanRecorder* rec) const {
  METEO_EXPECTS(is_alive(from));
  METEO_EXPECTS(target < config_.key_space);

  RouteResult result;
  NodeId cur = from;
  std::vector<NodeId> lost;  // candidates that exhausted retries this step
  for (std::size_t step = 0; step <= config_.max_route_hops; ++step) {
    const NodeState& node = nodes_[cur];
    lost.clear();
    bool advanced = false;
    bool had_loss = false;
    // Best-first over the live closer pointers: try the greedily best
    // candidate; on repeated message loss fall back to the next best
    // (alternate-finger reroute) until one answers or none remain.
    while (true) {
      NodeId best = cur;
      Key best_key = node.key;
      auto consider = [&](NodeId candidate) {
        if (candidate == kInvalidNode) return;
        const NodeState& c = nodes_[candidate];
        if (!c.alive) return;  // observable per-hop timeout: skip dead links
        if (!lost.empty() &&
            std::find(lost.begin(), lost.end(), candidate) != lost.end()) {
          return;
        }
        if (strictly_closer(c.key, best_key, target)) {
          best = candidate;
          best_key = c.key;
        }
      };
      for (const NodeId f : node.table.fingers) consider(f);
      for (const NodeId l : node.table.leaf_set) consider(l);
      consider(node.table.predecessor);
      consider(node.table.successor);

      if (best == cur) break;  // no (remaining) live pointer is closer
      if (had_loss) {
        ++result.stats.reroutes;
        if (rec != nullptr) {
          rec->event(obs::EventKind::kReroute, cur, best);
        }
      }
      if (deliver(cur, best, result.stats, rec)) {
        if (rec != nullptr) {
          rec->event(obs::EventKind::kRouteHop, cur, best, result.hops);
        }
        cur = best;
        ++result.hops;
        advanced = true;
        break;
      }
      had_loss = true;
      lost.push_back(best);
    }
    if (!advanced) {
      // Either a genuine local minimum or every closer pointer was
      // unreachable through message loss.
      result.blocked = had_loss;
      break;
    }
  }

  result.destination = cur;
  const NodeId oracle = registry_.empty() ? kInvalidNode : registry_closest(target);
  result.reached_closest = (cur == oracle);
  result.stranded = !result.reached_closest;
  return result;
}

std::vector<NodeId> Overlay::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(registry_.size());
  for (const RegistryEntry& e : registry_) out.push_back(e.id);
  return out;
}

NodeId Overlay::random_alive(Rng& rng) const {
  METEO_EXPECTS(!registry_.empty());
  return registry_[rng.below(registry_.size())].id;
}

}  // namespace meteo::overlay
