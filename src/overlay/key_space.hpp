#pragma once

/// \file key_space.hpp
/// The linear hash address space of the overlay.
///
/// Meteorograph requires a *single-dimensional* hash space (the paper's
/// central argument against CAN/pSearch). Tornado — like the absolute-angle
/// construction itself, which maps items onto a half circle with fixed
/// endpoints 0 and pi — orders nodes linearly, so the key space here is the
/// integer line [0, size) with plain numeric distance, not a modular ring.
/// The paper's Eq. 6 knees put the top of the space at 1e8, which is the
/// default size.

#include <cstdint>

#include "common/assert.hpp"

namespace meteo::overlay {

/// A position in the hash address space.
using Key = std::uint64_t;

/// Dense handle for a node inside an Overlay (index-stable for the
/// overlay's lifetime; departed nodes keep their id but turn !alive).
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// The paper's hash space size (Eq. 6 knee list tops out at 1e8).
inline constexpr Key kDefaultKeySpace = 100'000'000;

/// Linear distance |a - b| on the key line.
[[nodiscard]] constexpr Key key_distance(Key a, Key b) noexcept {
  return a > b ? a - b : b - a;
}

/// True when candidate `a` is strictly closer to `target` than `b`,
/// breaking exact ties toward the *smaller key* so "numerically closest"
/// is a total order (deterministic homes for replication).
[[nodiscard]] constexpr bool strictly_closer(Key a, Key b, Key target) noexcept {
  const Key da = key_distance(a, target);
  const Key db = key_distance(b, target);
  if (da != db) return da < db;
  return a < b;
}

}  // namespace meteo::overlay
