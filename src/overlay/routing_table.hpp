#pragma once

/// \file routing_table.hpp
/// Per-node routing state: geometric fingers in both directions plus the
/// closest-neighbor (leaf) pointers.
///
/// Finger i points to the node closest to (own key +/- size/base^i), so the
/// distance to any target shrinks by roughly the routing base each hop —
/// the classic O(log_base N) bound. The paper's measured 6.91 hops at
/// N = 10^4 corresponds to base ~4, the default.
///
/// The closest-neighbor pointers (predecessor/successor in the linear node
/// order) are what Meteorograph's similarity walk and overflow chaining use
/// (Fig. 2, §3.3): the "closest neighbor" of a node is the adjacent node in
/// key order.

#include <cstddef>
#include <vector>

#include "overlay/key_space.hpp"

namespace meteo::overlay {

struct RoutingTable {
  /// Outgoing finger pointers, deduplicated, excluding self. At each
  /// geometric level d = size/base^i the table holds pointers toward
  /// key +/- j*d for every digit j in [1, base), which is what guarantees
  /// the remaining distance drops below d after one hop (the Pastry/
  /// Tornado digit-routing bound).
  std::vector<NodeId> fingers;
  /// Up to leaf_set_size nearest nodes on each side in key order; the
  /// redundancy that keeps routing alive when the immediate neighbor dies.
  std::vector<NodeId> leaf_set;
  /// Adjacent node with the next smaller key, or kInvalidNode at the edge.
  NodeId predecessor = kInvalidNode;
  /// Adjacent node with the next larger key, or kInvalidNode at the edge.
  NodeId successor = kInvalidNode;

  [[nodiscard]] std::size_t size() const noexcept {
    return fingers.size() + leaf_set.size() +
           (predecessor != kInvalidNode ? 1u : 0u) +
           (successor != kInvalidNode ? 1u : 0u);
  }
};

}  // namespace meteo::overlay
