#pragma once

/// \file overlay.hpp
/// The structured P2P overlay simulator (the Tornado stand-in).
///
/// Provides the four properties Meteorograph needs from its substrate
/// (DESIGN.md, substitutions table):
///   (a) a single-dimensional hash space ([0, key_space) on a line),
///   (b) greedy key routing in O(log_base N) hops with per-hop message
///       accounting,
///   (c) a linear ordering of nodes with closest-neighbor (pred/succ)
///       pointers, and
///   (d) the k numerically-closest nodes to a key (replication homes).
///
/// Dynamics: nodes can join (their own table is built fresh and the two
/// adjacent nodes relink; other nodes' fingers stay stale, as in a real
/// incremental join), depart gracefully (neighbors relink), or crash
/// (everyone else's pointers to the dead node go stale until repair()).
/// Routing skips pointers it can observe to be dead — the per-hop timeout
/// a real implementation would have — and reports a stranded route as
/// failed, which is exactly the availability loss measured in §4.3.

#include <cstddef>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "overlay/fault_hook.hpp"
#include "overlay/key_space.hpp"
#include "overlay/routing_table.hpp"

namespace meteo::overlay {

/// Per-hop failure handling: how long a sender waits for an ack and how
/// often it retransmits before declaring the link lost and rerouting.
struct RetryPolicy {
  /// Retransmissions after the first attempt; 0 disables retries (a single
  /// timeout declares the hop lost).
  std::size_t max_retries = 3;
  /// First-attempt timeout in virtual time units.
  double timeout = 1.0;
  /// Multiplier applied to the timeout after each failed attempt
  /// (exponential backoff). \pre >= 1
  double backoff = 2.0;
};

struct OverlayConfig {
  Key key_space = kDefaultKeySpace;
  /// Geometric finger spacing; hops scale as log_base(N). The paper's
  /// 6.91 hops at N = 10^4 matches base 4.
  unsigned routing_base = 4;
  /// Nearest neighbors kept on each side (leaf-set redundancy).
  std::size_t leaf_set_size = 4;
  /// Safety valve for routing loops under heavy damage.
  std::size_t max_route_hops = 256;
  /// Per-hop timeout/retry behaviour when a fault hook is attached.
  RetryPolicy retry;
};

enum class JoinError {
  kKeyTaken,
};

struct RouteResult {
  /// The node the request ended at (kInvalidNode only if `from` was dead).
  NodeId destination = kInvalidNode;
  /// Successful overlay hops taken (without a fault hook this equals the
  /// request messages sent; with one, stats.messages also counts retries
  /// and duplicates).
  std::size_t hops = 0;
  /// destination is the ground-truth closest alive node to the target key.
  bool reached_closest = false;
  /// Route stranded: some strictly closer node exists but every pointer
  /// toward it was dead.
  bool stranded = false;
  /// The route ended early because every closer live pointer exhausted its
  /// retries (message loss, not topology). Only set with a fault hook.
  bool blocked = false;
  /// Retry/timeout/reroute accounting across the route's messages.
  HopStats stats;
};

class Overlay {
 public:
  explicit Overlay(OverlayConfig config = {});

  [[nodiscard]] const OverlayConfig& config() const noexcept { return config_; }

  /// Adds a node at `key`, builds its routing table, and relinks the two
  /// adjacent nodes' leaf pointers. O(log N + fingers).
  Result<NodeId, JoinError> join(Key key);

  /// Graceful departure: neighbors relink around the leaver.
  /// \pre is_alive(id)
  void leave(NodeId id);

  /// Crash failure: the node vanishes but every pointer to it elsewhere
  /// remains stale until repair().
  /// \pre is_alive(id)
  void fail(NodeId id);

  /// Rebuilds every alive node's routing table and leaf pointers from the
  /// current membership (periodic stabilization).
  void repair();

  [[nodiscard]] std::size_t alive_count() const noexcept {
    return registry_.size();
  }
  /// Total ids ever issued (alive + departed).
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  [[nodiscard]] bool is_alive(NodeId id) const;
  [[nodiscard]] Key key_of(NodeId id) const;
  [[nodiscard]] const RoutingTable& table_of(NodeId id) const;

  /// Ground-truth closest alive node to `key` (the oracle the simulator
  /// uses to judge routing outcomes). \pre alive_count() > 0
  [[nodiscard]] NodeId closest_alive(Key key) const;

  /// The k alive nodes numerically closest to `key`, closest first —
  /// the replication homes of §3.6. Returns fewer when the overlay is
  /// smaller than k.
  [[nodiscard]] std::vector<NodeId> closest_nodes(Key key,
                                                  std::size_t k) const;

  /// Live closest-neighbor pointers (leaf links). kInvalidNode at the
  /// space boundary or when the pointer is stale-dead.
  [[nodiscard]] NodeId predecessor(NodeId id) const;
  [[nodiscard]] NodeId successor(NodeId id) const;

  /// Greedy routing from `from` toward the node responsible for `target`.
  /// Every hop is sent through deliver(); on repeated loss the router falls
  /// back to the next-best live pointer (alternate-finger reroute) before
  /// giving up on the step. With a recorder attached, every landed hop,
  /// reroute, and per-message fault decision becomes a trace event.
  /// \pre is_alive(from)
  [[nodiscard]] RouteResult route(NodeId from, Key target,
                                  obs::SpanRecorder* rec = nullptr) const;

  /// Attaches a message-level fault injector (non-owning; nullptr
  /// detaches). Every message subsequently passes through it.
  void set_fault_hook(FaultHook* hook) noexcept { fault_hook_ = hook; }
  [[nodiscard]] FaultHook* fault_hook() const noexcept { return fault_hook_; }

  /// One point-to-point message from `from` to `to` with the configured
  /// timeout/retry/backoff handling. Returns false when every attempt was
  /// lost (only possible with a fault hook attached). Costs are
  /// accumulated into `stats`; with a recorder attached, each fault-hook
  /// verdict, timeout, retry, and backoff becomes a trace event.
  bool deliver(NodeId from, NodeId to, HopStats& stats,
               obs::SpanRecorder* rec = nullptr) const;

  /// All alive node ids in ascending key order.
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

  /// Uniformly random alive node. \pre alive_count() > 0
  [[nodiscard]] NodeId random_alive(Rng& rng) const;

 private:
  struct NodeState {
    Key key = 0;
    bool alive = false;
    RoutingTable table;
  };

  struct RegistryEntry {
    Key key;
    NodeId id;
  };

  void build_table(NodeId id);
  [[nodiscard]] std::size_t registry_lower_bound(Key key) const;
  [[nodiscard]] NodeId registry_closest(Key key) const;

  OverlayConfig config_;
  std::vector<NodeState> nodes_;
  /// Alive nodes sorted by key (the oracle membership view).
  std::vector<RegistryEntry> registry_;
  /// Message-level fault injector; nullptr = perfect links.
  FaultHook* fault_hook_ = nullptr;
};

}  // namespace meteo::overlay
