#pragma once

/// \file fault_hook.hpp
/// The message-level fault injection point of the overlay.
///
/// Every point-to-point message the overlay sends (routing hops, neighbor
/// walk steps, replica legs) passes through Overlay::deliver(), which
/// consults an optional FaultHook to decide the message's fate. The hook
/// is the seam between the overlay (which knows how to retry, back off,
/// and reroute) and the simulation layer (which knows *which* messages a
/// scenario drops, delays, or duplicates — see sim::FaultPlan).
///
/// The hook also models unresponsive processes: is_stalled() marks nodes
/// that silently ignore traffic (a crash the rest of the overlay has not
/// yet observed). Crashes scheduled inside the hook are surfaced through
/// take_due_crashes() so the owning system can apply them to the overlay
/// membership at a safe operation boundary instead of mid-route.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "overlay/key_space.hpp"

namespace meteo::overlay {

/// What happens to one transmission of one message.
enum class MessageFate {
  kDeliver,    ///< arrives normally
  kDrop,       ///< lost; the sender times out
  kDelay,      ///< arrives, but only after the sender's timeout fires
  kDuplicate,  ///< arrives twice (one extra transmission on the wire)
};

/// Identifies one transmission for the hook's decision.
struct MessageContext {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// 0 on the first transmission, k on the k-th retry of the same hop.
  std::size_t attempt = 0;
};

/// Cost accounting for the fault handling of one logical operation:
/// retries, timeouts and reroutes accumulated across its messages.
struct HopStats {
  /// Transmissions on the wire, including retries and duplicate copies.
  std::size_t messages = 0;
  std::size_t retries = 0;   ///< retransmissions after a timeout
  std::size_t timeouts = 0;  ///< timer expirations waited out
  std::size_t reroutes = 0;  ///< alternate pointers tried after repeated loss
  /// Virtual time spent waiting on timeouts (exponential backoff units).
  double timeout_cost = 0.0;

  HopStats& operator+=(const HopStats& o) noexcept {
    messages += o.messages;
    retries += o.retries;
    timeouts += o.timeouts;
    reroutes += o.reroutes;
    timeout_cost += o.timeout_cost;
    return *this;
  }

  [[nodiscard]] bool any_faults() const noexcept {
    return retries != 0 || timeouts != 0 || reroutes != 0;
  }
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Decides the fate of one transmission. Called once per transmission,
  /// retries included, in deterministic order.
  virtual MessageFate on_message(const MessageContext& context) = 0;

  /// True when `node` is unresponsive (stalled or crashed-but-unobserved):
  /// every message to it behaves as dropped, whatever on_message said.
  [[nodiscard]] virtual bool is_stalled(NodeId node) const = 0;

  /// Drains crash events that became due; the caller applies them to the
  /// overlay membership (Overlay::fail) at an operation boundary. Each
  /// scheduled crash is returned exactly once.
  virtual std::vector<NodeId> take_due_crashes() { return {}; }

  // --- batched execution (DESIGN.md §7) --------------------------------------
  /// A hook that supports per-operation fate scopes lets the batch engine
  /// run operations concurrently: inside a scope, fates come from a
  /// substream keyed by (scope salt, in-scope message index) on the
  /// calling thread instead of any hook-global counter, so an operation's
  /// fates are independent of how workers interleave. Hooks that return
  /// false are driven single-threaded by the engine instead.
  [[nodiscard]] virtual bool supports_op_scopes() const { return false; }

  /// Enters a per-operation fate scope on the calling thread. `salt`
  /// selects the substream; `first_message` resumes a previously closed
  /// scope at that in-scope index (used when one logical operation spans
  /// a parallel plan phase and a sequential commit phase).
  virtual void begin_op_scope(std::uint64_t salt,
                              std::uint64_t first_message = 0) {
    (void)salt;
    (void)first_message;
  }

  /// Leaves the scope, folding its tallies into the hook's totals, and
  /// returns the next in-scope message index for a later
  /// begin_op_scope(salt, <returned value>) to resume the stream.
  virtual std::uint64_t end_op_scope() { return 0; }
};

}  // namespace meteo::overlay
