#pragma once

/// \file metrics.hpp
/// Named counters and distributions accumulated by experiments.
///
/// DEPRECATED for the core op path: the Meteorograph facade now reports
/// through obs::MetricRegistry (src/obs/metrics.hpp), which adds labels,
/// fixed-bucket histograms, and exporters. This registry remains for
/// simple bench-local tallies.
///
/// Handle-lifetime caveat: references returned by counter()/distribution()
/// stay valid only until reset() — reset() *clears the maps*, so any held
/// reference dangles afterwards. Re-acquire handles after every reset, or
/// use obs::MetricRegistry, whose reset() zeroes cells in place and keeps
/// handles valid for the registry's lifetime.

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace meteo::sim {

class MetricRegistry {
 public:
  /// Monotonic counter, created on first access.
  [[nodiscard]] std::uint64_t& counter(const std::string& name) {
    return counters_[name];
  }

  /// Streaming distribution, created on first access.
  [[nodiscard]] OnlineStats& distribution(const std::string& name) {
    return distributions_[name];
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] const OnlineStats* find_distribution(
      const std::string& name) const {
    const auto it = distributions_.find(name);
    return it == distributions_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, OnlineStats>& distributions()
      const {
    return distributions_;
  }

  void reset() {
    counters_.clear();
    distributions_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, OnlineStats> distributions_;
};

}  // namespace meteo::sim
