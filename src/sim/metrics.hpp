#pragma once

/// \file metrics.hpp
/// Named counters and distributions accumulated by experiments.
///
/// Every publish/retrieve operation in the core library reports its costs
/// (hops, messages by type) through a MetricRegistry, so each bench can
/// print exactly the quantities the paper's figures plot. Handles returned
/// by counter()/distribution() stay valid for the registry's lifetime.

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace meteo::sim {

class MetricRegistry {
 public:
  /// Monotonic counter, created on first access.
  [[nodiscard]] std::uint64_t& counter(const std::string& name) {
    return counters_[name];
  }

  /// Streaming distribution, created on first access.
  [[nodiscard]] OnlineStats& distribution(const std::string& name) {
    return distributions_[name];
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] const OnlineStats* find_distribution(
      const std::string& name) const {
    const auto it = distributions_.find(name);
    return it == distributions_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, OnlineStats>& distributions()
      const {
    return distributions_;
  }

  void reset() {
    counters_.clear();
    distributions_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, OnlineStats> distributions_;
};

}  // namespace meteo::sim
