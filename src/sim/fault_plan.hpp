#pragma once

/// \file fault_plan.hpp
/// Deterministic, replayable message-fault scenarios.
///
/// A FaultPlan implements the overlay's FaultHook: it decides, per
/// transmission, whether the message is delivered, dropped, delayed past
/// the sender's timeout, or duplicated, and it can make nodes crash or
/// stall (stop answering) when the plan's global message counter reaches a
/// chosen value.
///
/// Determinism and replay: the fate of transmission #i is a pure function
/// of (seed, i) — a splitmix64 hash, not a shared RNG stream — so a run is
/// byte-for-byte reproducible from the seed regardless of how decisions
/// interleave with other random draws, and a failing scenario replays
/// exactly from (seed, config, schedule). With all rates zero and an empty
/// schedule the plan is a no-op: behaviour is identical to running without
/// a hook.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "overlay/fault_hook.hpp"

namespace meteo::sim {

struct FaultPlanConfig {
  /// Probability a transmission is lost (sender times out). [0, 1]
  double drop_rate = 0.0;
  /// Probability a transmission arrives after the sender's timeout fired.
  double delay_rate = 0.0;
  /// Probability a transmission is duplicated on the wire.
  double duplicate_rate = 0.0;
};

class FaultPlan final : public overlay::FaultHook {
 public:
  /// \pre all rates in [0, 1] and their sum <= 1
  explicit FaultPlan(FaultPlanConfig config = {}, std::uint64_t seed = 0);

  // --- scheduled node faults (by global message count) ----------------------
  /// Crashes `node` once `at_message` transmissions have been observed: it
  /// stops answering immediately, and the crash is surfaced through
  /// take_due_crashes() for the owner to apply to the overlay membership.
  /// \pre at_message >= messages_seen()
  void crash_at(std::size_t at_message, overlay::NodeId node);

  /// Like crash_at, but transient: the node ignores traffic until a
  /// matching resume_at fires. \pre at_message >= messages_seen()
  void stall_at(std::size_t at_message, overlay::NodeId node);

  /// Ends a stall scheduled with stall_at. \pre at_message >= messages_seen()
  void resume_at(std::size_t at_message, overlay::NodeId node);

  // --- FaultHook -------------------------------------------------------------
  overlay::MessageFate on_message(const overlay::MessageContext& ctx) override;
  [[nodiscard]] bool is_stalled(overlay::NodeId node) const override;
  std::vector<overlay::NodeId> take_due_crashes() override;

  // --- batched execution (per-operation fate scopes) -------------------------
  /// Inside a scope, fates come from the (seed, salt, in-scope index)
  /// substream on the calling thread; totals fold in at end_op_scope so
  /// they are order-independent sums. Scheduled node events do NOT fire
  /// mid-scope — the batch engine applies them at batch boundaries via
  /// take_due_crashes().
  [[nodiscard]] bool supports_op_scopes() const override { return true; }
  void begin_op_scope(std::uint64_t salt,
                      std::uint64_t first_message = 0) override;
  std::uint64_t end_op_scope() override;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const FaultPlanConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t messages_seen() const noexcept {
    // meteo-lint: relaxed(metric total; read after join/commit barrier)
    return messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t dropped() const noexcept {
    // meteo-lint: relaxed(metric total; read after join/commit barrier)
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t delayed() const noexcept {
    // meteo-lint: relaxed(metric total; read after join/commit barrier)
    return delayed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t duplicated() const noexcept {
    // meteo-lint: relaxed(metric total; read after join/commit barrier)
    return duplicated_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeEvent {
    enum class Kind { kCrash, kStall, kResume };
    std::size_t at;
    overlay::NodeId node;
    Kind kind;
  };

  /// Per-thread scope state while a batch engine drives this plan. One
  /// thread works one operation at a time, so a single slot suffices; the
  /// tallies are private to the thread until end_op_scope folds them into
  /// the atomic totals.
  struct OpScope {
    bool active = false;
    std::uint64_t salt = 0;
    std::uint64_t index = 0;
    std::size_t messages = 0;
    std::size_t dropped = 0;
    std::size_t delayed = 0;
    std::size_t duplicated = 0;
  };

  /// Pure fate of transmission `index` under this seed.
  [[nodiscard]] overlay::MessageFate decide(std::uint64_t index) const;
  /// Applies every scheduled event with at <= messages_seen().
  void fire_due_events();
  void add_event(NodeEvent event);

  static thread_local OpScope scope_;

  FaultPlanConfig config_;
  std::uint64_t seed_;
  std::atomic<std::size_t> messages_ = 0;
  std::vector<NodeEvent> schedule_;  // sorted by `at`, stable
  std::size_t next_event_ = 0;
  std::vector<overlay::NodeId> stalled_;
  std::vector<overlay::NodeId> due_crashes_;
  std::atomic<std::size_t> dropped_ = 0;
  std::atomic<std::size_t> delayed_ = 0;
  std::atomic<std::size_t> duplicated_ = 0;
};

}  // namespace meteo::sim
