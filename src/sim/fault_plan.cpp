#include "sim/fault_plan.hpp"

#include <algorithm>

namespace meteo::sim {

thread_local FaultPlan::OpScope FaultPlan::scope_;

FaultPlan::FaultPlan(FaultPlanConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  METEO_EXPECTS(config_.drop_rate >= 0.0 && config_.drop_rate <= 1.0);
  METEO_EXPECTS(config_.delay_rate >= 0.0 && config_.delay_rate <= 1.0);
  METEO_EXPECTS(config_.duplicate_rate >= 0.0 &&
                config_.duplicate_rate <= 1.0);
  METEO_EXPECTS(config_.drop_rate + config_.delay_rate +
                    config_.duplicate_rate <=
                1.0);
}

void FaultPlan::add_event(NodeEvent event) {
  METEO_EXPECTS(event.at >= messages_seen());
  // Keep the schedule sorted by trigger count; equal triggers fire in
  // insertion order (stable upper_bound insert).
  const auto it = std::upper_bound(
      schedule_.begin() + static_cast<std::ptrdiff_t>(next_event_),
      schedule_.end(), event.at,
      [](std::size_t at, const NodeEvent& e) { return at < e.at; });
  schedule_.insert(it, event);
}

void FaultPlan::crash_at(std::size_t at_message, overlay::NodeId node) {
  add_event(NodeEvent{at_message, node, NodeEvent::Kind::kCrash});
}

void FaultPlan::stall_at(std::size_t at_message, overlay::NodeId node) {
  add_event(NodeEvent{at_message, node, NodeEvent::Kind::kStall});
}

void FaultPlan::resume_at(std::size_t at_message, overlay::NodeId node) {
  add_event(NodeEvent{at_message, node, NodeEvent::Kind::kResume});
}

void FaultPlan::fire_due_events() {
  while (next_event_ < schedule_.size() &&
         schedule_[next_event_].at <= messages_seen()) {
    const NodeEvent& e = schedule_[next_event_];
    switch (e.kind) {
      case NodeEvent::Kind::kCrash:
        due_crashes_.push_back(e.node);
        [[fallthrough]];  // a crashed node also stops answering
      case NodeEvent::Kind::kStall:
        if (std::find(stalled_.begin(), stalled_.end(), e.node) ==
            stalled_.end()) {
          stalled_.push_back(e.node);
        }
        break;
      case NodeEvent::Kind::kResume:
        stalled_.erase(std::remove(stalled_.begin(), stalled_.end(), e.node),
                       stalled_.end());
        break;
    }
    ++next_event_;
  }
}

overlay::MessageFate FaultPlan::decide(std::uint64_t index) const {
  // Stateless hash of (seed, index): decorrelated across indices, and the
  // whole fate sequence is fixed by the seed alone.
  const std::uint64_t h = splitmix64(seed_ ^ splitmix64(index));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < config_.drop_rate) return overlay::MessageFate::kDrop;
  if (u < config_.drop_rate + config_.delay_rate) {
    return overlay::MessageFate::kDelay;
  }
  if (u < config_.drop_rate + config_.delay_rate + config_.duplicate_rate) {
    return overlay::MessageFate::kDuplicate;
  }
  return overlay::MessageFate::kDeliver;
}

overlay::MessageFate FaultPlan::on_message(
    const overlay::MessageContext& ctx) {
  (void)ctx;  // fate depends only on the transmission index
  if (scope_.active) {
    // Scoped mode: fates come from the (salt, in-scope index) substream,
    // tallies stay thread-private until end_op_scope. Scheduled events do
    // not fire here — the batch engine applies them at batch boundaries.
    const overlay::MessageFate fate =
        decide(splitmix64(scope_.salt) + scope_.index);
    ++scope_.index;
    ++scope_.messages;
    switch (fate) {
      case overlay::MessageFate::kDrop:
        ++scope_.dropped;
        break;
      case overlay::MessageFate::kDelay:
        ++scope_.delayed;
        break;
      case overlay::MessageFate::kDuplicate:
        ++scope_.duplicated;
        break;
      case overlay::MessageFate::kDeliver:
        break;
    }
    return fate;
  }
  fire_due_events();
  const overlay::MessageFate fate = decide(messages_.load(
      // meteo-lint: relaxed(unscoped path is single-threaded; batch workers use OpScope)
      std::memory_order_relaxed));
  // meteo-lint: relaxed(metric total; read after join/commit barrier)
  messages_.fetch_add(1, std::memory_order_relaxed);
  switch (fate) {
    case overlay::MessageFate::kDrop:
      // meteo-lint: relaxed(metric total; read after join/commit barrier)
      dropped_.fetch_add(1, std::memory_order_relaxed);
      break;
    case overlay::MessageFate::kDelay:
      // meteo-lint: relaxed(metric total; read after join/commit barrier)
      delayed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case overlay::MessageFate::kDuplicate:
      // meteo-lint: relaxed(metric total; read after join/commit barrier)
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      break;
    case overlay::MessageFate::kDeliver:
      break;
  }
  return fate;
}

void FaultPlan::begin_op_scope(std::uint64_t salt,
                               std::uint64_t first_message) {
  scope_ = OpScope{};
  scope_.active = true;
  scope_.salt = salt;
  scope_.index = first_message;
}

std::uint64_t FaultPlan::end_op_scope() {
  // meteo-lint: relaxed(metric total; read after join/commit barrier)
  messages_.fetch_add(scope_.messages, std::memory_order_relaxed);
  // meteo-lint: relaxed(metric total; read after join/commit barrier)
  dropped_.fetch_add(scope_.dropped, std::memory_order_relaxed);
  // meteo-lint: relaxed(metric total; read after join/commit barrier)
  delayed_.fetch_add(scope_.delayed, std::memory_order_relaxed);
  // meteo-lint: relaxed(metric total; read after join/commit barrier)
  duplicated_.fetch_add(scope_.duplicated, std::memory_order_relaxed);
  const std::uint64_t next = scope_.index;
  scope_ = OpScope{};
  return next;
}

bool FaultPlan::is_stalled(overlay::NodeId node) const {
  return std::find(stalled_.begin(), stalled_.end(), node) != stalled_.end();
}

std::vector<overlay::NodeId> FaultPlan::take_due_crashes() {
  fire_due_events();
  std::vector<overlay::NodeId> out;
  out.swap(due_crashes_);
  return out;
}

}  // namespace meteo::sim
