#pragma once

/// \file event_queue.hpp
/// Discrete-event simulation core: a virtual clock plus a priority queue
/// of scheduled callbacks with support for cancellation.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// simulations deterministic. Cancellation is lazy: a cancelled event stays
/// in the heap but is skipped when popped.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"

namespace meteo::sim {

using SimTime = double;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `action` to fire at absolute time `when`.
  /// \pre when >= now()
  EventId schedule_at(SimTime when, std::function<void()> action);

  /// Schedules `action` to fire `delay` from now. \pre delay >= 0
  EventId schedule_in(SimTime delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event; returns false if already fired, cancelled,
  /// or unknown.
  bool cancel(EventId id);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_ids_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events fired.
  std::size_t run_all(std::size_t max_events = ~std::size_t{0});

  /// Runs events with time <= `until`, then advances the clock to `until`
  /// (even if no event fired). Returns the number of events fired.
  std::size_t run_until(SimTime until);

 private:
  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Pops and fires one event; returns false when nothing is pending.
  bool fire_next();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace meteo::sim
