#pragma once

/// \file churn.hpp
/// Membership dynamics for the failure experiments (§4.3) and for
/// longer-running churn scenarios.
///
/// Two levels of fidelity:
///  - fail_fraction(): the paper's §4.3 setup — an instantaneous mass
///    failure of a random fraction of nodes.
///  - ChurnProcess: a Poisson join/fail process driven by an EventQueue,
///    for continuous-churn studies (arrival rate lambda_join overlays-wide,
///    per-node failure rate lambda_fail).

#include <cstddef>
#include <functional>

#include "common/rng.hpp"
#include "overlay/overlay.hpp"
#include "sim/event_queue.hpp"

namespace meteo::sim {

/// Crashes `fraction` of the currently alive nodes, chosen uniformly at
/// random without repair. Returns the number of nodes failed.
/// \pre 0 <= fraction <= 1
std::size_t fail_fraction(overlay::Overlay& overlay, double fraction,
                          Rng& rng);

struct ChurnConfig {
  /// Expected node arrivals per unit time (overlay-wide).
  double join_rate = 1.0;
  /// Expected failures per node per unit time.
  double fail_rate_per_node = 0.01;
  /// Period of the stabilization (repair) pass; 0 disables repair.
  double repair_interval = 10.0;
};

/// Drives join/fail/repair events on an overlay. Construction schedules
/// the first events; the caller advances the shared EventQueue.
class ChurnProcess {
 public:
  /// `on_join` (optional) is invoked with each new node id, letting the
  /// caller install state (e.g. republish items) on arrival.
  ChurnProcess(overlay::Overlay& overlay, EventQueue& queue, Rng& rng,
               ChurnConfig config,
               std::function<void(overlay::NodeId)> on_join = nullptr);

  [[nodiscard]] std::size_t joins() const noexcept { return joins_; }
  [[nodiscard]] std::size_t failures() const noexcept { return failures_; }
  [[nodiscard]] std::size_t repairs() const noexcept { return repairs_; }

  /// Stops scheduling further events (in-flight ones still fire).
  void stop() noexcept { stopped_ = true; }

 private:
  void schedule_join();
  void schedule_fail();
  void schedule_repair();

  overlay::Overlay& overlay_;
  EventQueue& queue_;
  Rng& rng_;
  ChurnConfig config_;
  std::function<void(overlay::NodeId)> on_join_;
  std::size_t joins_ = 0;
  std::size_t failures_ = 0;
  std::size_t repairs_ = 0;
  bool stopped_ = false;
};

}  // namespace meteo::sim
