#include "sim/event_queue.hpp"

namespace meteo::sim {

EventId EventQueue::schedule_at(SimTime when, std::function<void()> action) {
  METEO_EXPECTS(when >= now_);
  METEO_EXPECTS(action != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(action)});
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = pending_ids_.find(id);
  if (it == pending_ids_.end()) return false;  // unknown, fired, or cancelled
  pending_ids_.erase(it);
  cancelled_.insert(id);
  return true;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && fire_next()) ++fired;
  return fired;
}

std::size_t EventQueue::run_until(SimTime until) {
  METEO_EXPECTS(until >= now_);
  std::size_t fired = 0;
  while (!heap_.empty()) {
    // Drop cancelled heads without advancing time.
    if (cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
      continue;
    }
    if (heap_.top().when > until) break;
    fire_next();
    ++fired;
  }
  now_ = until;
  return fired;
}

bool EventQueue::fire_next() {
  while (!heap_.empty()) {
    if (cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
      continue;
    }
    // std::priority_queue::top() is const; the move is safe because the
    // entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    pending_ids_.erase(entry.id);
    now_ = entry.when;
    entry.action();
    return true;
  }
  return false;
}

}  // namespace meteo::sim
