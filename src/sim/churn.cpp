#include "sim/churn.hpp"

#include <vector>

#include "common/assert.hpp"

namespace meteo::sim {

std::size_t fail_fraction(overlay::Overlay& overlay, double fraction,
                          Rng& rng) {
  METEO_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  std::vector<overlay::NodeId> nodes = overlay.alive_nodes();
  // Partial Fisher-Yates: shuffle the victims to the front.
  const auto victims =
      static_cast<std::size_t>(fraction * static_cast<double>(nodes.size()));
  for (std::size_t i = 0; i < victims; ++i) {
    const std::size_t j = i + rng.below(nodes.size() - i);
    std::swap(nodes[i], nodes[j]);
    overlay.fail(nodes[i]);
  }
  return victims;
}

ChurnProcess::ChurnProcess(overlay::Overlay& overlay, EventQueue& queue,
                           Rng& rng, ChurnConfig config,
                           std::function<void(overlay::NodeId)> on_join)
    : overlay_(overlay),
      queue_(queue),
      rng_(rng),
      config_(config),
      on_join_(std::move(on_join)) {
  METEO_EXPECTS(config_.join_rate >= 0.0);
  METEO_EXPECTS(config_.fail_rate_per_node >= 0.0);
  if (config_.join_rate > 0.0) schedule_join();
  if (config_.fail_rate_per_node > 0.0) schedule_fail();
  if (config_.repair_interval > 0.0) schedule_repair();
}

void ChurnProcess::schedule_join() {
  queue_.schedule_in(rng_.exponential(config_.join_rate), [this] {
    if (stopped_) return;
    // Retry on key collisions (vanishingly rare in a 1e8 space).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto joined = overlay_.join(rng_.below(overlay_.config().key_space));
      if (joined.has_value()) {
        ++joins_;
        if (on_join_) on_join_(joined.value());
        break;
      }
    }
    schedule_join();
  });
}

void ChurnProcess::schedule_fail() {
  // The aggregate failure rate scales with the live population; resampling
  // after each event approximates the inhomogeneous process well enough
  // for simulation purposes.
  const double population = static_cast<double>(
      overlay_.alive_count() > 0 ? overlay_.alive_count() : 1);
  queue_.schedule_in(
      rng_.exponential(config_.fail_rate_per_node * population), [this] {
        if (stopped_) return;
        if (overlay_.alive_count() > 1) {
          overlay_.fail(overlay_.random_alive(rng_));
          ++failures_;
        }
        schedule_fail();
      });
}

void ChurnProcess::schedule_repair() {
  queue_.schedule_in(config_.repair_interval, [this] {
    if (stopped_) return;
    overlay_.repair();
    ++repairs_;
    schedule_repair();
  });
}

}  // namespace meteo::sim
