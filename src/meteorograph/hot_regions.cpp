#include "meteorograph/hot_regions.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "workload/knee.hpp"

namespace meteo::core {

namespace {

constexpr std::size_t kDetectionBuckets = 64;

}  // namespace

HotRegionSet HotRegionSet::detect(std::span<const overlay::Key> sample_keys,
                                  const SystemConfig& config) {
  HotRegionSet set;
  set.key_space_ = config.overlay.key_space;
  if (sample_keys.empty() || config.hot_regions == 0) return set;

  // 1. Bucket the sample over the full space.
  std::vector<std::uint64_t> buckets(kDetectionBuckets, 0);
  const double width = static_cast<double>(config.overlay.key_space) /
                       static_cast<double>(kDetectionBuckets);
  for (const overlay::Key k : sample_keys) {
    auto b = static_cast<std::size_t>(static_cast<double>(k) / width);
    if (b >= kDetectionBuckets) b = kDetectionBuckets - 1;
    ++buckets[b];
  }
  const double mean = static_cast<double>(sample_keys.size()) /
                      static_cast<double>(kDetectionBuckets);
  const double threshold = config.hot_density_factor * mean;

  // 2. Merge adjacent hot buckets into candidate regions.
  struct Candidate {
    std::size_t lo_bucket;
    std::size_t hi_bucket;  // exclusive
    std::uint64_t mass;
  };
  std::vector<Candidate> candidates;
  for (std::size_t b = 0; b < kDetectionBuckets; ++b) {
    if (static_cast<double>(buckets[b]) <= threshold) continue;
    if (!candidates.empty() && candidates.back().hi_bucket == b) {
      candidates.back().hi_bucket = b + 1;
      candidates.back().mass += buckets[b];
    } else {
      candidates.push_back(Candidate{b, b + 1, buckets[b]});
    }
  }
  if (candidates.empty()) return set;

  // 3. Keep the heaviest `hot_regions` candidates, in key order.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.mass > b.mass; });
  candidates.resize(std::min(candidates.size(), config.hot_regions));
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.lo_bucket < b.lo_bucket;
            });

  // 4. Describe each region's internal CDF with knee points.
  for (const Candidate& c : candidates) {
    HotRegion region;
    region.lo = static_cast<overlay::Key>(static_cast<double>(c.lo_bucket) * width);
    region.hi = static_cast<overlay::Key>(static_cast<double>(c.hi_bucket) * width);
    if (c.hi_bucket == kDetectionBuckets) region.hi = config.overlay.key_space;
    region.item_share = static_cast<double>(c.mass) /
                        static_cast<double>(sample_keys.size());

    std::vector<double> inside;
    for (const overlay::Key k : sample_keys) {
      if (k >= region.lo && k < region.hi) {
        inside.push_back(static_cast<double>(k));
      }
    }
    METEO_ASSERT(inside.size() >= 1);
    if (inside.size() < 2) continue;  // too thin to describe; skip region
    const EmpiricalCdf cdf(inside);
    std::vector<Knot> curve = cdf.resample(128);
    // Cumulative *counts* rather than fractions (Eq. 7 uses differences,
    // so the unit cancels; counts match the paper's Fig. 4 axis).
    for (Knot& k : curve) k.y *= static_cast<double>(inside.size());
    region.knees = workload::find_knees(
        curve, {std::max<std::size_t>(config.hot_region_knees, 2), 0.0});
    if (region.knees.size() >= 2) set.regions_.push_back(std::move(region));
  }
  return set;
}

const HotRegion* HotRegionSet::region_of(overlay::Key key) const noexcept {
  for (const HotRegion& r : regions_) {
    if (key >= r.lo && key < r.hi) return &r;
  }
  return nullptr;
}

double HotRegionSet::degree_of_hotness(const HotRegion& region,
                                       std::size_t j) {
  METEO_EXPECTS(j + 1 < region.knees.size());
  const double y1 = region.knees.front().y;
  const double yt = region.knees.back().y;
  METEO_EXPECTS(yt > y1);
  return (region.knees[j + 1].y - region.knees[j].y) / (yt - y1);
}

overlay::Key HotRegionSet::name_node(Rng& rng) const {
  const overlay::Key uniform = rng.below(key_space_);
  const HotRegion* region = region_of(uniform);
  if (region == nullptr) return uniform;

  // Pick the sub-region with probability = degree of hotness (Eq. 7),
  // then draw uniformly inside it (equivalent to Fig. 5's re-draw loop,
  // without the wasted rejection sampling).
  const double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t j = 0; j + 1 < region->knees.size(); ++j) {
    acc += degree_of_hotness(*region, j);
    if (r < acc || j + 2 == region->knees.size()) {
      const auto lo = static_cast<overlay::Key>(region->knees[j].x);
      auto hi = static_cast<overlay::Key>(region->knees[j + 1].x);
      if (hi <= lo) hi = lo + 1;
      return lo + rng.below(hi - lo);
    }
  }
  return uniform;  // unreachable with >= 2 knees; keeps the compiler happy
}

}  // namespace meteo::core
