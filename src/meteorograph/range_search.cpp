#include "meteorograph/range_search.hpp"

#include <algorithm>
#include <cmath>

namespace meteo::core {

AttributeSpace::AttributeSpace(AttributeId id, double lo, double hi,
                               overlay::Key key_lo, overlay::Key key_hi,
                               AttributeScale scale)
    : id_(id), lo_(lo), hi_(hi), key_lo_(key_lo), key_hi_(key_hi),
      scale_(scale) {
  METEO_EXPECTS(lo < hi);
  METEO_EXPECTS(key_lo < key_hi);
  METEO_EXPECTS(scale != AttributeScale::kLog || lo > 0.0);
}

overlay::Key AttributeSpace::key_of(double value) const {
  value = std::clamp(value, lo_, hi_);
  double t = 0.0;
  switch (scale_) {
    case AttributeScale::kLinear:
      t = (value - lo_) / (hi_ - lo_);
      break;
    case AttributeScale::kLog:
      t = (std::log(value) - std::log(lo_)) / (std::log(hi_) - std::log(lo_));
      break;
  }
  const auto width = static_cast<double>(key_hi_ - key_lo_);
  auto key = key_lo_ + static_cast<overlay::Key>(t * width);
  if (key > key_hi_) key = key_hi_;
  return key;
}

AttributeId AttributeRegistry::register_attribute(double lo, double hi,
                                                  AttributeScale scale) {
  METEO_EXPECTS(spaces_.size() < kMaxAttributes);
  const auto id = static_cast<AttributeId>(spaces_.size());
  const overlay::Key slice = key_space_ / kMaxAttributes;
  const overlay::Key key_lo = static_cast<overlay::Key>(id) * slice;
  const overlay::Key key_hi = key_lo + slice - 1;
  spaces_.emplace_back(id, lo, hi, key_lo, key_hi, scale);
  return id;
}

const AttributeSpace& AttributeRegistry::space(AttributeId id) const {
  METEO_EXPECTS(id < spaces_.size());
  return spaces_[id];
}

}  // namespace meteo::core
