#pragma once

/// \file config.hpp
/// Configuration of a Meteorograph deployment (overlay + naming + storage
/// + search policies). Defaults mirror the paper's evaluation setup.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "overlay/overlay.hpp"
#include "vsm/absolute_angle.hpp"

namespace meteo::core {

/// The three system variants compared throughout §4.
enum class LoadBalanceMode {
  /// Raw Eq. 5 keys for items, uniform random node keys ("None").
  kNone,
  /// Eq. 6 CDF-equalized item keys ("Unused Hash Space", §3.4.1).
  kUnusedHashSpace,
  /// Eq. 6 plus hot-region node placement ("Unused Hash Space + Hot
  /// Regions", §3.4.2).
  kUnusedHashSpacePlusHotRegions,
};

/// How a full node chooses its victim when a publish overflows (Fig. 2's
/// "replace the least similar item").
enum class EvictionPolicy {
  /// Evict the stored item whose *raw angle key* is farthest from the
  /// incoming item's — O(log c), preserves the global angle ordering, and
  /// migrates items outward in the direction they belong. Default.
  kFarthestAngle,
  /// Evict the stored item with the lowest cosine similarity to the
  /// incoming one — the paper's literal wording, O(c) per eviction.
  kLeastSimilarCosine,
  /// Evict the oldest stored item (baseline for the eviction ablation).
  kFifo,
};

/// Which naming strategy maps item vectors to overlay keys (the
/// `core::NamingStrategy` seam, DESIGN.md §12).
enum class NamingStrategyKind {
  /// The paper's fitted absolute-angle scheme (Eq. 5 + Eq. 6). Default;
  /// bit-identical to the pre-strategy hardcoded path.
  kAngle,
  /// Order-preserving range key: the raw-angle band observed in the fit
  /// sample stretched affinely over the whole key space. Keeps angle
  /// order (iterator/browsing friendly) without the Eq. 6 knee fit.
  kRangeKey,
  /// Random-hyperplane multi-probe LSH: each item published under
  /// `lsh_tables` bucket keys; queries probe each bucket plus
  /// `lsh_probes` perturbations (NearBucket-LSH style).
  kLsh,
};

/// Strategy selection + LSH shape. All randomness is derived statelessly
/// from `lsh_seed`, never from op-path RNG draws, so any strategy obeys
/// the batch/epoch determinism contract by construction.
struct NamingConfig {
  NamingStrategyKind strategy = NamingStrategyKind::kAngle;
  /// Number of LSH hash tables g (= keys published per item).
  std::size_t lsh_tables = 4;
  /// Sign bits per table (buckets per table = 2^lsh_bits).
  std::size_t lsh_bits = 10;
  /// Extra multi-probe perturbations per table on the query path.
  std::size_t lsh_probes = 2;
  /// Hyperplane seed; fixed so keys are stable across runs and workers.
  std::uint64_t lsh_seed = 0x6c73685f6e616d65ULL;
  /// Walk budget (nodes) for each non-primary probe of a multi-key
  /// lookup; the primary probe keeps the op's own walk limit.
  std::size_t probe_walk = 4;
};

/// Per-node local ranking backend (§3.3: "nodes may further implement the
/// vector space model (VSM) or the latent semantic indexing (LSI)").
enum class LocalRanking {
  /// Exact cosine over the node's stored vectors. Default.
  kVsm,
  /// Rank-`lsi_rank` latent space (randomized truncated SVD per node);
  /// surfaces items sharing correlated-but-not-identical keywords.
  kLsi,
};

struct SystemConfig {
  /// Overlay shape (key space size, routing base, leaf sets).
  overlay::OverlayConfig overlay;
  /// Number of peer nodes (paper sweeps 1,000..10,000).
  std::size_t node_count = 1000;
  /// Universal dictionary dimension m (§3.7; paper workload: 89K).
  std::size_t dimension = 89'000;
  /// Absolute-angle convention (universal is the paper's §3.7 mode).
  vsm::AngleMode angle_mode = vsm::AngleMode::kUniversal;

  LoadBalanceMode load_balance =
      LoadBalanceMode::kUnusedHashSpacePlusHotRegions;
  /// Item-vector → overlay-key strategy (angle | range | LSH).
  NamingConfig naming;
  /// Fraction of items sampled to fit Eq. 6 / hot regions (§3.4: 0.5%).
  double sample_fraction = 0.005;
  /// Knee budget for the Eq. 6 remap (paper: 5).
  std::size_t eq6_knees = 5;
  /// Max number of hot regions (paper identifies 2: B and C).
  std::size_t hot_regions = 2;
  /// Knee budget inside each hot region (paper: 12 for B, 6 for C).
  std::size_t hot_region_knees = 12;
  /// Density threshold (x mean) above which a bucket counts as hot. The
  /// paper's regions B and C are *wide* (55% and 25% of the space) with
  /// internal skew, so the default is close to 1: adjacent mildly-hot
  /// buckets merge into wide regions whose internal skew the Fig. 5 node
  /// naming then equalizes.
  double hot_density_factor = 1.15;

  /// Items a node can store; 0 = unlimited (Fig. 7/8 use unlimited,
  /// Fig. 9/10 use 8c).
  std::size_t node_capacity = 0;
  /// Capability-aware storage (Tornado's hallmark): weight of capability
  /// class i, whose nodes hold node_capacity * 2^i items. Empty =
  /// homogeneous. E.g. {0.6, 0.25, 0.1, 0.05} gives classes 1x/2x/4x/8x.
  std::vector<double> capability_weights;
  EvictionPolicy eviction = EvictionPolicy::kFarthestAngle;
  /// Max overflow-chain hops for one publish; 0 = unlimited ("infinite
  /// hop count", §4).
  std::size_t publish_hop_limit = 0;

  /// Replicas per item including the primary (§3.6; paper sweeps 1,2,4,8).
  std::size_t replicas = 1;

  /// Publish a directory pointer at each item's raw key (§3.5.2). Disable
  /// to measure the pure walk-based search of Fig. 2.
  bool directory_pointers = true;

  /// Nodes a retrieval walk may visit before giving up; 0 = entire ring.
  std::size_t max_walk_nodes = 0;

  /// Local ranking backend used by retrieve().
  LocalRanking local_ranking = LocalRanking::kVsm;
  /// Latent dimensions per node under kLsi.
  std::size_t lsi_rank = 16;
};

}  // namespace meteo::core
