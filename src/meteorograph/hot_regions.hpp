#pragma once

/// \file hot_regions.hpp
/// Hot-region identification and the node-naming algorithm (paper §3.4.2,
/// Eq. 7 and Fig. 5).
///
/// Even after the Eq. 6 remap, segments fitted by only a handful of knees
/// retain internal skew: regions of the key space (the paper's B and C)
/// hold more items than a uniform share. Meteorograph compensates on the
/// *node* side — joining nodes that would land inside a hot region
/// re-draw their key biased toward the hotter sub-regions, so node density
/// tracks item density.
///
/// Detection here is algorithmic where the paper eyeballs its plots:
/// bucket the (post-remap) sampled item keys, mark buckets denser than
/// `hot_density_factor` x the mean, merge adjacent marked buckets into
/// regions, keep the heaviest `hot_regions` of them, and describe each
/// region's internal CDF with `hot_region_knees` knee points. The degree of
/// hotness of sub-region [x_a, x_b) is Eq. 7:
///
///     p_a = (y_b - y_a) / (y_t - y_1)
///
/// i.e. the share of the region's items that fall into that sub-region.

#include <cstddef>
#include <span>
#include <vector>

#include "common/cdf.hpp"
#include "common/rng.hpp"
#include "meteorograph/config.hpp"
#include "overlay/key_space.hpp"

namespace meteo::core {

/// One contiguous hot region with its internal knee description.
struct HotRegion {
  overlay::Key lo = 0;  // inclusive
  overlay::Key hi = 0;  // exclusive
  /// Knees of the region-internal item CDF: x = key, y = cumulative item
  /// count (any monotone unit works; Eq. 7 uses only differences).
  std::vector<Knot> knees;
  /// Fraction of all sampled items inside this region.
  double item_share = 0.0;
};

class HotRegionSet {
 public:
  /// Detects hot regions from the post-remap keys of the sampled items.
  /// Returns an empty set when the distribution is already flat.
  static HotRegionSet detect(std::span<const overlay::Key> sample_keys,
                             const SystemConfig& config);

  /// An empty set: name_node() degenerates to a uniform draw.
  HotRegionSet() = default;

  [[nodiscard]] std::span<const HotRegion> regions() const noexcept {
    return regions_;
  }

  /// The region containing `key`, or nullptr.
  [[nodiscard]] const HotRegion* region_of(overlay::Key key) const noexcept;

  /// Eq. 7 for sub-region index `j` of `region` (between knees j and j+1).
  /// \pre j + 1 < region.knees.size()
  [[nodiscard]] static double degree_of_hotness(const HotRegion& region,
                                                std::size_t j);

  /// The Fig. 5 naming algorithm: draw a uniform key; if it falls in a hot
  /// region, re-draw it inside a sub-region chosen with probability equal
  /// to its degree of hotness.
  [[nodiscard]] overlay::Key name_node(Rng& rng) const;

 private:
  overlay::Key key_space_ = overlay::kDefaultKeySpace;
  std::vector<HotRegion> regions_;  // sorted by lo
};

}  // namespace meteo::core
