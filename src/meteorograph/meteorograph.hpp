#pragma once

/// \file meteorograph.hpp
/// The Meteorograph system facade — the public API of the paper's primary
/// contribution.
///
/// A Meteorograph instance owns a structured overlay (nodes named per the
/// configured load-balance mode), the fitted naming scheme (Eq. 5 + Eq. 6),
/// hot-region statistics, the per-node stores (items, replicas, directory
/// pointers), and the bootstrap sample used by the first-hop optimization.
/// Every operation returns its exact cost in hops and messages so the
/// benches can regenerate the paper's figures.
///
/// Typical use:
///
///   SystemConfig cfg;                     // defaults mirror the paper
///   Meteorograph sys(cfg, sample, seed);  // sample: ~0.5% of the items
///   sys.publish(id, vector);              // Fig. 2 _publish
///   auto r = sys.retrieve(query, 10);     // Fig. 2 _retrieve
///   auto s = sys.similarity_search(keywords, 10);  // §3.5 two-phase

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "meteorograph/config.hpp"
#include "meteorograph/directory.hpp"
#include "meteorograph/first_hop.hpp"
#include "meteorograph/hot_regions.hpp"
#include "meteorograph/naming.hpp"
#include "meteorograph/range_search.hpp"
#include "meteorograph/storage.hpp"
#include "overlay/overlay.hpp"
#include "sim/metrics.hpp"
#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

struct PublishResult {
  bool success = false;
  /// The node the publish request routed to (closest to the item's key).
  overlay::NodeId home = overlay::kInvalidNode;
  /// Where the item finally landed after any overflow chaining.
  overlay::NodeId stored_at = overlay::kInvalidNode;
  std::size_t route_hops = 0;      ///< request routing (== messages)
  std::size_t chain_hops = 0;      ///< overflow-chain forwards
  std::size_t replica_messages = 0;///< replica placement traffic
  std::size_t pointer_messages = 0;///< directory-pointer publication
  std::size_t notify_messages = 0; ///< subscription deliveries triggered
  /// Message loss degraded the publish: the primary may be mis-homed, or
  /// replica/pointer placement legs were lost. Never set on perfect links.
  bool degraded = false;
  std::size_t replicas_missed = 0;  ///< replica homes never reached
  bool pointer_missed = false;      ///< directory pointer publication lost
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + chain_hops + replica_messages + pointer_messages +
           notify_messages;
  }
};

struct RetrieveResult {
  std::vector<vsm::ScoredItem> items;  ///< cosine-ranked, descending
  std::size_t route_hops = 0;
  std::size_t walk_hops = 0;
  std::size_t nodes_visited = 0;
  /// Explicit degradation instead of silent success: message loss cut the
  /// operation short of the requested amount. items_missed is the
  /// shortfall. Never set on perfect links.
  bool partial = false;
  std::size_t items_missed = 0;
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + walk_hops;
  }
};

struct LocateResult {
  bool found = false;
  overlay::NodeId node = overlay::kInvalidNode;
  /// True when the hit was a replica rather than the primary copy.
  bool via_replica = false;
  std::size_t route_hops = 0;  ///< "Closest" series of Fig. 9
  std::size_t walk_hops = 0;   ///< "Neighbors" series of Fig. 9
  /// Message loss ended the search before the item was ruled out; a
  /// negative `found` may be a false negative. Never set on perfect links.
  bool fault_blocked = false;
  [[nodiscard]] std::size_t total_hops() const noexcept {
    return route_hops + walk_hops;
  }
};

// --- notifications (§6 future work) -----------------------------------------

using SubscriptionId = std::uint64_t;

/// A standing multi-keyword interest planted in the directory space.
struct Subscription {
  SubscriptionId id = 0;
  std::vector<vsm::KeywordId> keywords;  ///< sorted, conjunctive
  overlay::NodeId subscriber = overlay::kInvalidNode;

  [[nodiscard]] bool matches(const vsm::SparseVector& v) const {
    return std::all_of(keywords.begin(), keywords.end(),
                       [&](vsm::KeywordId k) { return v.contains(k); });
  }
};

/// Delivered to the subscriber's inbox when a matching item is published.
struct Notification {
  SubscriptionId subscription = 0;
  vsm::ItemId item = 0;

  friend bool operator==(const Notification&, const Notification&) = default;
};

struct SubscribeResult {
  SubscriptionId id = 0;
  std::size_t planted_nodes = 0;  ///< directory nodes holding a copy
  std::size_t route_hops = 0;
  std::size_t walk_hops = 0;
  /// Message loss stopped planting before `horizon` copies were placed.
  bool partial = false;
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + walk_hops;
  }
};

struct DepartResult {
  std::size_t items_transferred = 0;
  std::size_t replicas_transferred = 0;
  std::size_t pointers_transferred = 0;
  std::size_t subscriptions_transferred = 0;
  std::size_t attribute_records_transferred = 0;
  std::size_t messages = 0;
};

struct WithdrawResult {
  bool removed = false;               ///< a primary copy was found and erased
  std::size_t replicas_removed = 0;
  bool pointer_removed = false;
  std::size_t messages = 0;
};

struct RangePublishResult {
  overlay::NodeId node = overlay::kInvalidNode;
  std::size_t route_hops = 0;
};

/// One (value, item) hit of a range search, in ascending value order.
struct RangeMatch {
  double value = 0.0;
  vsm::ItemId item = 0;

  friend bool operator==(const RangeMatch&, const RangeMatch&) = default;
};

struct RangeSearchResult {
  std::vector<RangeMatch> matches;
  std::size_t route_hops = 0;
  std::size_t walk_hops = 0;
  std::size_t nodes_visited = 0;
  /// Message loss truncated the range scan; matches may be incomplete.
  bool partial = false;
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + walk_hops;
  }
};

struct SearchResult {
  std::vector<vsm::ItemId> items;
  /// Hops spent on the lookup that discovered items[i] (0 when the item
  /// was found directly on a directory node) — Fig. 10(a)'s metric.
  std::vector<std::size_t> discovery_hops;
  std::size_t route_hops = 0;        ///< reaching the directory region
  std::size_t walk_hops = 0;         ///< directory-space neighbor steps
  std::size_t lookup_messages = 0;   ///< pointer-chasing traffic
  std::size_t nodes_visited = 0;     ///< directory nodes scanned
  /// Message loss lost pointer lookups or truncated the directory walk;
  /// the result set may be incomplete. Never set on perfect links.
  bool partial = false;
  std::size_t lookups_failed = 0;  ///< pointer chases lost to faults
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + walk_hops + lookup_messages;
  }
};

class Meteorograph {
 public:
  /// Builds the system: fits Eq. 6 and hot regions from `sample` (the
  /// bootstrap node's sampled data set, §3.4/§3.5.1), then joins
  /// config.node_count nodes named per the load-balance mode.
  /// \pre sample non-empty unless config.load_balance == kNone
  Meteorograph(SystemConfig config, std::span<const vsm::SparseVector> sample,
               std::uint64_t seed);

  // --- naming -------------------------------------------------------------
  [[nodiscard]] overlay::Key raw_key(const vsm::SparseVector& v) const {
    return naming_.raw_key(v);
  }
  [[nodiscard]] overlay::Key balanced_key(const vsm::SparseVector& v) const {
    return naming_.balanced_key(v);
  }

  // --- operations ----------------------------------------------------------
  /// Publishes an item (Fig. 2 _publish + §3.5.2 pointer + §3.6 replicas).
  /// `from` defaults to a uniformly random alive node.
  PublishResult publish(vsm::ItemId id, const vsm::SparseVector& vector,
                        std::optional<overlay::NodeId> from = std::nullopt);

  /// Fig. 2 _retrieve: route to the query's key, then walk closest
  /// neighbors until `amount` items with positive similarity are gathered.
  RetrieveResult retrieve(const vsm::SparseVector& query, std::size_t amount,
                          std::optional<overlay::NodeId> from = std::nullopt);

  /// Graceful departure: the node hands its stored state (items, replicas,
  /// directory pointers, subscriptions, attribute records) to the nodes
  /// now responsible before leaving — the storage-layer counterpart of
  /// the overlay's leave(). \pre node alive, alive_count() > 1
  DepartResult depart_node(overlay::NodeId node);

  /// Removes an item from the system: erases the primary copy (located by
  /// routing + neighbor walk), the replicas held near the item's key, and
  /// the directory pointer at its raw key. Replica removal is best-effort
  /// over the current closest homes (churn may have stranded copies
  /// elsewhere; soft state expires with its host).
  WithdrawResult withdraw(vsm::ItemId id, const vsm::SparseVector& vector,
                          std::optional<overlay::NodeId> from = std::nullopt);

  /// Routes toward a specific published item and walks neighbors until a
  /// node holding it (primary or replica) is found. walk_limit 0 = config
  /// default (whole ring). Used by Fig. 9 and the §4.3 availability study.
  LocateResult locate(vsm::ItemId id, const vsm::SparseVector& vector,
                      std::optional<overlay::NodeId> from = std::nullopt,
                      std::size_t walk_limit = 0);

  /// §3.5 two-phase similarity search over directory pointers, starting at
  /// the first-hop key when the sample has a match. k = 0 means "discover
  /// all matching items" (walks the entire pointer space).
  SearchResult similarity_search(std::span<const vsm::KeywordId> keywords,
                                 std::size_t k,
                                 std::optional<overlay::NodeId> from = std::nullopt);

  // --- range search (§6 future work) ---------------------------------------
  /// Registers a numeric attribute (e.g. memory size) over [lo, hi]; its
  /// values map order-preservingly into a dedicated slice of the key space.
  AttributeId register_attribute(double lo, double hi,
                                 AttributeScale scale = AttributeScale::kLinear);

  /// Publishes an (attribute, value) record for an item to the node
  /// responsible for the value's key.
  RangePublishResult publish_attribute(
      vsm::ItemId id, AttributeId attribute, double value,
      std::optional<overlay::NodeId> from = std::nullopt);

  /// All items whose `attribute` value lies in [lo, hi], ascending by
  /// value: one O(log N) route plus a successor walk across the range.
  [[nodiscard]] RangeSearchResult range_search(
      AttributeId attribute, double lo, double hi,
      std::optional<overlay::NodeId> from = std::nullopt);

  [[nodiscard]] const AttributeRegistry& attributes() const noexcept {
    return attributes_;
  }

  // --- notifications (§6 future work) ---------------------------------------
  /// Plants a standing interest in the directory space: copies of the
  /// subscription live on `horizon` consecutive directory nodes starting
  /// at the query's first-hop key, where matching items' pointers will be
  /// published. Future matching publishes push a Notification to
  /// `subscriber`'s inbox.
  SubscribeResult subscribe(std::span<const vsm::KeywordId> keywords,
                            overlay::NodeId subscriber,
                            std::size_t horizon = 8);

  /// Removes every planted copy; false if the id is unknown.
  bool unsubscribe(SubscriptionId id);

  /// Drains the inbox of `subscriber` (delivery order preserved).
  [[nodiscard]] std::vector<Notification> take_notifications(
      overlay::NodeId subscriber);

  // --- fault injection -------------------------------------------------------
  /// Attaches a message-level fault injector (e.g. sim::FaultPlan) to the
  /// overlay. Every routed message then passes through it; crashes it
  /// schedules are applied to the membership at the next operation
  /// boundary. Non-owning; nullptr detaches.
  void set_fault_hook(overlay::FaultHook* hook) noexcept {
    overlay_.set_fault_hook(hook);
  }

  // --- introspection --------------------------------------------------------
  [[nodiscard]] overlay::Overlay& network() noexcept { return overlay_; }
  [[nodiscard]] const overlay::Overlay& network() const noexcept {
    return overlay_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NamingScheme& naming() const noexcept { return naming_; }
  [[nodiscard]] const HotRegionSet& hot_regions() const noexcept {
    return hot_regions_;
  }
  [[nodiscard]] const FirstHopIndex& first_hop() const noexcept {
    return first_hop_;
  }
  [[nodiscard]] sim::MetricRegistry& metrics() noexcept { return metrics_; }

  /// Primary-item count per alive node (Fig. 8's load metric).
  [[nodiscard]] std::vector<std::size_t> node_loads() const;
  /// Storage capacity of a node (0 = unlimited). Heterogeneous when
  /// capability_weights is configured.
  [[nodiscard]] std::size_t capacity_of(overlay::NodeId id) const;
  /// Total primary items currently stored.
  [[nodiscard]] std::size_t stored_item_count() const;
  [[nodiscard]] const AngleStore& store_of(overlay::NodeId id) const;
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  struct NodeData {
    AngleStore items;
    std::unordered_map<vsm::ItemId, vsm::SparseVector> replicas;
    std::vector<DirectoryPointer> directory;
    /// Range-search records: attribute -> (value -> items), value-sorted.
    std::map<AttributeId, std::multimap<double, vsm::ItemId>> attributes;
    /// Standing interests planted on this directory node.
    std::vector<Subscription> subscriptions;
    /// Notifications delivered to this node as a subscriber.
    std::vector<Notification> inbox;
  };

  /// Ensures node_data_ covers every overlay node id.
  void sync_node_data();

  /// Operation prologue: applies crashes the fault hook declared due
  /// (overlay membership changes happen at operation boundaries, never
  /// mid-route), then syncs per-node state.
  void begin_operation();

  /// Folds an operation's retry/timeout/reroute costs into the registry
  /// (`retry.count`, `timeout.count`, `reroute.count`, `fault.timeout_cost`).
  void record_fault_stats(const overlay::HopStats& stats);

  /// Publish hook: fires notifications for subscriptions on the node that
  /// received the item's directory pointer. Returns delivery messages.
  std::size_t deliver_notifications(overlay::NodeId pointer_node,
                                    vsm::ItemId item,
                                    const vsm::SparseVector& vector);

  /// Walk iterator state: expands outward from a start node, alternating
  /// sides by key distance.
  struct Walker;

  SystemConfig config_;
  Rng rng_;
  NamingScheme naming_;
  HotRegionSet hot_regions_;
  FirstHopIndex first_hop_;
  overlay::Overlay overlay_;
  AttributeRegistry attributes_;
  std::vector<NodeData> node_data_;
  std::vector<std::size_t> node_capacity_;  // parallel to node_data_
  sim::MetricRegistry metrics_;
  SubscriptionId next_subscription_ = 1;
  std::unordered_map<SubscriptionId, std::vector<overlay::NodeId>>
      subscription_homes_;
};

}  // namespace meteo::core
