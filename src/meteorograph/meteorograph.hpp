#pragma once

/// \file meteorograph.hpp
/// The Meteorograph system facade — the public API of the paper's primary
/// contribution.
///
/// A Meteorograph instance owns a structured overlay (nodes named per the
/// configured load-balance mode), the naming strategy (angle | range |
/// LSH behind core::NamingStrategy, carrying the fitted Eq. 5 + Eq. 6
/// scheme), hot-region statistics, the per-node stores (items, replicas,
/// directory pointers), and the bootstrap sample used by the first-hop
/// optimization.
/// Every operation returns its exact cost in hops and messages (the shared
/// OpCost base) plus explicit degradation flags (the shared Degradation
/// base) so the benches can regenerate the paper's figures. Per-operation
/// knobs travel in small options structs built for designated
/// initializers.
///
/// Typical use:
///
///   SystemConfig cfg;                     // defaults mirror the paper
///   Meteorograph sys(cfg, sample, seed);  // sample: ~0.5% of the items
///   sys.publish(id, vector);              // Fig. 2 _publish
///   auto r = sys.retrieve(query, 10);     // Fig. 2 _retrieve
///   auto s = sys.similarity_search(keywords, 10);  // §3.5 two-phase
///   auto l = sys.locate(id, vector, {.walk_limit = 16});
///
/// Batched execution (DESIGN.md §7): wrap the system in a
/// core::BatchEngine (meteorograph/batch.hpp) to run whole vectors of
/// operations across a thread pool with bit-identical results at any
/// worker count:
///
///   BatchEngine engine(sys, {.workers = 8});
///   auto results = engine.retrieve(ops);  // ops: span<const RetrieveOp>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "meteorograph/api.hpp"
#include "meteorograph/config.hpp"
#include "meteorograph/directory.hpp"
#include "meteorograph/first_hop.hpp"
#include "meteorograph/hot_regions.hpp"
#include "meteorograph/naming/strategy.hpp"
#include "meteorograph/range_search.hpp"
#include "meteorograph/storage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/overlay.hpp"
#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

// OpCost/Degradation (the result bases below), outcome_label, ReadView,
// and the per-op options structs live in meteorograph/api.hpp.

struct PublishResult : OpCost, Degradation {
  bool success = false;
  /// The node the publish request routed to (closest to the item's key).
  overlay::NodeId home = overlay::kInvalidNode;
  /// Where the item finally landed after any overflow chaining.
  overlay::NodeId stored_at = overlay::kInvalidNode;
  std::size_t chain_hops = 0;      ///< overflow-chain forwards
  std::size_t replica_messages = 0;///< replica placement traffic
  std::size_t pointer_messages = 0;///< directory-pointer publication
  std::size_t notify_messages = 0; ///< subscription deliveries triggered
  std::size_t replicas_missed = 0;  ///< replica homes never reached
  bool pointer_missed = false;      ///< directory pointer publication lost
  /// Traffic spent publishing the extra strategy keys (route legs + their
  /// overflow chains). Always 0 under single-key naming strategies.
  std::size_t naming_key_messages = 0;
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + chain_hops + replica_messages + pointer_messages +
           notify_messages + naming_key_messages;
  }
};

struct RetrieveResult : OpCost, Degradation {
  std::vector<vsm::ScoredItem> items;  ///< cosine-ranked, descending
  std::size_t nodes_visited = 0;
  std::size_t items_missed = 0;  ///< shortfall vs. the requested amount
};

struct LocateResult : OpCost, Degradation {
  bool found = false;
  overlay::NodeId node = overlay::kInvalidNode;
  /// True when the hit was a replica rather than the primary copy.
  bool via_replica = false;
};

// --- notifications (§6 future work) -----------------------------------------

using SubscriptionId = std::uint64_t;

/// A standing multi-keyword interest planted in the directory space.
struct Subscription {
  SubscriptionId id = 0;
  std::vector<vsm::KeywordId> keywords;  ///< sorted, conjunctive
  overlay::NodeId subscriber = overlay::kInvalidNode;

  [[nodiscard]] bool matches(const vsm::SparseVector& v) const {
    return std::all_of(keywords.begin(), keywords.end(),
                       [&](vsm::KeywordId k) { return v.contains(k); });
  }
};

/// Delivered to the subscriber's inbox when a matching item is published.
struct Notification {
  SubscriptionId subscription = 0;
  vsm::ItemId item = 0;

  friend bool operator==(const Notification&, const Notification&) = default;
};

struct SubscribeResult : OpCost, Degradation {
  SubscriptionId id = 0;
  std::size_t planted_nodes = 0;  ///< directory nodes holding a copy
};

struct DepartResult {
  std::size_t items_transferred = 0;
  std::size_t replicas_transferred = 0;
  std::size_t pointers_transferred = 0;
  std::size_t subscriptions_transferred = 0;
  std::size_t attribute_records_transferred = 0;
  std::size_t messages = 0;
};

struct WithdrawResult {
  bool removed = false;               ///< a primary copy was found and erased
  std::size_t replicas_removed = 0;
  bool pointer_removed = false;
  std::size_t messages = 0;
};

struct RangePublishResult : OpCost {
  overlay::NodeId node = overlay::kInvalidNode;
};

/// One (value, item) hit of a range search, in ascending value order.
struct RangeMatch {
  double value = 0.0;
  vsm::ItemId item = 0;

  friend bool operator==(const RangeMatch&, const RangeMatch&) = default;
};

struct RangeSearchResult : OpCost, Degradation {
  std::vector<RangeMatch> matches;
  std::size_t nodes_visited = 0;
};

struct SearchResult : OpCost, Degradation {
  std::vector<vsm::ItemId> items;
  /// Hops spent on the lookup that discovered items[i] (0 when the item
  /// was found directly on a directory node) — Fig. 10(a)'s metric.
  std::vector<std::size_t> discovery_hops;
  std::size_t lookup_messages = 0;   ///< pointer-chasing traffic
  std::size_t nodes_visited = 0;     ///< directory nodes scanned
  std::size_t lookups_failed = 0;  ///< pointer chases lost to faults
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + walk_hops + lookup_messages;
  }
};

class Meteorograph {
 public:
  /// Builds the system: fits Eq. 6 and hot regions from `sample` (the
  /// bootstrap node's sampled data set, §3.4/§3.5.1), then joins
  /// config.node_count nodes named per the load-balance mode.
  /// \pre sample non-empty unless config.load_balance == kNone
  Meteorograph(SystemConfig config, std::span<const vsm::SparseVector> sample,
               std::uint64_t seed);

  // --- naming -------------------------------------------------------------
  // raw_key/balanced_key expose the fitted Eq. 5/Eq. 6 scheme (the
  // directory coordinate under every strategy); the strategy itself owns
  // the op-path keys (publish targets, probe plans).
  [[nodiscard]] overlay::Key raw_key(const vsm::SparseVector& v) const {
    return strategy_->scheme().raw_key(v);
  }
  [[nodiscard]] overlay::Key balanced_key(const vsm::SparseVector& v) const {
    return strategy_->scheme().balanced_key(v);
  }
  [[nodiscard]] const NamingStrategy& naming_strategy() const noexcept {
    return *strategy_;
  }

  // --- operations ----------------------------------------------------------
  /// Publishes an item (Fig. 2 _publish + §3.5.2 pointer + §3.6 replicas).
  PublishResult publish(vsm::ItemId id, const vsm::SparseVector& vector,
                        const PublishOptions& options = {});

  /// Fig. 2 _retrieve: route to the query's key, then walk closest
  /// neighbors until `amount` items with positive similarity are gathered.
  RetrieveResult retrieve(const vsm::SparseVector& query, std::size_t amount,
                          const RetrieveOptions& options = {});

  /// Graceful departure: the node hands its stored state (items, replicas,
  /// directory pointers, subscriptions, attribute records) to the nodes
  /// now responsible before leaving — the storage-layer counterpart of
  /// the overlay's leave(). \pre node alive, alive_count() > 1
  DepartResult depart_node(overlay::NodeId node);

  /// Removes an item from the system: erases the primary copy (located by
  /// routing + neighbor walk), the replicas held near the item's key, and
  /// the directory pointer at its raw key. Replica removal is best-effort
  /// over the current closest homes (churn may have stranded copies
  /// elsewhere; soft state expires with its host).
  WithdrawResult withdraw(vsm::ItemId id, const vsm::SparseVector& vector,
                          const WithdrawOptions& options = {});

  /// Routes toward a specific published item and walks neighbors until a
  /// node holding it (primary or replica) is found. Used by Fig. 9 and
  /// the §4.3 availability study.
  LocateResult locate(vsm::ItemId id, const vsm::SparseVector& vector,
                      const LocateOptions& options = {});

  /// §3.5 two-phase similarity search over directory pointers, starting at
  /// the first-hop key when the sample has a match. k = 0 means "discover
  /// all matching items" (walks the entire pointer space).
  SearchResult similarity_search(std::span<const vsm::KeywordId> keywords,
                                 std::size_t k,
                                 const SearchOptions& options = {});

  // --- range search (§6 future work) ---------------------------------------
  /// Registers a numeric attribute (e.g. memory size) over [lo, hi]; its
  /// values map order-preservingly into a dedicated slice of the key space.
  AttributeId register_attribute(double lo, double hi,
                                 AttributeScale scale = AttributeScale::kLinear);

  /// Publishes an (attribute, value) record for an item to the node
  /// responsible for the value's key.
  RangePublishResult publish_attribute(vsm::ItemId id, AttributeId attribute,
                                       double value,
                                       const PublishOptions& options = {});

  /// All items whose `attribute` value lies in [lo, hi], ascending by
  /// value: one O(log N) route plus a successor walk across the range.
  [[nodiscard]] RangeSearchResult range_search(
      AttributeId attribute, double lo, double hi,
      const RangeSearchOptions& options = {});

  [[nodiscard]] const AttributeRegistry& attributes() const noexcept {
    return attributes_;
  }

  // --- notifications (§6 future work) ---------------------------------------
  /// Plants a standing interest in the directory space: copies of the
  /// subscription live on `options.horizon` consecutive directory nodes
  /// starting at the query's first-hop key, where matching items' pointers
  /// will be published. Future matching publishes push a Notification to
  /// `subscriber`'s inbox.
  SubscribeResult subscribe(std::span<const vsm::KeywordId> keywords,
                            overlay::NodeId subscriber,
                            const SubscribeOptions& options = {});

  /// Removes every planted copy; false if the id is unknown.
  bool unsubscribe(SubscriptionId id);

  /// Drains the inbox of `subscriber` (delivery order preserved).
  [[nodiscard]] std::vector<Notification> take_notifications(
      overlay::NodeId subscriber);

  // --- fault injection -------------------------------------------------------
  /// Attaches a message-level fault injector (e.g. sim::FaultPlan) to the
  /// overlay. Every routed message then passes through it; crashes it
  /// schedules are applied to the membership at the next operation
  /// boundary. Non-owning; nullptr detaches. Returns false — leaving the
  /// current hook untouched — while a BatchEngine batch is in flight:
  /// swapping fault fates mid-stream would make in-flight operations
  /// depend on worker timing.
  bool set_fault_hook(overlay::FaultHook* hook) noexcept {
    if (batch_in_flight_) return false;
    overlay_.set_fault_hook(hook);
    return true;
  }

  /// True between BatchEngine::*() entry and exit.
  [[nodiscard]] bool batch_in_flight() const noexcept {
    return batch_in_flight_;
  }

  // --- observability ---------------------------------------------------------
  /// Attaches a span/event trace log (docs/OBSERVABILITY.md). Every
  /// subsequent operation opens a span and records its hops, retries,
  /// timeouts, reroutes, and fault verdicts; spans land in `log` in
  /// commit order. Non-owning; nullptr detaches (the default — with no
  /// log attached the op path pays a single branch). Returns false —
  /// leaving the current log untouched — while a batch is in flight, for
  /// the same reason as set_fault_hook.
  bool set_tracer(obs::TraceLog* log) noexcept {
    if (batch_in_flight_) return false;
    tracer_ = log;
    return true;
  }
  [[nodiscard]] obs::TraceLog* tracer() const noexcept { return tracer_; }

  // --- introspection --------------------------------------------------------
  [[nodiscard]] overlay::Overlay& network() noexcept { return overlay_; }
  [[nodiscard]] const overlay::Overlay& network() const noexcept {
    return overlay_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NamingScheme& naming() const noexcept {
    return strategy_->scheme();
  }
  [[nodiscard]] const HotRegionSet& hot_regions() const noexcept {
    return hot_regions_;
  }
  [[nodiscard]] const FirstHopIndex& first_hop() const noexcept {
    return first_hop_;
  }
  [[nodiscard]] obs::MetricRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Primary-item count per alive node (Fig. 8's load metric).
  [[nodiscard]] std::vector<std::size_t> node_loads() const;
  /// Storage capacity of a node (0 = unlimited). Heterogeneous when
  /// capability_weights is configured.
  [[nodiscard]] std::size_t capacity_of(overlay::NodeId id) const;
  /// Total primary items currently stored.
  [[nodiscard]] std::size_t stored_item_count() const;
  [[nodiscard]] const AngleStore& store_of(overlay::NodeId id) const;
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  friend class BatchEngine;
  friend class EpochEngine;

  struct NodeData {
    AngleStore items;
    /// Ordered by id: retrieve harvests replicas under a result budget
    /// and depart re-homes them, so iteration order is result-visible
    /// (meteo-lint R1 — hash order may not feed results). ReplicaStore
    /// iterates like the std::map it replaced and adds the epoch-stamped
    /// view the EpochEngine's pinned readers need (DESIGN.md §11).
    ReplicaStore replicas;
    DirectoryStore directory;
    /// Range-search records: attribute -> (value -> items), value-sorted.
    std::map<AttributeId, std::multimap<double, vsm::ItemId>> attributes;
    /// Standing interests planted on this directory node.
    std::vector<Subscription> subscriptions;
    /// Notifications delivered to this node as a subscriber.
    std::vector<Notification> inbox;
  };

  /// Ensures node_data_ covers every overlay node id.
  void sync_node_data();

  /// Operation prologue: applies crashes the fault hook declared due
  /// (overlay membership changes happen at operation boundaries, never
  /// mid-route), then syncs per-node state.
  void begin_operation();

  /// Folds an operation's retry/timeout/reroute costs into the registry
  /// (`fault.retries`, `fault.timeouts`, `fault.reroutes`,
  /// `fault.timeout_cost`, all labelled with the op kind).
  void record_fault_stats(obs::OpKind op, const overlay::HopStats& stats);

  /// Cached handles into metrics_ for the per-op series. Handles are
  /// stable for the registry's lifetime — reset() zeroes cells in place
  /// — so the find-or-create cost (label-set and bucket-vector
  /// allocation plus the map walk) is paid once per series, never per
  /// operation. Everything is still created lazily, on first nonzero
  /// use, so dump contents are unchanged (ordered-map export does not
  /// depend on creation order) and fault-free runs keep fault-free maps.
  struct OpSeries {
    struct OutcomeCounter {
      const char* label = nullptr;  ///< outcome_label() literal
      obs::Counter counter;
    };
    std::vector<OutcomeCounter> count;         ///< op.count{op,outcome}
    std::optional<obs::Counter> messages;      ///< op.messages{op}
    std::optional<obs::Histogram> route_hops;  ///< op.route_hops{op}
    std::optional<obs::Histogram> walk_hops;   ///< op.walk_hops{op}
    std::optional<obs::Counter> fault_retries;
    std::optional<obs::Counter> fault_timeouts;
    std::optional<obs::Counter> fault_reroutes;
    std::optional<obs::Histogram> fault_timeout_cost;
    std::optional<obs::Histogram> naming_probes;  ///< naming.probes{op}
    std::optional<obs::Histogram> naming_keys;    ///< naming.keys{op}
  };
  obs::Counter& op_count(obs::OpKind op, const char* outcome);
  obs::Counter& op_messages(obs::OpKind op);
  obs::Histogram& op_route_hops(obs::OpKind op);
  obs::Histogram& op_walk_hops(obs::OpKind op);
  obs::Histogram& op_naming_probes(obs::OpKind op);
  obs::Histogram& op_naming_keys(obs::OpKind op);

  /// Per-operation hop accounting captured by the const op cores. The
  /// batch engine holds one OpTrace per operation (a private shard — no
  /// locking) and folds them into the metric registry in op-index order,
  /// which keeps metric accumulation deterministic. The span recorder
  /// rides along: events are buffered here per op and committed to the
  /// shared TraceLog by record_* in the same op-index order, so traces
  /// are bit-identical at any worker count (DESIGN.md §8).
  struct OpTrace {
    overlay::HopStats route;
    overlay::HopStats walk;
    obs::SpanRecorder span;
    /// Probe keys this read op planned (0 under single-key strategies —
    /// the record folds then skip the naming.* series entirely).
    std::size_t naming_probes = 0;
  };

  /// The parallelizable half of publish: source selection + the main
  /// route. Everything that touches node state (store/chain, replicas,
  /// pointer, notifications) lives in commit_publish. The span opened by
  /// plan_publish travels in the plan so one publish is one span across
  /// the plan/commit split.
  struct PublishPlan {
    overlay::Key raw = 0;
    overlay::Key key = 0;  ///< keys.front(): the primary publish key
    overlay::NodeId source = overlay::kInvalidNode;
    overlay::RouteResult route;
    obs::SpanRecorder span;
    /// Multi-key publication (strategy.multi_key()): every publish key,
    /// primary first, plus one planned route per extra key. Both sized 0
    /// under single-key strategies so the commit path shape — and the
    /// plan's allocation profile — match the pre-strategy code exactly.
    std::vector<overlay::Key> extra_keys;
    std::vector<overlay::RouteResult> extra_routes;
  };

  // Read-only operation cores. No membership changes, no metric-registry
  // writes, no facade-RNG draws: safe to run concurrently against the
  // frozen overlay snapshot with a caller-owned RNG substream.
  RetrieveResult retrieve_op(const vsm::SparseVector& query,
                             std::size_t amount,
                             const RetrieveOptions& options, Rng& rng,
                             OpTrace& trace, ReadView view = {}) const;
  LocateResult locate_op(vsm::ItemId id, const vsm::SparseVector& vector,
                         const LocateOptions& options, Rng& rng,
                         OpTrace& trace, ReadView view = {}) const;
  SearchResult search_op(std::span<const vsm::KeywordId> keywords,
                         std::size_t k, const SearchOptions& options, Rng& rng,
                         OpTrace& trace, ReadView view = {}) const;
  RangeSearchResult range_search_op(AttributeId attribute, double lo,
                                    double hi,
                                    const RangeSearchOptions& options,
                                    Rng& rng, OpTrace& trace,
                                    ReadView view = {}) const;

  // Deterministic metric folds — reproduce the exact recording sequence
  // the sequential facade calls would have produced. OpTrace is mutable:
  // the fold also commits the op's span into the trace log.
  void record_retrieve(const RetrieveResult& r, OpTrace& trace);
  void record_locate(const LocateResult& r, OpTrace& trace);
  void record_search(const SearchResult& r, OpTrace& trace);
  void record_range_search(const RangeSearchResult& r, OpTrace& trace);

  // Mutating split for batched publish: plan in parallel (const), commit
  // sequentially in op-index order. The plan is mutable in commit: its
  // span accumulates the commit legs' events and is finished there.
  PublishPlan plan_publish(const vsm::SparseVector& vector,
                           const PublishOptions& options, Rng& rng) const;
  /// Fig. 2 step 3: store `entry` at `start`, overflow-chaining through
  /// closest neighbors while nodes are full. Returns true once stored;
  /// `stored_at` is the final host and `chain_hops` counts the forwards
  /// (also the kChainHop event detail). Shared by the primary copy and a
  /// multi-key strategy's extra copies.
  bool chain_store(StoredEntry entry, overlay::NodeId start,
                   std::size_t hop_budget, obs::SpanRecorder* rec,
                   std::size_t& chain_hops, overlay::NodeId& stored_at);
  PublishResult commit_publish(vsm::ItemId id, const vsm::SparseVector& vector,
                               PublishPlan& plan);
  WithdrawResult withdraw_with(vsm::ItemId id, const vsm::SparseVector& vector,
                               const WithdrawOptions& options, Rng& rng);

  /// Batch bracket used by BatchEngine: begin applies due crashes once for
  /// the whole batch and freezes the membership snapshot; set_fault_hook
  /// is rejected in between. \pre no batch already in flight
  void begin_batch();
  void end_batch() noexcept { batch_in_flight_ = false; }

  /// Publish hook: fires notifications for subscriptions on the node that
  /// received the item's directory pointer. Returns delivery messages.
  /// Delivery-leg events ride the publishing op's span via `rec`.
  std::size_t deliver_notifications(overlay::NodeId pointer_node,
                                    vsm::ItemId item,
                                    const vsm::SparseVector& vector,
                                    obs::SpanRecorder* rec);

  /// Walk iterator state: expands outward from a start node, alternating
  /// sides by key distance.
  struct Walker;

  SystemConfig config_;
  Rng rng_;
  std::unique_ptr<NamingStrategy> strategy_;
  HotRegionSet hot_regions_;
  FirstHopIndex first_hop_;
  overlay::Overlay overlay_;
  AttributeRegistry attributes_;
  std::vector<NodeData> node_data_;
  std::vector<std::size_t> node_capacity_;  // parallel to node_data_
  obs::MetricRegistry metrics_;
  static constexpr std::size_t kOpKinds = 9;  // obs::OpKind cardinality
  std::array<OpSeries, kOpKinds> op_series_;
  std::optional<obs::Counter> locate_found_;
  std::optional<obs::Histogram> publish_chain_hops_;
  std::optional<obs::Histogram> search_items_;
  /// Span/event sink; nullptr = tracing off (the default).
  obs::TraceLog* tracer_ = nullptr;
  /// Epoch stamped onto spans of mutating ops whose recorders finish
  /// inside the commit path (publish, withdraw, depart). The EpochEngine
  /// sets it to the commit epoch around its write phase; the facade
  /// leaves it 0, so standalone spans keep the default stamp.
  std::uint64_t span_epoch_ = 0;
  bool batch_in_flight_ = false;
  SubscriptionId next_subscription_ = 1;
  std::unordered_map<SubscriptionId, std::vector<overlay::NodeId>>
      subscription_homes_;
};

}  // namespace meteo::core
