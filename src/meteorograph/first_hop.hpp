#pragma once

/// \file first_hop.hpp
/// The first-hop optimization (paper §3.5.1).
///
/// A query with few keywords has a raw key far from the keys of the
/// (many-keyword) items that match it. Before issuing a search, a node
/// consults a small sampled data set — downloaded from the bootstrap node
/// at join time — and starts the search at the *smallest* raw key among
/// sample items matching the queried keywords, which places the walk at
/// the low edge of the matching items' key range.

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "overlay/key_space.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

class FirstHopIndex {
 public:
  /// Adds a sample item (its raw Eq. 5 key and its keyword set).
  void add(overlay::Key raw_key, std::vector<vsm::KeywordId> keywords);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Smallest raw key among sample items containing *all* of `keywords`;
  /// nullopt when no sample item matches (or the query is empty).
  [[nodiscard]] std::optional<overlay::Key> smallest_matching_key(
      std::span<const vsm::KeywordId> keywords) const;

 private:
  struct Entry {
    overlay::Key raw_key;
    std::vector<vsm::KeywordId> keywords;  // sorted
  };
  std::vector<Entry> entries_;
  /// keyword -> indices of entries containing it (ascending).
  std::unordered_map<vsm::KeywordId, std::vector<std::uint32_t>> postings_;
};

}  // namespace meteo::core
