#include "meteorograph/maintenance.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace meteo::core {

MaintenanceProcess::MaintenanceProcess(Meteorograph& system,
                                       sim::EventQueue* queue, double period)
    : system_(system), queue_(queue), period_(period) {
  if (queue_ != nullptr && period_ > 0.0) schedule();
}

void MaintenanceProcess::schedule() {
  queue_->schedule_in(period_, [this] {
    if (stopped_) return;
    stats_.messages += run_once();
    schedule();
  });
}

void MaintenanceProcess::track(vsm::ItemId id, vsm::SparseVector vector) {
  METEO_EXPECTS(!vector.empty());
  const auto it = std::find_if(items_.begin(), items_.end(),
                               [&](const TrackedItem& t) { return t.id == id; });
  if (it != items_.end()) {
    it->vector = std::move(vector);
    return;
  }
  items_.push_back(TrackedItem{id, std::move(vector)});
}

bool MaintenanceProcess::untrack(vsm::ItemId id) {
  const auto it = std::find_if(items_.begin(), items_.end(),
                               [&](const TrackedItem& t) { return t.id == id; });
  if (it == items_.end()) return false;
  items_.erase(it);
  return true;
}

std::size_t MaintenanceProcess::run_once() {
  std::size_t messages = 0;
  if (system_.network().alive_count() == 0) return 0;
  for (const TrackedItem& item : items_) {
    // Withdraw the (possibly stale-homed) copy first so churn-induced home
    // changes do not leave duplicates behind, then publish fresh: the item
    // lands on the node currently closest to its key with a full replica
    // set.
    messages += system_.withdraw(item.id, item.vector).messages;
    const PublishResult r = system_.publish(item.id, item.vector);
    messages += r.total_messages();
    if (r.success) ++stats_.items_republished;
    if (r.degraded) ++stats_.degraded_republishes;
  }
  ++stats_.cycles;
  return messages;
}

}  // namespace meteo::core
