#pragma once

/// \file server.hpp
/// A minimal long-running serve loop over the EpochEngine (DESIGN.md §11).
///
/// The server accepts a stream of requests into a bounded queue
/// (admission control: submit() refuses when the queue is full, callers
/// back off and retry) and serves them in epoch-sized windows: each
/// pump() drains up to `ops_per_epoch` queued requests into the
/// EpochEngine, seals one epoch, and delivers a completion per request.
///
/// Deadlines reuse the fault-path timeout/backoff machinery: every op's
/// simulated seconds spent waiting on timeouts (the same quantity the
/// `fault.timeout_cost` histogram observes) is compared against the
/// per-op deadline budget, and completions past budget are flagged.
/// The server itself holds no wall clocks — simulated time only, so a
/// serve schedule replays bit-identically (determinism contract, §8);
/// the bench driver wraps pump() with real timers.
///
/// Requests borrow their vectors exactly like the batch/epoch op structs:
/// the caller keeps a request's payload alive until its completion fires.
///
///   Server server(sys, {.queue_capacity = 256, .ops_per_epoch = 64});
///   auto ticket = server.submit(RetrieveOp{&query, 10});
///   if (!ticket) { /* queue full: back off */ }
///   server.pump([](const Server::Completion& done) { ... });

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <variant>

#include "meteorograph/epoch.hpp"

namespace meteo::core {

struct ServeOptions {
  /// Bound on queued (admitted, unserved) requests; submit() returns
  /// nullopt beyond it.
  std::size_t queue_capacity = 1024;
  /// Requests drained per pump() — the epoch window size. Smaller windows
  /// advance epochs (and expose fresh writes to readers) sooner; larger
  /// windows amortize the seal barrier over more ops.
  std::size_t ops_per_epoch = 64;
  /// Worker threads for the engine's read phases; 0 = hardware default.
  std::size_t workers = 0;
  /// Substream root, forwarded to the EpochEngine.
  std::uint64_t seed = 0x6d657465'6f726f67ULL;
  /// Per-op budget of simulated timeout-wait seconds; completions whose
  /// op waited longer are flagged deadline_exceeded. 0 disables.
  double deadline_seconds = 0.0;
};

class Server {
 public:
  /// Admission token: identifies one accepted request in its completion.
  using Ticket = std::uint64_t;

  /// Any submittable operation (the epoch window mixes all kinds).
  using Request = std::variant<RetrieveOp, LocateOp, SearchOp, RangeSearchOp,
                               PublishOp, WithdrawOp, DepartOp>;

  struct Completion {
    Ticket ticket = 0;
    /// The epoch that served the request (reads pinned it; writes
    /// committed into it + 1).
    vsm::Epoch epoch = 0;
    EpochEngine::OpResult result;
    /// Simulated seconds the op spent waiting on timeouts.
    double timeout_cost = 0.0;
    /// True when timeout_cost exceeded options.deadline_seconds.
    bool deadline_exceeded = false;
  };
  using CompletionFn = std::function<void(const Completion&)>;

  Server(Meteorograph& system, ServeOptions options = {});

  /// Admits a request, FIFO. Returns its ticket, or nullopt when the
  /// queue is at capacity (admission control — the caller backs off).
  std::optional<Ticket> submit(Request request);

  /// Serves one epoch window: drains up to ops_per_epoch queued requests,
  /// seals the epoch, and fires `on_complete` once per served request in
  /// admission order. Returns the number served; 0 when the queue was
  /// empty (no epoch is burned idling).
  std::size_t pump(const CompletionFn& on_complete);

  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }
  [[nodiscard]] vsm::Epoch epoch() const noexcept { return engine_.epoch(); }

  // Lifetime tallies (admission + deadline accounting).
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t deadline_misses() const noexcept {
    return deadline_misses_;
  }

 private:
  EpochEngine engine_;
  ServeOptions options_;
  std::deque<std::pair<Ticket, Request>> queue_;
  Ticket next_ticket_ = 1;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t deadline_misses_ = 0;
};

}  // namespace meteo::core
