#pragma once

/// \file storage.hpp
/// Per-node item storage ordered by raw angle key, supporting the three
/// eviction policies of the publish overflow path (Fig. 2 step 3).
///
/// Keeping items sorted by their raw (Eq. 5) key makes the default
/// farthest-angle eviction O(log c) and gives the walk-based retrieval a
/// natural invariant: after any publish sequence every node holds a
/// contiguous band of the global angle order (its own band plus overflow
/// spill from neighbors).
///
/// The vectors themselves live in an embedded `vsm::LocalIndex` — the
/// inverted postings engine of DESIGN.md §9 — so the similarity kernels
/// (`top_k`, `match_all`) run sub-linearly in the store size and the
/// key-ordered multimap only carries item ids, never a second copy of
/// the vectors.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "meteorograph/config.hpp"
#include "overlay/key_space.hpp"
#include "vsm/local_index.hpp"
#include "vsm/lsi.hpp"
#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

struct StoredEntry {
  vsm::ItemId id = 0;
  overlay::Key raw_key = 0;  // Eq. 5 key (angle order)
  vsm::SparseVector vector;
};

/// Which side of the node's band an eviction came from — the direction the
/// evicted item should chain toward.
enum class EvictSide {
  kLow,   // toward the predecessor (smaller keys)
  kHigh,  // toward the successor (larger keys)
};

struct Eviction {
  StoredEntry entry;
  EvictSide side = EvictSide::kHigh;
};

class AngleStore {
 public:
  /// Inserts an entry (replaces an existing item with the same id).
  void insert(StoredEntry entry);

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }
  [[nodiscard]] bool contains(vsm::ItemId id) const noexcept {
    return index_.contains(id);
  }

  /// The stored vector of `id`, or nullptr.
  [[nodiscard]] const vsm::SparseVector* vector_of(vsm::ItemId id) const;

  bool erase(vsm::ItemId id);

  /// Removes one entry according to `policy`:
  ///  - kFarthestAngle: the end of the key-sorted band farther from
  ///    `incoming`'s raw key; side reports which end.
  ///  - kLeastSimilarCosine: lowest cosine to `incoming`'s vector; side is
  ///    the evictee's position relative to `incoming`'s raw key.
  ///  - kFifo: oldest insertion; side relative to `incoming`'s raw key.
  /// \pre !empty()
  [[nodiscard]] Eviction evict(const StoredEntry& incoming,
                               EvictionPolicy policy);

  /// Top-k by cosine to `query`, descending (score ties toward smaller id).
  [[nodiscard]] std::vector<vsm::ScoredItem> top_k(
      const vsm::SparseVector& query, std::size_t k) const;

  /// Caller-buffer overload (clears and refills `out`, reusing capacity).
  void top_k(const vsm::SparseVector& query, std::size_t k,
             std::vector<vsm::ScoredItem>& out) const;

  /// Top-k by latent-space cosine (§3.3's LSI option). The per-node LSI
  /// model is built lazily and cached until the store mutates; `seed`
  /// makes the randomized SVD deterministic.
  [[nodiscard]] std::vector<vsm::ScoredItem> top_k_lsi(
      const vsm::SparseVector& query, std::size_t k, std::size_t rank,
      std::uint64_t seed) const;

  /// Items containing every keyword of `keywords`, ascending id.
  [[nodiscard]] std::vector<vsm::ItemId> match_all(
      std::span<const vsm::KeywordId> keywords) const;
  void match_all(std::span<const vsm::KeywordId> keywords,
                 std::vector<vsm::ItemId>& out) const;

  /// Iterates all entries (angle order). The StoredEntry passed to `fn`
  /// is a per-call temporary (its vector is copied out of the index).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, id] : by_key_) {
      fn(StoredEntry{id, key, *index_.vector_of(id)});
    }
  }

  /// Smallest/largest raw key stored. \pre !empty()
  [[nodiscard]] overlay::Key min_raw_key() const;
  [[nodiscard]] overlay::Key max_raw_key() const;

  // --- epoch-stamped views (DESIGN.md §11) --------------------------------
  // The key-ordered map and metadata always track the *latest* state (the
  // write path — evict chains, min/max keys — never reads a pinned view);
  // only the embedded vector index versions its contents.

  void set_write_epoch(vsm::Epoch e) noexcept { index_.set_write_epoch(e); }
  void retain_versions(bool on) noexcept { index_.retain_versions(on); }
  void gc() noexcept { index_.gc(); }

  [[nodiscard]] bool contains_at(vsm::ItemId id,
                                 vsm::Epoch at) const noexcept {
    return index_.contains_at(id, at);
  }
  [[nodiscard]] bool empty_at(vsm::Epoch at) const noexcept {
    return index_.empty_at(at);
  }
  void top_k_at(const vsm::SparseVector& query, std::size_t k, vsm::Epoch at,
                std::vector<vsm::ScoredItem>& out) const {
    index_.top_k_at(query, k, at, out);
  }
  void match_all_at(std::span<const vsm::KeywordId> keywords, vsm::Epoch at,
                    std::vector<vsm::ItemId>& out) const {
    index_.match_all_at(keywords, at, out);
  }

 private:
  using KeyMap = std::multimap<overlay::Key, vsm::ItemId>;

  struct Meta {
    KeyMap::iterator pos;        ///< the item's slot in angle order
    std::uint64_t order = 0;     ///< insertion sequence (kFifo)
  };

  void invalidate_lsi() noexcept { ++version_; }

  /// Removes `id` from the key map and metadata (not the vector index).
  void detach(vsm::ItemId id);

  KeyMap by_key_;
  std::unordered_map<vsm::ItemId, Meta> meta_;
  vsm::LocalIndex index_;  ///< owns the vectors + inverted postings
  std::uint64_t next_order_ = 0;

  /// LSI cache: rebuilt when the store version moves past the cached one.
  std::uint64_t version_ = 0;
  mutable std::uint64_t lsi_version_ = ~std::uint64_t{0};
  mutable std::size_t lsi_rank_ = 0;
  mutable std::optional<vsm::LsiModel> lsi_model_;
};

/// Per-node replica copies (§3.6), id-ordered like the std::map it
/// replaces, with the same epoch-stamped view discipline as the other
/// stores (DESIGN.md §11): while retention is armed, erases and
/// overwrites park the displaced copy in a retired sidecar so a reader
/// pinned at an older epoch still sees it. With the defaults (retain
/// off, write epoch 0) behavior and iteration order are identical to
/// the plain map.
class ReplicaStore {
 public:
  struct Slot {
    vsm::SparseVector vector;
    vsm::Epoch added = 0;
  };

  /// Inserts or overwrites the copy for `id` (std::map::insert_or_assign).
  void insert_or_assign(vsm::ItemId id, const vsm::SparseVector& vector) {
    const auto it = live_.find(id);
    if (it == live_.end()) {
      live_.emplace(id, Slot{vector, write_epoch_});
      return;
    }
    retire(id, it->second);
    it->second = Slot{vector, write_epoch_};
  }

  /// Inserts only when absent (std::map::emplace). Returns true on insert.
  bool emplace(vsm::ItemId id, vsm::SparseVector vector) {
    return live_.emplace(id, Slot{std::move(vector), write_epoch_}).second;
  }

  /// Removes the copy for `id`; returns the number removed (0 or 1).
  std::size_t erase(vsm::ItemId id) {
    const auto it = live_.find(id);
    if (it == live_.end()) return 0;
    retire(id, it->second);
    live_.erase(it);
    return 1;
  }

  [[nodiscard]] bool contains(vsm::ItemId id) const {
    return live_.contains(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }
  [[nodiscard]] bool empty() const noexcept { return live_.empty(); }

  /// Latest-state iteration in id order (value type: pair<ItemId, Slot>).
  [[nodiscard]] auto begin() { return live_.begin(); }
  [[nodiscard]] auto end() { return live_.end(); }
  [[nodiscard]] auto begin() const { return live_.begin(); }
  [[nodiscard]] auto end() const { return live_.end(); }

  void set_write_epoch(vsm::Epoch e) noexcept { write_epoch_ = e; }
  void retain_versions(bool on) noexcept { retain_ = on; }
  void gc() noexcept { retired_.clear(); }

  [[nodiscard]] bool contains_at(vsm::ItemId id, vsm::Epoch at) const {
    if (at == vsm::kEpochLatest) return live_.contains(id);
    const auto it = live_.find(id);
    if (it != live_.end() && it->second.added <= at) return true;
    const auto rit = retired_.find(id);
    return rit != retired_.end() && visible_version(rit->second, at) != nullptr;
  }

  /// Id-ordered iteration over the copies visible at epoch `at`;
  /// `fn(id, vector)` returns false to stop early. At most one version of
  /// an id is visible (a live slot stamped this epoch hides behind its
  /// retired predecessor, and vice versa), so the merge yields each id at
  /// most once — the same sequence the plain map held at epoch `at`.
  template <typename Fn>
  void for_each_at(vsm::Epoch at, Fn&& fn) const {
    if (at == vsm::kEpochLatest) {
      for (const auto& [id, slot] : live_) {
        if (!fn(id, slot.vector)) return;
      }
      return;
    }
    auto lit = live_.begin();
    auto rit = retired_.begin();
    while (lit != live_.end() || rit != retired_.end()) {
      if (rit == retired_.end() ||
          (lit != live_.end() && lit->first < rit->first)) {
        if (lit->second.added <= at && !fn(lit->first, lit->second.vector)) {
          return;
        }
        ++lit;
      } else if (lit == live_.end() || rit->first < lit->first) {
        if (const vsm::SparseVector* v = visible_version(rit->second, at)) {
          if (!fn(rit->first, *v)) return;
        }
        ++rit;
      } else {  // same id on both sides: at most one version is visible
        if (lit->second.added <= at) {
          if (!fn(lit->first, lit->second.vector)) return;
        } else if (const vsm::SparseVector* v =
                       visible_version(rit->second, at)) {
          if (!fn(rit->first, *v)) return;
        }
        ++lit;
        ++rit;
      }
    }
  }

 private:
  struct RetiredSlot {
    vsm::SparseVector vector;
    vsm::Epoch added = 0;
    vsm::Epoch removed = 0;
  };

  void retire(vsm::ItemId id, Slot& slot) {
    if (!retain_) return;
    retired_[id].push_back(
        RetiredSlot{std::move(slot.vector), slot.added, write_epoch_});
  }

  static const vsm::SparseVector* visible_version(
      const std::vector<RetiredSlot>& versions, vsm::Epoch at) {
    for (const RetiredSlot& v : versions) {
      if (v.added <= at && at < v.removed) return &v.vector;
    }
    return nullptr;
  }

  std::map<vsm::ItemId, Slot> live_;
  std::map<vsm::ItemId, std::vector<RetiredSlot>> retired_;
  vsm::Epoch write_epoch_ = 0;
  bool retain_ = false;
};

}  // namespace meteo::core
