#pragma once

/// \file storage.hpp
/// Per-node item storage ordered by raw angle key, supporting the three
/// eviction policies of the publish overflow path (Fig. 2 step 3).
///
/// Keeping items sorted by their raw (Eq. 5) key makes the default
/// farthest-angle eviction O(log c) and gives the walk-based retrieval a
/// natural invariant: after any publish sequence every node holds a
/// contiguous band of the global angle order (its own band plus overflow
/// spill from neighbors).
///
/// The vectors themselves live in an embedded `vsm::LocalIndex` — the
/// inverted postings engine of DESIGN.md §9 — so the similarity kernels
/// (`top_k`, `match_all`) run sub-linearly in the store size and the
/// key-ordered multimap only carries item ids, never a second copy of
/// the vectors.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "meteorograph/config.hpp"
#include "overlay/key_space.hpp"
#include "vsm/local_index.hpp"
#include "vsm/lsi.hpp"
#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

struct StoredEntry {
  vsm::ItemId id = 0;
  overlay::Key raw_key = 0;  // Eq. 5 key (angle order)
  vsm::SparseVector vector;
};

/// Which side of the node's band an eviction came from — the direction the
/// evicted item should chain toward.
enum class EvictSide {
  kLow,   // toward the predecessor (smaller keys)
  kHigh,  // toward the successor (larger keys)
};

struct Eviction {
  StoredEntry entry;
  EvictSide side = EvictSide::kHigh;
};

class AngleStore {
 public:
  /// Inserts an entry (replaces an existing item with the same id).
  void insert(StoredEntry entry);

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }
  [[nodiscard]] bool contains(vsm::ItemId id) const noexcept {
    return index_.contains(id);
  }

  /// The stored vector of `id`, or nullptr.
  [[nodiscard]] const vsm::SparseVector* vector_of(vsm::ItemId id) const;

  bool erase(vsm::ItemId id);

  /// Removes one entry according to `policy`:
  ///  - kFarthestAngle: the end of the key-sorted band farther from
  ///    `incoming`'s raw key; side reports which end.
  ///  - kLeastSimilarCosine: lowest cosine to `incoming`'s vector; side is
  ///    the evictee's position relative to `incoming`'s raw key.
  ///  - kFifo: oldest insertion; side relative to `incoming`'s raw key.
  /// \pre !empty()
  [[nodiscard]] Eviction evict(const StoredEntry& incoming,
                               EvictionPolicy policy);

  /// Top-k by cosine to `query`, descending (score ties toward smaller id).
  [[nodiscard]] std::vector<vsm::ScoredItem> top_k(
      const vsm::SparseVector& query, std::size_t k) const;

  /// Caller-buffer overload (clears and refills `out`, reusing capacity).
  void top_k(const vsm::SparseVector& query, std::size_t k,
             std::vector<vsm::ScoredItem>& out) const;

  /// Top-k by latent-space cosine (§3.3's LSI option). The per-node LSI
  /// model is built lazily and cached until the store mutates; `seed`
  /// makes the randomized SVD deterministic.
  [[nodiscard]] std::vector<vsm::ScoredItem> top_k_lsi(
      const vsm::SparseVector& query, std::size_t k, std::size_t rank,
      std::uint64_t seed) const;

  /// Items containing every keyword of `keywords`, ascending id.
  [[nodiscard]] std::vector<vsm::ItemId> match_all(
      std::span<const vsm::KeywordId> keywords) const;
  void match_all(std::span<const vsm::KeywordId> keywords,
                 std::vector<vsm::ItemId>& out) const;

  /// Iterates all entries (angle order). The StoredEntry passed to `fn`
  /// is a per-call temporary (its vector is copied out of the index).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, id] : by_key_) {
      fn(StoredEntry{id, key, *index_.vector_of(id)});
    }
  }

  /// Smallest/largest raw key stored. \pre !empty()
  [[nodiscard]] overlay::Key min_raw_key() const;
  [[nodiscard]] overlay::Key max_raw_key() const;

 private:
  using KeyMap = std::multimap<overlay::Key, vsm::ItemId>;

  struct Meta {
    KeyMap::iterator pos;        ///< the item's slot in angle order
    std::uint64_t order = 0;     ///< insertion sequence (kFifo)
  };

  void invalidate_lsi() noexcept { ++version_; }

  /// Removes `id` from the key map and metadata (not the vector index).
  void detach(vsm::ItemId id);

  KeyMap by_key_;
  std::unordered_map<vsm::ItemId, Meta> meta_;
  vsm::LocalIndex index_;  ///< owns the vectors + inverted postings
  std::uint64_t next_order_ = 0;

  /// LSI cache: rebuilt when the store version moves past the cached one.
  std::uint64_t version_ = 0;
  mutable std::uint64_t lsi_version_ = ~std::uint64_t{0};
  mutable std::size_t lsi_rank_ = 0;
  mutable std::optional<vsm::LsiModel> lsi_model_;
};

}  // namespace meteo::core
