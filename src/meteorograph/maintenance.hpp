#pragma once

/// \file maintenance.hpp
/// Soft-state maintenance (paper §3.6): "a data owner will periodically
/// republish data items it generated, the corresponding virtual home also
/// needs to periodically republish replicas to k-1 nodes."
///
/// MaintenanceProcess tracks item ownership (the publishing node's view of
/// what it has put into the system) and periodically re-publishes every
/// item: the item moves to the node *currently* closest to its key (churn
/// may have changed that), and missing replicas are restored. Combined
/// with overlay repair, this is what keeps availability at the §4.3 levels
/// under continuous churn instead of decaying as replica holders die.
///
/// The process can run standalone (run_once()) or scheduled on a
/// sim::EventQueue alongside a ChurnProcess.

#include <cstddef>
#include <vector>

#include "meteorograph/meteorograph.hpp"
#include "sim/event_queue.hpp"

namespace meteo::core {

struct MaintenanceStats {
  std::size_t cycles = 0;
  std::size_t items_republished = 0;
  /// Republishes degraded by message loss (missing replica or pointer
  /// legs); the next cycle retries them.
  std::size_t degraded_republishes = 0;
  std::size_t messages = 0;
};

class MaintenanceProcess {
 public:
  /// \param period republish interval on the event queue; <= 0 disables
  ///        scheduling (use run_once()).
  MaintenanceProcess(Meteorograph& system, sim::EventQueue* queue = nullptr,
                     double period = 0.0);

  /// Registers an item the owner wants kept alive. The vector is copied:
  /// the owner's ground-truth copy is what republish re-injects.
  void track(vsm::ItemId id, vsm::SparseVector vector);

  /// Stops maintaining an item (e.g. the owner withdrew it).
  bool untrack(vsm::ItemId id);

  [[nodiscard]] std::size_t tracked_count() const noexcept {
    return items_.size();
  }

  /// One full republish pass over every tracked item. Returns messages.
  std::size_t run_once();

  [[nodiscard]] const MaintenanceStats& stats() const noexcept {
    return stats_;
  }

  /// Stops future scheduled cycles (in-flight ones still fire).
  void stop() noexcept { stopped_ = true; }

 private:
  void schedule();

  struct TrackedItem {
    vsm::ItemId id;
    vsm::SparseVector vector;
  };

  Meteorograph& system_;
  sim::EventQueue* queue_;
  double period_;
  bool stopped_ = false;
  std::vector<TrackedItem> items_;
  MaintenanceStats stats_;
};

}  // namespace meteo::core
