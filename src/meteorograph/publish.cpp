#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"
#include "meteorograph/walk.hpp"
#include "obs/names.hpp"

namespace meteo::core {

namespace {

namespace names = obs::names;

std::vector<vsm::KeywordId> keyword_list(const vsm::SparseVector& v) {
  std::vector<vsm::KeywordId> out;
  out.reserve(v.nnz());
  for (const vsm::Entry& e : v.entries()) out.push_back(e.keyword);
  return out;  // entries are keyword-sorted already
}

}  // namespace

Meteorograph::PublishPlan Meteorograph::plan_publish(
    const vsm::SparseVector& vector, const PublishOptions& options,
    Rng& rng) const {
  METEO_EXPECTS(!vector.empty());

  PublishPlan plan;
  plan.raw = strategy_->directory_key(vector);
  if (strategy_->multi_key()) {
    std::vector<overlay::Key> keys;
    strategy_->publish_keys(vector, keys);
    plan.key = keys.front();
    plan.extra_keys.assign(keys.begin() + 1, keys.end());
  } else {
    plan.key = strategy_->primary_key(vector);
  }

  // Step 1-2 (Fig. 2): route the publish request to the node whose key is
  // closest to the item's (primary) hash key.
  plan.source = options.from.value_or(overlay_.random_alive(rng));
  if (tracer_ != nullptr) {
    plan.span.open(obs::OpKind::kPublish, plan.source, plan.key);
    if (strategy_->records_naming()) plan.span.set_naming(strategy_->name());
  }
  obs::SpanRecorder* const rec = plan.span.active() ? &plan.span : nullptr;
  plan.route = overlay_.route(plan.source, plan.key, rec);

  // Extra strategy keys route in the plan phase too: routing is read-only
  // against the frozen batch snapshot, so multi-key publishes stay
  // parallel-plannable (DESIGN.md §8).
  plan.extra_routes.reserve(plan.extra_keys.size());
  for (const overlay::Key key : plan.extra_keys) {
    if (rec != nullptr) rec->set_leg_key(key);
    plan.extra_routes.push_back(overlay_.route(plan.source, key, rec));
  }
  return plan;
}

bool Meteorograph::chain_store(StoredEntry entry, overlay::NodeId start,
                               std::size_t hop_budget, obs::SpanRecorder* rec,
                               std::size_t& chain_hops,
                               overlay::NodeId& stored_at) {
  // Step 3: store, overflow-chaining through closest neighbors when full.
  // The displaced item always moves toward the side of the band it belongs
  // to, which keeps the global angle (or bucket) order intact.
  overlay::NodeId cur = start;
  while (true) {
    NodeData& data = node_data_[cur];
    const std::size_t capacity = node_capacity_[cur];
    if (capacity == 0 || data.items.size() < capacity) {
      data.items.insert(std::move(entry));
      stored_at = cur;
      return true;
    }
    Eviction evicted = data.items.evict(entry, config_.eviction);
    data.items.insert(std::move(entry));
    overlay::NodeId next = evicted.side == EvictSide::kLow
                               ? overlay_.predecessor(cur)
                               : overlay_.successor(cur);
    if (next == overlay::kInvalidNode) {
      // Edge of the key space: chain back the other way.
      next = evicted.side == EvictSide::kLow ? overlay_.successor(cur)
                                             : overlay_.predecessor(cur);
    }
    if (next == overlay::kInvalidNode) return false;  // single node, full
    entry = std::move(evicted.entry);
    if (rec != nullptr) {
      rec->event(obs::EventKind::kChainHop, cur, next, chain_hops);
    }
    cur = next;
    ++chain_hops;
    if (chain_hops >= hop_budget) return false;  // hop count exhausted
  }
}

PublishResult Meteorograph::commit_publish(vsm::ItemId id,
                                           const vsm::SparseVector& vector,
                                           PublishPlan& plan) {
  PublishResult result;
  obs::SpanRecorder* const rec = plan.span.active() ? &plan.span : nullptr;
  plan.span.set_epoch(span_epoch_);
  overlay::HopStats fault_stats = plan.route.stats;
  result.home = plan.route.destination;
  result.route_hops = plan.route.hops;
  // A blocked publish route still stores at the closest *reachable* node,
  // but the item may be mis-homed relative to its key: flag it.
  result.degraded = plan.route.blocked;

  // Step 3: the primary copy. Its store-order key is the strategy's
  // choice — the Eq. 5 raw angle key (plan.raw, already computed) under
  // single-key strategies, the bucket key for LSH — so each node's
  // AngleStore stays ordered by the coordinate the strategy clusters on.
  const overlay::Key order_key =
      strategy_->multi_key() ? strategy_->store_order_key(vector, plan.key)
                             : plan.raw;
  const std::size_t hop_budget =
      config_.publish_hop_limit > 0
          ? config_.publish_hop_limit
          : 16 * std::max<std::size_t>(overlay_.alive_count(), 1);
  result.success =
      chain_store(StoredEntry{id, order_key, vector}, plan.route.destination,
                  hop_budget, rec, result.chain_hops, result.stored_at);

  if (!result.success) {
    record_fault_stats(obs::OpKind::kPublish, fault_stats);
    ++op_count(obs::OpKind::kPublish, "failed");
    if (tracer_ != nullptr) plan.span.finish("failed", *tracer_);
    return result;
  }

  // Multi-key publication: one copy per extra strategy key, stored with
  // the same overflow-chain discipline at the planned route's target. A
  // blocked leg loses that bucket's copy (degraded, like a replica miss);
  // the item stays reachable through the keys that landed.
  for (std::size_t i = 0; i < plan.extra_keys.size(); ++i) {
    const overlay::Key key = plan.extra_keys[i];
    const overlay::RouteResult& leg = plan.extra_routes[i];
    fault_stats += leg.stats;
    result.naming_key_messages += std::max<std::size_t>(leg.hops, 1);
    if (leg.blocked) {
      result.degraded = true;
      continue;
    }
    if (rec != nullptr) rec->set_leg_key(key);
    std::size_t copy_chain = 0;
    overlay::NodeId copy_at = overlay::kInvalidNode;
    if (chain_store(StoredEntry{id, strategy_->store_order_key(vector, key),
                                vector},
                    leg.destination, hop_budget, rec, copy_chain, copy_at)) {
      result.naming_key_messages += copy_chain;
    } else {
      result.naming_key_messages += copy_chain;
      result.degraded = true;
    }
  }
  if (strategy_->records_naming()) {
    op_naming_keys(obs::OpKind::kPublish)
        .observe(static_cast<double>(1 + plan.extra_keys.size()));
  }

  // §3.6: place k-1 replicas on the nodes numerically closest to the key.
  // A replica leg that cannot reach its home (message loss past retries)
  // leaves that copy missing; the shortfall is reported, and soft-state
  // maintenance restores it on the next republish cycle.
  if (config_.replicas > 1) {
    std::size_t placed = 0;
    for (const overlay::NodeId home :
         overlay_.closest_nodes(plan.key, config_.replicas)) {
      if (home == result.home) continue;
      if (rec != nullptr) rec->set_leg_key(overlay_.key_of(home));
      const overlay::RouteResult leg =
          overlay_.route(result.home, overlay_.key_of(home), rec);
      fault_stats += leg.stats;
      result.replica_messages += std::max<std::size_t>(leg.hops, 1);
      if (leg.blocked) {
        ++result.replicas_missed;
        result.degraded = true;
      } else {
        node_data_[home].replicas.insert_or_assign(id, vector);
      }
      if (++placed + 1 >= config_.replicas) break;
    }
  }

  // §3.5.2: publish the directory pointer at the item's *raw* key, where
  // pointers of similar items aggregate.
  if (config_.directory_pointers) {
    if (rec != nullptr) rec->set_leg_key(plan.raw);
    const overlay::RouteResult leg = overlay_.route(result.home, plan.raw, rec);
    fault_stats += leg.stats;
    result.pointer_messages = leg.hops;
    if (leg.blocked) {
      // The pointer publication died en route: the item stays findable by
      // similarity walk, but keyword search will not discover it until the
      // owner republishes.
      result.pointer_missed = true;
      result.degraded = true;
    } else {
      node_data_[leg.destination].directory.add(
          DirectoryPointer{id, plan.key, keyword_list(vector)});
      // §6 notifications: standing interests planted on this directory node
      // fire as the pointer arrives.
      result.notify_messages =
          deliver_notifications(leg.destination, id, vector, rec);
    }
  }

  record_fault_stats(obs::OpKind::kPublish, fault_stats);
  ++op_count(obs::OpKind::kPublish, outcome_label(result));
  op_messages(obs::OpKind::kPublish) += result.total_messages();
  op_route_hops(obs::OpKind::kPublish)
      .observe(static_cast<double>(result.route_hops));
  if (!publish_chain_hops_.has_value()) {
    publish_chain_hops_.emplace(
        metrics_.histogram(names::kPublishChainHops, obs::hop_buckets()));
  }
  publish_chain_hops_->observe(static_cast<double>(result.chain_hops));
  if (result.degraded) {
    metrics_.histogram(names::kPublishReplicasMissed, obs::count_buckets())
        .observe(static_cast<double>(result.replicas_missed));
  }
  if (tracer_ != nullptr) plan.span.finish(outcome_label(result), *tracer_);
  return result;
}

PublishResult Meteorograph::publish(vsm::ItemId id,
                                    const vsm::SparseVector& vector,
                                    const PublishOptions& options) {
  begin_operation();
  PublishPlan plan = plan_publish(vector, options, rng_);
  return commit_publish(id, vector, plan);
}

WithdrawResult Meteorograph::withdraw_with(vsm::ItemId id,
                                           const vsm::SparseVector& vector,
                                           const WithdrawOptions& options,
                                           Rng& rng) {
  METEO_EXPECTS(!vector.empty());

  WithdrawResult result;
  const overlay::Key key = strategy_->primary_key(vector);
  // The withdraw span covers the directory-pointer cleanup below; the
  // embedded locate opens (and commits) its own nested span first, so a
  // traced withdraw appears as a locate span followed by a withdraw span.
  obs::SpanRecorder span;
  if (tracer_ != nullptr) {
    span.open(obs::OpKind::kWithdraw,
              options.from.value_or(overlay::kInvalidNode), key);
  }
  obs::SpanRecorder* const rec = span.active() ? &span : nullptr;
  span.set_epoch(span_epoch_);

  // Primary copy: find it the same way a query would, then erase. The
  // nested locate is part of the write, so its span carries the commit
  // epoch too.
  OpTrace locate_trace;
  const LocateResult located =
      locate_op(id, vector, {.from = options.from}, rng, locate_trace);
  locate_trace.span.set_epoch(span_epoch_);
  record_locate(located, locate_trace);
  result.messages += located.route_hops + located.walk_hops;
  if (located.found && !located.via_replica) {
    node_data_[located.node].items.erase(id);
    result.removed = true;
  } else if (located.found) {
    node_data_[located.node].replicas.erase(id);
    ++result.replicas_removed;
  }

  // Replicas at the key's current closest homes (best-effort: the homes
  // at publish time; churn may have moved them, in which case the copies
  // expire with their hosts).
  for (const overlay::NodeId home :
       overlay_.closest_nodes(key, config_.replicas + 4)) {
    if (node_data_[home].replicas.erase(id) > 0) {
      ++result.replicas_removed;
      ++result.messages;
    }
  }

  // Multi-key strategies: erase the copies published under the extra
  // strategy keys (each lives in a node's item store near its bucket).
  if (strategy_->multi_key()) {
    std::vector<overlay::Key> keys;
    strategy_->publish_keys(vector, keys);
    for (std::size_t i = 1; i < keys.size(); ++i) {
      const overlay::NodeId start = overlay_.closest_alive(keys[i]);
      if (rec != nullptr) rec->set_leg_key(keys[i]);
      NeighborWalk walk(overlay_, start, keys[i], rec);
      for (std::size_t step = 0; step < config_.naming.probe_walk; ++step) {
        if (node_data_[walk.current()].items.erase(id)) {
          ++result.replicas_removed;
          break;
        }
        if (!walk.advance()) break;
        ++result.messages;
      }
      record_fault_stats(obs::OpKind::kWithdraw, walk.stats());
    }
  }

  // Directory pointer at the raw key (walk a small horizon: the pointer
  // sits on or next to the closest node).
  if (config_.directory_pointers && overlay_.alive_count() > 0) {
    const overlay::Key raw = strategy_->directory_key(vector);
    const overlay::NodeId start = overlay_.closest_alive(raw);
    if (rec != nullptr) rec->set_leg_key(raw);
    NeighborWalk walk(overlay_, start, raw, rec);
    for (int step = 0; step < 8; ++step) {
      if (node_data_[walk.current()].directory.remove(id)) {
        result.pointer_removed = true;
        break;
      }
      if (!walk.advance()) break;
      ++result.messages;
    }
    record_fault_stats(obs::OpKind::kWithdraw, walk.stats());
  }

  ++op_count(obs::OpKind::kWithdraw, result.removed ? "ok" : "failed");
  op_messages(obs::OpKind::kWithdraw) += result.messages;
  if (tracer_ != nullptr) {
    span.finish(result.removed ? "ok" : "failed", *tracer_);
  }
  return result;
}

WithdrawResult Meteorograph::withdraw(vsm::ItemId id,
                                      const vsm::SparseVector& vector,
                                      const WithdrawOptions& options) {
  begin_operation();
  return withdraw_with(id, vector, options, rng_);
}

}  // namespace meteo::core
