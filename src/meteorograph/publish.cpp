#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"
#include "meteorograph/walk.hpp"

namespace meteo::core {

namespace {

std::vector<vsm::KeywordId> keyword_list(const vsm::SparseVector& v) {
  std::vector<vsm::KeywordId> out;
  out.reserve(v.nnz());
  for (const vsm::Entry& e : v.entries()) out.push_back(e.keyword);
  return out;  // entries are keyword-sorted already
}

}  // namespace

Meteorograph::PublishPlan Meteorograph::plan_publish(
    const vsm::SparseVector& vector, const PublishOptions& options,
    Rng& rng) const {
  METEO_EXPECTS(!vector.empty());

  PublishPlan plan;
  plan.raw = naming_.raw_key(vector);
  plan.key = naming_.balanced_key(vector);

  // Step 1-2 (Fig. 2): route the publish request to the node whose key is
  // closest to the item's hash key.
  plan.source = options.from.value_or(overlay_.random_alive(rng));
  plan.route = overlay_.route(plan.source, plan.key);
  return plan;
}

PublishResult Meteorograph::commit_publish(vsm::ItemId id,
                                           const vsm::SparseVector& vector,
                                           const PublishPlan& plan) {
  PublishResult result;
  overlay::HopStats fault_stats = plan.route.stats;
  result.home = plan.route.destination;
  result.route_hops = plan.route.hops;
  // A blocked publish route still stores at the closest *reachable* node,
  // but the item may be mis-homed relative to its key: flag it.
  result.degraded = plan.route.blocked;

  // Step 3: store, overflow-chaining through closest neighbors when full.
  // The displaced item always moves toward the side of the band it belongs
  // to, which keeps the global angle order intact.
  StoredEntry entry{id, plan.raw, vector};
  overlay::NodeId cur = plan.route.destination;
  const std::size_t hop_budget =
      config_.publish_hop_limit > 0
          ? config_.publish_hop_limit
          : 16 * std::max<std::size_t>(overlay_.alive_count(), 1);
  result.success = false;
  while (true) {
    NodeData& data = node_data_[cur];
    const std::size_t capacity = node_capacity_[cur];
    if (capacity == 0 || data.items.size() < capacity) {
      data.items.insert(std::move(entry));
      result.stored_at = cur;
      result.success = true;
      break;
    }
    Eviction evicted = data.items.evict(entry, config_.eviction);
    data.items.insert(std::move(entry));
    overlay::NodeId next = evicted.side == EvictSide::kLow
                               ? overlay_.predecessor(cur)
                               : overlay_.successor(cur);
    if (next == overlay::kInvalidNode) {
      // Edge of the key space: chain back the other way.
      next = evicted.side == EvictSide::kLow ? overlay_.successor(cur)
                                             : overlay_.predecessor(cur);
    }
    if (next == overlay::kInvalidNode) break;  // single-node overlay, full
    entry = std::move(evicted.entry);
    cur = next;
    ++result.chain_hops;
    if (result.chain_hops >= hop_budget) break;  // hop count exhausted
  }

  if (!result.success) {
    record_fault_stats(fault_stats);
    ++metrics_.counter("publish.failures");
    return result;
  }

  // §3.6: place k-1 replicas on the nodes numerically closest to the key.
  // A replica leg that cannot reach its home (message loss past retries)
  // leaves that copy missing; the shortfall is reported, and soft-state
  // maintenance restores it on the next republish cycle.
  if (config_.replicas > 1) {
    std::size_t placed = 0;
    for (const overlay::NodeId home :
         overlay_.closest_nodes(plan.key, config_.replicas)) {
      if (home == result.home) continue;
      const overlay::RouteResult leg =
          overlay_.route(result.home, overlay_.key_of(home));
      fault_stats += leg.stats;
      result.replica_messages += std::max<std::size_t>(leg.hops, 1);
      if (leg.blocked) {
        ++result.replicas_missed;
        result.degraded = true;
      } else {
        node_data_[home].replicas.insert_or_assign(id, vector);
      }
      if (++placed + 1 >= config_.replicas) break;
    }
  }

  // §3.5.2: publish the directory pointer at the item's *raw* key, where
  // pointers of similar items aggregate.
  if (config_.directory_pointers) {
    const overlay::RouteResult leg = overlay_.route(result.home, plan.raw);
    fault_stats += leg.stats;
    result.pointer_messages = leg.hops;
    if (leg.blocked) {
      // The pointer publication died en route: the item stays findable by
      // similarity walk, but keyword search will not discover it until the
      // owner republishes.
      result.pointer_missed = true;
      result.degraded = true;
    } else {
      node_data_[leg.destination].directory.push_back(
          DirectoryPointer{id, plan.key, keyword_list(vector)});
      // §6 notifications: standing interests planted on this directory node
      // fire as the pointer arrives.
      result.notify_messages =
          deliver_notifications(leg.destination, id, vector);
    }
  }

  record_fault_stats(fault_stats);
  ++metrics_.counter("publish.count");
  metrics_.counter("publish.messages") += result.total_messages();
  metrics_.distribution("publish.route_hops")
      .add(static_cast<double>(result.route_hops));
  metrics_.distribution("publish.chain_hops")
      .add(static_cast<double>(result.chain_hops));
  if (result.degraded) {
    ++metrics_.counter("publish.degraded");
    metrics_.distribution("publish.replicas_missed")
        .add(static_cast<double>(result.replicas_missed));
  }
  return result;
}

PublishResult Meteorograph::publish(vsm::ItemId id,
                                    const vsm::SparseVector& vector,
                                    const PublishOptions& options) {
  begin_operation();
  return commit_publish(id, vector, plan_publish(vector, options, rng_));
}

WithdrawResult Meteorograph::withdraw_with(vsm::ItemId id,
                                           const vsm::SparseVector& vector,
                                           const WithdrawOptions& options,
                                           Rng& rng) {
  METEO_EXPECTS(!vector.empty());

  WithdrawResult result;
  // Primary copy: find it the same way a query would, then erase.
  OpTrace locate_trace;
  const LocateResult located =
      locate_op(id, vector, {.from = options.from}, rng, locate_trace);
  record_locate(located, locate_trace);
  result.messages += located.route_hops + located.walk_hops;
  if (located.found && !located.via_replica) {
    node_data_[located.node].items.erase(id);
    result.removed = true;
  } else if (located.found) {
    node_data_[located.node].replicas.erase(id);
    ++result.replicas_removed;
  }

  // Replicas at the key's current closest homes (best-effort: the homes
  // at publish time; churn may have moved them, in which case the copies
  // expire with their hosts).
  const overlay::Key key = naming_.balanced_key(vector);
  for (const overlay::NodeId home :
       overlay_.closest_nodes(key, config_.replicas + 4)) {
    if (node_data_[home].replicas.erase(id) > 0) {
      ++result.replicas_removed;
      ++result.messages;
    }
  }

  // Directory pointer at the raw key (walk a small horizon: the pointer
  // sits on or next to the closest node).
  if (config_.directory_pointers && overlay_.alive_count() > 0) {
    const overlay::Key raw = naming_.raw_key(vector);
    const overlay::NodeId start = overlay_.closest_alive(raw);
    NeighborWalk walk(overlay_, start, raw);
    for (int step = 0; step < 8; ++step) {
      auto& dir = node_data_[walk.current()].directory;
      const auto it = std::find_if(
          dir.begin(), dir.end(),
          [&](const DirectoryPointer& p) { return p.item == id; });
      if (it != dir.end()) {
        dir.erase(it);
        result.pointer_removed = true;
        break;
      }
      if (!walk.advance()) break;
      ++result.messages;
    }
    record_fault_stats(walk.stats());
  }

  ++metrics_.counter("withdraw.count");
  metrics_.counter("withdraw.messages") += result.messages;
  return result;
}

WithdrawResult Meteorograph::withdraw(vsm::ItemId id,
                                      const vsm::SparseVector& vector,
                                      const WithdrawOptions& options) {
  begin_operation();
  return withdraw_with(id, vector, options, rng_);
}

}  // namespace meteo::core
