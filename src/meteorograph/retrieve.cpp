#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"
#include "meteorograph/walk.hpp"
#include "obs/names.hpp"

namespace meteo::core {

namespace {
namespace names = obs::names;
}  // namespace

RetrieveResult Meteorograph::retrieve_op(const vsm::SparseVector& query,
                                         std::size_t amount,
                                         const RetrieveOptions& options,
                                         Rng& rng, OpTrace& trace,
                                         ReadView view) const {
  METEO_EXPECTS(!query.empty());
  METEO_EXPECTS(amount > 0);

  RetrieveResult result;
  // Probe plan (DESIGN.md §12): one key under single-key strategies — the
  // loop below then runs the pre-strategy sequence exactly — or the g
  // base buckets plus multi-probe perturbations under LSH.
  std::vector<overlay::Key> probes;
  strategy_->probe_keys(query, probes);
  const overlay::NodeId source =
      options.from.value_or(overlay_.random_alive(rng));
  if (tracer_ != nullptr) {
    trace.span.open(obs::OpKind::kRetrieve, source, probes.front());
    if (strategy_->records_naming()) trace.span.set_naming(strategy_->name());
  }
  obs::SpanRecorder* const rec = trace.span.active() ? &trace.span : nullptr;
  if (strategy_->records_naming()) trace.naming_probes = probes.size();

  // Fig. 2 _retrieve: harvest locally, then consult closest neighbors
  // until the requested amount is satisfied. The first probe keeps the
  // op's own walk budget; each extra probe walks at most
  // config_.naming.probe_walk nodes around its bucket.
  const std::size_t walk_limit = config_.max_walk_nodes > 0
                                     ? config_.max_walk_nodes
                                     : overlay_.alive_count();
  std::size_t remaining = amount;
  std::unordered_set<vsm::ItemId> seen;
  // One result buffer for the whole walk: the per-node top_k refills it
  // in place, so the loop stops reallocating a vector per node visit
  // (this op may run inside a BatchEngine worker's tight per-op loop).
  std::vector<vsm::ScoredItem> local;
  bool blocked = false;
  bool faulted = false;
  for (std::size_t p = 0; p < probes.size(); ++p) {
    const overlay::Key key = probes[p];
    if (p > 0 && rec != nullptr) rec->set_leg_key(key);
    const overlay::RouteResult route = overlay_.route(source, key, rec);
    trace.route += route.stats;
    result.route_hops += route.hops;
    blocked = blocked || route.blocked;

    const std::size_t budget = p == 0 ? walk_limit : config_.naming.probe_walk;
    NeighborWalk walk(overlay_, route.destination, key, rec);
    std::size_t visited = 0;
    while (true) {
      const NodeData& data = node_data_[walk.current()];
      ++result.nodes_visited;
      ++visited;
      if (config_.local_ranking == LocalRanking::kLsi) {
        local = data.items.top_k_lsi(query, remaining, config_.lsi_rank,
                                     config_.node_count /*stable seed*/);
      } else {
        data.items.top_k_at(query, remaining, view.epoch, local);
      }
      for (const vsm::ScoredItem& hit : local) {
        if (hit.score <= 0.0) continue;  // no (latent) overlap: not a match
        if (!seen.insert(hit.id).second) continue;
        result.items.push_back(hit);
        --remaining;
      }
      // Replica copies answer too (§3.6 failover: after the primary's host
      // dies, the numerically-closest surviving home serves the item).
      data.replicas.for_each_at(
          view.epoch, [&](vsm::ItemId id, const vsm::SparseVector& vector) {
            if (remaining == 0) return false;
            if (seen.contains(id)) return true;
            const double score = vsm::cosine_similarity(query, vector);
            if (score <= 0.0) return true;
            seen.insert(id);
            result.items.push_back(vsm::ScoredItem{id, score});
            --remaining;
            return true;
          });
      if (remaining == 0 || visited >= budget) break;
      if (!walk.advance()) break;
    }
    result.walk_hops += walk.hops();
    trace.walk += walk.stats();
    faulted = faulted || walk.faulted();
    if (remaining == 0) break;
  }

  // Degradation is explicit: a shortfall caused by message loss (a blocked
  // route or a walk direction closed by an unreachable neighbor) is
  // reported, not silently returned as a thin result set.
  if (remaining > 0 && (blocked || faulted)) {
    result.partial = true;
    result.items_missed = remaining;
  }

  // Final ranking across all visited nodes (and probes).
  std::sort(result.items.begin(), result.items.end(),
            [](const vsm::ScoredItem& a, const vsm::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  return result;
}

void Meteorograph::record_retrieve(const RetrieveResult& result,
                                   OpTrace& trace) {
  record_fault_stats(obs::OpKind::kRetrieve, trace.route);
  record_fault_stats(obs::OpKind::kRetrieve, trace.walk);
  ++op_count(obs::OpKind::kRetrieve, outcome_label(result));
  op_messages(obs::OpKind::kRetrieve) += result.total_messages();
  op_route_hops(obs::OpKind::kRetrieve)
      .observe(static_cast<double>(result.route_hops));
  op_walk_hops(obs::OpKind::kRetrieve)
      .observe(static_cast<double>(result.walk_hops));
  // Zero outside multi-key strategies, so angle-strategy dumps keep the
  // pre-strategy series set exactly.
  if (trace.naming_probes != 0) {
    op_naming_probes(obs::OpKind::kRetrieve)
        .observe(static_cast<double>(trace.naming_probes));
  }
  if (result.partial) {
    metrics_.histogram(names::kRetrieveItemsMissed, obs::count_buckets())
        .observe(static_cast<double>(result.items_missed));
  }
  if (tracer_ != nullptr) trace.span.finish(outcome_label(result), *tracer_);
}

RetrieveResult Meteorograph::retrieve(const vsm::SparseVector& query,
                                      std::size_t amount,
                                      const RetrieveOptions& options) {
  begin_operation();
  OpTrace trace;
  const RetrieveResult result = retrieve_op(query, amount, options, rng_, trace);
  record_retrieve(result, trace);
  return result;
}

LocateResult Meteorograph::locate_op(vsm::ItemId id,
                                     const vsm::SparseVector& vector,
                                     const LocateOptions& options, Rng& rng,
                                     OpTrace& trace, ReadView view) const {
  METEO_EXPECTS(!vector.empty());

  LocateResult result;
  // The item may live under any of the strategy's publish keys; probe
  // them in plan order until one bucket answers.
  std::vector<overlay::Key> probes;
  strategy_->probe_keys(vector, probes);
  const overlay::NodeId source =
      options.from.value_or(overlay_.random_alive(rng));
  if (tracer_ != nullptr) {
    trace.span.open(obs::OpKind::kLocate, source, probes.front());
    if (strategy_->records_naming()) trace.span.set_naming(strategy_->name());
  }
  obs::SpanRecorder* const rec = trace.span.active() ? &trace.span : nullptr;
  if (strategy_->records_naming()) trace.naming_probes = probes.size();

  std::size_t walk_limit = options.walk_limit;
  if (walk_limit == 0) {
    walk_limit = config_.max_walk_nodes > 0 ? config_.max_walk_nodes
                                            : overlay_.alive_count();
  }

  bool blocked = false;
  bool faulted = false;
  for (std::size_t p = 0; p < probes.size(); ++p) {
    const overlay::Key key = probes[p];
    if (p > 0 && rec != nullptr) rec->set_leg_key(key);
    const overlay::RouteResult route = overlay_.route(source, key, rec);
    trace.route += route.stats;
    result.route_hops += route.hops;
    blocked = blocked || route.blocked;

    const std::size_t budget = p == 0 ? walk_limit : config_.naming.probe_walk;
    NeighborWalk walk(overlay_, route.destination, key, rec);
    std::size_t visited = 0;
    while (true) {
      const overlay::NodeId cur = walk.current();
      const NodeData& data = node_data_[cur];
      ++visited;
      if (data.items.contains_at(id, view.epoch)) {
        result.found = true;
        result.node = cur;
        break;
      }
      if (data.replicas.contains_at(id, view.epoch)) {
        result.found = true;
        result.node = cur;
        result.via_replica = true;
        break;
      }
      if (visited >= budget || !walk.advance()) break;
    }
    result.walk_hops += walk.hops();
    trace.walk += walk.stats();
    faulted = faulted || walk.faulted();
    if (result.found) break;
  }
  result.fault_blocked = !result.found && (blocked || faulted);
  return result;
}

void Meteorograph::record_locate(const LocateResult& result, OpTrace& trace) {
  record_fault_stats(obs::OpKind::kLocate, trace.route);
  record_fault_stats(obs::OpKind::kLocate, trace.walk);
  ++op_count(obs::OpKind::kLocate, outcome_label(result));
  op_messages(obs::OpKind::kLocate) += result.total_messages();
  if (result.found) {
    if (!locate_found_.has_value()) {
      locate_found_.emplace(metrics_.counter(names::kLocateFound));
    }
    ++*locate_found_;
  }
  op_route_hops(obs::OpKind::kLocate)
      .observe(static_cast<double>(result.route_hops));
  op_walk_hops(obs::OpKind::kLocate)
      .observe(static_cast<double>(result.walk_hops));
  if (trace.naming_probes != 0) {
    op_naming_probes(obs::OpKind::kLocate)
        .observe(static_cast<double>(trace.naming_probes));
  }
  if (tracer_ != nullptr) trace.span.finish(outcome_label(result), *tracer_);
}

LocateResult Meteorograph::locate(vsm::ItemId id,
                                  const vsm::SparseVector& vector,
                                  const LocateOptions& options) {
  begin_operation();
  OpTrace trace;
  const LocateResult result = locate_op(id, vector, options, rng_, trace);
  record_locate(result, trace);
  return result;
}

}  // namespace meteo::core
