#pragma once

/// \file directory.hpp
/// Directory pointers (paper §3.5.2).
///
/// With Eq. 6 in force, items are spread nearly uniformly over the key
/// space, so similar items no longer sit on adjacent nodes. Meteorograph
/// restores similarity locality with a level of indirection: alongside the
/// item (stored at its Eq. 6 key), a small *pointer* is published at the
/// item's raw Eq. 5 key. Pointers of similar items therefore cluster, and
/// a similarity search walks the pointer space, chasing each matching
/// pointer to the node holding the item.

#include <algorithm>
#include <cstddef>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "overlay/key_space.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

struct DirectoryPointer {
  vsm::ItemId item = 0;
  /// Where the item itself lives: its Eq. 6 (balanced) key.
  overlay::Key item_key = 0;
  /// The keywords characterizing the item (sorted), used for matching.
  std::vector<vsm::KeywordId> keywords;

  /// True when the pointer's item contains every keyword of `query`.
  [[nodiscard]] bool matches(std::span<const vsm::KeywordId> query) const {
    return std::all_of(query.begin(), query.end(), [&](vsm::KeywordId k) {
      return std::binary_search(keywords.begin(), keywords.end(), k);
    });
  }
};

/// Keyword-indexed container for one node's directory pointers
/// (DESIGN.md §9). Appends preserve publication order — searches chase
/// pointers in that order, which the determinism goldens pin down — and
/// `candidates()` returns, in the same order, the indices of pointers
/// carrying a given keyword, so a search probes one bucket instead of
/// scanning the node's whole directory on every visit.
class DirectoryStore {
 public:
  void add(DirectoryPointer pointer) {
    const std::size_t index = pointers_.size();
    for (const vsm::KeywordId kw : pointer.keywords) {
      by_keyword_[kw].push_back(index);
    }
    pointers_.push_back(std::move(pointer));
  }

  /// Removes the pointer for `item` (if present), keeping the relative
  /// order of the rest. The O(pointers) reindex is confined to the
  /// withdraw/maintenance path; searches never remove.
  bool remove(vsm::ItemId item) {
    const auto it = std::find_if(
        pointers_.begin(), pointers_.end(),
        [&](const DirectoryPointer& p) { return p.item == item; });
    if (it == pointers_.end()) return false;
    pointers_.erase(it);
    reindex();
    return true;
  }

  [[nodiscard]] const std::vector<DirectoryPointer>& all() const noexcept {
    return pointers_;
  }
  [[nodiscard]] bool empty() const noexcept { return pointers_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pointers_.size(); }

  /// Indices (in publication order) of pointers whose keyword list
  /// contains `keyword`; empty when no pointer on this node carries it —
  /// the common case, since pointers for a keyword cluster near the raw
  /// keys of the vectors containing it.
  [[nodiscard]] std::span<const std::size_t> candidates(
      vsm::KeywordId keyword) const {
    const auto it = by_keyword_.find(keyword);
    if (it == by_keyword_.end()) return {};
    return it->second;
  }

  /// Moves every pointer out (handing off to surviving nodes on depart),
  /// leaving the store empty.
  [[nodiscard]] std::vector<DirectoryPointer> take_all() {
    by_keyword_.clear();
    return std::exchange(pointers_, {});
  }

 private:
  void reindex() {
    by_keyword_.clear();
    for (std::size_t i = 0; i < pointers_.size(); ++i) {
      for (const vsm::KeywordId kw : pointers_[i].keywords) {
        by_keyword_[kw].push_back(i);
      }
    }
  }

  std::vector<DirectoryPointer> pointers_;
  std::unordered_map<vsm::KeywordId, std::vector<std::size_t>> by_keyword_;
};

}  // namespace meteo::core
