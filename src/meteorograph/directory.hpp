#pragma once

/// \file directory.hpp
/// Directory pointers (paper §3.5.2).
///
/// With Eq. 6 in force, items are spread nearly uniformly over the key
/// space, so similar items no longer sit on adjacent nodes. Meteorograph
/// restores similarity locality with a level of indirection: alongside the
/// item (stored at its Eq. 6 key), a small *pointer* is published at the
/// item's raw Eq. 5 key. Pointers of similar items therefore cluster, and
/// a similarity search walks the pointer space, chasing each matching
/// pointer to the node holding the item.

#include <algorithm>
#include <cstddef>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "overlay/key_space.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

struct DirectoryPointer {
  vsm::ItemId item = 0;
  /// Where the item itself lives: its Eq. 6 (balanced) key.
  overlay::Key item_key = 0;
  /// The keywords characterizing the item (sorted), used for matching.
  std::vector<vsm::KeywordId> keywords;

  /// True when the pointer's item contains every keyword of `query`.
  [[nodiscard]] bool matches(std::span<const vsm::KeywordId> query) const {
    return std::all_of(query.begin(), query.end(), [&](vsm::KeywordId k) {
      return std::binary_search(keywords.begin(), keywords.end(), k);
    });
  }
};

/// Keyword-indexed container for one node's directory pointers
/// (DESIGN.md §9). Appends preserve publication order — searches chase
/// pointers in that order, which the determinism goldens pin down — and
/// `candidates()` returns, in the same order, the indices of pointers
/// carrying a given keyword, so a search probes one bucket instead of
/// scanning the node's whole directory on every visit.
class DirectoryStore {
 public:
  void add(DirectoryPointer pointer) {
    const std::size_t index = pointers_.size();
    for (const vsm::KeywordId kw : pointer.keywords) {
      by_keyword_[kw].push_back(index);
    }
    pointers_.push_back(std::move(pointer));
    stamps_.push_back(Stamp{write_epoch_, vsm::kEpochNever});
  }

  /// Removes the live pointer for `item` (if present), keeping the
  /// relative order of the rest. The O(pointers) reindex is confined to
  /// the withdraw/maintenance path; searches never remove. While version
  /// retention is armed (DESIGN.md §11) the pointer is tombstoned in
  /// place instead of erased — bucket indices stay stable for readers
  /// pinned at an older epoch — and gc() compacts it out at the epoch
  /// boundary, restoring the exact layout a sequential erase leaves.
  bool remove(vsm::ItemId item) {
    for (std::size_t i = 0; i < pointers_.size(); ++i) {
      if (pointers_[i].item != item) continue;
      if (stamps_[i].removed != vsm::kEpochNever) continue;  // tombstone
      if (retain_) {
        stamps_[i].removed = write_epoch_;
        ++tombstones_;
      } else {
        pointers_.erase(pointers_.begin() + static_cast<std::ptrdiff_t>(i));
        stamps_.erase(stamps_.begin() + static_cast<std::ptrdiff_t>(i));
        reindex();
      }
      return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<DirectoryPointer>& all() const noexcept {
    return pointers_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t size() const noexcept {
    return pointers_.size() - tombstones_;
  }

  /// Is pointers_[index] part of the epoch-`at` view? kEpochLatest means
  /// "not tombstoned" — which is every pointer while retention is off.
  [[nodiscard]] bool visible_at(std::size_t index,
                                vsm::Epoch at) const noexcept {
    const Stamp& s = stamps_[index];
    if (at == vsm::kEpochLatest) return s.removed == vsm::kEpochNever;
    return s.added <= at && at < s.removed;
  }

  void set_write_epoch(vsm::Epoch e) noexcept { write_epoch_ = e; }
  void retain_versions(bool on) noexcept { retain_ = on; }

  /// Compacts tombstones out. The survivors keep their relative order, so
  /// the post-gc layout is exactly what sequential one-at-a-time erases
  /// would have produced.
  void gc() {
    if (tombstones_ == 0) return;
    std::size_t w = 0;
    for (std::size_t i = 0; i < pointers_.size(); ++i) {
      if (stamps_[i].removed != vsm::kEpochNever) continue;
      if (w != i) {
        pointers_[w] = std::move(pointers_[i]);
        stamps_[w] = stamps_[i];
      }
      ++w;
    }
    pointers_.resize(w);
    stamps_.resize(w);
    tombstones_ = 0;
    reindex();
  }

  /// Indices (in publication order) of pointers whose keyword list
  /// contains `keyword`; empty when no pointer on this node carries it —
  /// the common case, since pointers for a keyword cluster near the raw
  /// keys of the vectors containing it.
  [[nodiscard]] std::span<const std::size_t> candidates(
      vsm::KeywordId keyword) const {
    const auto it = by_keyword_.find(keyword);
    if (it == by_keyword_.end()) return {};
    return it->second;
  }

  /// Moves every live pointer out (handing off to surviving nodes on
  /// depart), leaving the store empty. Tombstoned pointers are dropped:
  /// their items were withdrawn this epoch, and the depart fence
  /// guarantees no reader still pins the epoch that could see them.
  [[nodiscard]] std::vector<DirectoryPointer> take_all() {
    by_keyword_.clear();
    std::vector<DirectoryPointer> out;
    out.reserve(size());
    for (std::size_t i = 0; i < pointers_.size(); ++i) {
      if (stamps_[i].removed == vsm::kEpochNever) {
        out.push_back(std::move(pointers_[i]));
      }
    }
    pointers_.clear();
    stamps_.clear();
    tombstones_ = 0;
    return out;
  }

 private:
  struct Stamp {
    vsm::Epoch added = 0;
    vsm::Epoch removed = vsm::kEpochNever;
  };

  void reindex() {
    by_keyword_.clear();
    for (std::size_t i = 0; i < pointers_.size(); ++i) {
      for (const vsm::KeywordId kw : pointers_[i].keywords) {
        by_keyword_[kw].push_back(i);
      }
    }
  }

  std::vector<DirectoryPointer> pointers_;
  std::vector<Stamp> stamps_;  ///< parallel to pointers_
  std::unordered_map<vsm::KeywordId, std::vector<std::size_t>> by_keyword_;
  std::size_t tombstones_ = 0;
  vsm::Epoch write_epoch_ = 0;
  bool retain_ = false;
};

}  // namespace meteo::core
