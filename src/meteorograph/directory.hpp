#pragma once

/// \file directory.hpp
/// Directory pointers (paper §3.5.2).
///
/// With Eq. 6 in force, items are spread nearly uniformly over the key
/// space, so similar items no longer sit on adjacent nodes. Meteorograph
/// restores similarity locality with a level of indirection: alongside the
/// item (stored at its Eq. 6 key), a small *pointer* is published at the
/// item's raw Eq. 5 key. Pointers of similar items therefore cluster, and
/// a similarity search walks the pointer space, chasing each matching
/// pointer to the node holding the item.

#include <algorithm>
#include <span>
#include <vector>

#include "overlay/key_space.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

struct DirectoryPointer {
  vsm::ItemId item = 0;
  /// Where the item itself lives: its Eq. 6 (balanced) key.
  overlay::Key item_key = 0;
  /// The keywords characterizing the item (sorted), used for matching.
  std::vector<vsm::KeywordId> keywords;

  /// True when the pointer's item contains every keyword of `query`.
  [[nodiscard]] bool matches(std::span<const vsm::KeywordId> query) const {
    return std::all_of(query.begin(), query.end(), [&](vsm::KeywordId k) {
      return std::binary_search(keywords.begin(), keywords.end(), k);
    });
  }
};

}  // namespace meteo::core
