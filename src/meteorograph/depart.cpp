/// Graceful node departure with data handoff. Tornado-style storage
/// overlays migrate a leaver's state to the nodes that become responsible
/// for its key range; without this, only crash failures (and replicas)
/// would exist and every planned shutdown would lose data.

#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"

namespace meteo::core {

DepartResult Meteorograph::depart_node(overlay::NodeId node) {
  METEO_EXPECTS(overlay_.is_alive(node));
  METEO_EXPECTS(overlay_.alive_count() > 1);
  begin_operation();

  obs::SpanRecorder span;
  if (tracer_ != nullptr) {
    // Capture the leaver's key before leave() forgets it.
    span.open(obs::OpKind::kDepart, node, overlay_.key_of(node));
    span.set_epoch(span_epoch_);
  }

  DepartResult result;
  // Take the node's state, then leave the overlay so routing and
  // closest-key decisions already reflect the departure when re-homing.
  NodeData state = std::move(node_data_[node]);
  node_data_[node] = NodeData{};
  overlay_.leave(node);

  // Items: re-insert through the publish overflow path at the node now
  // closest to each item's key (capacity is respected; an item may chain).
  std::vector<StoredEntry> entries;
  state.items.for_each([&](const StoredEntry& e) { entries.push_back(e); });
  for (StoredEntry& entry : entries) {
    // Bucket migration: each copy re-homes where the strategy says it
    // belongs — the recomputed primary key under single-key strategies,
    // the copy's own bucket key (entry.raw_key) under LSH.
    const overlay::Key key = strategy_->migration_key(entry);
    overlay::NodeId cur = overlay_.closest_alive(key);
    ++result.messages;  // the handoff transfer itself
    StoredEntry moving = std::move(entry);
    bool placed = false;
    for (std::size_t guard = 0; guard < overlay_.alive_count(); ++guard) {
      NodeData& data = node_data_[cur];
      const std::size_t capacity = node_capacity_[cur];
      if (capacity == 0 || data.items.size() < capacity) {
        data.items.insert(std::move(moving));
        placed = true;
        break;
      }
      Eviction evicted = data.items.evict(moving, config_.eviction);
      data.items.insert(std::move(moving));
      overlay::NodeId next = evicted.side == EvictSide::kLow
                                 ? overlay_.predecessor(cur)
                                 : overlay_.successor(cur);
      if (next == overlay::kInvalidNode) {
        next = evicted.side == EvictSide::kLow ? overlay_.successor(cur)
                                               : overlay_.predecessor(cur);
      }
      if (next == overlay::kInvalidNode) break;
      moving = std::move(evicted.entry);
      cur = next;
      ++result.messages;
    }
    if (placed) ++result.items_transferred;
  }

  // Replicas: re-home on the now-closest node holding no copy yet.
  for (auto& [id, slot] : state.replicas) {
    const overlay::Key key = strategy_->primary_key(slot.vector);
    for (const overlay::NodeId home :
         overlay_.closest_nodes(key, config_.replicas + 2)) {
      if (node_data_[home].items.contains(id) ||
          node_data_[home].replicas.contains(id)) {
        continue;
      }
      node_data_[home].replicas.emplace(id, std::move(slot.vector));
      ++result.replicas_transferred;
      ++result.messages;
      break;
    }
  }

  // Directory pointers: move to the node now closest to each raw key.
  for (DirectoryPointer& pointer : state.directory.take_all()) {
    const auto v = vsm::SparseVector::binary(pointer.keywords);
    const overlay::Key raw = strategy_->directory_key(v);
    node_data_[overlay_.closest_alive(raw)].directory.add(std::move(pointer));
    ++result.pointers_transferred;
    ++result.messages;
  }

  // Subscriptions: re-plant and fix the home registry.
  for (Subscription& sub : state.subscriptions) {
    const auto v = vsm::SparseVector::binary(sub.keywords);
    const overlay::Key raw = strategy_->directory_key(v);
    const overlay::NodeId home = overlay_.closest_alive(raw);
    auto& homes = subscription_homes_[sub.id];
    for (overlay::NodeId& h : homes) {
      if (h == node) h = home;
    }
    node_data_[home].subscriptions.push_back(std::move(sub));
    ++result.subscriptions_transferred;
    ++result.messages;
  }

  // Attribute records: re-home per value key.
  for (auto& [attribute, records] : state.attributes) {
    const AttributeSpace& space = attributes_.space(attribute);
    for (const auto& [value, id] : records) {
      const overlay::NodeId home = overlay_.closest_alive(space.key_of(value));
      node_data_[home].attributes[attribute].emplace(value, id);
      ++result.attribute_records_transferred;
      ++result.messages;
    }
  }

  ++op_count(obs::OpKind::kDepart, "ok");
  op_messages(obs::OpKind::kDepart) += result.messages;
  if (tracer_ != nullptr) span.finish("ok", *tracer_);
  return result;
}

}  // namespace meteo::core
