#pragma once

/// \file batch.hpp
/// Deterministic parallel batch execution over a Meteorograph system.
///
/// A BatchEngine runs one *homogeneous* vector of operations at a time.
/// Read-only batches (retrieve, locate, similarity_search, range_search)
/// execute concurrently on a thread pool against the live stores — safe
/// because nothing mutates between the batch's begin_batch() bracket and
/// its last fold. Mutating batches (publish, withdraw, depart) split into
/// a parallel plan phase where possible and always commit sequentially in
/// op-index order. Every operation draws from its own splitmix64 RNG
/// substream keyed by (batch seed, op index), and — when the attached
/// fault hook supports per-operation fate scopes — its own message-fault
/// substream, so results, system state, and metrics are bit-identical at
/// any worker count (DESIGN.md §7).
///
/// For *mixed* read/write windows — reads running concurrently while
/// publishes, withdrawals, and departures commit in the same window —
/// use the EpochEngine (meteorograph/epoch.hpp): it gives every read a
/// pinned epoch-E snapshot of the stores while writes commit into E+1
/// (DESIGN.md §11). BatchEngine remains the lighter tool when the
/// workload arrives pre-sorted by kind; both engines share the substream
/// and fold disciplines, and at one op kind per window they agree.
///
/// Op structs borrow their vectors (non-owning pointers/spans): the caller
/// keeps the workload alive for the duration of the batch call.
///
///   BatchEngine engine(sys, {.workers = 8, .seed = 42});
///   std::vector<LocateOp> ops = ...;
///   std::vector<LocateResult> results = engine.locate(ops);

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "meteorograph/meteorograph.hpp"

namespace meteo::core {

struct RetrieveOp {
  const vsm::SparseVector* query = nullptr;
  std::size_t amount = 1;
  RetrieveOptions options;
};

struct LocateOp {
  vsm::ItemId item = 0;
  const vsm::SparseVector* vector = nullptr;
  LocateOptions options;
};

struct SearchOp {
  std::span<const vsm::KeywordId> keywords;
  std::size_t k = 0;  ///< 0 = discover all matching items
  SearchOptions options;
};

struct RangeSearchOp {
  AttributeId attribute = 0;
  double lo = 0.0;
  double hi = 0.0;
  RangeSearchOptions options;
};

struct PublishOp {
  vsm::ItemId id = 0;
  const vsm::SparseVector* vector = nullptr;
  PublishOptions options;
};

struct WithdrawOp {
  vsm::ItemId item = 0;
  const vsm::SparseVector* vector = nullptr;
  WithdrawOptions options;
};

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). The engine
  /// may use fewer (1) when the configuration or hook is not thread-safe.
  std::size_t workers = 0;
  /// Root of every per-operation RNG/fault substream. Two engines with the
  /// same seed over identical systems produce identical batches.
  std::uint64_t seed = 0x6d657465'6f726f67ULL;
};

class BatchEngine {
 public:
  /// Binds to `system` for the engine's lifetime (non-owning). The pool is
  /// created once here, not per batch.
  explicit BatchEngine(Meteorograph& system, BatchOptions options = {});

  // Read-only batches: parallel, results in op order.
  std::vector<RetrieveResult> retrieve(std::span<const RetrieveOp> ops);
  std::vector<LocateResult> locate(std::span<const LocateOp> ops);
  std::vector<SearchResult> similarity_search(std::span<const SearchOp> ops);
  std::vector<RangeSearchResult> range_search(
      std::span<const RangeSearchOp> ops);

  // Mutating batches: publish plans (routes) in parallel, then commits
  // store/replica/pointer legs sequentially in op-index order; withdraw
  // and depart are sequential throughout (their reads depend on prior
  // ops' writes), still under per-op substreams.
  std::vector<PublishResult> publish(std::span<const PublishOp> ops);
  std::vector<WithdrawResult> withdraw(std::span<const WithdrawOp> ops);
  std::vector<DepartResult> depart(std::span<const overlay::NodeId> nodes);

  /// Configured worker count after the 0 = hardware default resolved.
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return options_.workers;
  }

 private:
  /// Ends the batch bracket on every exit path, including exceptions
  /// rethrown from pool workers. A member of BatchEngine so Meteorograph's
  /// friendship covers the private end_batch() call.
  struct BatchGuard {
    explicit BatchGuard(Meteorograph& sys) : system(sys) {}
    ~BatchGuard() { system.end_batch(); }
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;
    Meteorograph& system;
  };

  /// Independent RNG stream for op `i`: identical regardless of which
  /// worker runs the op or in what order.
  [[nodiscard]] Rng substream(std::size_t i) const noexcept {
    return Rng(splitmix64(options_.seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
  }
  /// Fault-fate substream selector for op `i` (distinct from the RNG
  /// stream so fates and draws never correlate).
  [[nodiscard]] std::uint64_t scope_salt(std::size_t i) const noexcept {
    return splitmix64(options_.seed ^ (0xbf58476d1ce4e5b9ULL * (i + 1)));
  }

  template <typename Result, typename Op, typename Exec, typename Record>
  std::vector<Result> run_read_batch(std::span<const Op> ops,
                                     std::size_t workers, Exec&& exec,
                                     Record&& record);

  Meteorograph& system_;
  BatchOptions options_;
  std::optional<ThreadPool> pool_;  // engaged only when workers > 1
};

}  // namespace meteo::core
