/// Range-search operations of the Meteorograph facade (paper §6 future
/// work): attribute registration, value publication, and [lo, hi] range
/// queries over the order-preserving attribute key slices.

#include <algorithm>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"

namespace meteo::core {

AttributeId Meteorograph::register_attribute(double lo, double hi,
                                             AttributeScale scale) {
  return attributes_.register_attribute(lo, hi, scale);
}

RangePublishResult Meteorograph::publish_attribute(
    vsm::ItemId id, AttributeId attribute, double value,
    const PublishOptions& options) {
  begin_operation();
  const AttributeSpace& space = attributes_.space(attribute);
  const overlay::Key key = space.key_of(value);
  const overlay::NodeId source =
      options.from.value_or(overlay_.random_alive(rng_));
  obs::SpanRecorder span;
  if (tracer_ != nullptr) span.open(obs::OpKind::kRangePublish, source, key);
  const overlay::RouteResult route =
      overlay_.route(source, key, span.active() ? &span : nullptr);

  RangePublishResult result;
  result.node = route.destination;
  result.route_hops = route.hops;
  node_data_[route.destination].attributes[attribute].emplace(value, id);

  record_fault_stats(obs::OpKind::kRangePublish, route.stats);
  ++op_count(obs::OpKind::kRangePublish, "ok");
  op_messages(obs::OpKind::kRangePublish) += route.hops;
  op_route_hops(obs::OpKind::kRangePublish)
      .observe(static_cast<double>(route.hops));
  if (tracer_ != nullptr) span.finish("ok", *tracer_);
  return result;
}

RangeSearchResult Meteorograph::range_search_op(
    AttributeId attribute, double lo, double hi,
    const RangeSearchOptions& options, Rng& rng, OpTrace& trace,
    ReadView /*view*/) const {
  // Attribute records are unversioned: publish/withdraw commits never
  // touch them, and the EpochEngine flushes every pinned reader before
  // the first depart commit of an epoch (DESIGN.md §11), so the live
  // multimaps below always equal the pinned epoch's state.
  METEO_EXPECTS(lo <= hi);

  RangeSearchResult result;
  overlay::HopStats& fault_stats = trace.route;
  const AttributeSpace& space = attributes_.space(attribute);
  const overlay::Key key_lo = space.key_of(lo);
  const overlay::Key key_hi = space.key_of(hi);

  const overlay::NodeId source =
      options.from.value_or(overlay_.random_alive(rng));
  if (tracer_ != nullptr) {
    trace.span.open(obs::OpKind::kRangeSearch, source, key_lo);
  }
  obs::SpanRecorder* const rec = trace.span.active() ? &trace.span : nullptr;
  const overlay::RouteResult route = overlay_.route(source, key_lo, rec);
  result.route_hops = route.hops;
  fault_stats += route.stats;
  if (route.blocked) result.partial = true;

  // A record with key k lives on the node *closest* to k, which may sit
  // just below key_lo or just above key_hi — start one node early and
  // stop one node late. Every step is a message; one lost past retries
  // truncates the scan (reported as partial).
  overlay::NodeId cur = route.destination;
  if (const overlay::NodeId pred = overlay_.predecessor(cur);
      pred != overlay::kInvalidNode) {
    if (overlay_.deliver(cur, pred, fault_stats, rec)) {
      if (rec != nullptr) {
        rec->event(obs::EventKind::kWalkHop, cur, pred, result.walk_hops);
      }
      cur = pred;
      ++result.walk_hops;
    } else {
      result.partial = true;  // records just below key_lo stay unseen
    }
  }
  bool past_hi = false;
  while (cur != overlay::kInvalidNode) {
    ++result.nodes_visited;
    const auto& per_node = node_data_[cur].attributes;
    if (const auto it = per_node.find(attribute); it != per_node.end()) {
      for (auto match = it->second.lower_bound(lo);
           match != it->second.end() && match->first <= hi; ++match) {
        result.matches.push_back(RangeMatch{match->first, match->second});
      }
    }
    if (past_hi) break;
    if (overlay_.key_of(cur) > key_hi) past_hi = true;  // one-node margin
    const overlay::NodeId next = overlay_.successor(cur);
    if (next == overlay::kInvalidNode) break;
    if (!overlay_.deliver(cur, next, fault_stats, rec)) {
      if (!past_hi) result.partial = true;  // the rest of the range is cut off
      break;
    }
    if (rec != nullptr) {
      rec->event(obs::EventKind::kWalkHop, cur, next, result.walk_hops);
    }
    cur = next;
    ++result.walk_hops;
  }

  std::sort(result.matches.begin(), result.matches.end(),
            [](const RangeMatch& a, const RangeMatch& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.item < b.item;
            });

  return result;
}

void Meteorograph::record_range_search(const RangeSearchResult& result,
                                       OpTrace& trace) {
  record_fault_stats(obs::OpKind::kRangeSearch, trace.route);
  ++op_count(obs::OpKind::kRangeSearch, outcome_label(result));
  op_messages(obs::OpKind::kRangeSearch) += result.total_messages();
  op_route_hops(obs::OpKind::kRangeSearch)
      .observe(static_cast<double>(result.route_hops));
  op_walk_hops(obs::OpKind::kRangeSearch)
      .observe(static_cast<double>(result.walk_hops));
  if (tracer_ != nullptr) trace.span.finish(outcome_label(result), *tracer_);
}

RangeSearchResult Meteorograph::range_search(AttributeId attribute, double lo,
                                             double hi,
                                             const RangeSearchOptions& options) {
  begin_operation();
  OpTrace trace;
  const RangeSearchResult result =
      range_search_op(attribute, lo, hi, options, rng_, trace);
  record_range_search(result, trace);
  return result;
}

}  // namespace meteo::core
