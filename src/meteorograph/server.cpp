#include "meteorograph/server.hpp"

#include <algorithm>
#include <vector>

namespace meteo::core {

namespace {

EpochOptions engine_options(const ServeOptions& options) {
  EpochOptions out;
  out.workers = options.workers;
  out.seed = options.seed;
  return out;
}

}  // namespace

Server::Server(Meteorograph& system, ServeOptions options)
    : engine_(system, engine_options(options)), options_(options) {}

std::optional<Server::Ticket> Server::submit(Request request) {
  if (queue_.size() >= options_.queue_capacity) {
    ++rejected_;
    return std::nullopt;
  }
  const Ticket ticket = next_ticket_++;
  queue_.emplace_back(ticket, std::move(request));
  ++accepted_;
  return ticket;
}

std::size_t Server::pump(const CompletionFn& on_complete) {
  const std::size_t window =
      std::min(queue_.size(), std::max<std::size_t>(options_.ops_per_epoch, 1));
  if (window == 0) return 0;

  std::vector<Ticket> tickets;
  tickets.reserve(window);
  for (std::size_t i = 0; i < window; ++i) {
    auto& [ticket, request] = queue_.front();
    tickets.push_back(ticket);
    std::visit([&](const auto& op) { engine_.submit(op); }, request);
    queue_.pop_front();
  }

  const EpochEngine::SealedEpoch sealed = engine_.seal();
  served_ += window;
  for (std::size_t i = 0; i < window; ++i) {
    Completion done;
    done.ticket = tickets[i];
    done.epoch = sealed.epoch;
    done.result = sealed.results[i];
    done.timeout_cost = sealed.timeout_costs[i];
    done.deadline_exceeded = options_.deadline_seconds > 0.0 &&
                             done.timeout_cost > options_.deadline_seconds;
    if (done.deadline_exceeded) ++deadline_misses_;
    if (on_complete) on_complete(done);
  }
  return window;
}

}  // namespace meteo::core
