#pragma once

/// \file epoch.hpp
/// Epoch-based MVCC snapshot execution over a Meteorograph system
/// (DESIGN.md §11).
///
/// An EpochEngine accepts a mixed stream of operations through submit_*()
/// and executes the accumulated window on seal(). Within one epoch E:
///
///   * read operations (retrieve, locate, similarity_search,
///     range_search) execute against the *pinned* epoch-E view, in
///     parallel across a thread pool;
///   * mutating operations (publish, withdraw, depart) commit strictly
///     sequentially, in submission order, into epoch E+1 — every store
///     mutation is stamped E+1 and the displaced version is retained so
///     pinned readers still see it;
///   * reads may be deferred past the write phase (the `defer_read`
///     hook): they then execute after the commits yet still observe
///     exactly epoch E, byte-identically to running before them.
///
/// seal() folds metrics and traces in one canonical order — writes in
/// submission order (inline with their commits), then reads in
/// submission order — so results, trace dumps, and metric exports are
/// bit-identical at any worker count, with or without deferral. The
/// sequential-replay oracle is simply `workers = 1`.
///
/// Like BatchEngine, op structs borrow their vectors; the caller keeps
/// the workload alive until the seal() that executes it returns.
///
///   EpochEngine engine(sys, {.workers = 8, .seed = 42});
///   engine.submit(RetrieveOp{...});
///   engine.submit(PublishOp{...});
///   auto sealed = engine.seal();   // one epoch boundary

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "meteorograph/batch.hpp"
#include "meteorograph/meteorograph.hpp"

namespace meteo::core {

/// Graceful departure of `node`, as a submittable op (the epoch window
/// mixes departures between publishes and reads; BatchEngine's depart()
/// takes a bare node span instead).
struct DepartOp {
  overlay::NodeId node = overlay::kInvalidNode;
};

struct EpochOptions {
  /// Worker threads for the read phases; 0 = hardware_concurrency().
  std::size_t workers = 0;
  /// Root of every per-operation RNG/fault substream (global op index
  /// keyed: an op keeps its streams no matter how epochs are cut).
  std::uint64_t seed = 0x6d657465'6f726f67ULL;
  /// Interleaving seam: return true to defer the read with this global
  /// op index past the epoch's write phase (it still observes epoch E).
  /// Null defers nothing. Mutating ops ignore it.
  std::function<bool(std::size_t)> defer_read;
};

class EpochEngine {
 public:
  using OpResult =
      std::variant<RetrieveResult, LocateResult, SearchResult,
                   RangeSearchResult, PublishResult, WithdrawResult,
                   DepartResult>;

  struct SealedEpoch {
    /// The epoch the reads pinned; writes committed into `epoch + 1`.
    vsm::Epoch epoch = 0;
    /// Per-op results, parallel to submission order within the window.
    std::vector<OpResult> results;
    /// Simulated seconds each op spent waiting on timeouts (route + walk
    /// legs; a publish counts its plan route — commit legs fold straight
    /// into the metric registry). The server's deadline budget input.
    std::vector<double> timeout_costs;
  };

  /// Binds to `system` for the engine's lifetime (non-owning); each
  /// seal() arms version retention on every node store for its window.
  /// The LSI ranking mode mutates a per-node projection cache under
  /// reads, so it cannot serve pinned snapshots.
  /// \pre config.local_ranking != kLsi
  explicit EpochEngine(Meteorograph& system, EpochOptions options = {});

  /// Disarms version retention and drops retained versions, returning
  /// the system to plain facade behavior.
  ~EpochEngine();

  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  // Submission window. Each call returns the op's index within the
  // current window (= its index into SealedEpoch::results).
  std::size_t submit(const RetrieveOp& op);
  std::size_t submit(const LocateOp& op);
  std::size_t submit(const SearchOp& op);
  std::size_t submit(const RangeSearchOp& op);
  std::size_t submit(const PublishOp& op);
  std::size_t submit(const WithdrawOp& op);
  std::size_t submit(const DepartOp& op);

  /// Executes the window as one epoch and advances the epoch counter.
  /// Empty windows still advance (an idle server heartbeat).
  SealedEpoch seal();

  /// Ops submitted and not yet sealed.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }

  /// The epoch the next seal()'s reads will pin.
  [[nodiscard]] vsm::Epoch epoch() const noexcept { return epoch_; }

  /// Configured worker count after the 0 = hardware default resolved.
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return options_.workers;
  }

 private:
  using AnyOp = std::variant<RetrieveOp, LocateOp, SearchOp, RangeSearchOp,
                             PublishOp, WithdrawOp, DepartOp>;

  struct Pending {
    AnyOp op;
    std::uint64_t global_index = 0;  ///< substream key, monotone over epochs
  };

  /// Ends the batch bracket and clears the write-span epoch stamp on
  /// every exit path. Nested so Meteorograph's friendship covers the
  /// private end_batch() call (same trick as BatchEngine::BatchGuard).
  struct SealGuard {
    explicit SealGuard(Meteorograph& sys) : system(sys) {}
    ~SealGuard() {
      system.span_epoch_ = 0;
      system.end_batch();
    }
    SealGuard(const SealGuard&) = delete;
    SealGuard& operator=(const SealGuard&) = delete;
    Meteorograph& system;
  };

  /// Same substream discipline as BatchEngine, keyed by the op's global
  /// index so streams never depend on where epoch boundaries fall.
  [[nodiscard]] Rng substream(std::uint64_t g) const noexcept {
    return Rng(splitmix64(options_.seed + 0x9e3779b97f4a7c15ULL * (g + 1)));
  }
  [[nodiscard]] std::uint64_t scope_salt(std::uint64_t g) const noexcept {
    return splitmix64(options_.seed ^ (0xbf58476d1ce4e5b9ULL * (g + 1)));
  }

  std::size_t push(AnyOp op);

  /// Arms every node store: retain versions, stamp mutations `write`.
  void arm_stores(vsm::Epoch write);
  /// Drops retired versions on every node store (epoch boundary).
  void gc_stores();
  /// Disarms retention everywhere (destructor path).
  void disarm_stores();

  Meteorograph& system_;
  EpochOptions options_;
  std::optional<ThreadPool> pool_;  // engaged only when workers > 1
  std::vector<Pending> pending_;
  vsm::Epoch epoch_ = 0;
  std::uint64_t next_global_ = 0;
  std::optional<obs::Gauge> epoch_gauge_;
  std::optional<obs::Counter> epoch_advances_;
};

}  // namespace meteo::core
