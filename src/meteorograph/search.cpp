#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"
#include "meteorograph/walk.hpp"
#include "obs/names.hpp"

namespace meteo::core {

namespace {

namespace names = obs::names;

/// Spill distance: an item displaced by overflow chaining sits a few nodes
/// from its key's home; lookups walk at most this many extra neighbors.
constexpr std::size_t kLookupSpillLimit = 16;

/// Shared harvest result for nodes that store nothing — the common case on
/// a large overlay, where a discover-all walk visits every node.
const std::vector<vsm::ItemId> kEmptyHarvest;

}  // namespace

SearchResult Meteorograph::search_op(std::span<const vsm::KeywordId> keywords,
                                     std::size_t k,
                                     const SearchOptions& options, Rng& rng,
                                     OpTrace& trace, ReadView view) const {
  METEO_EXPECTS(!keywords.empty());

  std::vector<vsm::KeywordId> query(keywords.begin(), keywords.end());
  std::sort(query.begin(), query.end());
  query.erase(std::unique(query.begin(), query.end()), query.end());

  SearchResult result;

  // §3.5.1 first hop: start at the smallest matching sample key; fall back
  // to the raw key of the query vector itself.
  const overlay::Key fallback =
      strategy_->directory_key(vsm::SparseVector::binary(query));
  const overlay::Key start_key =
      first_hop_.smallest_matching_key(query).value_or(fallback);

  const overlay::NodeId source =
      options.from.value_or(overlay_.random_alive(rng));
  if (tracer_ != nullptr) {
    trace.span.open(obs::OpKind::kSimilaritySearch, source, start_key);
  }
  obs::SpanRecorder* const rec = trace.span.active() ? &trace.span : nullptr;
  const overlay::RouteResult route = overlay_.route(source, start_key, rec);
  result.route_hops = route.hops;
  overlay::HopStats& fault_stats = trace.route;
  fault_stats = route.stats;
  if (route.blocked) result.partial = true;

  std::unordered_set<vsm::ItemId> seen;
  auto add_item = [&](vsm::ItemId id, std::size_t hops) {
    if (!seen.insert(id).second) return false;
    result.items.push_back(id);
    result.discovery_hops.push_back(hops);
    return true;
  };
  auto satisfied = [&] { return k > 0 && result.items.size() >= k; };

  // Per-op harvest memo: pointer chases spill across overlapping neighbor
  // bands, so the same node is often visited by several legs of one
  // search. Stores are frozen for the op (search_op is const against the
  // batch snapshot), so the node's match set is computed once.
  std::unordered_map<overlay::NodeId, std::vector<vsm::ItemId>> harvested;
  auto harvest = [&](overlay::NodeId node) -> const std::vector<vsm::ItemId>& {
    const NodeData& data = node_data_[node];
    if (data.items.empty_at(view.epoch)) return kEmptyHarvest;
    const auto it = harvested.find(node);
    if (it != harvested.end()) return it->second;
    std::vector<vsm::ItemId> got;
    data.items.match_all_at(query, view.epoch, got);
    // Memoize only nodes that matched: a walk visits thousands of nodes
    // whose stores miss the query entirely, and re-running the index's
    // early-out there is cheaper than churning map entries for them.
    if (got.empty()) return kEmptyHarvest;
    return harvested.emplace(node, std::move(got)).first->second;
  };

  // Chase one directory pointer: route to the item's key, harvesting every
  // matching item at each visited node (the paper's k'-batched replies),
  // walking past overflow spill until the pointed-to item is found. A
  // lookup whose request dies en route is counted as failed instead of
  // silently returning nothing.
  auto chase = [&](overlay::NodeId origin, const DirectoryPointer& pointer) {
    if (rec != nullptr) rec->set_leg_key(pointer.item_key);
    const overlay::RouteResult leg =
        overlay_.route(origin, pointer.item_key, rec);
    fault_stats += leg.stats;
    result.lookup_messages += leg.hops + 1;  // request legs + reply
    if (leg.blocked) {
      ++result.lookups_failed;
      result.partial = true;
      if (rec != nullptr) rec->set_leg_key(start_key);
      return;
    }
    NeighborWalk spill(overlay_, leg.destination, pointer.item_key, rec);
    bool found_target = false;
    while (true) {
      const NodeData& data = node_data_[spill.current()];
      for (const vsm::ItemId id : harvest(spill.current())) {
        add_item(id, leg.hops + spill.hops());
      }
      found_target =
          found_target || data.items.contains_at(pointer.item, view.epoch);
      if (found_target || spill.hops() >= kLookupSpillLimit) break;
      if (!spill.advance()) break;
      ++result.lookup_messages;
    }
    fault_stats += spill.stats();
    if (spill.faulted() && !found_target) result.partial = true;
    if (rec != nullptr) rec->set_leg_key(start_key);
  };

  // Walk the directory (raw-key) space outward from the start node.
  const std::size_t walk_limit = config_.max_walk_nodes > 0
                                     ? config_.max_walk_nodes
                                     : overlay_.alive_count();
  NeighborWalk walk(overlay_, route.destination, start_key, rec);
  while (true) {
    const overlay::NodeId cur = walk.current();
    const NodeData& data = node_data_[cur];
    ++result.nodes_visited;

    // Local search on stored items (§3.5.2 searches items and pointers).
    // Items found on a walked node cost one marginal neighbor step (the
    // walk itself is accounted in walk_hops); items on the start node are
    // free riders of the initial route.
    for (const vsm::ItemId id : harvest(cur)) {
      add_item(id, walk.hops() > 0 ? 1 : 0);
    }
    // Chase matching pointers, one lookup at a time, stopping at k. A
    // pointer matching the whole conjunction necessarily carries the
    // query's first keyword, so only that bucket is consulted — in
    // publication order, the same relative order the full scan used.
    for (const std::size_t pi : data.directory.candidates(query.front())) {
      if (satisfied()) break;
      if (!data.directory.visible_at(pi, view.epoch)) continue;
      const DirectoryPointer& pointer = data.directory.all()[pi];
      if (!pointer.matches(query) || seen.contains(pointer.item)) continue;
      chase(cur, pointer);
    }

    if (satisfied() || result.nodes_visited >= walk_limit) break;
    if (!walk.advance()) break;
  }
  result.walk_hops = walk.hops();
  fault_stats += walk.stats();
  // A directory walk cut short by an unreachable neighbor may have missed
  // pointer regions entirely — only a fully satisfied k excuses it.
  if (walk.faulted() && !satisfied()) result.partial = true;

  return result;
}

void Meteorograph::record_search(const SearchResult& result, OpTrace& trace) {
  record_fault_stats(obs::OpKind::kSimilaritySearch, trace.route);
  ++op_count(obs::OpKind::kSimilaritySearch, outcome_label(result));
  op_messages(obs::OpKind::kSimilaritySearch) += result.total_messages();
  op_route_hops(obs::OpKind::kSimilaritySearch)
      .observe(static_cast<double>(result.route_hops));
  op_walk_hops(obs::OpKind::kSimilaritySearch)
      .observe(static_cast<double>(result.walk_hops));
  if (!search_items_.has_value()) {
    search_items_.emplace(
        metrics_.histogram(names::kSearchItems, obs::count_buckets()));
  }
  search_items_->observe(static_cast<double>(result.items.size()));
  if (result.lookups_failed != 0) {
    metrics_.counter(names::kSearchLookupsFailed) += result.lookups_failed;
  }
  if (tracer_ != nullptr) trace.span.finish(outcome_label(result), *tracer_);
}

SearchResult Meteorograph::similarity_search(
    std::span<const vsm::KeywordId> keywords, std::size_t k,
    const SearchOptions& options) {
  begin_operation();
  OpTrace trace;
  const SearchResult result = search_op(keywords, k, options, rng_, trace);
  record_search(result, trace);
  return result;
}

}  // namespace meteo::core
