#include "meteorograph/meteorograph.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "common/zipf.hpp"
#include "vsm/absolute_angle.hpp"

namespace meteo::core {

namespace {

std::vector<overlay::Key> raw_keys_of(
    std::span<const vsm::SparseVector> sample, const SystemConfig& config) {
  std::vector<overlay::Key> keys;
  keys.reserve(sample.size());
  for (const vsm::SparseVector& v : sample) {
    keys.push_back(vsm::absolute_angle_key(
        v, config.dimension, config.overlay.key_space, config.angle_mode));
  }
  return keys;
}

std::vector<vsm::KeywordId> keywords_of(const vsm::SparseVector& v) {
  std::vector<vsm::KeywordId> out;
  out.reserve(v.nnz());
  for (const vsm::Entry& e : v.entries()) out.push_back(e.keyword);
  return out;
}

}  // namespace

Meteorograph::Meteorograph(SystemConfig config,
                           std::span<const vsm::SparseVector> sample,
                           std::uint64_t seed)
    : config_(config),
      rng_(seed),
      naming_(NamingScheme::fit(raw_keys_of(sample, config), config)),
      overlay_(config.overlay),
      attributes_(config.overlay.key_space) {
  METEO_EXPECTS(config_.node_count >= 1);

  // Hot-region statistics come from the *post-remap* sample keys (§3.4.2).
  if (config_.load_balance == LoadBalanceMode::kUnusedHashSpacePlusHotRegions) {
    std::vector<overlay::Key> balanced;
    balanced.reserve(sample.size());
    for (const overlay::Key raw : raw_keys_of(sample, config_)) {
      balanced.push_back(naming_.remap(raw));
    }
    hot_regions_ = HotRegionSet::detect(balanced, config_);
  }

  // Join the peer population; hot-region-aware names when configured.
  const bool hot_naming =
      config_.load_balance == LoadBalanceMode::kUnusedHashSpacePlusHotRegions;
  while (overlay_.alive_count() < config_.node_count) {
    const overlay::Key key = hot_naming
                                 ? hot_regions_.name_node(rng_)
                                 : rng_.below(config_.overlay.key_space);
    (void)overlay_.join(key);  // collisions simply retry
  }
  overlay_.repair();
  sync_node_data();

  // The bootstrap sample doubles as the first-hop data set (§3.5.1).
  const auto raws = raw_keys_of(sample, config_);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    first_hop_.add(raws[i], keywords_of(sample[i]));
  }
}

void Meteorograph::begin_operation() {
  if (overlay::FaultHook* hook = overlay_.fault_hook()) {
    for (const overlay::NodeId node : hook->take_due_crashes()) {
      // The last node never crashes: the simulator needs a live peer to
      // originate operations from.
      if (overlay_.is_alive(node) && overlay_.alive_count() > 1) {
        overlay_.fail(node);
        ++metrics_.counter("fault.crashes_applied");
      }
    }
  }
  sync_node_data();
}

void Meteorograph::begin_batch() {
  METEO_EXPECTS(!batch_in_flight_);
  begin_operation();  // crashes land once, at the batch boundary
  batch_in_flight_ = true;
}

void Meteorograph::record_fault_stats(const overlay::HopStats& stats) {
  // Created lazily so fault-free runs keep a fault-free metrics map
  // (byte-identical to a run without any hook attached).
  if (stats.retries != 0) metrics_.counter("retry.count") += stats.retries;
  if (stats.timeouts != 0) metrics_.counter("timeout.count") += stats.timeouts;
  if (stats.reroutes != 0) metrics_.counter("reroute.count") += stats.reroutes;
  if (stats.timeout_cost != 0.0) {
    metrics_.distribution("fault.timeout_cost").add(stats.timeout_cost);
  }
}

void Meteorograph::sync_node_data() {
  if (node_data_.size() < overlay_.size()) {
    node_data_.resize(overlay_.size());
  }
  // Capability classes are assigned at join time: class i (probability
  // proportional to capability_weights[i]) holds node_capacity * 2^i.
  if (node_capacity_.size() < node_data_.size()) {
    std::optional<AliasTable> classes;
    if (config_.node_capacity != 0 && !config_.capability_weights.empty()) {
      classes.emplace(config_.capability_weights);
    }
    while (node_capacity_.size() < node_data_.size()) {
      std::size_t capacity = config_.node_capacity;
      if (classes.has_value()) capacity <<= (*classes)(rng_);
      node_capacity_.push_back(capacity);
    }
  }
}

std::size_t Meteorograph::capacity_of(overlay::NodeId id) const {
  METEO_EXPECTS(id < node_capacity_.size());
  return node_capacity_[id];
}

std::vector<std::size_t> Meteorograph::node_loads() const {
  std::vector<std::size_t> loads;
  const auto nodes = overlay_.alive_nodes();
  loads.reserve(nodes.size());
  for (const overlay::NodeId id : nodes) {
    loads.push_back(id < node_data_.size() ? node_data_[id].items.size() : 0);
  }
  return loads;
}

std::size_t Meteorograph::stored_item_count() const {
  std::size_t total = 0;
  for (const NodeData& d : node_data_) total += d.items.size();
  return total;
}

const AngleStore& Meteorograph::store_of(overlay::NodeId id) const {
  METEO_EXPECTS(id < node_data_.size());
  return node_data_[id].items;
}

}  // namespace meteo::core
