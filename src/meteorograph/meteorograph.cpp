#include "meteorograph/meteorograph.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/assert.hpp"
#include "common/zipf.hpp"
#include "obs/names.hpp"

namespace meteo::core {

const char* outcome_label(const Degradation& d) noexcept {
  // Severity order: a blocked op is also partial; report the worst flag.
  if (d.fault_blocked) return "blocked";
  if (d.partial) return "partial";
  if (d.degraded) return "degraded";
  return "ok";
}

namespace {

std::vector<vsm::KeywordId> keywords_of(const vsm::SparseVector& v) {
  std::vector<vsm::KeywordId> out;
  out.reserve(v.nnz());
  for (const vsm::Entry& e : v.entries()) out.push_back(e.keyword);
  return out;
}

}  // namespace

Meteorograph::Meteorograph(SystemConfig config,
                           std::span<const vsm::SparseVector> sample,
                           std::uint64_t seed)
    : config_(config),
      rng_(seed),
      strategy_(make_naming_strategy(sample, config)),
      overlay_(config.overlay),
      attributes_(config.overlay.key_space) {
  METEO_EXPECTS(config_.node_count >= 1);

  // Hot-region statistics come from the sample's *published* keys: the
  // post-remap keys under the default angle strategy (§3.4.2, the exact
  // pre-strategy path), the strategy's own primary keys otherwise — node
  // placement must follow wherever the active strategy sends the items.
  if (config_.load_balance == LoadBalanceMode::kUnusedHashSpacePlusHotRegions) {
    std::vector<overlay::Key> balanced;
    balanced.reserve(sample.size());
    if (config_.naming.strategy == NamingStrategyKind::kAngle) {
      for (const overlay::Key raw : NamingScheme::raw_keys(sample, config_)) {
        balanced.push_back(strategy_->scheme().remap(raw));
      }
    } else {
      for (const vsm::SparseVector& v : sample) {
        balanced.push_back(strategy_->primary_key(v));
      }
    }
    hot_regions_ = HotRegionSet::detect(balanced, config_);
  }

  // Join the peer population; hot-region-aware names when configured.
  const bool hot_naming =
      config_.load_balance == LoadBalanceMode::kUnusedHashSpacePlusHotRegions;
  while (overlay_.alive_count() < config_.node_count) {
    const overlay::Key key = hot_naming
                                 ? hot_regions_.name_node(rng_)
                                 : rng_.below(config_.overlay.key_space);
    (void)overlay_.join(key);  // collisions simply retry
  }
  overlay_.repair();
  sync_node_data();

  // The bootstrap sample doubles as the first-hop data set (§3.5.1). The
  // first-hop index lives in the raw-angle directory space under every
  // strategy (NamingStrategy::directory_key).
  const auto raws = NamingScheme::raw_keys(sample, config_);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    first_hop_.add(raws[i], keywords_of(sample[i]));
  }
}

void Meteorograph::begin_operation() {
  if (overlay::FaultHook* hook = overlay_.fault_hook()) {
    for (const overlay::NodeId node : hook->take_due_crashes()) {
      // The last node never crashes: the simulator needs a live peer to
      // originate operations from.
      if (overlay_.is_alive(node) && overlay_.alive_count() > 1) {
        overlay_.fail(node);
        ++metrics_.counter(obs::names::kFaultCrashesApplied);
      }
    }
  }
  sync_node_data();
  // Membership gauge: refreshed at every operation boundary (O(1)).
  metrics_.gauge(obs::names::kAliveNodes)
      .set(static_cast<double>(overlay_.alive_count()));
}

void Meteorograph::begin_batch() {
  METEO_EXPECTS(!batch_in_flight_);
  begin_operation();  // crashes land once, at the batch boundary
  // Storage gauge: O(total nodes) to compute, so snapshotted only at
  // batch barriers, never per op (DESIGN.md §8).
  metrics_.gauge(obs::names::kStoredItems)
      .set(static_cast<double>(stored_item_count()));
  batch_in_flight_ = true;
}

// Per-OpKind handle caches. The registry guarantees handles stay valid
// across reset() and later registrations (DESIGN.md §8), so each (name,
// labels) pair is resolved once per Meteorograph and the hot record_*
// paths touch no strings, vectors, or map lookups afterwards.

obs::Counter& Meteorograph::op_count(obs::OpKind op, const char* outcome) {
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  for (OpSeries::OutcomeCounter& entry : series.count) {
    if (std::strcmp(entry.label, outcome) == 0) return entry.counter;
  }
  series.count.push_back(
      {outcome, metrics_.counter(obs::names::kOpCount,
                                 {{obs::names::kLabelOp, obs::to_string(op)},
                                  {obs::names::kLabelOutcome, outcome}})});
  return series.count.back().counter;
}

obs::Counter& Meteorograph::op_messages(obs::OpKind op) {
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  if (!series.messages.has_value()) {
    series.messages.emplace(metrics_.counter(
        obs::names::kOpMessages, {{obs::names::kLabelOp, obs::to_string(op)}}));
  }
  return *series.messages;
}

obs::Histogram& Meteorograph::op_route_hops(obs::OpKind op) {
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  if (!series.route_hops.has_value()) {
    series.route_hops.emplace(metrics_.histogram(
        obs::names::kOpRouteHops, obs::hop_buckets(),
        {{obs::names::kLabelOp, obs::to_string(op)}}));
  }
  return *series.route_hops;
}

obs::Histogram& Meteorograph::op_walk_hops(obs::OpKind op) {
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  if (!series.walk_hops.has_value()) {
    series.walk_hops.emplace(metrics_.histogram(
        obs::names::kOpWalkHops, obs::hop_buckets(),
        {{obs::names::kLabelOp, obs::to_string(op)}}));
  }
  return *series.walk_hops;
}

obs::Histogram& Meteorograph::op_naming_probes(obs::OpKind op) {
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  if (!series.naming_probes.has_value()) {
    series.naming_probes.emplace(metrics_.histogram(
        obs::names::kNamingProbes, obs::hop_buckets(),
        {{obs::names::kLabelOp, obs::to_string(op)}}));
  }
  return *series.naming_probes;
}

obs::Histogram& Meteorograph::op_naming_keys(obs::OpKind op) {
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  if (!series.naming_keys.has_value()) {
    series.naming_keys.emplace(metrics_.histogram(
        obs::names::kNamingKeys, obs::hop_buckets(),
        {{obs::names::kLabelOp, obs::to_string(op)}}));
  }
  return *series.naming_keys;
}

void Meteorograph::record_fault_stats(obs::OpKind op,
                                      const overlay::HopStats& stats) {
  // Series are created lazily — on the first *nonzero* stat — so
  // fault-free runs keep a fault-free metrics map (byte-identical to a
  // run without any hook attached).
  OpSeries& series = op_series_[static_cast<std::size_t>(op)];
  if (stats.retries != 0) {
    if (!series.fault_retries.has_value()) {
      series.fault_retries.emplace(metrics_.counter(
          obs::names::kFaultRetries,
          {{obs::names::kLabelOp, obs::to_string(op)}}));
    }
    *series.fault_retries += stats.retries;
  }
  if (stats.timeouts != 0) {
    if (!series.fault_timeouts.has_value()) {
      series.fault_timeouts.emplace(metrics_.counter(
          obs::names::kFaultTimeouts,
          {{obs::names::kLabelOp, obs::to_string(op)}}));
    }
    *series.fault_timeouts += stats.timeouts;
  }
  if (stats.reroutes != 0) {
    if (!series.fault_reroutes.has_value()) {
      series.fault_reroutes.emplace(metrics_.counter(
          obs::names::kFaultReroutes,
          {{obs::names::kLabelOp, obs::to_string(op)}}));
    }
    *series.fault_reroutes += stats.reroutes;
  }
  if (stats.timeout_cost != 0.0) {
    if (!series.fault_timeout_cost.has_value()) {
      series.fault_timeout_cost.emplace(metrics_.histogram(
          obs::names::kFaultTimeoutCost, obs::cost_buckets(),
          {{obs::names::kLabelOp, obs::to_string(op)}}));
    }
    series.fault_timeout_cost->observe(stats.timeout_cost);
  }
}

void Meteorograph::sync_node_data() {
  if (node_data_.size() < overlay_.size()) {
    node_data_.resize(overlay_.size());
  }
  // Capability classes are assigned at join time: class i (probability
  // proportional to capability_weights[i]) holds node_capacity * 2^i.
  if (node_capacity_.size() < node_data_.size()) {
    std::optional<AliasTable> classes;
    if (config_.node_capacity != 0 && !config_.capability_weights.empty()) {
      classes.emplace(config_.capability_weights);
    }
    while (node_capacity_.size() < node_data_.size()) {
      std::size_t capacity = config_.node_capacity;
      if (classes.has_value()) capacity <<= (*classes)(rng_);
      node_capacity_.push_back(capacity);
    }
  }
}

std::size_t Meteorograph::capacity_of(overlay::NodeId id) const {
  METEO_EXPECTS(id < node_capacity_.size());
  return node_capacity_[id];
}

std::vector<std::size_t> Meteorograph::node_loads() const {
  std::vector<std::size_t> loads;
  const auto nodes = overlay_.alive_nodes();
  loads.reserve(nodes.size());
  for (const overlay::NodeId id : nodes) {
    loads.push_back(id < node_data_.size() ? node_data_[id].items.size() : 0);
  }
  return loads;
}

std::size_t Meteorograph::stored_item_count() const {
  std::size_t total = 0;
  for (const NodeData& d : node_data_) total += d.items.size();
  return total;
}

const AngleStore& Meteorograph::store_of(overlay::NodeId id) const {
  METEO_EXPECTS(id < node_data_.size());
  return node_data_[id].items;
}

}  // namespace meteo::core
