#include "meteorograph/batch.hpp"

#include <algorithm>
#include <thread>

#include "common/assert.hpp"
#include "overlay/fault_hook.hpp"

namespace meteo::core {

namespace {

/// Closes the per-operation fate scope even when the op throws, so a
/// worker thread never leaks an active scope into the next op it runs.
class ScopeGuard {
 public:
  ScopeGuard(overlay::FaultHook* hook, std::uint64_t salt,
             std::uint64_t first_message = 0)
      : hook_(hook) {
    if (hook_ != nullptr) hook_->begin_op_scope(salt, first_message);
  }
  ~ScopeGuard() {
    if (hook_ != nullptr) resume_ = hook_->end_op_scope();
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

  /// Next in-scope message index, valid after close(); used to resume one
  /// logical operation's fate stream across the plan/commit split.
  std::uint64_t close() {
    if (hook_ != nullptr) {
      resume_ = hook_->end_op_scope();
      hook_ = nullptr;
    }
    return resume_;
  }

 private:
  overlay::FaultHook* hook_;
  std::uint64_t resume_ = 0;
};

}  // namespace

BatchEngine::BatchEngine(Meteorograph& system, BatchOptions options)
    : system_(system), options_(options) {
  if (options_.workers == 0) {
    options_.workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (options_.workers > 1) pool_.emplace(options_.workers);
}

template <typename Result, typename Op, typename Exec, typename Record>
std::vector<Result> BatchEngine::run_read_batch(std::span<const Op> ops,
                                                std::size_t workers,
                                                Exec&& exec, Record&& record) {
  system_.begin_batch();
  BatchGuard batch(system_);

  overlay::FaultHook* hook = system_.network().fault_hook();
  const bool scoped = hook != nullptr && hook->supports_op_scopes();
  // A hook without per-op fate scopes decides fates off one shared,
  // order-dependent stream: run its batches single-threaded.
  if (hook != nullptr && !scoped) workers = 1;

  std::vector<Result> results(ops.size());
  std::vector<Meteorograph::OpTrace> traces(ops.size());

  // Scopes are used even at one worker so the fate streams — and with
  // them results and metrics — match any other worker count exactly.
  auto run_one = [&](std::size_t i) {
    Rng rng = substream(i);
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(i));
    results[i] = exec(ops[i], rng, traces[i]);
  };

  if (workers > 1 && pool_.has_value() && ops.size() > 1) {
    pool_->parallel_for(0, ops.size(), run_one);
  } else {
    for (std::size_t i = 0; i < ops.size(); ++i) run_one(i);
  }

  // Metric-and-trace fold in op-index order: histogram accumulation is
  // float-order-sensitive and spans are appended to the trace log here,
  // so the order must not depend on workers (commit-order merge).
  for (std::size_t i = 0; i < ops.size(); ++i) record(results[i], traces[i]);
  return results;
}

std::vector<RetrieveResult> BatchEngine::retrieve(
    std::span<const RetrieveOp> ops) {
  std::size_t workers = options_.workers;
  // AngleStore's LSI projection cache mutates lazily under top_k_lsi.
  if (system_.config().local_ranking == LocalRanking::kLsi) workers = 1;
  return run_read_batch<RetrieveResult>(
      ops, workers,
      [this](const RetrieveOp& op, Rng& rng, Meteorograph::OpTrace& trace) {
        METEO_EXPECTS(op.query != nullptr);
        return system_.retrieve_op(*op.query, op.amount, op.options, rng,
                                   trace);
      },
      [this](const RetrieveResult& r, Meteorograph::OpTrace& trace) {
        system_.record_retrieve(r, trace);
      });
}

std::vector<LocateResult> BatchEngine::locate(std::span<const LocateOp> ops) {
  return run_read_batch<LocateResult>(
      ops, options_.workers,
      [this](const LocateOp& op, Rng& rng, Meteorograph::OpTrace& trace) {
        METEO_EXPECTS(op.vector != nullptr);
        return system_.locate_op(op.item, *op.vector, op.options, rng, trace);
      },
      [this](const LocateResult& r, Meteorograph::OpTrace& trace) {
        system_.record_locate(r, trace);
      });
}

std::vector<SearchResult> BatchEngine::similarity_search(
    std::span<const SearchOp> ops) {
  return run_read_batch<SearchResult>(
      ops, options_.workers,
      [this](const SearchOp& op, Rng& rng, Meteorograph::OpTrace& trace) {
        METEO_EXPECTS(!op.keywords.empty());
        return system_.search_op(op.keywords, op.k, op.options, rng, trace);
      },
      [this](const SearchResult& r, Meteorograph::OpTrace& trace) {
        system_.record_search(r, trace);
      });
}

std::vector<RangeSearchResult> BatchEngine::range_search(
    std::span<const RangeSearchOp> ops) {
  return run_read_batch<RangeSearchResult>(
      ops, options_.workers,
      [this](const RangeSearchOp& op, Rng& rng, Meteorograph::OpTrace& trace) {
        return system_.range_search_op(op.attribute, op.lo, op.hi, op.options,
                                       rng, trace);
      },
      [this](const RangeSearchResult& r, Meteorograph::OpTrace& trace) {
        system_.record_range_search(r, trace);
      });
}

std::vector<PublishResult> BatchEngine::publish(std::span<const PublishOp> ops) {
  system_.begin_batch();
  BatchGuard batch(system_);

  overlay::FaultHook* hook = system_.network().fault_hook();
  const bool scoped = hook != nullptr && hook->supports_op_scopes();
  std::size_t workers = options_.workers;
  if (hook != nullptr && !scoped) workers = 1;

  // Phase 1 — plan (source selection + main route) against the frozen
  // snapshot, in parallel. Each op's fate stream index is saved so the
  // commit phase resumes the same logical operation's stream.
  std::vector<Meteorograph::PublishPlan> plans(ops.size());
  std::vector<std::uint64_t> resume(ops.size(), 0);
  auto plan_one = [&](std::size_t i) {
    METEO_EXPECTS(ops[i].vector != nullptr);
    Rng rng = substream(i);
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(i));
    plans[i] = system_.plan_publish(*ops[i].vector, ops[i].options, rng);
    resume[i] = scope.close();
  };
  if (workers > 1 && pool_.has_value() && ops.size() > 1) {
    pool_->parallel_for(0, ops.size(), plan_one);
  } else {
    for (std::size_t i = 0; i < ops.size(); ++i) plan_one(i);
  }

  // Phase 2 — commit in op-index order. Store/chain placement, replica
  // and pointer legs, notifications and metrics all happen here, exactly
  // as the sequential facade would have interleaved them.
  std::vector<PublishResult> results;
  results.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(i), resume[i]);
    results.push_back(
        system_.commit_publish(ops[i].id, *ops[i].vector, plans[i]));
  }
  return results;
}

std::vector<WithdrawResult> BatchEngine::withdraw(
    std::span<const WithdrawOp> ops) {
  system_.begin_batch();
  BatchGuard batch(system_);

  overlay::FaultHook* hook = system_.network().fault_hook();
  const bool scoped = hook != nullptr && hook->supports_op_scopes();

  // Withdraw reads (locate) depend on every prior withdraw's erasures, so
  // the whole batch is sequential; per-op substreams keep it replayable.
  std::vector<WithdrawResult> results;
  results.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    METEO_EXPECTS(ops[i].vector != nullptr);
    Rng rng = substream(i);
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(i));
    results.push_back(
        system_.withdraw_with(ops[i].item, *ops[i].vector, ops[i].options, rng));
  }
  return results;
}

std::vector<DepartResult> BatchEngine::depart(
    std::span<const overlay::NodeId> nodes) {
  system_.begin_batch();
  BatchGuard batch(system_);

  overlay::FaultHook* hook = system_.network().fault_hook();
  const bool scoped = hook != nullptr && hook->supports_op_scopes();

  // Departures change the membership itself: strictly sequential.
  std::vector<DepartResult> results;
  results.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(i));
    results.push_back(system_.depart_node(nodes[i]));
  }
  return results;
}

}  // namespace meteo::core
