#include "meteorograph/first_hop.hpp"

#include <algorithm>

namespace meteo::core {

void FirstHopIndex::add(overlay::Key raw_key,
                        std::vector<vsm::KeywordId> keywords) {
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
  const auto index = static_cast<std::uint32_t>(entries_.size());
  for (const vsm::KeywordId k : keywords) {
    postings_[k].push_back(index);
  }
  entries_.push_back(Entry{raw_key, std::move(keywords)});
}

std::optional<overlay::Key> FirstHopIndex::smallest_matching_key(
    std::span<const vsm::KeywordId> keywords) const {
  if (keywords.empty()) return std::nullopt;

  // Intersect posting lists, starting from the rarest keyword.
  const std::vector<std::uint32_t>* smallest = nullptr;
  for (const vsm::KeywordId k : keywords) {
    const auto it = postings_.find(k);
    if (it == postings_.end()) return std::nullopt;
    if (smallest == nullptr || it->second.size() < smallest->size()) {
      smallest = &it->second;
    }
  }

  std::optional<overlay::Key> best;
  for (const std::uint32_t idx : *smallest) {
    const Entry& e = entries_[idx];
    const bool all = std::all_of(
        keywords.begin(), keywords.end(), [&](vsm::KeywordId k) {
          return std::binary_search(e.keywords.begin(), e.keywords.end(), k);
        });
    if (all && (!best.has_value() || e.raw_key < *best)) {
      best = e.raw_key;
    }
  }
  return best;
}

}  // namespace meteo::core
