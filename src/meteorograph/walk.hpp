#pragma once

/// \file walk.hpp
/// The closest-neighbor walk shared by retrieval, item location, and the
/// directory-space scan: starting from a node, expand outward along the
/// linear node order, always advancing the frontier whose next node is
/// closer to the target key. Each advance is one overlay hop (and one
/// message, sent through the overlay's fault-aware deliver()). The walk
/// observes only *live* leaf pointers, so after unrepaired failures it
/// stops at the first dead neighbor on a side — exactly the reachability
/// loss §4.3 measures. Under message faults a side whose next neighbor
/// exhausted its retries is likewise closed (faulted() reports it, so
/// callers can flag the operation's result as partial).

#include "overlay/overlay.hpp"

namespace meteo::core {

class NeighborWalk {
 public:
  /// `rec` (optional) receives one kWalkHop event per advance plus the
  /// per-message fault events from deliver().
  NeighborWalk(const overlay::Overlay& net, overlay::NodeId start,
               overlay::Key target, obs::SpanRecorder* rec = nullptr)
      : net_(net),
        rec_(rec),
        target_(target),
        current_(start),
        low_(start),
        high_(start) {}

  [[nodiscard]] overlay::NodeId current() const noexcept { return current_; }
  [[nodiscard]] std::size_t hops() const noexcept { return hops_; }
  /// Retry/timeout accounting for the walk's messages so far.
  [[nodiscard]] const overlay::HopStats& stats() const noexcept {
    return stats_;
  }
  /// True when message loss closed at least one direction: nodes past the
  /// unreachable neighbor were never consulted, so results may be partial.
  [[nodiscard]] bool faulted() const noexcept { return faulted_; }

  /// Moves to the nearest unvisited neighbor (one hop); false when both
  /// directions are exhausted (space edge, dead neighbor, or a neighbor
  /// unreachable through message loss).
  bool advance() {
    while (true) {
      const overlay::NodeId down =
          low_blocked_ ? overlay::kInvalidNode : net_.predecessor(low_);
      const overlay::NodeId up =
          high_blocked_ ? overlay::kInvalidNode : net_.successor(high_);
      if (down == overlay::kInvalidNode && up == overlay::kInvalidNode) {
        return false;
      }
      bool take_down;
      if (down != overlay::kInvalidNode && up != overlay::kInvalidNode) {
        take_down = overlay::strictly_closer(net_.key_of(down),
                                             net_.key_of(up), target_);
      } else {
        take_down = down != overlay::kInvalidNode;
      }
      const overlay::NodeId next = take_down ? down : up;
      if (!net_.deliver(current_, next, stats_, rec_)) {
        // Lost past recovery: the linear walk cannot step over the silent
        // neighbor, so this direction is done; try the other one.
        faulted_ = true;
        (take_down ? low_blocked_ : high_blocked_) = true;
        continue;
      }
      if (rec_ != nullptr) {
        rec_->event(obs::EventKind::kWalkHop, current_, next, hops_);
      }
      if (take_down) {
        low_ = next;
      } else {
        high_ = next;
      }
      current_ = next;
      ++hops_;
      return true;
    }
  }

 private:
  const overlay::Overlay& net_;
  obs::SpanRecorder* rec_ = nullptr;
  overlay::Key target_;
  overlay::NodeId current_;
  overlay::NodeId low_;   // lowest-key node visited
  overlay::NodeId high_;  // highest-key node visited
  bool low_blocked_ = false;
  bool high_blocked_ = false;
  bool faulted_ = false;
  std::size_t hops_ = 0;
  overlay::HopStats stats_;
};

}  // namespace meteo::core
