#pragma once

/// \file walk.hpp
/// The closest-neighbor walk shared by retrieval, item location, and the
/// directory-space scan: starting from a node, expand outward along the
/// linear node order, always advancing the frontier whose next node is
/// closer to the target key. Each advance is one overlay hop (and one
/// message). The walk observes only *live* leaf pointers, so after
/// unrepaired failures it stops at the first dead neighbor on a side —
/// exactly the reachability loss §4.3 measures.

#include "overlay/overlay.hpp"

namespace meteo::core {

class NeighborWalk {
 public:
  NeighborWalk(const overlay::Overlay& net, overlay::NodeId start,
               overlay::Key target)
      : net_(net), target_(target), current_(start), low_(start), high_(start) {}

  [[nodiscard]] overlay::NodeId current() const noexcept { return current_; }
  [[nodiscard]] std::size_t hops() const noexcept { return hops_; }

  /// Moves to the nearest unvisited neighbor (one hop); false when both
  /// directions are exhausted (space edge or dead neighbor).
  bool advance() {
    const overlay::NodeId down = net_.predecessor(low_);
    const overlay::NodeId up = net_.successor(high_);
    if (down == overlay::kInvalidNode && up == overlay::kInvalidNode) {
      return false;
    }
    bool take_down;
    if (down != overlay::kInvalidNode && up != overlay::kInvalidNode) {
      take_down = overlay::strictly_closer(net_.key_of(down),
                                           net_.key_of(up), target_);
    } else {
      take_down = down != overlay::kInvalidNode;
    }
    if (take_down) {
      low_ = down;
      current_ = down;
    } else {
      high_ = up;
      current_ = up;
    }
    ++hops_;
    return true;
  }

 private:
  const overlay::Overlay& net_;
  overlay::Key target_;
  overlay::NodeId current_;
  overlay::NodeId low_;   // lowest-key node visited
  overlay::NodeId high_;  // highest-key node visited
  std::size_t hops_ = 0;
};

}  // namespace meteo::core
