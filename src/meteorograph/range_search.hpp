#pragma once

/// \file range_search.hpp
/// Range searches over numeric attributes (paper §6, future work):
/// "discovering machines that have memory in size between 1G and 8G bytes.
/// Mapping the range of values into the linear structure provided by
/// Tornado may solve this problem."
///
/// This implements exactly that: each registered attribute owns a slice of
/// the key space, and an order-preserving map (linear or logarithmic)
/// takes attribute values to keys inside the slice. Publishing an
/// (attribute, value, item) triple routes to the value's key; a range
/// query [lo, hi] routes to lo's key and walks successors until the first
/// node past hi's key — O(log N) + O(span) hops, the same walk machinery
/// similarity search uses.
///
/// Attribute slices are disjoint, so different attributes never collide,
/// and within a slice key order == value order (the property range
/// queries need).

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "overlay/key_space.hpp"

namespace meteo::core {

using AttributeId = std::uint32_t;

enum class AttributeScale {
  kLinear,
  /// Log-scale mapping for values spanning orders of magnitude (memory
  /// sizes, file sizes, bandwidths). \pre lo > 0
  kLog,
};

/// Order-preserving value -> key map for one attribute.
class AttributeSpace {
 public:
  /// \pre lo < hi; key_lo < key_hi; lo > 0 when scale == kLog
  AttributeSpace(AttributeId id, double lo, double hi, overlay::Key key_lo,
                 overlay::Key key_hi, AttributeScale scale);

  [[nodiscard]] AttributeId id() const noexcept { return id_; }
  [[nodiscard]] double value_lo() const noexcept { return lo_; }
  [[nodiscard]] double value_hi() const noexcept { return hi_; }
  [[nodiscard]] overlay::Key key_lo() const noexcept { return key_lo_; }
  [[nodiscard]] overlay::Key key_hi() const noexcept { return key_hi_; }

  /// Maps a value (clamped to [lo, hi]) into the attribute's key slice.
  /// Monotone: v1 <= v2 implies key(v1) <= key(v2).
  [[nodiscard]] overlay::Key key_of(double value) const;

 private:
  AttributeId id_;
  double lo_;
  double hi_;
  overlay::Key key_lo_;
  overlay::Key key_hi_;
  AttributeScale scale_;
};

/// Registry slicing the key space evenly across registered attributes.
class AttributeRegistry {
 public:
  explicit AttributeRegistry(overlay::Key key_space = overlay::kDefaultKeySpace)
      : key_space_(key_space) {}

  /// Registers a new attribute over [lo, hi]; slices are assigned in
  /// registration order over a fixed budget of kMaxAttributes slots.
  AttributeId register_attribute(double lo, double hi,
                                 AttributeScale scale = AttributeScale::kLinear);

  [[nodiscard]] const AttributeSpace& space(AttributeId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return spaces_.size(); }

  static constexpr std::size_t kMaxAttributes = 64;

 private:
  overlay::Key key_space_;
  std::vector<AttributeSpace> spaces_;
};

}  // namespace meteo::core
