#pragma once

/// \file api.hpp
/// The cross-cutting operation API vocabulary: the OpCost/Degradation
/// result bases every op result inherits, the per-operation options
/// structs (built for designated initializers), and the ReadView epoch
/// selector. The facade header (meteorograph.hpp) documents the facade;
/// this header is what op result structs, the batch/epoch engines, and
/// benches actually share.

#include <cstddef>
#include <optional>

#include "overlay/key_space.hpp"
#include "vsm/types.hpp"

namespace meteo::core {

/// Shared hop/message accounting, inherited by every operation result.
/// `route_hops` counts greedy-routing messages ("Closest" series of
/// Fig. 9); `walk_hops` counts neighbor-walk steps ("Neighbors" series).
/// Results with extra traffic classes (PublishResult, SearchResult)
/// shadow total_messages() with their richer sum.
struct OpCost {
  std::size_t route_hops = 0;
  std::size_t walk_hops = 0;
  [[nodiscard]] std::size_t total_hops() const noexcept {
    return route_hops + walk_hops;
  }
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_hops + walk_hops;
  }
};

/// Shared fault-degradation flags, inherited by every operation result.
/// All three stay false on perfect links; which flag an operation sets is
/// documented per result struct.
struct Degradation {
  /// Message loss cut the operation short; the result may be incomplete.
  bool partial = false;
  /// The operation finished but some side effect was lost (e.g. a publish
  /// whose replica or pointer placement legs never arrived).
  bool degraded = false;
  /// Message loss ended the search before the target was ruled out; a
  /// negative answer may be a false negative.
  bool fault_blocked = false;
};

/// The `outcome` metric-label value for a result's degradation flags:
/// "blocked", "partial", "degraded", or "ok" (docs/OBSERVABILITY.md).
[[nodiscard]] const char* outcome_label(const Degradation& d) noexcept;

// --- per-operation options ---------------------------------------------------
// Built for designated initializers: sys.locate(id, v, {.walk_limit = 16}).
// `from` always defaults to a uniformly random alive node.

struct PublishOptions {
  std::optional<overlay::NodeId> from = std::nullopt;
};

struct RetrieveOptions {
  std::optional<overlay::NodeId> from = std::nullopt;
};

struct WithdrawOptions {
  std::optional<overlay::NodeId> from = std::nullopt;
};

struct LocateOptions {
  std::optional<overlay::NodeId> from = std::nullopt;
  std::size_t walk_limit = 0;  ///< 0 = config default (whole ring)
};

struct SearchOptions {
  std::optional<overlay::NodeId> from = std::nullopt;
};

struct RangeSearchOptions {
  std::optional<overlay::NodeId> from = std::nullopt;
};

struct SubscribeOptions {
  std::size_t horizon = 8;  ///< consecutive directory nodes to plant on
};

/// Which epoch a read core answers from (DESIGN.md §11). The default —
/// kEpochLatest — reads the live state and is byte-identical to the
/// pre-epoch code path; the EpochEngine pins its deferred readers at
/// the epoch the current commits are about to supersede.
struct ReadView {
  vsm::Epoch epoch = vsm::kEpochLatest;
};

}  // namespace meteo::core
