/// Notification operations (paper §6 future work): "Notification can
/// rapidly transfer the states of resources to subscribed consumers."
///
/// A subscription is a standing conjunctive keyword query. It is planted
/// on a window of consecutive *directory* nodes starting at the query's
/// first-hop key — the same region where pointers of matching items are
/// published — so a publish can fire notifications locally, without any
/// global matching service. The horizon bounds the window; items whose
/// pointers land outside it are missed, the same locality trade-off the
/// first-hop optimization itself makes (§3.5.1).

#include <algorithm>

#include "common/assert.hpp"
#include "meteorograph/meteorograph.hpp"
#include "meteorograph/walk.hpp"
#include "obs/names.hpp"

namespace meteo::core {

namespace {
namespace names = obs::names;
}  // namespace

SubscribeResult Meteorograph::subscribe(
    std::span<const vsm::KeywordId> keywords, overlay::NodeId subscriber,
    const SubscribeOptions& options) {
  const std::size_t horizon = options.horizon;
  METEO_EXPECTS(!keywords.empty());
  METEO_EXPECTS(horizon >= 1);
  METEO_EXPECTS(subscriber < overlay_.size());
  begin_operation();

  std::vector<vsm::KeywordId> sorted(keywords.begin(), keywords.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  SubscribeResult result;
  result.id = next_subscription_++;

  const overlay::Key fallback =
      strategy_->directory_key(vsm::SparseVector::binary(sorted));
  const overlay::Key start_key =
      first_hop_.smallest_matching_key(sorted).value_or(fallback);

  obs::SpanRecorder span;
  if (tracer_ != nullptr) {
    span.open(obs::OpKind::kSubscribe, subscriber, start_key);
  }
  obs::SpanRecorder* const rec = span.active() ? &span : nullptr;
  const overlay::RouteResult route = overlay_.route(subscriber, start_key, rec);
  result.route_hops = route.hops;

  const Subscription subscription{result.id, std::move(sorted), subscriber};
  std::vector<overlay::NodeId> homes;
  NeighborWalk walk(overlay_, route.destination, start_key, rec);
  while (homes.size() < horizon) {
    node_data_[walk.current()].subscriptions.push_back(subscription);
    homes.push_back(walk.current());
    if (!walk.advance()) break;
  }
  result.walk_hops = walk.hops();
  result.planted_nodes = homes.size();
  result.partial =
      result.planted_nodes < horizon && (route.blocked || walk.faulted());
  subscription_homes_.emplace(result.id, std::move(homes));

  record_fault_stats(obs::OpKind::kSubscribe, route.stats);
  record_fault_stats(obs::OpKind::kSubscribe, walk.stats());
  ++op_count(obs::OpKind::kSubscribe, outcome_label(result));
  op_messages(obs::OpKind::kSubscribe) += result.total_messages();
  op_route_hops(obs::OpKind::kSubscribe)
      .observe(static_cast<double>(result.route_hops));
  op_walk_hops(obs::OpKind::kSubscribe)
      .observe(static_cast<double>(result.walk_hops));
  if (tracer_ != nullptr) span.finish(outcome_label(result), *tracer_);
  return result;
}

bool Meteorograph::unsubscribe(SubscriptionId id) {
  const auto it = subscription_homes_.find(id);
  if (it == subscription_homes_.end()) return false;
  for (const overlay::NodeId node : it->second) {
    auto& subs = node_data_[node].subscriptions;
    subs.erase(std::remove_if(subs.begin(), subs.end(),
                              [&](const Subscription& s) { return s.id == id; }),
               subs.end());
  }
  subscription_homes_.erase(it);
  return true;
}

std::vector<Notification> Meteorograph::take_notifications(
    overlay::NodeId subscriber) {
  METEO_EXPECTS(subscriber < node_data_.size());
  std::vector<Notification> out;
  out.swap(node_data_[subscriber].inbox);
  return out;
}

std::size_t Meteorograph::deliver_notifications(overlay::NodeId pointer_node,
                                                vsm::ItemId item,
                                                const vsm::SparseVector& vector,
                                                obs::SpanRecorder* rec) {
  std::size_t messages = 0;
  for (const Subscription& s : node_data_[pointer_node].subscriptions) {
    if (!s.matches(vector)) continue;
    if (!overlay_.is_alive(s.subscriber)) continue;
    if (rec != nullptr) rec->set_leg_key(overlay_.key_of(s.subscriber));
    const overlay::RouteResult leg =
        overlay_.route(pointer_node, overlay_.key_of(s.subscriber), rec);
    // Delivery legs ride the publishing op: their fault costs are labelled
    // op=publish, and their events land in the publish span.
    record_fault_stats(obs::OpKind::kPublish, leg.stats);
    messages += std::max<std::size_t>(leg.hops, 1);
    if (leg.blocked) {
      // The notification died en route (notifications are best-effort
      // soft state; the subscriber misses this match).
      ++metrics_.counter(names::kNotifyLost);
      continue;
    }
    node_data_[s.subscriber].inbox.push_back(Notification{s.id, item});
    ++metrics_.counter(names::kNotifyDelivered);
  }
  return messages;
}

}  // namespace meteo::core
