#include "meteorograph/storage.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace meteo::core {

void AngleStore::insert(StoredEntry entry) {
  erase(entry.id);
  const vsm::ItemId id = entry.id;
  const auto it = by_key_.emplace(entry.raw_key, id);
  meta_.emplace(id, Meta{it, next_order_++});
  index_.insert(id, std::move(entry.vector));
  invalidate_lsi();
}

const vsm::SparseVector* AngleStore::vector_of(vsm::ItemId id) const {
  return index_.vector_of(id);
}

void AngleStore::detach(vsm::ItemId id) {
  const auto it = meta_.find(id);
  METEO_ASSERT(it != meta_.end());
  by_key_.erase(it->second.pos);
  meta_.erase(it);
}

bool AngleStore::erase(vsm::ItemId id) {
  if (!index_.erase(id)) return false;
  detach(id);
  invalidate_lsi();
  return true;
}

Eviction AngleStore::evict(const StoredEntry& incoming,
                           EvictionPolicy policy) {
  METEO_EXPECTS(!empty());
  vsm::ItemId victim = 0;
  switch (policy) {
    case EvictionPolicy::kFarthestAngle: {
      const auto lo = by_key_.begin();
      const auto hi = std::prev(by_key_.end());
      const overlay::Key dist_lo =
          overlay::key_distance(lo->first, incoming.raw_key);
      const overlay::Key dist_hi =
          overlay::key_distance(hi->first, incoming.raw_key);
      victim = dist_lo >= dist_hi ? lo->second : hi->second;
      break;
    }
    case EvictionPolicy::kLeastSimilarCosine:
      victim = *index_.least_similar(incoming.vector);
      break;
    case EvictionPolicy::kFifo: {
      std::uint64_t oldest = ~std::uint64_t{0};
      // meteo-lint: order-insensitive(min over unique insertion counters)
      for (const auto& [id, meta] : meta_) {
        if (meta.order < oldest) {
          oldest = meta.order;
          victim = id;
        }
      }
      break;
    }
  }

  Eviction out;
  out.entry.id = victim;
  out.entry.raw_key = meta_.at(victim).pos->first;
  out.entry.vector = std::move(index_.take(victim)->vector);
  out.side = out.entry.raw_key <= incoming.raw_key ? EvictSide::kLow
                                                   : EvictSide::kHigh;
  detach(victim);
  invalidate_lsi();
  return out;
}

std::vector<vsm::ScoredItem> AngleStore::top_k_lsi(
    const vsm::SparseVector& query, std::size_t k, std::size_t rank,
    std::uint64_t seed) const {
  if (index_.empty() || k == 0) return {};
  if (!lsi_model_.has_value() || lsi_version_ != version_ ||
      lsi_rank_ != rank) {
    std::vector<vsm::StoredItem> docs;
    docs.reserve(index_.size());
    for (const auto& [key, id] : by_key_) {
      docs.push_back(vsm::StoredItem{id, *index_.vector_of(id)});
    }
    Rng rng(seed ^ version_);
    lsi_model_.emplace(vsm::LsiModel::build(docs, rank, rng));
    lsi_version_ = version_;
    lsi_rank_ = rank;
  }
  return lsi_model_->top_k(query, k);
}

void AngleStore::top_k(const vsm::SparseVector& query, std::size_t k,
                       std::vector<vsm::ScoredItem>& out) const {
  index_.top_k(query, k, out);
}

std::vector<vsm::ScoredItem> AngleStore::top_k(const vsm::SparseVector& query,
                                               std::size_t k) const {
  return index_.top_k(query, k);
}

void AngleStore::match_all(std::span<const vsm::KeywordId> keywords,
                           std::vector<vsm::ItemId>& out) const {
  index_.match_all(keywords, out);
}

std::vector<vsm::ItemId> AngleStore::match_all(
    std::span<const vsm::KeywordId> keywords) const {
  return index_.match_all(keywords);
}

overlay::Key AngleStore::min_raw_key() const {
  METEO_EXPECTS(!empty());
  return by_key_.begin()->first;
}

overlay::Key AngleStore::max_raw_key() const {
  METEO_EXPECTS(!empty());
  return std::prev(by_key_.end())->first;
}

}  // namespace meteo::core
