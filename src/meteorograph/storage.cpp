#include "meteorograph/storage.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace meteo::core {

void AngleStore::insert(StoredEntry entry) {
  erase(entry.id);
  const vsm::ItemId id = entry.id;
  const overlay::Key key = entry.raw_key;
  const auto it = by_key_.emplace(key, std::move(entry));
  by_id_.emplace(id, it);
  insert_order_.emplace(id, next_order_++);
  invalidate_lsi();
}

const vsm::SparseVector* AngleStore::vector_of(vsm::ItemId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return &it->second->second.vector;
}

bool AngleStore::erase(vsm::ItemId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  by_key_.erase(it->second);
  by_id_.erase(it);
  insert_order_.erase(id);
  invalidate_lsi();
  return true;
}

Eviction AngleStore::evict(const StoredEntry& incoming,
                           EvictionPolicy policy) {
  METEO_EXPECTS(!empty());
  KeyMap::iterator victim;
  switch (policy) {
    case EvictionPolicy::kFarthestAngle: {
      const auto lo = by_key_.begin();
      const auto hi = std::prev(by_key_.end());
      const overlay::Key dist_lo = overlay::key_distance(lo->first, incoming.raw_key);
      const overlay::Key dist_hi = overlay::key_distance(hi->first, incoming.raw_key);
      victim = dist_lo >= dist_hi ? lo : hi;
      break;
    }
    case EvictionPolicy::kLeastSimilarCosine: {
      victim = by_key_.begin();
      double worst = 2.0;
      for (auto it = by_key_.begin(); it != by_key_.end(); ++it) {
        const double score =
            vsm::cosine_similarity(incoming.vector, it->second.vector);
        if (score < worst ||
            (score == worst && it->second.id < victim->second.id)) {
          worst = score;
          victim = it;
        }
      }
      break;
    }
    case EvictionPolicy::kFifo: {
      victim = by_key_.begin();
      std::uint64_t oldest = ~std::uint64_t{0};
      for (auto it = by_key_.begin(); it != by_key_.end(); ++it) {
        const std::uint64_t order = insert_order_.at(it->second.id);
        if (order < oldest) {
          oldest = order;
          victim = it;
        }
      }
      break;
    }
  }

  Eviction out;
  out.entry = std::move(victim->second);
  out.side = out.entry.raw_key <= incoming.raw_key ? EvictSide::kLow
                                                   : EvictSide::kHigh;
  by_id_.erase(out.entry.id);
  insert_order_.erase(out.entry.id);
  by_key_.erase(victim);
  invalidate_lsi();
  return out;
}

std::vector<vsm::ScoredItem> AngleStore::top_k_lsi(
    const vsm::SparseVector& query, std::size_t k, std::size_t rank,
    std::uint64_t seed) const {
  if (by_id_.empty() || k == 0) return {};
  if (!lsi_model_.has_value() || lsi_version_ != version_ ||
      lsi_rank_ != rank) {
    std::vector<vsm::StoredItem> docs;
    docs.reserve(by_id_.size());
    for (const auto& [key, entry] : by_key_) {
      docs.push_back(vsm::StoredItem{entry.id, entry.vector});
    }
    Rng rng(seed ^ version_);
    lsi_model_.emplace(vsm::LsiModel::build(docs, rank, rng));
    lsi_version_ = version_;
    lsi_rank_ = rank;
  }
  return lsi_model_->top_k(query, k);
}

std::vector<vsm::ScoredItem> AngleStore::top_k(const vsm::SparseVector& query,
                                               std::size_t k) const {
  std::vector<vsm::ScoredItem> scored;
  scored.reserve(by_id_.size());
  for (const auto& [key, entry] : by_key_) {
    scored.push_back(
        vsm::ScoredItem{entry.id, vsm::cosine_similarity(query, entry.vector)});
  }
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(),
                    [](const vsm::ScoredItem& a, const vsm::ScoredItem& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(take);
  return scored;
}

std::vector<vsm::ItemId> AngleStore::match_all(
    std::span<const vsm::KeywordId> keywords) const {
  std::vector<vsm::ItemId> out;
  for (const auto& [key, entry] : by_key_) {
    const bool all =
        std::all_of(keywords.begin(), keywords.end(), [&](vsm::KeywordId k) {
          return entry.vector.contains(k);
        });
    if (all) out.push_back(entry.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

overlay::Key AngleStore::min_raw_key() const {
  METEO_EXPECTS(!empty());
  return by_key_.begin()->first;
}

overlay::Key AngleStore::max_raw_key() const {
  METEO_EXPECTS(!empty());
  return std::prev(by_key_.end())->first;
}

}  // namespace meteo::core
