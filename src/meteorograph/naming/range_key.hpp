#pragma once

/// \file naming/range_key.hpp
/// Order-preserving range-key naming: the continuous raw-angle band
/// observed in the fit sample is stretched affinely onto the whole key
/// space. Strictly monotone in the absolute angle, so similarity
/// adjacency and iterator-style browsing order survive exactly, without
/// the Eq. 6 knee fit — the keying that "a class of structured P2P
/// systems supporting browsing" (PAPERS.md) argues for.

#include "meteorograph/naming/strategy.hpp"

namespace meteo::core {

class RangeKeyNaming final : public NamingStrategy {
 public:
  /// Fits the band [lo, hi] from the sample's continuous raw values.
  RangeKeyNaming(NamingScheme scheme,
                 std::span<const vsm::SparseVector> sample);

  [[nodiscard]] const char* name() const noexcept override { return "range"; }

  [[nodiscard]] overlay::Key primary_key(
      const vsm::SparseVector& v) const override;

  /// The fitted raw-value band (tests).
  [[nodiscard]] double band_lo() const noexcept { return lo_; }
  [[nodiscard]] double band_hi() const noexcept { return hi_; }

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace meteo::core
