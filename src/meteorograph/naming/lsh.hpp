#pragma once

/// \file naming/lsh.hpp
/// Random-hyperplane multi-probe LSH naming (NearBucket-LSH style,
/// PAPERS.md). Each item hashes to one bucket in each of g tables; the
/// key space is split into g equal segments and each table's 2^b buckets
/// tile one segment, so bucket keys never collide across tables. Items
/// publish under all g bucket keys; queries probe the g base buckets plus
/// T multi-probe perturbations per table (flip the sign bits whose
/// hyperplane projections sit closest to zero — the buckets a near
/// neighbor most plausibly fell into).
///
/// Determinism: hyperplane components are pure functions of
/// (lsh_seed, table, bit, keyword) via splitmix64 — no stored matrices,
/// no RNG draws, no mutable state — so keys are bit-identical across
/// workers, batches, and processes (meteo-lint R2/R4 charter).

#include "meteorograph/naming/strategy.hpp"

namespace meteo::core {

class LshNaming final : public NamingStrategy {
 public:
  explicit LshNaming(NamingScheme scheme);

  [[nodiscard]] const char* name() const noexcept override { return "lsh"; }
  [[nodiscard]] bool multi_key() const noexcept override { return true; }

  /// Table 0's bucket key (publish_keys()/probe_keys() front).
  [[nodiscard]] overlay::Key primary_key(
      const vsm::SparseVector& v) const override;

  /// One bucket key per table, table 0 first.
  void publish_keys(const vsm::SparseVector& v,
                    std::vector<overlay::Key>& out) const override;

  /// Per table: the base bucket, then `lsh_probes` single-bit
  /// perturbations in increasing |projection| order.
  void probe_keys(const vsm::SparseVector& query,
                  std::vector<overlay::Key>& out) const override;

  /// Copies sort/evict/migrate by the bucket they were published under —
  /// the bucket is not recoverable from the vector alone.
  [[nodiscard]] overlay::Key store_order_key(
      const vsm::SparseVector& v, overlay::Key publish_key) const override {
    (void)v;
    return publish_key;
  }
  [[nodiscard]] overlay::Key migration_key(
      const StoredEntry& entry) const override {
    return entry.raw_key;
  }

  /// The bucket key of `v` in `table` (tests).
  [[nodiscard]] overlay::Key bucket_key(const vsm::SparseVector& v,
                                        std::size_t table) const;

 private:
  /// Signed projections of v onto `bits_` hyperplanes of one table.
  void project(const vsm::SparseVector& v, std::size_t table,
               std::vector<double>& out) const;
  [[nodiscard]] overlay::Key key_of_bucket(std::size_t table,
                                           std::uint64_t bucket) const;

  std::size_t tables_;
  std::size_t bits_;
  std::size_t probes_;
  std::uint64_t seed_;
  overlay::Key segment_;  // key-space width of one table's segment
  overlay::Key sub_;      // key-space width of one bucket
};

}  // namespace meteo::core
