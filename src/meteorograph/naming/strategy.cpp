#include "meteorograph/naming/strategy.hpp"

#include "meteorograph/naming/angle.hpp"
#include "meteorograph/naming/lsh.hpp"
#include "meteorograph/naming/range_key.hpp"

namespace meteo::core {

std::unique_ptr<NamingStrategy> make_naming_strategy(
    std::span<const vsm::SparseVector> sample, const SystemConfig& config) {
  const std::vector<overlay::Key> raws = NamingScheme::raw_keys(sample, config);
  NamingScheme scheme = NamingScheme::fit(raws, config);
  switch (config.naming.strategy) {
    case NamingStrategyKind::kRangeKey:
      return std::make_unique<RangeKeyNaming>(std::move(scheme), sample);
    case NamingStrategyKind::kLsh:
      return std::make_unique<LshNaming>(std::move(scheme));
    case NamingStrategyKind::kAngle:
      break;
  }
  return std::make_unique<AngleNaming>(std::move(scheme));
}

}  // namespace meteo::core
