#include "meteorograph/naming/lsh.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace meteo::core {
namespace {

/// One hyperplane component: a pure splitmix64 hash of
/// (seed, table, bit, keyword) mapped uniformly into [-1, 1). Stateless,
/// so no hyperplane matrix is ever materialized — the effective matrix is
/// dimension x (tables * bits) and the universal dictionary makes
/// dimension ~89K.
double component(std::uint64_t seed, std::size_t table, std::size_t bit,
                 vsm::KeywordId keyword) {
  std::uint64_t h =
      splitmix64(seed + 0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(table) + 1));
  h ^= splitmix64((static_cast<std::uint64_t>(bit) << 32) |
                  static_cast<std::uint64_t>(keyword));
  h = splitmix64(h);
  // Top 53 bits -> [0, 2) -> [-1, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

}  // namespace

LshNaming::LshNaming(NamingScheme scheme)
    : NamingStrategy(std::move(scheme)),
      tables_(scheme_.config().naming.lsh_tables),
      bits_(scheme_.config().naming.lsh_bits),
      probes_(scheme_.config().naming.lsh_probes),
      seed_(scheme_.config().naming.lsh_seed) {
  METEO_EXPECTS(tables_ >= 1);
  METEO_EXPECTS(bits_ >= 1 && bits_ < 63);
  const overlay::Key space = scheme_.config().overlay.key_space;
  segment_ = space / tables_;
  sub_ = segment_ >> bits_;
  METEO_EXPECTS(sub_ >= 1);
}

void LshNaming::project(const vsm::SparseVector& v, std::size_t table,
                        std::vector<double>& out) const {
  out.assign(bits_, 0.0);
  // One pass over the item's nonzeros; entries() is sorted by keyword, so
  // the FP accumulation order is fixed (determinism contract, R3).
  for (const vsm::Entry& e : v.entries()) {
    for (std::size_t j = 0; j < bits_; ++j) {
      out[j] += e.weight * component(seed_, table, j, e.keyword);
    }
  }
}

overlay::Key LshNaming::key_of_bucket(std::size_t table,
                                      std::uint64_t bucket) const {
  // Bucket center: segments tile the space, buckets tile the segment.
  return static_cast<overlay::Key>(table) * segment_ + bucket * sub_ +
         sub_ / 2;
}

overlay::Key LshNaming::bucket_key(const vsm::SparseVector& v,
                                   std::size_t table) const {
  std::vector<double> proj;
  project(v, table, proj);
  std::uint64_t bucket = 0;
  for (std::size_t j = 0; j < bits_; ++j) {
    if (proj[j] >= 0.0) bucket |= std::uint64_t{1} << j;
  }
  return key_of_bucket(table, bucket);
}

overlay::Key LshNaming::primary_key(const vsm::SparseVector& v) const {
  return bucket_key(v, 0);
}

void LshNaming::publish_keys(const vsm::SparseVector& v,
                             std::vector<overlay::Key>& out) const {
  for (std::size_t t = 0; t < tables_; ++t) {
    out.push_back(bucket_key(v, t));
  }
}

void LshNaming::probe_keys(const vsm::SparseVector& query,
                           std::vector<overlay::Key>& out) const {
  std::vector<double> proj;
  std::vector<std::size_t> order(bits_);
  for (std::size_t t = 0; t < tables_; ++t) {
    project(query, t, proj);
    std::uint64_t base = 0;
    for (std::size_t j = 0; j < bits_; ++j) {
      if (proj[j] >= 0.0) base |= std::uint64_t{1} << j;
    }
    out.push_back(key_of_bucket(t, base));
    // Multi-probe: flip the sign bits with the smallest |projection| —
    // a near neighbor's most likely disagreements. Deterministic order:
    // |projection| ascending, bit index breaking ties.
    for (std::size_t j = 0; j < bits_; ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double pa = std::fabs(proj[a]);
      const double pb = std::fabs(proj[b]);
      if (pa != pb) return pa < pb;
      return a < b;
    });
    const std::size_t flips = std::min(probes_, bits_);
    for (std::size_t p = 0; p < flips; ++p) {
      out.push_back(
          key_of_bucket(t, base ^ (std::uint64_t{1} << order[p])));
    }
  }
}

}  // namespace meteo::core
