#pragma once

/// \file naming/strategy.hpp
/// The naming seam: how an item vector becomes one-or-more overlay keys
/// and how a query becomes probe keys (DESIGN.md §12).
///
/// The paper hardcodes one answer — collapse the vector to a scalar
/// absolute angle (Eq. 5), then equalize with the Eq. 6 CDF remap. That
/// answer is now one strategy among several behind this interface:
///
///   - AngleNaming     the paper's fitted absolute-angle scheme (default)
///   - RangeKeyNaming  an order-preserving affine stretch of the raw
///                     angle band over the whole key space
///   - LshNaming       random-hyperplane multi-probe LSH: g bucket keys
///                     per item, g·(1+T) probe keys per query
///
/// Contract highlights (the facade's op cores depend on these):
///
///   * publish_keys()/probe_keys() append at least one key and put the
///     primary key first; for single-key strategies (multi_key() false)
///     they append exactly primary_key(v), and the op cores take the
///     pre-strategy single-route code path bit-for-bit.
///   * The keyword directory space (§3.5 pointers, first-hop index,
///     subscriptions) stays angle-ordered under every strategy:
///     directory_key() is always the scheme's Eq. 5 raw key. Strategies
///     govern the *similarity* key space only.
///   * Determinism: a strategy holds no mutable state and draws no
///     randomness at op time. Anything random (LSH hyperplanes) is
///     derived statelessly from a fixed config seed via splitmix64, so
///     keys are bit-identical across workers, batches, and processes
///     (the meteo-lint R2/R4 charter covers this layer).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "meteorograph/naming.hpp"
#include "meteorograph/storage.hpp"
#include "overlay/key_space.hpp"
#include "vsm/sparse_vector.hpp"

namespace meteo::core {

class NamingStrategy {
 public:
  explicit NamingStrategy(NamingScheme scheme) : scheme_(std::move(scheme)) {}
  virtual ~NamingStrategy() = default;
  NamingStrategy(const NamingStrategy&) = delete;
  NamingStrategy& operator=(const NamingStrategy&) = delete;

  /// Stable identifier ("angle", "range", "lsh"): the span `naming`
  /// attribute and the ablation bench's series label.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// True when items publish under more than one key. Single-key
  /// strategies keep the facade's pre-strategy op shape — one route, one
  /// walk — which is what the golden oracle pins bit-for-bit.
  [[nodiscard]] virtual bool multi_key() const noexcept { return false; }

  /// True when ops should record the `naming.probes` / `naming.keys`
  /// metric series and stamp the span attribute. The default angle
  /// strategy stays silent so its dumps match the pre-strategy path
  /// byte-for-byte.
  [[nodiscard]] virtual bool records_naming() const noexcept { return true; }

  /// The op-path key of a vector: where the primary copy lives and where
  /// a single-probe lookup routes. \pre !v.empty()
  [[nodiscard]] virtual overlay::Key primary_key(
      const vsm::SparseVector& v) const = 0;

  /// All keys an item is published under, primary first.
  virtual void publish_keys(const vsm::SparseVector& v,
                            std::vector<overlay::Key>& out) const {
    out.push_back(primary_key(v));
  }

  /// Probe keys for a similarity query, best-first (primary first).
  virtual void probe_keys(const vsm::SparseVector& query,
                          std::vector<overlay::Key>& out) const {
    out.push_back(primary_key(query));
  }

  /// Key stamped into StoredEntry::raw_key for the copy published under
  /// `publish_key` — the angle-sorted store's ordering and eviction
  /// coordinate. Default: the Eq. 5 raw angle key (global angle order);
  /// LSH stamps the copy's bucket key so copies cluster per bucket.
  [[nodiscard]] virtual overlay::Key store_order_key(
      const vsm::SparseVector& v, overlay::Key publish_key) const {
    (void)publish_key;
    return scheme_.raw_key(v);
  }

  /// Where a stored copy re-homes when its host departs. Default: the
  /// primary publish key recomputed from the vector; LSH re-homes each
  /// copy at the bucket key it carries, since the bucket a copy came
  /// from is not recoverable from the vector alone.
  [[nodiscard]] virtual overlay::Key migration_key(
      const StoredEntry& entry) const {
    return primary_key(entry.vector);
  }

  /// Directory-space key (§3.5.2 pointers, first-hop fallback,
  /// subscriptions): the Eq. 5 raw angle key under every strategy.
  [[nodiscard]] overlay::Key directory_key(const vsm::SparseVector& v) const {
    return scheme_.raw_key(v);
  }

  /// The fitted angle scheme every strategy carries (Eq. 5 raw keys are
  /// still the directory coordinate; Eq. 6 knees feed the benches).
  [[nodiscard]] const NamingScheme& scheme() const noexcept { return scheme_; }

 protected:
  NamingScheme scheme_;
};

/// Fits the Eq. 5/6 scheme from `sample` and builds the strategy
/// `config.naming.strategy` selects. \pre sample non-empty unless
/// config.load_balance == kNone
[[nodiscard]] std::unique_ptr<NamingStrategy> make_naming_strategy(
    std::span<const vsm::SparseVector> sample, const SystemConfig& config);

}  // namespace meteo::core
