#include "meteorograph/naming/range_key.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace meteo::core {

RangeKeyNaming::RangeKeyNaming(NamingScheme scheme,
                               std::span<const vsm::SparseVector> sample)
    : NamingStrategy(std::move(scheme)) {
  // Fallback band: the whole key space (degenerate/no sample).
  lo_ = 0.0;
  hi_ = static_cast<double>(scheme_.config().overlay.key_space);
  if (sample.empty()) return;
  double lo = hi_;
  double hi = 0.0;
  for (const vsm::SparseVector& v : sample) {
    const double raw = scheme_.raw_value(v);
    lo = std::min(lo, raw);
    hi = std::max(hi, raw);
  }
  // A point-mass sample keeps the full-space fallback: an affine map over
  // a zero-width band is undefined.
  if (hi > lo) {
    lo_ = lo;
    hi_ = hi;
  }
}

overlay::Key RangeKeyNaming::primary_key(const vsm::SparseVector& v) const {
  const double raw = scheme_.raw_value(v);
  const auto top = static_cast<double>(scheme_.config().overlay.key_space - 1);
  const double frac = (raw - lo_) / (hi_ - lo_);
  const double mapped = std::clamp(frac, 0.0, 1.0) * top;
  METEO_ASSERT(mapped >= 0.0);
  return static_cast<overlay::Key>(mapped);
}

}  // namespace meteo::core
