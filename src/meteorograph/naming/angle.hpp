#pragma once

/// \file naming/angle.hpp
/// The paper's naming strategy: fitted absolute-angle keys (Eq. 5 raw
/// value, Eq. 6 CDF remap). Single key per item; the golden oracle
/// (tests/meteorograph/naming_golden_test.cpp) proves this strategy
/// bit-identical to the pre-seam hardcoded path.

#include "meteorograph/naming/strategy.hpp"

namespace meteo::core {

class AngleNaming final : public NamingStrategy {
 public:
  explicit AngleNaming(NamingScheme scheme)
      : NamingStrategy(std::move(scheme)) {}

  [[nodiscard]] const char* name() const noexcept override { return "angle"; }

  /// Silent in obs so metric dumps and traces stay byte-identical to the
  /// pre-strategy baseline (the bit-identity acceptance bar).
  [[nodiscard]] bool records_naming() const noexcept override { return false; }

  [[nodiscard]] overlay::Key primary_key(
      const vsm::SparseVector& v) const override {
    return scheme_.balanced_key(v);
  }
};

}  // namespace meteo::core
