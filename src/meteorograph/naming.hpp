#pragma once

/// \file naming.hpp
/// Item naming: Eq. 5 raw keys and the Eq. 6 unused-hash-space remap.
///
/// Eq. 6 re-spreads item keys over the whole address space using the CDF of
/// a small sampled data set: between two knees (b_i, a_i) and (b_j, a_j) of
/// the sampled CDF, a raw key h maps to
///
///     f(h) = R * (a_i + (a_j - a_i) * (h - b_i) / (b_j - b_i))
///
/// which is exactly a piecewise-linear map through knots (b, a*R). Because
/// the knees come from a CDF the map is monotone, so the angle ordering of
/// items — and with it similarity adjacency — is preserved (the paper's
/// "without scrambling those similar items that are aggregated").

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/cdf.hpp"
#include "meteorograph/config.hpp"
#include "overlay/key_space.hpp"
#include "vsm/sparse_vector.hpp"

namespace meteo::core {

class NamingScheme {
 public:
  /// Builds the scheme from the raw (Eq. 5) keys of the sampled items.
  /// With kNone no remap is fitted and balanced keys equal raw keys.
  /// \pre sample_raw_keys non-empty unless mode == kNone
  static NamingScheme fit(std::span<const overlay::Key> sample_raw_keys,
                          const SystemConfig& config);

  /// Eq. 5 raw keys of a whole sample — the fit() input. Lives here (not
  /// in the facade) so `vsm::absolute_angle` has exactly one caller in
  /// the core: the naming layer (meteo-lint R6).
  [[nodiscard]] static std::vector<overlay::Key> raw_keys(
      std::span<const vsm::SparseVector> sample, const SystemConfig& config);

  /// Eq. 5: the raw absolute-angle key of a vector. \pre !v.empty()
  [[nodiscard]] overlay::Key raw_key(const vsm::SparseVector& v) const;

  /// The *continuous* pre-floor key (theta/pi * R). The raw band of a
  /// universal dictionary is only a few thousand integer keys wide, so
  /// flooring before the remap would collapse thousands of items onto
  /// identical keys; the remap therefore runs on this value and floors
  /// once at the end.
  [[nodiscard]] double raw_value(const vsm::SparseVector& v) const;

  /// Eq. 6 applied to the continuous raw value of v, floored into the key
  /// space (identity modulo flooring under kNone).
  [[nodiscard]] overlay::Key balanced_key(const vsm::SparseVector& v) const;

  /// Eq. 6 applied to an already-quantized raw key (used for directory
  /// placement and tests; coarser than balanced_key).
  [[nodiscard]] overlay::Key remap(overlay::Key raw) const;

  /// The fitted Eq. 6 knees ((b_i, a_i * R) knots); empty under kNone.
  [[nodiscard]] std::span<const Knot> knees() const;

  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

 private:
  explicit NamingScheme(SystemConfig config) : config_(std::move(config)) {}

  SystemConfig config_;
  std::optional<PiecewiseLinearMap> remap_;
};

}  // namespace meteo::core
