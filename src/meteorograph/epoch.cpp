#include "meteorograph/epoch.hpp"

#include <algorithm>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"
#include "obs/names.hpp"
#include "overlay/fault_hook.hpp"

namespace meteo::core {

namespace {

/// Closes the per-operation fate scope even when the op throws, so a
/// worker thread never leaks an active scope into the next op it runs.
/// (Mirror of batch.cpp's guard; both engines share the fate-scope
/// discipline, neither exports it.)
class ScopeGuard {
 public:
  ScopeGuard(overlay::FaultHook* hook, std::uint64_t salt,
             std::uint64_t first_message = 0)
      : hook_(hook) {
    if (hook_ != nullptr) hook_->begin_op_scope(salt, first_message);
  }
  ~ScopeGuard() {
    if (hook_ != nullptr) hook_->end_op_scope();
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  overlay::FaultHook* hook_;
};

/// AnyOp variant layout: alternatives below this index are reads, the
/// rest (publish, withdraw, depart) mutate.
inline constexpr std::size_t kFirstWriteAlternative = 4;

}  // namespace

EpochEngine::EpochEngine(Meteorograph& system, EpochOptions options)
    : system_(system), options_(std::move(options)) {
  // The LSI projection cache mutates lazily under top_k_lsi: a pinned
  // reader would race the cache fill and the cache itself is unversioned.
  METEO_EXPECTS(system_.config().local_ranking != LocalRanking::kLsi);
  if (options_.workers == 0) {
    options_.workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (options_.workers > 1) pool_.emplace(options_.workers);
}

EpochEngine::~EpochEngine() { disarm_stores(); }

std::size_t EpochEngine::push(AnyOp op) {
  pending_.push_back(Pending{std::move(op), next_global_++});
  return pending_.size() - 1;
}

std::size_t EpochEngine::submit(const RetrieveOp& op) { return push(op); }
std::size_t EpochEngine::submit(const LocateOp& op) { return push(op); }
std::size_t EpochEngine::submit(const SearchOp& op) { return push(op); }
std::size_t EpochEngine::submit(const RangeSearchOp& op) { return push(op); }
std::size_t EpochEngine::submit(const PublishOp& op) { return push(op); }
std::size_t EpochEngine::submit(const WithdrawOp& op) { return push(op); }
std::size_t EpochEngine::submit(const DepartOp& op) { return push(op); }

void EpochEngine::arm_stores(vsm::Epoch write) {
  for (Meteorograph::NodeData& data : system_.node_data_) {
    data.items.retain_versions(true);
    data.items.set_write_epoch(write);
    data.replicas.retain_versions(true);
    data.replicas.set_write_epoch(write);
    data.directory.retain_versions(true);
    data.directory.set_write_epoch(write);
  }
}

void EpochEngine::gc_stores() {
  for (Meteorograph::NodeData& data : system_.node_data_) {
    data.items.gc();
    data.replicas.gc();
    data.directory.gc();
  }
}

void EpochEngine::disarm_stores() {
  for (Meteorograph::NodeData& data : system_.node_data_) {
    data.items.retain_versions(false);
    data.items.set_write_epoch(0);
    data.items.gc();
    data.replicas.retain_versions(false);
    data.replicas.set_write_epoch(0);
    data.replicas.gc();
    data.directory.retain_versions(false);
    data.directory.set_write_epoch(0);
    data.directory.gc();
  }
  system_.span_epoch_ = 0;
}

EpochEngine::SealedEpoch EpochEngine::seal() {
  const vsm::Epoch pinned = epoch_;
  const vsm::Epoch commit = epoch_ + 1;

  // Batch bracket: due crashes apply once, up front, and the membership
  // snapshot freezes for the whole read side of the epoch. (Departures
  // still change membership below — after the depart fence, when no
  // pinned reader remains in flight.)
  system_.begin_batch();
  SealGuard guard(system_);
  arm_stores(commit);

  overlay::FaultHook* hook = system_.network().fault_hook();
  const bool scoped = hook != nullptr && hook->supports_op_scopes();
  // A hook without per-op fate scopes decides fates off one shared,
  // order-dependent stream: serialize the read phases.
  std::size_t workers = options_.workers;
  if (hook != nullptr && !scoped) workers = 1;

  const std::size_t n = pending_.size();
  SealedEpoch sealed;
  sealed.epoch = pinned;
  sealed.results.resize(n);
  sealed.timeout_costs.assign(n, 0.0);
  std::vector<Meteorograph::OpTrace> traces(n);

  // Partition the window. Reads split into the pre-write phase and the
  // deferred (post-write) phase; writes keep strict submission order.
  std::vector<std::size_t> early_reads;
  std::vector<std::size_t> deferred_reads;
  std::vector<std::size_t> writes;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_[i].op.index() < kFirstWriteAlternative) {
      const bool defer = options_.defer_read != nullptr &&
                         options_.defer_read(pending_[i].global_index);
      (defer ? deferred_reads : early_reads).push_back(i);
    } else {
      writes.push_back(i);
    }
  }

  // One read op, pinned at epoch E. Runs on any worker: the op writes
  // only its own results/traces slot and draws from its own substreams.
  const ReadView view{pinned};
  auto exec_read = [&](std::size_t i) {
    Pending& p = pending_[i];
    Rng rng = substream(p.global_index);
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(p.global_index));
    if (const auto* ret = std::get_if<RetrieveOp>(&p.op)) {
      METEO_EXPECTS(ret->query != nullptr);
      sealed.results[i] = system_.retrieve_op(*ret->query, ret->amount,
                                              ret->options, rng, traces[i],
                                              view);
    } else if (const auto* loc = std::get_if<LocateOp>(&p.op)) {
      METEO_EXPECTS(loc->vector != nullptr);
      sealed.results[i] = system_.locate_op(loc->item, *loc->vector,
                                            loc->options, rng, traces[i],
                                            view);
    } else if (const auto* sim = std::get_if<SearchOp>(&p.op)) {
      METEO_EXPECTS(!sim->keywords.empty());
      sealed.results[i] = system_.search_op(sim->keywords, sim->k,
                                            sim->options, rng, traces[i],
                                            view);
    } else {
      const auto& rng_op = std::get<RangeSearchOp>(p.op);
      sealed.results[i] = system_.range_search_op(rng_op.attribute, rng_op.lo,
                                                  rng_op.hi, rng_op.options,
                                                  rng, traces[i], view);
    }
  };
  auto run_reads = [&](const std::vector<std::size_t>& batch) {
    if (workers > 1 && pool_.has_value() && batch.size() > 1) {
      pool_->parallel_for(0, batch.size(),
                          [&](std::size_t k) { exec_read(batch[k]); });
    } else {
      for (const std::size_t i : batch) exec_read(i);
    }
  };

  // Phase R1 — non-deferred reads, in parallel. State physically IS
  // epoch E here, so the pinned view takes the zero-overhead fast path.
  run_reads(early_reads);

  // Phase W — mutations, strictly sequential in submission order, each
  // committing into epoch E+1 under its own RNG/fate substream. Spans
  // these commits finish carry the commit epoch.
  system_.span_epoch_ = commit;
  bool deferred_done = deferred_reads.empty();
  for (const std::size_t i : writes) {
    Pending& p = pending_[i];
    // Depart fence: a departure rebuilds the leaver's state from the
    // live view only (its pre-depart versions vanish), so every pinned
    // reader must drain before the first depart commits.
    if (!deferred_done && std::holds_alternative<DepartOp>(p.op)) {
      run_reads(deferred_reads);
      deferred_done = true;
    }
    Rng rng = substream(p.global_index);
    ScopeGuard scope(scoped ? hook : nullptr, scope_salt(p.global_index));
    if (const auto* pub = std::get_if<PublishOp>(&p.op)) {
      METEO_EXPECTS(pub->vector != nullptr);
      Meteorograph::PublishPlan plan =
          system_.plan_publish(*pub->vector, pub->options, rng);
      sealed.timeout_costs[i] = plan.route.stats.timeout_cost;
      sealed.results[i] = system_.commit_publish(pub->id, *pub->vector, plan);
    } else if (const auto* wdr = std::get_if<WithdrawOp>(&p.op)) {
      METEO_EXPECTS(wdr->vector != nullptr);
      sealed.results[i] =
          system_.withdraw_with(wdr->item, *wdr->vector, wdr->options, rng);
    } else {
      const auto& dep = std::get<DepartOp>(p.op);
      sealed.results[i] = system_.depart_node(dep.node);
    }
  }

  // Phase R2 — deferred reads that no depart forced earlier. They run
  // against the mutated stores yet observe exactly epoch E through the
  // retained versions.
  if (!deferred_done) run_reads(deferred_reads);
  system_.span_epoch_ = 0;

  // Fold — writes already folded inline at their commits (submission
  // order); now the reads fold in submission order. Histogram
  // accumulation is float-order-sensitive and spans append to the trace
  // log here, so this order must not depend on workers or deferral.
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_[i].op.index() >= kFirstWriteAlternative) continue;
    traces[i].span.set_epoch(pinned);
    std::visit(
        [&](auto& result) {
          using R = std::decay_t<decltype(result)>;
          if constexpr (std::is_same_v<R, RetrieveResult>) {
            system_.record_retrieve(result, traces[i]);
          } else if constexpr (std::is_same_v<R, LocateResult>) {
            system_.record_locate(result, traces[i]);
          } else if constexpr (std::is_same_v<R, SearchResult>) {
            system_.record_search(result, traces[i]);
          } else if constexpr (std::is_same_v<R, RangeSearchResult>) {
            system_.record_range_search(result, traces[i]);
          }
        },
        sealed.results[i]);
    sealed.timeout_costs[i] =
        traces[i].route.timeout_cost + traces[i].walk.timeout_cost;
  }

  // Epoch boundary: retire the superseded versions, advance the counter,
  // publish the epoch metrics (docs/OBSERVABILITY.md).
  gc_stores();
  epoch_ = commit;
  pending_.clear();
  if (!epoch_advances_.has_value()) {
    epoch_gauge_.emplace(system_.metrics().gauge(obs::names::kEpochCurrent));
    epoch_advances_.emplace(
        system_.metrics().counter(obs::names::kEpochAdvances));
  }
  epoch_gauge_->set(static_cast<double>(commit));
  *epoch_advances_ += 1;
  return sealed;
}

}  // namespace meteo::core
