#include "meteorograph/naming.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "vsm/absolute_angle.hpp"
#include "workload/knee.hpp"

namespace meteo::core {

NamingScheme NamingScheme::fit(std::span<const overlay::Key> sample_raw_keys,
                               const SystemConfig& config) {
  NamingScheme scheme(config);
  if (config.load_balance == LoadBalanceMode::kNone) return scheme;

  METEO_EXPECTS(!sample_raw_keys.empty());
  std::vector<double> samples;
  samples.reserve(sample_raw_keys.size());
  for (const overlay::Key k : sample_raw_keys) {
    samples.push_back(static_cast<double>(k));
  }
  const EmpiricalCdf cdf(samples);

  // Resample the CDF finely, then reduce to the configured knee budget.
  // 512 probe points resolve knees well even for the very narrow raw band
  // the universal-dictionary mode produces.
  const std::vector<Knot> curve = cdf.resample(512);
  std::vector<Knot> knees =
      workload::find_knees(curve, {config.eq6_knees, 0.0});

  // Pin the map to the full address space: raw keys below/above the sample
  // range clamp to 0 / R (the paper's first knee is (0,0), last (1, R)).
  // Scale CDF fractions onto [0, R-1] so remapped keys stay inside the
  // space even at the top knee.
  const auto top = static_cast<double>(config.overlay.key_space - 1);
  for (Knot& k : knees) k.y *= top;
  if (knees.front().x > 0.0) {
    knees.insert(knees.begin(), Knot{0.0, 0.0});
  } else {
    knees.front().y = 0.0;
  }
  if (knees.back().x < top) {
    knees.push_back(Knot{top, top});
  } else {
    knees.back().y = top;
  }
  scheme.remap_.emplace(std::move(knees));
  return scheme;
}

std::vector<overlay::Key> NamingScheme::raw_keys(
    std::span<const vsm::SparseVector> sample, const SystemConfig& config) {
  std::vector<overlay::Key> keys;
  keys.reserve(sample.size());
  for (const vsm::SparseVector& v : sample) {
    keys.push_back(vsm::absolute_angle_key(
        v, config.dimension, config.overlay.key_space, config.angle_mode));
  }
  return keys;
}

overlay::Key NamingScheme::raw_key(const vsm::SparseVector& v) const {
  return vsm::absolute_angle_key(v, config_.dimension,
                                 config_.overlay.key_space,
                                 config_.angle_mode);
}

double NamingScheme::raw_value(const vsm::SparseVector& v) const {
  const double theta =
      vsm::absolute_angle(v, config_.dimension, config_.angle_mode);
  return theta / std::numbers::pi *
         static_cast<double>(config_.overlay.key_space);
}

overlay::Key NamingScheme::remap(overlay::Key raw) const {
  if (!remap_.has_value()) return raw;
  const double mapped = (*remap_)(static_cast<double>(raw));
  METEO_ASSERT(mapped >= 0.0);
  auto key = static_cast<overlay::Key>(mapped);
  if (key >= config_.overlay.key_space) key = config_.overlay.key_space - 1;
  return key;
}

overlay::Key NamingScheme::balanced_key(const vsm::SparseVector& v) const {
  if (!remap_.has_value()) return raw_key(v);
  const double mapped = (*remap_)(raw_value(v));
  METEO_ASSERT(mapped >= 0.0);
  auto key = static_cast<overlay::Key>(mapped);
  if (key >= config_.overlay.key_space) key = config_.overlay.key_space - 1;
  return key;
}

std::span<const Knot> NamingScheme::knees() const {
  if (!remap_.has_value()) return {};
  return remap_->knots();
}

}  // namespace meteo::core
