#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

namespace meteo::obs {

namespace {

/// Minimal JSON string escaping; metric names and label values are plain
/// identifiers, but the exporter must not produce invalid JSON for any
/// input.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(label.first);
    out += "\":\"";
    out += json_escape(label.second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

/// One CSV row. Fields here never contain commas or quotes (names and
/// labels are identifier-like, values are numbers), so no quoting layer.
void csv_row(std::string& out, const char* type, const MetricKey& key,
             const std::string& field, const std::string& value) {
  out += type;
  out += ',';
  out += key.name;
  out += ',';
  out += format_labels(key.labels);
  out += ',';
  out += field;
  out += ',';
  out += value;
  out += '\n';
}

std::string bucket_field(double upper_bound) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "le_%g", upper_bound);
  return buf;
}

}  // namespace

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string metrics_to_json(const MetricRegistry& registry) {
  std::string out = "{\n\"counters\": [";
  bool first = true;
  for (const auto& [key, value] : registry.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(key.name) +
           "\",\"labels\":" + json_labels(key.labels) +
           ",\"value\":" + format_u64(value) + "}";
  }
  out += "\n],\n\"gauges\": [";
  first = true;
  for (const auto& [key, value] : registry.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(key.name) +
           "\",\"labels\":" + json_labels(key.labels) +
           ",\"value\":" + format_double(value) + "}";
  }
  out += "\n],\n\"histograms\": [";
  first = true;
  for (const auto& [key, data] : registry.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(key.name) +
           "\",\"labels\":" + json_labels(key.labels) +
           ",\"count\":" + format_u64(data.count) +
           ",\"sum\":" + format_double(data.sum) +
           ",\"min\":" + format_double(data.min()) +
           ",\"max\":" + format_double(data.max()) + ",\"buckets\":[";
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"le\":";
      if (i < data.upper_bounds.size()) {
        out += format_double(data.upper_bounds[i]);
      } else {
        out += "\"+inf\"";
      }
      out += ",\"count\":" + format_u64(data.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

std::string metrics_to_csv(const MetricRegistry& registry) {
  std::string out = "type,name,labels,field,value\n";
  for (const auto& [key, value] : registry.counters()) {
    csv_row(out, "counter", key, "value", format_u64(value));
  }
  for (const auto& [key, value] : registry.gauges()) {
    csv_row(out, "gauge", key, "value", format_double(value));
  }
  for (const auto& [key, data] : registry.histograms()) {
    csv_row(out, "histogram", key, "count", format_u64(data.count));
    csv_row(out, "histogram", key, "sum", format_double(data.sum));
    csv_row(out, "histogram", key, "min", format_double(data.min()));
    csv_row(out, "histogram", key, "max", format_double(data.max()));
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      const std::string field = i < data.upper_bounds.size()
                                    ? bucket_field(data.upper_bounds[i])
                                    : std::string("le_inf");
      csv_row(out, "histogram", key, field, format_u64(data.buckets[i]));
    }
  }
  return out;
}

std::string trace_to_chrome_json(const TraceLog& log) {
  // Spans have logical, per-span timestamps; lay them out sequentially on
  // one synthetic timeline (span i starts where span i-1 ended) so the
  // dump is a single ordered track in chrome://tracing / Perfetto.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t base = 0;
  for (const Span& span : log.spans()) {
    const std::uint64_t duration =
        static_cast<std::uint64_t>(span.events.size()) + 2;
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"";
    out += to_string(span.op);
    out += "\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":" + format_u64(base) +
           ",\"dur\":" + format_u64(duration) +
           ",\"pid\":1,\"tid\":1,\"args\":{\"span\":" + format_u64(span.id) +
           ",\"source\":" + format_u64(span.source) +
           ",\"key\":" + format_u64(span.key) + ",\"outcome\":\"" +
           json_escape(span.outcome) +
           "\",\"epoch\":" + format_u64(span.epoch);
    // Strategy attribute only when stamped: default-strategy traces stay
    // byte-identical to the pre-naming-seam exporter output.
    if (!span.naming.empty()) {
      out += ",\"naming\":\"" + json_escape(span.naming) + "\"";
    }
    out += "}}";
    for (const TraceEvent& event : span.events) {
      out += ",\n{\"name\":\"";
      out += to_string(event.kind);
      out += "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
             format_u64(base + 1 + event.ts) +
             ",\"pid\":1,\"tid\":1,\"args\":{\"span\":" + format_u64(span.id) +
             ",\"from\":" + format_u64(event.from) +
             ",\"to\":" + format_u64(event.to) +
             ",\"key\":" + format_u64(event.key) +
             ",\"detail\":" + format_u64(event.detail) +
             ",\"cost\":" + format_double(event.cost) + "}}";
    }
    base += duration;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace meteo::obs
