#pragma once

/// \file trace.hpp
/// Span/event tracing for the message path.
///
/// Every core operation (publish, retrieve, locate, similarity search,
/// range publish/search, withdraw, subscribe, depart) opens one **span**;
/// each overlay hop, neighbor-walk step, overflow-chain leg, retry,
/// backoff, timeout, reroute, and fault-hook verdict appends one typed
/// **event** carrying a logical timestamp, the endpoints, and the key of
/// the leg being serviced.
///
/// Determinism contract (DESIGN.md §8): events are recorded into a
/// per-op SpanRecorder that lives inside the op's private OpTrace buffer;
/// logical timestamps count events *within that span*, so no cross-op
/// ordering leaks into the record. Finished spans are appended to the
/// shared TraceLog only by record_* on the coordinating thread, in
/// op-index (commit) order — the same discipline the batch engine uses
/// for metrics — so a dump is bit-identical at any worker count.
///
/// Tracing is off by default: when no TraceLog is attached the recorder
/// stays inactive and every call degrades to one predicted branch.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "overlay/key_space.hpp"

namespace meteo::obs {

/// The operation a span describes. String forms double as the `op`
/// metric-label values (names.hpp).
enum class OpKind : std::uint8_t {
  kPublish,
  kRetrieve,
  kLocate,
  kSimilaritySearch,
  kRangePublish,
  kRangeSearch,
  kWithdraw,
  kSubscribe,
  kDepart,
};

/// What happened at one point of the message path.
enum class EventKind : std::uint8_t {
  kRouteHop,      ///< one greedy DHT hop landed; detail = hop index in leg
  kWalkHop,       ///< one neighbor-walk step landed
  kChainHop,      ///< one publish overflow-chain leg landed
  kFaultVerdict,  ///< fault hook consulted; detail = MessageFate value
  kTimeout,       ///< a timeout elapsed; cost = simulated seconds waited
  kRetry,         ///< hop retransmitted; detail = attempt number (1-based)
  kBackoff,       ///< retry backoff armed; cost = next timeout in seconds
  kReroute,       ///< hop abandoned, rerouting via an alternate finger
};

[[nodiscard]] const char* to_string(OpKind kind);
[[nodiscard]] const char* to_string(EventKind kind);

struct TraceEvent {
  EventKind kind = EventKind::kRouteHop;
  std::uint64_t ts = 0;  ///< logical timestamp: event index within the span
  overlay::NodeId from = overlay::kInvalidNode;
  overlay::NodeId to = overlay::kInvalidNode;
  overlay::Key key = 0;       ///< key of the leg being serviced
  std::uint64_t detail = 0;   ///< kind-specific (see EventKind)
  double cost = 0.0;          ///< kind-specific (see EventKind)

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) = default;
};

struct Span {
  std::uint64_t id = 0;  ///< commit order; assigned by TraceLog::append
  OpKind op = OpKind::kRetrieve;
  overlay::NodeId source = overlay::kInvalidNode;
  overlay::Key key = 0;  ///< the op's primary key (0 when keyless, e.g. depart)
  /// Epoch the op executed against (DESIGN.md §11): the pinned read epoch
  /// for reads, the commit epoch for writes. 0 outside an EpochEngine.
  std::uint64_t epoch = 0;
  std::string outcome;   ///< "ok", "partial", "degraded", "blocked", "failed"
  /// Naming-strategy attribute ("range", "lsh"). Empty — and omitted by
  /// the exporters — under the default angle strategy, keeping its traces
  /// byte-identical to the pre-strategy baseline (DESIGN.md §12).
  std::string naming;
  std::vector<TraceEvent> events;
};

/// Append-only log of finished spans. Single-threaded by contract: only
/// the coordinating thread appends, in commit order.
class TraceLog {
 public:
  /// Takes ownership of the span and stamps its commit-order id.
  void append(Span span) {
    span.id = static_cast<std::uint64_t>(spans_.size());
    spans_.push_back(std::move(span));
  }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }

 private:
  std::vector<Span> spans_;
};

/// Per-op event buffer. Default-constructed recorders are inactive and
/// every member call is a cheap early-out — the disabled-tracing cost the
/// hot path pays is the `active()` branch.
class SpanRecorder {
 public:
  SpanRecorder() = default;

  /// Arm the recorder for one operation. Until open() the recorder
  /// swallows everything.
  void open(OpKind op, overlay::NodeId source, overlay::Key key) {
    active_ = true;
    span_ = Span{};
    span_.op = op;
    span_.source = source;
    span_.key = key;
    leg_key_ = key;
  }

  [[nodiscard]] bool active() const { return active_; }

  /// Tag subsequent events with the key of the current leg (replica
  /// legs, chase lookups, walk targets differ from the span key).
  void set_leg_key(overlay::Key key) {
    if (active_) leg_key_ = key;
  }

  /// Stamp the span's execution epoch (EpochEngine coordinator only;
  /// facade spans keep the default 0). Call any time before finish().
  void set_epoch(std::uint64_t epoch) {
    if (active_) span_.epoch = epoch;
  }

  /// Stamp the naming-strategy attribute (non-default strategies only;
  /// see Span::naming). Call any time before finish().
  void set_naming(const char* strategy) {
    if (active_) span_.naming = strategy;
  }

  void event(EventKind kind, overlay::NodeId from, overlay::NodeId to,
             std::uint64_t detail = 0, double cost = 0.0) {
    if (!active_) return;
    TraceEvent e;
    e.kind = kind;
    e.ts = static_cast<std::uint64_t>(span_.events.size());
    e.from = from;
    e.to = to;
    e.key = leg_key_;
    e.detail = detail;
    e.cost = cost;
    span_.events.push_back(e);
  }

  /// Close the span and move it into `log` (commit point). The recorder
  /// returns to the inactive state.
  void finish(std::string outcome, TraceLog& log) {
    if (!active_) return;
    span_.outcome = std::move(outcome);
    log.append(std::move(span_));
    span_ = Span{};
    active_ = false;
  }

  /// Drop a span without committing it (op abandoned before recording).
  void abandon() {
    span_ = Span{};
    active_ = false;
  }

 private:
  bool active_ = false;
  overlay::Key leg_key_ = 0;
  Span span_;
};

}  // namespace meteo::obs
