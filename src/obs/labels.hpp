#pragma once

/// \file labels.hpp
/// Metric label sets.
///
/// A label is a (key, value) pair of short strings; a label set
/// distinguishes series under one metric name ("op.count{op=retrieve,
/// outcome=partial}"). Label sets are normalised — sorted by key — at the
/// registry boundary so the same logical set always addresses the same
/// series regardless of construction order.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace meteo::obs {

/// One metric label: (key, value).
using Label = std::pair<std::string, std::string>;

/// A set of labels. Stored sorted by key (then value); duplicates of the
/// same key are a caller bug and are rejected by the registry.
using Labels = std::vector<Label>;

/// Sort a label set into canonical order.
[[nodiscard]] inline Labels normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// "k1=v1;k2=v2" — the flat form used by the CSV exporter and by humans
/// grepping dumps. Empty label sets format as the empty string.
[[nodiscard]] std::string format_labels(const Labels& labels);

}  // namespace meteo::obs
