#include "obs/trace.hpp"

namespace meteo::obs {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kPublish: return "publish";
    case OpKind::kRetrieve: return "retrieve";
    case OpKind::kLocate: return "locate";
    case OpKind::kSimilaritySearch: return "search";
    case OpKind::kRangePublish: return "range_publish";
    case OpKind::kRangeSearch: return "range_search";
    case OpKind::kWithdraw: return "withdraw";
    case OpKind::kSubscribe: return "subscribe";
    case OpKind::kDepart: return "depart";
  }
  return "unknown";
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRouteHop: return "route_hop";
    case EventKind::kWalkHop: return "walk_hop";
    case EventKind::kChainHop: return "chain_hop";
    case EventKind::kFaultVerdict: return "fault_verdict";
    case EventKind::kTimeout: return "timeout";
    case EventKind::kRetry: return "retry";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kReroute: return "reroute";
  }
  return "unknown";
}

}  // namespace meteo::obs
