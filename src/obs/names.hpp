#pragma once

/// \file names.hpp
/// The metric-name schema: every metric and label key the library emits.
///
/// All instrumentation sites reference these constants instead of string
/// literals, which makes the schema greppable and lets CI enforce the
/// documentation contract: tools/check_observability_docs.sh extracts
/// every quoted string from this header and fails if any of them is
/// missing from docs/OBSERVABILITY.md. Add a metric here, document it
/// there — or tier-1 fails.

namespace meteo::obs::names {

// ---- label keys -----------------------------------------------------------

/// Which core operation a series belongs to. Values are the OpKind
/// strings: "publish", "retrieve", "locate", "search", "range_publish",
/// "range_search", "withdraw", "subscribe", "depart".
inline constexpr const char* kLabelOp = "op";

/// How the operation ended. Values: "ok", "partial", "degraded",
/// "blocked", "failed".
inline constexpr const char* kLabelOutcome = "outcome";

// ---- per-operation counters (labelled) ------------------------------------

/// Completed operations, one increment per op. Labels: op, outcome.
inline constexpr const char* kOpCount = "op.count";

/// Overlay messages charged to the operation (route hops + walk hops +
/// retries + lookup legs). Labels: op. Unit: messages.
inline constexpr const char* kOpMessages = "op.messages";

// ---- per-operation histograms (labelled with op) --------------------------

/// DHT routing hops per operation (all route legs summed). Labels: op.
inline constexpr const char* kOpRouteHops = "op.route_hops";

/// Neighbor-walk hops per operation. Labels: op.
inline constexpr const char* kOpWalkHops = "op.walk_hops";

/// Probe keys planned per read op by a multi-key naming strategy
/// (DESIGN.md §12). Labels: op. Absent under single-key strategies, so
/// angle-strategy dumps match the pre-strategy baseline byte-for-byte.
inline constexpr const char* kNamingProbes = "naming.probes";

/// Keys an item was published under. Labels: op. Absent under single-key
/// strategies (same reason as naming.probes).
inline constexpr const char* kNamingKeys = "naming.keys";

// ---- operation-specific series (unlabelled) -------------------------------

/// Publish overflow-chain hops (extra successor legs taken when the home
/// node was full).
inline constexpr const char* kPublishChainHops = "publish.chain_hops";

/// Replica legs that could not be placed per publish.
inline constexpr const char* kPublishReplicasMissed = "publish.replicas_missed";

/// Known-stored items a retrieve failed to collect.
inline constexpr const char* kRetrieveItemsMissed = "retrieve.items_missed";

/// Items returned per similarity search.
inline constexpr const char* kSearchItems = "search.items";

/// Per-item metadata lookups that failed during a similarity search.
inline constexpr const char* kSearchLookupsFailed = "search.lookups_failed";

/// Locate calls that found the item (counter; compare with op.count
/// {op=locate} for the hit rate).
inline constexpr const char* kLocateFound = "locate.found";

/// Subscriber notifications delivered / lost during publish commits.
inline constexpr const char* kNotifyDelivered = "notify.delivered";
inline constexpr const char* kNotifyLost = "notify.lost";

// ---- fault-path series (labelled with op) ---------------------------------

/// Per-hop retransmissions after a loss/timeout. Labels: op.
inline constexpr const char* kFaultRetries = "fault.retries";

/// Timeouts waited out (losses + injected delays). Labels: op.
inline constexpr const char* kFaultTimeouts = "fault.timeouts";

/// Alternate-finger reroutes after a hop exhausted its retries.
/// Labels: op.
inline constexpr const char* kFaultReroutes = "fault.reroutes";

/// Simulated seconds spent waiting on timeouts, per op (histogram).
/// Labels: op. Unit: seconds.
inline constexpr const char* kFaultTimeoutCost = "fault.timeout_cost";

/// Scheduled node crashes applied at operation boundaries.
inline constexpr const char* kFaultCrashesApplied = "fault.crashes_applied";

// ---- system gauges --------------------------------------------------------

/// Alive overlay nodes. Refreshed at operation boundaries (and batch
/// barriers); see DESIGN.md §8 for the snapshot discipline.
inline constexpr const char* kAliveNodes = "system.alive_nodes";

/// Items stored across all nodes. O(N) to compute, so refreshed only at
/// batch barriers, never per op.
inline constexpr const char* kStoredItems = "system.stored_items";

// ---- epoch engine (DESIGN.md §11) -----------------------------------------

/// The epoch the EpochEngine last sealed (gauge; reads pinned it, writes
/// committed into it + 1).
inline constexpr const char* kEpochCurrent = "epoch.current";

/// Epoch boundaries crossed (one increment per seal()).
inline constexpr const char* kEpochAdvances = "epoch.advances";

}  // namespace meteo::obs::names
