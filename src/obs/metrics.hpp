#pragma once

/// \file metrics.hpp
/// Labeled metric registry: counters, gauges, and fixed-bucket histograms
/// keyed by (name, label set).
///
/// This supersedes sim::MetricRegistry for the Meteorograph op path. The
/// design goals, in order:
///
///  1. **Stable handles.** counter()/gauge()/histogram() return small
///     handle objects wrapping a pointer to the cell inside a std::map.
///     Map nodes never move, so handles stay valid across later
///     registrations *and across reset()* — reset() zeroes every cell in
///     place instead of clearing the maps. This fixes the footgun in the
///     old registry, where reset() invalidated every outstanding
///     reference while benches held them across repetitions.
///  2. **Deterministic export.** All iteration is over ordered maps, so
///     two registries with the same contents serialise byte-identically.
///  3. **Fixed buckets.** Histograms take their upper bounds at creation
///     and never rebucket, so dumps from different runs are directly
///     comparable and merging is trivial.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "obs/labels.hpp"

namespace meteo::obs {

/// Identity of one metric series: name plus canonical (sorted) labels.
struct MetricKey {
  std::string name;
  Labels labels;

  friend bool operator<(const MetricKey& a, const MetricKey& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  }
  friend bool operator==(const MetricKey& a, const MetricKey& b) = default;
};

/// Fixed-bucket histogram cell. Buckets are cumulative-style "le" bounds:
/// bucket i counts observations v with v <= upper_bounds[i] (and greater
/// than the previous bound); one implicit overflow bucket counts
/// everything above the last bound.
struct HistogramData {
  std::vector<double> upper_bounds;    ///< strictly increasing
  std::vector<std::uint64_t> buckets;  ///< size = upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;

  void observe(double value);
  void reset_values();

  /// Minimum / maximum observed value; 0 when the histogram is empty.
  [[nodiscard]] double min() const { return count == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count == 0 ? 0.0 : max_; }

 private:
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Handle to a counter cell. Valid for the registry's lifetime,
/// including across reset().
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}

  Counter& operator+=(std::uint64_t n) {
    *cell_ += n;
    return *this;
  }
  Counter& operator++() {
    ++*cell_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return *cell_; }

 private:
  std::uint64_t* cell_ = nullptr;
};

/// Handle to a gauge cell (a point-in-time double, overwritten by set()).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(double* cell) : cell_(cell) {}

  void set(double value) { *cell_ = value; }
  [[nodiscard]] double value() const { return *cell_; }

 private:
  double* cell_ = nullptr;
};

/// Handle to a histogram cell.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(HistogramData* cell) : cell_(cell) {}

  void observe(double value) { cell_->observe(value); }
  [[nodiscard]] const HistogramData& data() const { return *cell_; }

 private:
  HistogramData* cell_ = nullptr;
};

/// The registry. Not thread-safe by design: the batch engine records
/// metrics only on the coordinating thread, in op-index order (DESIGN.md
/// §7/§8), so a mutex here would buy nothing and cost determinism
/// reviews their confidence.
class MetricRegistry {
 public:
  /// Find-or-create. Labels are normalised (sorted) internally; the
  /// same logical set always returns the same cell.
  Counter counter(std::string name, Labels labels = {});
  Gauge gauge(std::string name, Labels labels = {});

  /// Find-or-create with fixed bucket upper bounds (strictly increasing,
  /// may be empty = count/sum/min/max only). Re-requesting an existing
  /// histogram with different bounds is a precondition violation.
  Histogram histogram(std::string name, std::vector<double> upper_bounds,
                      Labels labels = {});

  /// Point lookups (0 / nullptr when the series does not exist).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] double gauge_value(std::string_view name,
                                   const Labels& labels = {}) const;
  [[nodiscard]] const HistogramData* find_histogram(
      std::string_view name, const Labels& labels = {}) const;

  /// Sum of a counter across every label set sharing `name` (e.g. total
  /// op.count over all outcomes).
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;

  /// Sum of `name` restricted to series carrying every label in
  /// `subset` (e.g. op.count for op=publish across outcomes).
  [[nodiscard]] std::uint64_t counter_total(std::string_view name,
                                            const Labels& subset) const;

  [[nodiscard]] const std::map<MetricKey, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<MetricKey, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<MetricKey, HistogramData>& histograms() const {
    return histograms_;
  }

  /// Zero every cell **in place**. Series keys survive, bucket layouts
  /// survive, and every outstanding handle stays valid and observes the
  /// zeroed cell. This is the documented reset contract (the old
  /// registry cleared its maps, silently dangling held references).
  void reset();

  /// True when no series has been registered.
  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<MetricKey, std::uint64_t> counters_;
  std::map<MetricKey, double> gauges_;
  std::map<MetricKey, HistogramData> histograms_;
};

/// Bucket presets shared by the op path so every hop histogram is
/// directly comparable across ops and runs.
[[nodiscard]] std::vector<double> hop_buckets();    ///< routing/walk hops
[[nodiscard]] std::vector<double> cost_buckets();   ///< timeout seconds
[[nodiscard]] std::vector<double> count_buckets();  ///< item counts

}  // namespace meteo::obs
